#!/usr/bin/env bash
# Tier-1 verify plus the bench/format gates, all offline.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo bench --no-run (compile all paper-figure harnesses)"
cargo bench --no-run --offline

echo "==> smoke bench (micro, 5 ms window) -> BENCH_micro.json"
VLOG_BENCH_MS=5 cargo bench -q --offline --bench micro >/dev/null
test -s BENCH_micro.json || { echo "BENCH_micro.json was not produced" >&2; exit 1; }
grep -q "event_calendar/calendar_schedule_drain" BENCH_micro.json || {
    echo "BENCH_micro.json is missing the event_calendar group" >&2; exit 1; }
grep -q "event_calendar/heap_schedule_drain" BENCH_micro.json || {
    echo "BENCH_micro.json is missing the heap baseline" >&2; exit 1; }
echo "    BENCH_micro.json: ok (event_calendar group present)"

echo "==> workloads sweep bench (quick registry) -> BENCH_workloads.json"
VLOG_SCALE=quick cargo bench -q --offline --bench workloads >/dev/null
test -s BENCH_workloads.json || { echo "BENCH_workloads.json was not produced" >&2; exit 1; }
for fam in nas netpipe bursty halo fft; do
    grep -q "\"name\": \"$fam/" BENCH_workloads.json || {
        echo "BENCH_workloads.json is missing the $fam workload group" >&2; exit 1; }
done
echo "    BENCH_workloads.json: ok (one group per registered workload family)"

echo "==> sweep driver smoke (--threads 2: parallel path must match sequential)"
cargo run -q --release --offline --example sweep_smoke -- --threads 2

echo "==> examples (smoke, quick scale)"
for ex in quickstart protocol_comparison recovery_anatomy fault_tolerant_stencil; do
    VLOG_SCALE=quick cargo run -q --release --offline --example "$ex" >/dev/null
    echo "    example $ex: ok"
done

echo "verify: all green"
