//! Property tests of the causality-log detectors against randomized
//! event/cause scripts.
//!
//! The liveness detectors are only trustworthy if they are *exact*: a
//! dangling or absent report must mean a producer-less edge really
//! exists in the log (no false positives — a noisy hang diagnosis is
//! worse than none), and every producer-less edge must be reported (no
//! false negatives — a silent detector is a silent timeout with extra
//! steps). The properties check the full API surface (produce /
//! produce-unique / expect / consume / cancel / cancel-owner) against
//! an independent declarative model, and pin the order-insensitivity
//! contract: satisfaction is decided at analysis time over sets, so
//! *when* a producer fired relative to its expectation cannot change
//! the verdict.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;
use vlog_sim::causality::{self, EdgeKind, Key, LivenessReport};
use vlog_sim::ckey;

/// Small key universe so scripts collide on keys often: 4 kinds x 6
/// values. Collisions are where the detectors earn their keep —
/// repeat productions, re-expected causes, double consumes.
const KINDS: usize = 4;
const VALS: u64 = 6;

/// An abstract key: `(kind index, value)`.
type K = (usize, u64);

fn key(k: K) -> Key {
    match k.0 {
        0 => ckey!("alpha", v = k.1),
        1 => ckey!("beta", v = k.1),
        2 => ckey!("gamma", v = k.1),
        _ => ckey!("delta", v = k.1),
    }
}

/// One recording-API call.
#[derive(Debug, Clone, Copy)]
enum Op {
    Produce { key: K, cause: Option<K> },
    ProduceUnique { key: K },
    Expect { cause: K, waiter: K, owner: u64 },
    Consume { cause: K, by: K },
    Cancel { cause: K },
    CancelOwner { owner: u64 },
}

fn key_strategy() -> impl Strategy<Value = K> {
    (0..KINDS, 0..VALS)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<bool>(), key_strategy(), key_strategy()).prop_map(|(linked, key, cause)| {
            Op::Produce {
                key,
                cause: linked.then_some(cause),
            }
        }),
        key_strategy().prop_map(|key| Op::ProduceUnique { key }),
        (key_strategy(), key_strategy(), 0u64..3).prop_map(|(cause, waiter, owner)| Op::Expect {
            cause,
            waiter,
            owner
        }),
        (key_strategy(), key_strategy()).prop_map(|(cause, by)| Op::Consume { cause, by }),
        key_strategy().prop_map(|cause| Op::Cancel { cause }),
        (0u64..3).prop_map(|owner| Op::CancelOwner { owner }),
    ]
}

fn apply(op: Op) {
    match op {
        Op::Produce { key: k, cause } => causality::produced(key(k), cause.map(key)),
        Op::ProduceUnique { key: k } => causality::produced_unique(key(k), None),
        Op::Expect {
            cause,
            waiter,
            owner,
        } => causality::expect(key(cause), key(waiter), owner),
        Op::Consume { cause, by } => causality::consume(key(cause), key(by)),
        Op::Cancel { cause } => causality::cancel(key(cause)),
        Op::CancelOwner { owner } => causality::cancel_owner(owner),
    }
}

/// Runs a script through the real thread-local log and returns its
/// analysis, leaving the thread clean for the next case.
fn run_script(ops: &[Op]) -> LivenessReport {
    causality::set_thread_enabled(true);
    causality::reset();
    for &op in ops {
        apply(op);
    }
    let report = causality::analyze();
    causality::reset();
    causality::set_thread_enabled(false);
    report
}

/// The independent declarative model: producer-less edges computed
/// over plain sets, written from the documented contract rather than
/// the log's internals.
#[derive(Debug, Default, PartialEq, Eq)]
struct Model {
    /// `(cause, waiter, owner)` of surviving expectations whose cause
    /// has no producer.
    dangling: BTreeSet<(K, K, u64)>,
    /// `(cause, edge, by)` of producer-less referenced causes.
    absent: BTreeSet<(K, EdgeKind, K)>,
    /// Once-only keys with their production count.
    duplicates: BTreeSet<(K, u64)>,
}

fn model(ops: &[Op]) -> Model {
    let mut produced: BTreeMap<K, u64> = BTreeMap::new();
    // First recorded cause edge per produced key wins.
    let mut caused_by: BTreeMap<K, K> = BTreeMap::new();
    let mut unique: BTreeSet<K> = BTreeSet::new();
    // Last expectation per cause wins; cancels withdraw.
    let mut expects: BTreeMap<K, (K, u64)> = BTreeMap::new();
    // First consumer per cause wins.
    let mut consumed: BTreeMap<K, K> = BTreeMap::new();
    for &op in ops {
        match op {
            Op::Produce { key, cause } => {
                *produced.entry(key).or_insert(0) += 1;
                if let Some(c) = cause {
                    caused_by.entry(key).or_insert(c);
                }
            }
            Op::ProduceUnique { key } => {
                *produced.entry(key).or_insert(0) += 1;
                unique.insert(key);
            }
            Op::Expect {
                cause,
                waiter,
                owner,
            } => {
                expects.insert(cause, (waiter, owner));
            }
            Op::Consume { cause, by } => {
                consumed.entry(cause).or_insert(by);
            }
            Op::Cancel { cause } => {
                expects.remove(&cause);
            }
            Op::CancelOwner { owner } => {
                expects.retain(|_, &mut (_, o)| o != owner);
            }
        }
    }
    let mut m = Model::default();
    for (cause, (waiter, owner)) in &expects {
        if !produced.contains_key(cause) {
            m.dangling.insert((*cause, *waiter, *owner));
        }
    }
    for (cause, by) in &consumed {
        if !produced.contains_key(cause) {
            m.absent.insert((*cause, EdgeKind::Consumed, *by));
        }
    }
    for (by, cause) in &caused_by {
        if !produced.contains_key(cause) {
            m.absent.insert((*cause, EdgeKind::CausedBy, *by));
        }
    }
    for k in &unique {
        let count = produced[k];
        if count > 1 {
            m.duplicates.insert((*k, count));
        }
    }
    m
}

/// Flattens a real report into the model's shape (keys back to their
/// abstract `(kind, value)` form).
fn flatten(report: &LivenessReport) -> Model {
    let unkey = |k: Key| -> K {
        let kind = match k.kind() {
            "alpha" => 0,
            "beta" => 1,
            "gamma" => 2,
            _ => 3,
        };
        (kind, k.get("v").expect("every script key carries v"))
    };
    Model {
        dangling: report
            .dangling
            .iter()
            .map(|d| (unkey(d.cause), unkey(d.waiter), d.owner))
            .collect(),
        absent: report
            .absent
            .iter()
            .map(|a| (unkey(a.cause), a.edge, unkey(a.by)))
            .collect(),
        duplicates: report
            .duplicates
            .iter()
            .map(|d| (unkey(d.key), d.count))
            .collect(),
    }
}

/// A script transposition that moves every production to the front
/// (stable within each class), i.e. every producer fires before any
/// expectation or consumption is declared.
fn produces_first(ops: &[Op]) -> Vec<Op> {
    let is_produce = |op: &Op| matches!(op, Op::Produce { .. } | Op::ProduceUnique { .. });
    let mut out: Vec<Op> = ops.iter().copied().filter(is_produce).collect();
    out.extend(ops.iter().copied().filter(|op| !is_produce(op)));
    out
}

/// The mirror transposition: every producer fires last.
fn produces_last(ops: &[Op]) -> Vec<Op> {
    let is_produce = |op: &Op| matches!(op, Op::Produce { .. } | Op::ProduceUnique { .. });
    let mut out: Vec<Op> = ops.iter().copied().filter(|op| !is_produce(op)).collect();
    out.extend(ops.iter().copied().filter(is_produce));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Exactness: the detectors flag precisely the producer-less edges
    /// of the script — surviving expectations, consumed causes and
    /// `caused_by` targets with no production anywhere — and precisely
    /// the violated once-only contracts. No false positives, no false
    /// negatives.
    #[test]
    fn detectors_flag_exactly_the_producerless_edges(
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let report = run_script(&ops);
        prop_assert_eq!(flatten(&report), model(&ops));
        let produces = ops
            .iter()
            .filter(|op| matches!(op, Op::Produce { .. } | Op::ProduceUnique { .. }))
            .count() as u64;
        prop_assert_eq!(report.produced_events, produces);
    }

    /// Order-insensitivity: satisfaction is decided over sets at
    /// analysis time, so moving every production before — or after —
    /// all declarations changes nothing. An expectation satisfied by a
    /// production that fired earlier is as satisfied as one whose
    /// producer fired later.
    #[test]
    fn production_order_cannot_change_the_verdict(
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let base = run_script(&ops);
        prop_assert_eq!(&run_script(&produces_first(&ops)), &base);
        prop_assert_eq!(&run_script(&produces_last(&ops)), &base);
    }

    /// Zero false positives on well-formed logs: a script whose every
    /// referenced cause is produced and whose once-only keys fire once
    /// analyzes clean, whatever else it contains.
    #[test]
    fn well_formed_logs_are_clean(
        refs in prop::collection::vec(
            (key_strategy(), key_strategy(), 0u64..3, 0usize..3),
            0..60,
        ),
        unique_draws in prop::collection::vec(key_strategy(), 0..10),
    ) {
        let uniques: BTreeSet<K> = unique_draws.into_iter().collect();
        let mut ops = Vec::new();
        for &(cause, other, owner, edge) in &refs {
            // Reference the cause one of three ways, then produce it.
            ops.push(match edge {
                0 => Op::Expect { cause, waiter: other, owner },
                1 => Op::Consume { cause, by: other },
                _ => Op::Produce { key: other, cause: Some(cause) },
            });
            ops.push(Op::Produce { key: cause, cause: None });
        }
        // Once-only keys must fire exactly once, so only declare them
        // on keys the reference block above never produced.
        let produced_above: BTreeSet<K> = refs
            .iter()
            .flat_map(|&(cause, other, _, edge)| {
                let mut v = vec![cause];
                if edge == 2 {
                    v.push(other);
                }
                v
            })
            .collect();
        for &k in uniques.difference(&produced_above) {
            ops.push(Op::ProduceUnique { key: k });
        }
        let report = run_script(&ops);
        prop_assert!(
            report.is_clean(),
            "well-formed script analyzed dirty:\n{}",
            causality::render("well-formed", &report)
        );
    }
}
