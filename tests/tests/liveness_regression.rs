//! Regression: the causality log must *diagnose* the two historical
//! PR-5 protocol bugs by name, without schedule exploration.
//!
//! The schedule explorer (PR 6) can re-find these bugs, but its verdict
//! is "this run stalled / stormed" — the *why* took a human reading
//! traces. The causality log closes that gap: a single buggy run, no
//! perturbation search, and the liveness report names the exact
//! recovery edge the stall is waiting on (restart-window bug) or the
//! once-only event the storm keeps re-firing (marker-storm bug).
//!
//! The clean controls run the identical configurations minus the buggy
//! flag and must come back liveness-clean — the detectors' value rests
//! on a zero false-positive rate.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use vlog_core::{CausalSuite, CoordinatedSuite, Technique};
use vlog_sim::{causality, SimDuration};
use vlog_vmpi::{ClusterConfig, FaultPlan};
use vlog_workloads::{run_workload, BurstyConfig, Class, NasBench, NasConfig, Workload};

fn causal_suite() -> Arc<CausalSuite> {
    Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(6)),
    )
}

/// FT.S/8 with a rank killed mid-transpose: the restart-window repro
/// from `restart_window_regression.rs`, here with the causality log
/// exported and a sim-time watchdog armed.
fn ft8_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::new(8);
    cfg.detect_delay = SimDuration::from_millis(8);
    cfg.export_liveness = true;
    // The clean control recovers in ~550ms of sim time; the deadline
    // leaves a ~4x margin so only a genuine stall can reach it.
    cfg.liveness_watchdog = Some(SimDuration::from_secs(2));
    cfg
}

#[test]
fn stalled_restart_window_names_the_dangling_recovery_edge() {
    let victim = 1;
    let w = NasConfig::new(NasBench::FT, Class::S, 8);
    let mut cfg = ft8_cfg();
    cfg.buggy_restart_window = true;
    let plan = FaultPlan::kill_at(SimDuration::from_millis(5), victim);
    let run = run_workload(&w, &cfg, causal_suite(), &plan);
    // The watchdog, not an event cap, ends the stalled run: the sim
    // stops at the deadline with a diagnosis instead of panicking.
    assert!(
        !run.report.completed,
        "buggy restart window unexpectedly recovered"
    );
    assert!(
        run.report.stats.get("liveness_watchdog_fired") >= 1,
        "stalled run ended without the watchdog firing"
    );
    let live = run.report.liveness.as_ref().expect("liveness exported");
    assert!(
        !live.is_clean(),
        "stalled run reported a clean liveness log"
    );
    // The diagnosis: the victim's replay is waiting on a recovery edge
    // that can no longer fire — a replay supply or determinant the
    // corrupted watermarks told the peers not to re-send.
    let named = live.dangling.iter().any(|d| {
        d.owner == victim as u64
            && matches!(
                d.cause.kind(),
                "replay-supply" | "det-replay" | "reclaim-resp" | "el-query-resp"
            )
    });
    assert!(
        named,
        "dangling set does not name the victim's stuck recovery edge:\n{}",
        causality::render("restart-window", live)
    );
}

#[test]
fn clean_restart_window_run_is_liveness_clean() {
    let victim = 1;
    let w = NasConfig::new(NasBench::FT, Class::S, 8);
    let cfg = ft8_cfg();
    let plan = FaultPlan::kill_at(SimDuration::from_millis(5), victim);
    let run = run_workload(&w, &cfg, causal_suite(), &plan);
    assert!(run.report.completed, "clean FT.S/8 control did not recover");
    assert_eq!(
        run.report.stats.get("liveness_watchdog_fired"),
        0,
        "watchdog fired on a run that completed"
    );
    let live = run.report.liveness.as_ref().expect("liveness exported");
    assert!(
        live.is_clean(),
        "clean faulted run has liveness findings (false positives):\n{}",
        causality::render("clean-control", live)
    );
    assert!(live.produced_events > 0, "causality log recorded nothing");
}

/// Runs the bursty service under the coordinated suite and returns
/// `(completed, liveness)`. The storm burns the event cap before the
/// run ends — the cap trips as a panic, in which case the thread-local
/// causality log (reset at run start, never torn down on unwind) is
/// analyzed directly: the diagnosis survives the crash of its own run.
fn bursty_coordinated(storm_bug: bool) -> (bool, causality::LivenessReport) {
    let w = BurstyConfig::new(8, 3, 11).with_servers(2);
    let mut cfg = ClusterConfig::new(w.np());
    cfg.event_limit = Some(2_000_000);
    cfg.export_liveness = true;
    let suite = CoordinatedSuite::new(SimDuration::from_millis(2));
    let suite = if storm_bug {
        Arc::new(suite.with_storm_bug())
    } else {
        Arc::new(suite)
    };
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_workload(&w, &cfg, suite, &FaultPlan::none())
    }));
    match result {
        Ok(run) => (
            run.report.completed,
            run.report.liveness.clone().expect("liveness exported"),
        ),
        Err(_) => {
            let live = causality::analyze();
            causality::reset();
            causality::set_thread_enabled(false);
            (false, live)
        }
    }
}

#[test]
fn marker_storm_shows_as_a_duplicated_once_only_close() {
    let (_completed, live) = bursty_coordinated(true);
    // The diagnosis: closing a finished rank's channels is declared
    // once-only per (rank, id); the storm re-fires it per marker.
    let dup = live
        .duplicates
        .iter()
        .find(|d| d.key.kind() == "snapshot-close-finished");
    match dup {
        Some(d) => assert!(
            d.count > 1,
            "duplicate record with non-duplicate count: {d:?}"
        ),
        None => panic!(
            "storm run did not flag snapshot-close-finished as duplicated:\n{}",
            causality::render("marker-storm", &live)
        ),
    }
}

#[test]
fn clean_coordinated_bursty_run_is_liveness_clean() {
    let (completed, live) = bursty_coordinated(false);
    assert!(completed, "clean coordinated bursty did not complete");
    assert!(
        live.is_clean(),
        "clean coordinated run has liveness findings (false positives):\n{}",
        causality::render("clean-control", &live)
    );
    assert!(live.produced_events > 0, "causality log recorded nothing");
}
