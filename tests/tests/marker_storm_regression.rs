//! Regression: coordinated-checkpoint markers must not storm between
//! finished ranks.
//!
//! A rank whose program has ended can never reach another checkpoint
//! point, so on seeing a snapshot it closes its channels by sending
//! markers to every peer. Before the fix it did that for *every
//! incoming marker*: two finished ranks answered each other's markers
//! with full marker broadcasts, each reply triggering the next, and the
//! run drowned in control traffic (the bursty service at 16 ranks
//! generated over a million marker messages and gigabytes of queued
//! events before the event cap tripped). A finished rank must close its
//! channels at most once per snapshot id.
//!
//! The repro needs ranks that finish at staggered times while snapshots
//! keep being commanded — exactly the bursty service's shape: clients
//! drain their rounds and exit while the server keeps serving.

use std::sync::Arc;

use vlog_core::CoordinatedSuite;
use vlog_sim::SimDuration;
use vlog_vmpi::{ClusterConfig, FaultPlan};
use vlog_workloads::{run_workload, BurstyConfig, Workload};

#[test]
fn finished_ranks_close_each_snapshot_exactly_once() {
    let w = BurstyConfig::new(8, 3, 11).with_servers(2);
    let mut cfg = ClusterConfig::new(w.np());
    // Low event cap: the storm used to blow through tens of millions of
    // events; a healthy run needs well under one million.
    cfg.event_limit = Some(2_000_000);
    let run = run_workload(
        &w,
        &cfg,
        Arc::new(CoordinatedSuite::new(SimDuration::from_millis(2))),
        &FaultPlan::none(),
    );
    assert!(run.report.completed, "coordinated bursty did not complete");
    // Marker traffic is bounded by snapshots x ranks^2; the storm was
    // two orders of magnitude above this.
    let snapshots = run.report.makespan.as_secs_f64() / 2e-3;
    let bound = (snapshots as u64 + 8) * (w.np() * w.np()) as u64 * 4;
    assert!(
        run.report.stats.messages < bound,
        "marker storm: {} messages for ~{:.0} snapshots on {} ranks",
        run.report.stats.messages,
        snapshots,
        w.np()
    );
}
