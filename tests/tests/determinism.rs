//! Determinism regression: the simulation kernel is seeded and
//! single-threaded, so two runs of the same configuration must agree on
//! **every** observable — virtual makespan, event count, kernel byte
//! counters and per-rank protocol statistics. This is the paper's
//! replay/determinant-stability claim in its strongest testable form:
//! if any protocol consulted unseeded state (hash order, wall clock,
//! address-dependent ordering), the fingerprints would diverge.
//!
//! Divergence is reported structurally through [`vlog_sim::diff`]: the
//! failure message pinpoints the first differing report and the first
//! differing character inside it, instead of dumping two full report
//! vectors to eyeball.

use std::sync::Arc;

use vlog_bench::{run_many, SuiteKind};
use vlog_core::{CausalSuite, CoordinatedSuite, PbFormat, PessimisticSuite, Technique};
use vlog_sim::{diff, SimDuration};
use vlog_vmpi::{
    app, run_cluster, AppSpec, ClusterConfig, FaultPlan, Payload, RecvSelector, RunReport, Suite,
};
use vlog_workloads::runner::faults;
use vlog_workloads::{
    net_axes, registry, run_workload, BurstyConfig, NetAxis, RegistryScale, Workload,
};

const N: usize = 3;
const ITERS: u64 = 15;

/// Ring sendrecv with periodic checkpoints: enough traffic to exercise
/// piggybacking, logging and (under a fault) recovery on every suite.
fn program() -> AppSpec {
    app(move |mpi| async move {
        let me = mpi.rank();
        let n = mpi.size();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let start = match mpi.restored() {
            Some(b) => u64::from_le_bytes(b[..8].try_into().unwrap()),
            None => 0,
        };
        for it in start..ITERS {
            mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                .await;
            let byte = (me as u8).wrapping_add((it & 0xff) as u8);
            let _ = mpi
                .sendrecv(
                    right,
                    0,
                    Payload::new(vec![byte, me as u8]),
                    RecvSelector::of(left, 0),
                )
                .await;
        }
    })
}

/// Everything a [`RunReport`] observes, flattened to a comparable value.
fn fingerprint(report: &RunReport) -> String {
    format!(
        "suite={} completed={} makespan={:?} events={} stats={:?} ranks={:?}",
        report.suite,
        report.completed,
        report.makespan,
        report.events,
        report.stats,
        report.rank_stats,
    )
}

fn run_once(suite: Arc<dyn Suite>, with_fault: bool) -> String {
    let mut cfg = ClusterConfig::new(N);
    cfg.detect_delay = SimDuration::from_millis(8);
    cfg.event_limit = Some(50_000_000);
    let faults = if with_fault {
        FaultPlan::kill_at(SimDuration::from_millis(5), 1)
    } else {
        FaultPlan::none()
    };
    let report = run_cluster(&cfg, suite, program(), &faults);
    assert!(report.completed, "{} did not complete", report.suite);
    fingerprint(&report)
}

fn assert_deterministic(mk: impl Fn() -> Arc<dyn Suite> + Send + Sync, with_fault: bool) {
    // Both identical runs go through the sweep driver on two worker
    // threads: determinism must hold per run, and the sweep must return
    // results in job order regardless of which worker finished first.
    let both = run_many(vec![(), ()], 2, |_| run_once(mk(), with_fault));
    diff::assert_reports_identical(
        &format!("same-seed-twice(fault={with_fault})"),
        &both[..1],
        &both[1..],
    );
}

/// The six causal configurations of the paper's comparison.
fn causal_suites() -> Vec<(Technique, bool)> {
    let mut v = Vec::new();
    for el in [true, false] {
        for technique in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
            v.push((technique, el));
        }
    }
    v
}

#[test]
fn causal_suites_are_deterministic_fault_free() {
    for (technique, el) in causal_suites() {
        assert_deterministic(
            || {
                Arc::new(
                    CausalSuite::new(technique, el).with_checkpoints(SimDuration::from_millis(6)),
                )
            },
            false,
        );
    }
}

#[test]
fn causal_suites_are_deterministic_through_recovery() {
    for (technique, el) in causal_suites() {
        assert_deterministic(
            || {
                Arc::new(
                    CausalSuite::new(technique, el).with_checkpoints(SimDuration::from_millis(6)),
                )
            },
            true,
        );
    }
}

#[test]
fn pessimistic_suite_is_deterministic() {
    for with_fault in [false, true] {
        assert_deterministic(
            || Arc::new(PessimisticSuite::new().with_checkpoints(SimDuration::from_millis(6))),
            with_fault,
        );
    }
}

#[test]
fn coordinated_suite_is_deterministic() {
    for with_fault in [false, true] {
        assert_deterministic(
            || Arc::new(CoordinatedSuite::new(SimDuration::from_millis(6))),
            with_fault,
        );
    }
}

/// One suite configuration of the cross-thread sweep, by index (jobs
/// must be `Send`, so they carry an index and build the suite in-job
/// via the shared [`SuiteKind`] enumeration).
fn suite_for(idx: usize) -> Arc<dyn Suite> {
    SuiteKind::all_eight()[idx].build(SimDuration::from_millis(6))
}

/// Cross-thread determinism: the same seed set swept through `run_many`
/// on 1 worker thread and on N worker threads must produce byte-identical
/// reports in the same order. This is the contract the figure benches
/// rely on when they shard their grids.
#[test]
fn sweep_reports_are_identical_across_thread_counts() {
    let jobs: Vec<(usize, bool)> = (0..8usize)
        .flat_map(|idx| [(idx, false), (idx, true)])
        .collect();
    let runner = |(idx, with_fault): (usize, bool)| run_once(suite_for(idx), with_fault);
    let sequential = run_many(jobs.clone(), 1, runner);
    for threads in [2usize, 4] {
        let sharded = run_many(jobs.clone(), threads, runner);
        diff::assert_reports_identical(
            &format!("sweep-{threads}-threads-vs-1"),
            &sequential,
            &sharded,
        );
    }
}

/// Profiling must observe, never perturb: the same eight-suite sweep
/// (fault-free and faulted) with the kernel's self-profiling scopes
/// force-enabled must report byte-identically to the plain sweep, on 1,
/// 2 and 4 worker threads. Wall-clock readings stay in the profiler's
/// thread-local accumulators and never reach a `RunReport`; this pins
/// that contract.
#[test]
fn profiling_does_not_perturb_reports_across_thread_counts() {
    let jobs: Vec<(usize, bool)> = (0..8usize)
        .flat_map(|idx| [(idx, false), (idx, true)])
        .collect();
    let runner = |(idx, with_fault): (usize, bool)| run_once(suite_for(idx), with_fault);
    let plain = run_many(jobs.clone(), 1, runner);
    vlog_sim::profiler::set_enabled(true);
    for threads in [1usize, 2, 4] {
        let profiled = run_many(jobs.clone(), threads, runner);
        diff::assert_reports_identical(
            &format!("profiled-{threads}-threads-vs-plain"),
            &plain,
            &profiled,
        );
    }
    vlog_sim::profiler::set_enabled(false);
}

/// The causality log must observe, never perturb: the same eight-suite
/// sweep (fault-free and faulted) with causality recording
/// force-enabled must report byte-identically to the plain sweep, on
/// 1, 2 and 4 worker threads. Recording is thread-local and
/// analysis-free during the run; nothing reaches a `RunReport` unless
/// a harness exports it — this pins that contract, the same one the
/// profiler test above pins for timing scopes.
#[test]
fn causality_log_does_not_perturb_reports_across_thread_counts() {
    let jobs: Vec<(usize, bool)> = (0..8usize)
        .flat_map(|idx| [(idx, false), (idx, true)])
        .collect();
    let runner = |(idx, with_fault): (usize, bool)| run_once(suite_for(idx), with_fault);
    let plain = run_many(jobs.clone(), 1, runner);
    vlog_sim::causality::set_enabled(true);
    for threads in [1usize, 2, 4] {
        let logged = run_many(jobs.clone(), threads, runner);
        diff::assert_reports_identical(
            &format!("causality-{threads}-threads-vs-plain"),
            &plain,
            &logged,
        );
    }
    vlog_sim::causality::set_enabled(false);
}

/// Registry conformance: every registered workload, under every one of
/// the eight suite configurations, with a rank killed mid-run, must
/// (a) run to completion (the protocols recover it), (b) move piggyback
/// bytes under the causal suites, and (c) produce byte-identical
/// reports whether the sweep ran on 1, 2 or 4 `run_many` threads.
///
/// This is the contract that lets every harness iterate the registry
/// blindly: any workload someone registers is proven fault-tolerant
/// and determinism-safe here before a figure ever sweeps it.
#[test]
fn registered_workloads_survive_faults_on_every_suite_deterministically() {
    let workloads = registry(RegistryScale::Smoke);
    let jobs: Vec<(Arc<dyn Workload>, usize)> = workloads
        .iter()
        .flat_map(|w| (0..8usize).map(move |idx| (w.clone(), idx)))
        .collect();
    let runner = |(w, idx): (Arc<dyn Workload>, usize)| {
        let kind = SuiteKind::all_eight()[idx];
        let mut cfg = ClusterConfig::new(w.np());
        cfg.detect_delay = SimDuration::from_millis(8);
        cfg.event_limit = Some(50_000_000);
        let fault = FaultPlan::kill_at(SimDuration::from_millis(5), 1);
        let run = run_workload(
            w.as_ref(),
            &cfg,
            kind.build(SimDuration::from_millis(6)),
            &fault,
        );
        assert!(
            run.report.completed,
            "{} under {} did not complete through the fault",
            run.label,
            kind.label()
        );
        assert!(
            run.mflops().is_finite(),
            "{} reported a non-finite Mflop/s",
            run.label
        );
        if kind.is_causal() {
            assert!(
                run.report.stats.bytes.piggyback > 0,
                "{} under {} moved no piggyback bytes",
                run.label,
                kind.label()
            );
        }
        format!(
            "workload={} extra={:?} {}",
            run.label,
            run.extra,
            fingerprint(&run.report)
        )
    };
    let sequential = run_many(jobs.clone(), 1, runner);
    for threads in [2usize, 4] {
        let sharded = run_many(jobs.clone(), threads, runner);
        diff::assert_reports_identical(
            &format!("registry-sweep-{threads}-threads-vs-1"),
            &sequential,
            &sharded,
        );
    }
}

/// Scaled-regime conformance: every `Scale::Large` registry entry —
/// multi-server bursty, the large seeded halo graphs, the deep-tiling
/// FFT ladder, NAS and NetPIPE at 16 ranks — under every one of the
/// eight suite configurations, with a **hub-failure** fault plan (the
/// workload's most load-bearing rank killed mid-run: the highest-degree
/// halo rank, the busiest bursty server). Every cell must complete
/// through the fault and the whole sweep must report byte-identically
/// on 1, 2 and 4 `run_many` threads — the contract the `regimes` bench
/// and the committed `REPORT.md` rely on.
#[test]
fn large_registry_survives_hub_failures_on_every_suite_deterministically() {
    let workloads = registry(RegistryScale::Large);
    let jobs: Vec<(Arc<dyn Workload>, usize)> = workloads
        .iter()
        .flat_map(|w| (0..8usize).map(move |idx| (w.clone(), idx)))
        .collect();
    let runner = |(w, idx): (Arc<dyn Workload>, usize)| {
        let kind = SuiteKind::all_eight()[idx];
        let mut cfg = ClusterConfig::new(w.np());
        cfg.detect_delay = SimDuration::from_millis(8);
        cfg.event_limit = Some(50_000_000);
        let plan = faults::hub_failure(w.as_ref(), SimDuration::from_millis(5));
        assert_eq!(
            plan.faults,
            vec![(SimDuration::from_millis(5), w.hub_rank())]
        );
        let run = run_workload(
            w.as_ref(),
            &cfg,
            kind.build(SimDuration::from_millis(6)),
            &plan,
        );
        assert!(
            run.report.completed,
            "{} under {} did not recover from its hub failure (rank {})",
            run.label,
            kind.label(),
            w.hub_rank()
        );
        if kind.is_causal() {
            assert!(
                run.report.stats.bytes.piggyback > 0,
                "{} under {} moved no piggyback bytes",
                run.label,
                kind.label()
            );
        }
        format!(
            "workload={} hub={} extra={:?} {}",
            run.label,
            w.hub_rank(),
            run.extra,
            fingerprint(&run.report)
        )
    };
    let sequential = run_many(jobs.clone(), 1, runner);
    for threads in [2usize, 4] {
        let sharded = run_many(jobs.clone(), threads, runner);
        diff::assert_reports_identical(
            &format!("large-registry-hub-failure-sweep-{threads}-threads-vs-1"),
            &sequential,
            &sharded,
        );
    }
}

/// Compact-format × aggregated-client conformance: the bursty service
/// with thousands of modeled clients folded onto a handful of physical
/// ranks, under Vcausal+EL with the compact piggyback wire format (and
/// its send-side stability pruning), fault-free and through a
/// hub-server failure. Reports must be byte-identical on 1, 2 and 4
/// `run_many` threads — the contract behind REPORT.md's table 7: the
/// aggregated regime and the compact codec introduce no unseeded state.
#[test]
fn compact_aggregated_bursty_is_deterministic_across_thread_counts() {
    let w: Arc<dyn Workload> = Arc::new(BurstyConfig::new(6, 2, 11).with_servers(2).aggregated(64));
    let jobs: Vec<bool> = vec![false, true];
    let runner = |with_fault: bool| {
        let suite = Arc::new(
            CausalSuite::new(Technique::Vcausal, true)
                .with_checkpoints(SimDuration::from_millis(6))
                .with_pb_format(PbFormat::Compact),
        );
        let mut cfg = ClusterConfig::new(w.np());
        cfg.detect_delay = SimDuration::from_millis(8);
        cfg.event_limit = Some(50_000_000);
        let plan = if with_fault {
            faults::hub_failure(w.as_ref(), SimDuration::from_millis(5))
        } else {
            FaultPlan::none()
        };
        let run = run_workload(w.as_ref(), &cfg, suite, &plan);
        assert!(
            run.report.completed,
            "{} (fault={with_fault}) did not complete under the compact suite",
            run.label
        );
        assert!(
            run.report.stats.bytes.piggyback > 0,
            "{} moved no piggyback bytes",
            run.label
        );
        if with_fault {
            let recoveries: usize = run
                .report
                .rank_stats
                .iter()
                .map(|s| s.recovery_total.len())
                .sum();
            assert!(
                recoveries >= 1,
                "{}: hub fault never fired — the run ended before the kill",
                run.label
            );
        }
        format!(
            "agg-compact fault={with_fault} extra={:?} {}",
            run.extra,
            fingerprint(&run.report)
        )
    };
    let sequential = run_many(jobs.clone(), 1, runner);
    for threads in [2usize, 4] {
        let sharded = run_many(jobs.clone(), threads, runner);
        diff::assert_reports_identical(
            &format!("compact-aggregated-sweep-{threads}-threads-vs-1"),
            &sequential,
            &sharded,
        );
    }
}

/// Net-axis conformance: the EL saturation probe under Vcausal+EL, once
/// per `NetProfile` × `el_count` axis of the registry grid, fault-free
/// and through an **EL-shard failure** (shard 0 crashed mid-run, its
/// ranks re-sharded onto the survivors, unacked batches handed off).
/// Every cell must complete, the EL-failure cells must actually record
/// a re-shard, and the whole sweep must report byte-identically on 1, 2
/// and 4 `run_many` threads — the contract behind the EL-scaling table
/// of `REPORT.md`.
#[test]
fn net_axes_are_deterministic_fault_free_and_through_el_failure() {
    let probe = registry(RegistryScale::Smoke)
        .into_iter()
        .find(|w| w.family() == "fft")
        .expect("Smoke registry always has an FFT entry");
    let jobs: Vec<(NetAxis, bool)> = net_axes(RegistryScale::Large)
        .into_iter()
        .flat_map(|a| [(a.clone(), false), (a, true)])
        .collect();
    let runner = |(axis, el_fault): (NetAxis, bool)| {
        let suite = Arc::new(
            CausalSuite::new(Technique::Vcausal, true)
                .with_checkpoints(SimDuration::from_millis(2))
                .with_distributed_el(axis.el_count, SimDuration::from_millis(2)),
        );
        let mut cfg = ClusterConfig::new(probe.np());
        cfg.detect_delay = SimDuration::from_millis(1);
        cfg.event_limit = Some(50_000_000);
        cfg.net = axis.profile.clone();
        // A single EL cannot lose a shard and keep going; those axes
        // run the fault leg fault-free so the sweep stays rectangular.
        let plan = if el_fault && axis.el_count >= 2 {
            FaultPlan::kill_el_at(SimDuration::from_millis(5), 0)
        } else {
            FaultPlan::none()
        };
        let run = run_workload(probe.as_ref(), &cfg, suite, &plan);
        assert!(
            run.report.completed,
            "{} on {} (el_fault={el_fault}) did not complete",
            run.label,
            axis.label()
        );
        if el_fault && axis.el_count >= 2 {
            assert!(
                run.report.el_reshards() >= 1,
                "{} on {}: EL shard killed but no re-shard recorded",
                run.label,
                axis.label()
            );
        }
        format!(
            "axis={} el_fault={el_fault} {}",
            axis.label(),
            fingerprint(&run.report)
        )
    };
    let sequential = run_many(jobs.clone(), 1, runner);
    for threads in [2usize, 4] {
        let sharded = run_many(jobs.clone(), threads, runner);
        diff::assert_reports_identical(
            &format!("net-axes-sweep-{threads}-threads-vs-1"),
            &sequential,
            &sharded,
        );
    }
}
