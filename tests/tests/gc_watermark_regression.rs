//! Regression: when checkpoint images take longer to transfer than the
//! checkpoint period, several images overlap in flight. The commit
//! acknowledgement of version N must trigger sender-log pruning with
//! version N's receive watermarks — pruning with a newer in-flight
//! version's watermarks deletes payloads that a victim restored from N
//! still needs, wedging its replay forever. (Found by the ablation
//! harness at default scale; fixed by keying GC watermarks per version.)

use std::sync::Arc;

use vlog_core::{CausalSuite, PessimisticSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{app, run_cluster, ClusterConfig, FaultPlan, Payload, RecvSelector, Suite};

/// Ring with a deliberately huge checkpoint state (6 MB ≈ 0.5 s of wire
/// time) and a checkpoint period far below that, so images always overlap.
fn heavy_state_ring(iters: u64) -> vlog_vmpi::AppSpec {
    app(move |mpi| async move {
        let n = mpi.size();
        let me = mpi.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let start = match mpi.restored() {
            Some(b) => u64::from_le_bytes(b[..8].try_into().unwrap()),
            None => 0,
        };
        for it in start..iters {
            let mut state = Payload::new(it.to_le_bytes().to_vec());
            state.pad = 6 << 20;
            mpi.checkpoint_point(state).await;
            let m = mpi
                .sendrecv(
                    right,
                    0,
                    Payload::new(vec![(it & 0xff) as u8]),
                    RecvSelector::of(left, 0),
                )
                .await;
            assert_eq!(
                m.payload.data[0],
                (it & 0xff) as u8,
                "rank {me} it {it} start {start}"
            );
            mpi.elapse(SimDuration::from_millis(5)).await;
        }
    })
}

fn run_with(suite: Arc<dyn Suite>) {
    let mut cfg = ClusterConfig::new(3);
    cfg.detect_delay = SimDuration::from_millis(20);
    cfg.event_limit = Some(80_000_000);
    // Generous horizon: pre-fix the replay never ends at all.
    cfg.time_limit = Some(SimDuration::from_secs(600));
    let faults = FaultPlan::kill_at(SimDuration::from_millis(1_200), 0);
    let report = run_cluster(&cfg, suite, heavy_state_ring(200), &faults);
    assert!(
        report.completed,
        "victim wedged: recovery starved by over-pruned sender logs"
    );
    assert_eq!(report.rank_stats[0].recovery_total.len(), 1);
}

#[test]
fn causal_recovery_survives_overlapping_checkpoint_images() {
    run_with(Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(150)),
    ));
}

#[test]
fn pessimistic_recovery_survives_overlapping_checkpoint_images() {
    run_with(Arc::new(
        PessimisticSuite::new().with_checkpoints(SimDuration::from_millis(150)),
    ));
}
