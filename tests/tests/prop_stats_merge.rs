//! Property tests of the statistics merge laws behind the sharded stat
//! cells (the raw-speed pass).
//!
//! The kernel's `Stats` and the per-rank `RankStats` used to be updated
//! through shared locks on every message; they are now accumulated in
//! per-worker / per-incarnation local cells and merged once at
//! end-of-run. That refactor is only sound if merging the shards equals
//! the old sequential accumulation — which these properties check
//! against randomized operation sequences and partitions:
//!
//! * `Stats::merge` is a full commutative monoid action (counters add,
//!   gauges max, durations add, histogram buckets add), so *any*
//!   assignment of operations to shards, merged in *any* order, must
//!   reproduce sequential accumulation;
//! * `RankStats::merge` additionally carries order-dependent duration
//!   lists and a monotone watermark, so the modelled partition is the
//!   real one — contiguous incarnation chunks flushed chronologically
//!   through `RankStatCell` — while associativity (and commutativity of
//!   the scalar fields) is checked separately.

use proptest::prelude::*;
use vlog_sim::{SimDuration, Stats, WireSize};
use vlog_vmpi::{RankStatCell, RankStats, SharedRankStats};

// ---------------------------------------------------------------------
// RankStats
// ---------------------------------------------------------------------

/// One protocol-visible statistics update. `Ack` models the EL
/// stability watermark the way the protocols actually write it: an
/// *assignment* of a globally monotone value, not an increment — the
/// reason `RankStats::merge` folds that field with `max`.
#[derive(Debug, Clone, Copy)]
enum ROp {
    Events(u8),
    Bytes(u16),
    EmptyMsg,
    AppMsg,
    Ckpt,
    SendTime(u16),
    RecvTime(u16),
    Ack(u16),
    RecoveryCollect(u16),
    RecoveryTotal(u16),
}

fn rop_strategy() -> impl Strategy<Value = ROp> {
    prop_oneof![
        any::<u8>().prop_map(ROp::Events),
        any::<u16>().prop_map(ROp::Bytes),
        Just(ROp::EmptyMsg),
        Just(ROp::AppMsg),
        Just(ROp::Ckpt),
        any::<u16>().prop_map(ROp::SendTime),
        any::<u16>().prop_map(ROp::RecvTime),
        any::<u16>().prop_map(ROp::Ack),
        any::<u16>().prop_map(ROp::RecoveryCollect),
        any::<u16>().prop_map(ROp::RecoveryTotal),
    ]
}

/// Applies one op. `watermark` is the global monotone EL stability
/// value shared by every incarnation of the rank.
fn apply(st: &mut RankStats, op: ROp, watermark: &mut u64) {
    match op {
        ROp::Events(n) => st.pb_events_sent += n as u64,
        ROp::Bytes(n) => st.pb_bytes_sent += n as u64,
        ROp::EmptyMsg => st.empty_pb_msgs += 1,
        ROp::AppMsg => st.app_msgs_sent += 1,
        ROp::Ckpt => st.checkpoints += 1,
        ROp::SendTime(ns) => st.pb_send_time += SimDuration::from_nanos(ns as u64),
        ROp::RecvTime(ns) => st.pb_recv_time += SimDuration::from_nanos(ns as u64),
        ROp::Ack(d) => {
            *watermark += d as u64;
            st.el_acked_events = *watermark;
        }
        ROp::RecoveryCollect(ns) => st.recovery_collect.push(SimDuration::from_nanos(ns as u64)),
        ROp::RecoveryTotal(ns) => st.recovery_total.push(SimDuration::from_nanos(ns as u64)),
    }
}

/// A delta built by applying ops to a fresh `RankStats` (its own
/// watermark — deltas from different writers are independent).
fn delta(ops: &[ROp]) -> RankStats {
    let mut st = RankStats::default();
    let mut w = 0u64;
    for &op in ops {
        apply(&mut st, op, &mut w);
    }
    st
}

fn fp(st: &RankStats) -> String {
    format!("{st:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The real sharding: any split of one rank's update sequence into
    /// contiguous incarnation chunks, each accumulated in its own
    /// `RankStatCell` and flushed (by drop) in chronological order,
    /// equals sequential accumulation into one locked struct.
    #[test]
    fn incarnation_cells_equal_sequential_accumulation(
        ops in prop::collection::vec(rop_strategy(), 0..80),
        cuts in prop::collection::vec(0usize..81, 0..4),
    ) {
        let mut oracle = RankStats::default();
        let mut w = 0u64;
        for &op in &ops {
            apply(&mut oracle, op, &mut w);
        }

        let shared: SharedRankStats = Default::default();
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (ops.len() + 1)).collect();
        bounds.push(0);
        bounds.push(ops.len());
        bounds.sort_unstable();
        let mut w2 = 0u64;
        for pair in bounds.windows(2) {
            let mut cell = RankStatCell::new(shared.clone());
            for &op in &ops[pair[0]..pair[1]] {
                apply(cell.local(), op, &mut w2);
            }
            // Dropping the cell flushes it, like a crashing or
            // finishing incarnation.
        }
        let merged = shared.lock().unwrap().clone();
        prop_assert_eq!(fp(&merged), fp(&oracle));
    }

    /// Merge is associative over arbitrary deltas (list concatenation,
    /// addition and max all are), so nested flush/merge orders cannot
    /// change the result as long as the chronological sequence is kept.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(rop_strategy(), 0..30),
        b in prop::collection::vec(rop_strategy(), 0..30),
        c in prop::collection::vec(rop_strategy(), 0..30),
    ) {
        let (da, db, dc) = (delta(&a), delta(&b), delta(&c));
        let mut left = da.clone();
        left.merge(&db);
        left.merge(&dc);
        let mut bc = db.clone();
        bc.merge(&dc);
        let mut right = da.clone();
        right.merge(&bc);
        prop_assert_eq!(fp(&left), fp(&right));
    }

    /// The scalar fields also commute (the daemon cell and the protocol
    /// cell of one incarnation flush in an arbitrary relative order at
    /// end-of-run — sound because the two writers share no list field).
    #[test]
    fn merge_of_scalar_deltas_is_commutative(
        a in prop::collection::vec(rop_strategy(), 0..30),
        b in prop::collection::vec(rop_strategy(), 0..30),
    ) {
        let scalar_only = |ops: &[ROp]| -> Vec<ROp> {
            ops.iter()
                .filter(|op| !matches!(op, ROp::RecoveryCollect(_) | ROp::RecoveryTotal(_)))
                .copied()
                .collect()
        };
        let (da, db) = (delta(&scalar_only(&a)), delta(&scalar_only(&b)));
        let mut ab = da.clone();
        ab.merge(&db);
        let mut ba = db.clone();
        ba.merge(&da);
        prop_assert_eq!(fp(&ab), fp(&ba));
    }
}

// ---------------------------------------------------------------------
// Stats (the kernel-wide accumulator)
// ---------------------------------------------------------------------

const COUNTER_KEYS: [&str; 3] = ["net.msgs", "ckpt.commits", "el.records"];
const GAUGE_KEYS: [&str; 2] = ["el.peak_queue", "el.peak_outstanding"];
const TIME_KEYS: [&str; 2] = ["el.ack_latency", "recovery.replay"];

/// One kernel-side statistics update.
#[derive(Debug, Clone, Copy)]
enum SOp {
    Add(usize, u16),
    Bump(usize),
    Gauge(usize, u32),
    Time(usize, u16),
    Msg(u16, u16, u16, u16),
}

fn sop_strategy() -> impl Strategy<Value = SOp> {
    prop_oneof![
        (0..COUNTER_KEYS.len(), any::<u16>()).prop_map(|(k, v)| SOp::Add(k, v)),
        (0..COUNTER_KEYS.len()).prop_map(SOp::Bump),
        (0..GAUGE_KEYS.len(), any::<u32>()).prop_map(|(k, v)| SOp::Gauge(k, v)),
        (0..TIME_KEYS.len(), any::<u16>()).prop_map(|(k, v)| SOp::Time(k, v)),
        (any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>())
            .prop_map(|(h, p, g, c)| SOp::Msg(h, p, g, c)),
    ]
}

fn apply_s(st: &mut Stats, op: SOp) {
    match op {
        SOp::Add(k, v) => st.add(COUNTER_KEYS[k], v as u64),
        SOp::Bump(k) => st.bump(COUNTER_KEYS[k]),
        SOp::Gauge(k, v) => st.set_max(GAUGE_KEYS[k], v as u64),
        SOp::Time(k, ns) => st.add_time(TIME_KEYS[k], SimDuration::from_nanos(ns as u64)),
        SOp::Msg(h, p, g, c) => st.record_message(WireSize {
            header: h as u64,
            payload: p as u64,
            piggyback: g as u64,
            control: c as u64,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every `Stats` field folds commutatively (add / max / bucket
    /// add), so an arbitrary assignment of operations to shards, merged
    /// forwards or backwards, reproduces sequential accumulation
    /// exactly. This is what lets per-worker stat shards replace the
    /// old locked accumulator without any ordering discipline.
    #[test]
    fn sharded_stats_equal_sequential_accumulation(
        assigned in prop::collection::vec((sop_strategy(), 0usize..4), 0..100),
    ) {
        let mut oracle = Stats::new();
        for &(op, _) in &assigned {
            apply_s(&mut oracle, op);
        }

        let mut shards = vec![Stats::new(), Stats::new(), Stats::new(), Stats::new()];
        for &(op, shard) in &assigned {
            apply_s(&mut shards[shard], op);
        }

        let mut forward = Stats::new();
        for sh in &shards {
            forward.merge(sh);
        }
        prop_assert_eq!(format!("{forward:?}"), format!("{oracle:?}"));

        let mut backward = Stats::new();
        for sh in shards.iter().rev() {
            backward.merge(sh);
        }
        prop_assert_eq!(format!("{backward:?}"), format!("{oracle:?}"));
    }
}
