//! The strongest end-to-end property: for randomly generated programs and
//! randomly placed single faults, the recovered execution delivers to
//! every application **exactly the same message trace** as the fault-free
//! execution — piecewise-deterministic replay, verified through the full
//! stack (daemons, Event Logger, checkpoint server, dispatcher).
//!
//! A divergence is reported structurally ([`vlog_sim::diff`]): the
//! failure names the first differing trace entry, not two thousand-line
//! vector dumps.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use vlog_core::{CausalSuite, PessimisticSuite, Technique};
use vlog_sim::{diff, SimDuration};
use vlog_vmpi::{
    app, run_cluster, AppSpec, ClusterConfig, FaultPlan, Payload, RecvSelector, Suite,
};

const N: usize = 3;

/// Per-rank observed trace: (iteration, src, first payload byte).
type Trace = Arc<Mutex<Vec<(usize, u64, usize, u8)>>>;

/// A ring-with-occasional-broadcast program parameterized by a seed.
/// Content is a deterministic function of (rank, iteration), so traces
/// are comparable across runs.
fn program(iters: u64, seed: u8, trace: Trace) -> AppSpec {
    app(move |mpi| {
        let trace = trace.clone();
        async move {
            let me = mpi.rank();
            let n = mpi.size();
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            let start = match mpi.restored() {
                Some(b) => u64::from_le_bytes(b[..8].try_into().unwrap()),
                None => 0,
            };
            for it in start..iters {
                mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                    .await;
                let byte = seed
                    .wrapping_mul(31)
                    .wrapping_add(me as u8)
                    .wrapping_add((it & 0xff) as u8);
                let m = mpi
                    .sendrecv(
                        right,
                        0,
                        Payload::new(vec![byte, me as u8]),
                        RecvSelector::of(left, 0),
                    )
                    .await;
                trace
                    .lock()
                    .unwrap()
                    .push((me, it, m.src, m.payload.data[0]));
                // Every 5th iteration, a small broadcast from the seed-th
                // rank exercises the collective path.
                if it % 5 == 0 {
                    let root = (seed as usize) % n;
                    let data = if me == root {
                        Some(bytes::Bytes::from(vec![(it & 0xff) as u8]))
                    } else {
                        None
                    };
                    let got = mpi.bcast_bytes(root, data).await;
                    trace.lock().unwrap().push((me, it, root + 100, got[0]));
                }
            }
        }
    })
}

fn run_once(
    suite: Arc<dyn Suite>,
    iters: u64,
    seed: u8,
    fault_ms: Option<(u64, usize)>,
) -> Vec<(usize, u64, usize, u8)> {
    let trace: Trace = Arc::new(Mutex::new(Vec::new()));
    let prog = program(iters, seed, trace.clone());
    let mut cfg = ClusterConfig::new(N);
    cfg.detect_delay = SimDuration::from_millis(8);
    cfg.event_limit = Some(50_000_000);
    let faults = match fault_ms {
        Some((ms, rank)) => FaultPlan::kill_at(SimDuration::from_millis(ms), rank),
        None => FaultPlan::none(),
    };
    let report = run_cluster(&cfg, suite, prog, &faults);
    assert!(report.completed, "run did not complete");
    let mut t = trace.lock().unwrap().clone();
    t.sort_unstable();
    t.dedup(); // the victim re-observes its replayed prefix
    t
}

fn check_equivalence(
    mk: impl Fn() -> Arc<dyn Suite>,
    iters: u64,
    seed: u8,
    at: u64,
    victim: usize,
) {
    let clean = run_once(mk(), iters, seed, None);
    let faulted = run_once(mk(), iters, seed, Some((at, victim)));
    assert_traces_identical(
        &format!("after recovery (seed {seed}, fault at {at}ms on rank {victim})"),
        &clean,
        &faulted,
    );
}

/// Compares two delivery traces entry-wise and, on mismatch, points at
/// the first divergent entry instead of dumping both vectors.
fn assert_traces_identical(
    label: &str,
    clean: &[(usize, u64, usize, u8)],
    other: &[(usize, u64, usize, u8)],
) {
    let fmt = |t: &[(usize, u64, usize, u8)]| -> Vec<String> {
        t.iter()
            .map(|(rank, it, src, byte)| format!("rank={rank} it={it} src={src} byte={byte}"))
            .collect()
    };
    if let Some(d) = diff::first_report_divergence(&fmt(clean), &fmt(other)) {
        panic!("trace diverged {label}: {d}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn causal_replay_is_trace_equivalent(
        seed in 0u8..255,
        at in 3u64..25,
        victim in 0usize..N,
        technique_idx in 0usize..3,
        el in any::<bool>(),
    ) {
        let technique = [Technique::Vcausal, Technique::Manetho, Technique::LogOn][technique_idx];
        check_equivalence(
            || {
                Arc::new(
                    CausalSuite::new(technique, el)
                        .with_checkpoints(SimDuration::from_millis(6)),
                )
            },
            40,
            seed,
            at,
            victim,
        );
    }

    #[test]
    fn pessimistic_replay_is_trace_equivalent(
        seed in 0u8..255,
        at in 3u64..25,
        victim in 0usize..N,
    ) {
        check_equivalence(
            || Arc::new(PessimisticSuite::new().with_checkpoints(SimDuration::from_millis(6))),
            30,
            seed,
            at,
            victim,
        );
    }
}

#[test]
fn double_fault_on_different_ranks_is_trace_equivalent() {
    let mk = || -> Arc<dyn Suite> {
        Arc::new(
            CausalSuite::new(Technique::Manetho, true)
                .with_checkpoints(SimDuration::from_millis(6)),
        )
    };
    let clean = run_once(mk(), 60, 7, None);
    let trace: Trace = Arc::new(Mutex::new(Vec::new()));
    let prog = program(60, 7, trace.clone());
    let mut cfg = ClusterConfig::new(N);
    cfg.detect_delay = SimDuration::from_millis(8);
    cfg.event_limit = Some(50_000_000);
    let faults = FaultPlan {
        faults: vec![
            (SimDuration::from_millis(6), 0),
            (SimDuration::from_millis(30), 2),
        ],
        ..FaultPlan::default()
    };
    let report = run_cluster(&cfg, mk(), prog, &faults);
    assert!(report.completed);
    let mut t = trace.lock().unwrap().clone();
    t.sort_unstable();
    t.dedup();
    assert_traces_identical("after double-fault recovery", &clean, &t);
}
