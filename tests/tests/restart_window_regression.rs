//! Regression: messages arriving in the *restart window* — after a
//! crashed rank's replacement daemon comes alive but before its
//! checkpoint image has been fetched — must not thread through the
//! not-yet-recovering protocol.
//!
//! Before the fix, such messages were accepted normally: they advanced
//! the channel watermarks the victim was about to send as its payload
//! reclaims, and consumed deliveries its replay was about to wait for.
//! Survivors then re-sent nothing (the corrupted watermarks said the
//! victim already had everything) and the replay waited forever for a
//! supply that could no longer arrive — a permanent recovery stall.
//!
//! FT's all-to-all at 8+ ranks reproduces this deterministically: at
//! the kill time several transposes are mid-flight, so the replacement
//! daemon always sees traffic before its image fetch returns.

use std::sync::Arc;

use vlog_core::{CausalSuite, PessimisticSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{ClusterConfig, FaultPlan, Suite};
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

fn run_ft8(suite: Arc<dyn Suite>, victim: usize) {
    let ft8 = NasConfig::new(NasBench::FT, Class::S, 8);
    let mut cfg = ClusterConfig::new(8);
    cfg.detect_delay = SimDuration::from_millis(8);
    cfg.event_limit = Some(50_000_000);
    let plan = FaultPlan::kill_at(SimDuration::from_millis(5), victim);
    let run = run_workload(&ft8, &cfg, suite, &plan);
    assert!(
        run.report.completed,
        "FT.S/8 did not recover from killing rank {victim} under {}",
        run.report.suite
    );
    let rs = &run.report.rank_stats[victim];
    assert_eq!(
        rs.recovery_total.len(),
        1,
        "rank {victim} never finished its replay: {rs:?}"
    );
}

#[test]
fn ft8_recovers_through_the_restart_window_causal_el() {
    for victim in [0, 1] {
        run_ft8(
            Arc::new(
                CausalSuite::new(Technique::Vcausal, true)
                    .with_checkpoints(SimDuration::from_millis(6)),
            ),
            victim,
        );
    }
}

#[test]
fn ft8_recovers_through_the_restart_window_pessimistic() {
    run_ft8(
        Arc::new(PessimisticSuite::new().with_checkpoints(SimDuration::from_millis(6))),
        1,
    );
}
