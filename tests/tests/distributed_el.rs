//! Integration tests of the distributed Event Logger (the paper's
//! future-work design implemented in `vlog-core::el_multi`).

use std::sync::Arc;

use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{app, run_cluster, ClusterConfig, FaultPlan, Payload, RecvSelector};
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

fn ring(iters: u64) -> vlog_vmpi::AppSpec {
    app(move |mpi| async move {
        let n = mpi.size();
        let me = mpi.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let start = match mpi.restored() {
            Some(b) => u64::from_le_bytes(b[..8].try_into().unwrap()),
            None => 0,
        };
        for it in start..iters {
            mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                .await;
            let m = mpi
                .sendrecv(
                    right,
                    0,
                    Payload::new(vec![me as u8, (it & 0xff) as u8]),
                    RecvSelector::of(left, 0),
                )
                .await;
            assert_eq!(m.payload.data[0], left as u8);
            assert_eq!(m.payload.data[1], (it & 0xff) as u8);
        }
    })
}

#[test]
fn sharded_el_runs_and_gossips() {
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true)
            .with_distributed_el(3, SimDuration::from_millis(5)),
    );
    let report = run_cluster(&ClusterConfig::new(6), suite, ring(100), &FaultPlan::none());
    assert!(report.completed);
    assert!(report.stats.get("el_records") > 0);
    assert!(
        report.stats.get("el_gossip_msgs") > 0,
        "shards never gossiped"
    );
}

#[test]
fn gossip_enables_global_garbage_collection() {
    // With gossip, events of ranks served by *other* shards become
    // stable everywhere, so piggyback volume stays bounded — close to
    // the single-EL level and far below no-EL.
    let run = |suite: Arc<dyn vlog_vmpi::Suite>| {
        let report = run_cluster(&ClusterConfig::new(6), suite, ring(150), &FaultPlan::none());
        assert!(report.completed);
        report.stats.bytes.piggyback
    };
    let single = run(Arc::new(CausalSuite::new(Technique::Vcausal, true)));
    let sharded = run(Arc::new(
        CausalSuite::new(Technique::Vcausal, true)
            .with_distributed_el(3, SimDuration::from_millis(2)),
    ));
    let none = run(Arc::new(CausalSuite::new(Technique::Vcausal, false)));
    assert!(
        sharded < none / 2,
        "sharded EL ({sharded}) should collect far better than no EL ({none})"
    );
    assert!(
        sharded < single * 4,
        "sharded EL ({sharded}) should stay near single-EL volume ({single})"
    );
}

#[test]
fn recovery_works_with_sharded_el() {
    let suite = Arc::new(
        CausalSuite::new(Technique::Manetho, true)
            .with_distributed_el(2, SimDuration::from_millis(5))
            .with_checkpoints(SimDuration::from_millis(5)),
    );
    let mut cfg = ClusterConfig::new(4);
    cfg.detect_delay = SimDuration::from_millis(10);
    cfg.event_limit = Some(50_000_000);
    let faults = FaultPlan::kill_at(SimDuration::from_millis(12), 1);
    let report = run_cluster(&cfg, suite, ring(100), &faults);
    assert!(report.completed, "sharded-EL recovery failed");
    assert_eq!(report.rank_stats[1].recovery_total.len(), 1);
}

#[test]
fn el_shard_failure_reshards_and_the_run_completes() {
    // Kill shard 0 mid-run: its ranks must re-shard onto shard 1, the
    // unacked batches must be handed off, and the ring must still
    // finish with its in-program assertions intact.
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true)
            .with_distributed_el(2, SimDuration::from_millis(2))
            .with_checkpoints(SimDuration::from_millis(5)),
    );
    let mut cfg = ClusterConfig::new(4);
    cfg.detect_delay = SimDuration::from_millis(2);
    cfg.event_limit = Some(50_000_000);
    let faults = FaultPlan::kill_el_at(SimDuration::from_millis(4), 0);
    let report = run_cluster(&cfg, suite, ring(150), &faults);
    assert!(report.completed, "run did not survive the EL-shard failure");
    assert_eq!(report.stats.get("el_shard_crashes"), 1);
    assert_eq!(report.stats.get("el_reshards"), 1);
    // Records kept flowing after the re-shard: the survivor logged (and
    // acked) events, including the handed-off unacked batches.
    assert!(report.stats.get("el_records") > 0);
}

#[test]
fn rank_recovery_works_after_an_el_reshard() {
    // Compound fault: shard 0 dies and its ranks re-shard, then rank 1
    // (served by the surviving shard) crashes. Recovery must gather
    // determinants from the post-reshard EL map and complete.
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true)
            .with_distributed_el(2, SimDuration::from_millis(2))
            .with_checkpoints(SimDuration::from_millis(5)),
    );
    let mut cfg = ClusterConfig::new(4);
    cfg.detect_delay = SimDuration::from_millis(2);
    cfg.event_limit = Some(50_000_000);
    let faults = FaultPlan::kill_el_at(SimDuration::from_millis(4), 0)
        .then_kill(SimDuration::from_millis(12), 1);
    let report = run_cluster(&cfg, suite, ring(150), &faults);
    assert!(report.completed, "recovery after re-shard failed");
    assert_eq!(report.stats.get("el_reshards"), 1);
    assert_eq!(report.rank_stats[1].recovery_total.len(), 1);
}

#[test]
fn sharding_relieves_the_lu_event_logger_bottleneck() {
    // LU at 16 ranks is the paper's EL-saturation case; with shards the
    // ack round trip shortens and fewer events ride along.
    let run = |k: usize| {
        let mut suite = CausalSuite::new(Technique::Vcausal, true);
        if k > 1 {
            suite = suite.with_distributed_el(k, SimDuration::from_millis(2));
        }
        let nas = NasConfig::new(NasBench::LU, Class::A, 16).fraction(0.012);
        let mut cfg = ClusterConfig::new(16);
        cfg.event_limit = Some(200_000_000);
        let run = run_workload(&nas, &cfg, Arc::new(suite), &FaultPlan::none());
        assert!(run.report.completed);
        run.report.stats.bytes.piggyback
    };
    let one = run(1);
    let four = run(4);
    // Four shards must not be dramatically worse than one; the win is
    // workload-dependent but the mechanism must at least keep up.
    assert!(
        four <= one * 2,
        "4 shards piggyback {four} vs single {one}: sharding made things much worse"
    );
}
