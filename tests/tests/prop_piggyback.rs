//! Property-based tests of the piggyback wire formats.
//!
//! The compact format (varint + per-run delta + run-length) is the one
//! place in the codebase where a clever encoding could silently corrupt
//! causality information, so it gets the adversarial treatment: full
//! u64-range round trips (the deltas wrap), cross-format semantic
//! agreement on wire-range inputs, length-function exactness, batched
//! encoder equivalence, watermark-vector round trips, and
//! truncation-never-panics over every prefix of a valid encoding.

use proptest::prelude::*;
use vlog_core::{
    compact_len, decode_compact, decode_watermarks, encode_compact, encode_watermarks,
    watermarks_len, Determinant, PbEncoder, PbFormat,
};

const N: usize = 4;

/// Determinants restricted to the flat/factored wire ranges (receiver
/// and sender u16, clock/ssn/cause u32), so all three formats can carry
/// them.
fn wire_range_dets() -> impl Strategy<Value = Vec<Determinant>> {
    prop::collection::vec(
        (0..N, 1u64..100_000, 0..N, 0u64..100_000, 0u64..100_000),
        0..60,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(receiver, clock, sender, ssn, cause)| Determinant {
                receiver,
                clock,
                sender,
                ssn,
                cause,
            })
            .collect()
    })
}

/// Determinants over the full u64 range — only the compact format (and
/// its wrapping deltas) must survive these.
fn extreme_dets() -> impl Strategy<Value = Vec<Determinant>> {
    prop::collection::vec(
        (
            0usize..u16::MAX as usize,
            prop_oneof![
                Just(0u64),
                Just(1),
                Just(u64::MAX - 1),
                Just(u64::MAX),
                any::<u64>()
            ],
            0usize..u16::MAX as usize,
            prop_oneof![Just(0u64), Just(u64::MAX), any::<u64>()],
            prop_oneof![Just(0u64), Just(u64::MAX), any::<u64>()],
        ),
        0..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(receiver, clock, sender, ssn, cause)| Determinant {
                receiver,
                clock,
                sender,
                ssn,
                cause,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Compact round-trips any determinant sequence, in order, at the
    /// exact length `compact_len` predicts — including clock/ssn/cause
    /// values at the u64 extremes, where the deltas wrap.
    #[test]
    fn compact_round_trips_extreme_determinants(dets in extreme_dets()) {
        let buf = encode_compact(&dets);
        prop_assert_eq!(buf.len() as u64, compact_len(&dets));
        prop_assert_eq!(decode_compact(buf).unwrap(), dets);
    }

    /// All three formats agree semantically on wire-range input: each
    /// decodes back to exactly what it encoded, through both the free
    /// functions and the `PbFormat` dispatch, at the advertised
    /// `wire_len`. (Factored requires its canonical receiver-grouped
    /// order; sorting first puts all three on the same sequence.)
    #[test]
    fn formats_agree_on_wire_range_input(dets in wire_range_dets()) {
        let mut dets = dets;
        dets.sort_by_key(|d| (d.receiver, d.clock));
        for format in [PbFormat::Flat, PbFormat::Factored, PbFormat::Compact] {
            let buf = format.encode(&dets).unwrap();
            prop_assert_eq!(
                buf.len() as u64,
                format.wire_len(&dets),
                "wire_len lied for {:?}", format
            );
            prop_assert_eq!(
                format.decode(buf).unwrap(),
                dets.clone(),
                "{:?} did not round-trip", format
            );
        }
    }

    /// The batched `PbEncoder` is byte-identical to the one-shot
    /// encoders for every format, and stays correct when reused across
    /// many encodes (its internal buffer must fully reset).
    #[test]
    fn batched_encoder_matches_one_shot(batches in prop::collection::vec(wire_range_dets(), 1..5)) {
        let mut enc = PbEncoder::new();
        for dets in &batches {
            let mut dets = dets.clone();
            dets.sort_by_key(|d| (d.receiver, d.clock));
            for format in [PbFormat::Flat, PbFormat::Factored, PbFormat::Compact] {
                let batched = enc.encode(format, &dets).unwrap();
                let oneshot = format.encode(&dets).unwrap();
                prop_assert_eq!(
                    batched.as_ref(),
                    oneshot.as_ref(),
                    "batched {:?} encode diverged from one-shot", format
                );
            }
        }
    }

    /// Watermark vectors round-trip at the advertised length for any
    /// contents, including the long mostly-flat vectors the RLE targets
    /// and fully distinct worst cases.
    #[test]
    fn watermarks_round_trip(wm in prop::collection::vec(
        prop_oneof![Just(0u64), 0u64..16, any::<u64>()],
        0..64,
    )) {
        let buf = encode_watermarks(&wm);
        prop_assert_eq!(buf.len() as u64, watermarks_len(&wm));
        prop_assert_eq!(decode_watermarks(buf).unwrap(), wm);
    }

    /// Decoding any strict prefix of a valid compact encoding is an
    /// error, never a panic, and never fabricates the full sequence.
    #[test]
    fn truncated_compact_never_panics(dets in wire_range_dets(), cut in any::<u64>()) {
        let full = encode_compact(&dets);
        if !full.is_empty() {
            let at = (cut % full.len() as u64) as usize; // 0..len: strict prefix
            let prefix = vlog_core::Bytes::copy_from_slice(&full.as_ref()[..at]);
            match decode_compact(prefix) {
                Err(_) => {}
                Ok(decoded) => prop_assert!(
                    decoded.len() < dets.len(),
                    "truncated buffer decoded the full sequence"
                ),
            }
        }
    }

    /// Same for truncated watermark vectors.
    #[test]
    fn truncated_watermarks_never_panic(wm in prop::collection::vec(any::<u64>(), 1..32)) {
        let full = encode_watermarks(&wm);
        for at in 0..full.len() {
            let prefix = vlog_core::Bytes::copy_from_slice(&full.as_ref()[..at]);
            prop_assert!(
                decode_watermarks(prefix).is_err(),
                "strict prefix of a non-empty vector decoded cleanly (cut at {at})"
            );
        }
    }
}

#[test]
fn empty_and_singleton_boundaries() {
    for format in [PbFormat::Flat, PbFormat::Factored, PbFormat::Compact] {
        let empty = format.encode(&[]).unwrap();
        assert_eq!(empty.len() as u64, format.wire_len(&[]));
        assert_eq!(format.decode(empty).unwrap(), Vec::new());

        let one = vec![Determinant {
            receiver: 2,
            clock: 7,
            sender: 1,
            ssn: 3,
            cause: 5,
        }];
        let buf = format.encode(&one).unwrap();
        assert_eq!(buf.len() as u64, format.wire_len(&one));
        assert_eq!(format.decode(buf).unwrap(), one);
    }
}

#[test]
fn compact_wins_on_realistic_clustered_piggyback() {
    // The shape a causal run actually produces: consecutive clocks,
    // runs of equal receivers, small ssn/cause values. Compact must
    // beat both fixed-width formats by at least 2x at 256 determinants
    // (the headline acceptance ratio for this wire format).
    let dets: Vec<Determinant> = (0..256)
        .map(|i| Determinant {
            receiver: (i / 64) % N,
            clock: 100 + i as u64 % 64,
            sender: (i % 3) as usize,
            ssn: i as u64 % 64,
            cause: 90 + i as u64 % 64,
        })
        .collect();
    let compact = PbFormat::Compact.wire_len(&dets);
    let flat = PbFormat::Flat.wire_len(&dets);
    let factored = PbFormat::Factored.wire_len(&dets);
    assert!(
        compact * 2 <= flat && compact * 2 <= factored,
        "compact lost its 2x margin: compact={compact} flat={flat} factored={factored}"
    );
}
