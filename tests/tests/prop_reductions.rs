//! Property-based tests of the piggyback-reduction layer.
//!
//! The central safety property of causal message logging: **whenever a
//! process receives a message, its causality knowledge must afterwards
//! cover the entire unstable causal past of that message** — otherwise a
//! crash of some third process could orphan the receiver. We check it for
//! all three reduction techniques against a brute-force set-based oracle
//! over randomly generated executions, alongside the no-resend-per-channel
//! guarantee and the codec roundtrips.

use std::collections::BTreeSet;

use proptest::prelude::*;
use vlog_core::{
    decode_factored, decode_flat, encode_factored, encode_flat, factored_len, flat_len,
    make_reduction, Determinant, Reduction, Technique,
};

const N: usize = 4;

/// A randomly generated execution: a sequence of (from, to) messages.
fn exec_strategy(max_len: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..N, 0..N - 1), 1..max_len).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(from, to_raw)| {
                // Skew `to` away from `from` to get a valid pair.
                let to = if to_raw >= from { to_raw + 1 } else { to_raw };
                (from, to)
            })
            .collect()
    })
}

/// Brute-force oracle: each process's knowledge as an explicit event set.
struct Oracle {
    knows: Vec<BTreeSet<(usize, u64)>>,
    clocks: Vec<u64>,
}

impl Oracle {
    fn new() -> Oracle {
        Oracle {
            knows: vec![BTreeSet::new(); N],
            clocks: vec![0; N],
        }
    }

    /// Applies one message and returns the new event plus the message's
    /// causal past (the sender's knowledge at emission).
    fn step(&mut self, from: usize, to: usize) -> ((usize, u64), BTreeSet<(usize, u64)>) {
        let past = self.knows[from].clone();
        self.clocks[to] += 1;
        let ev = (to, self.clocks[to]);
        let union: BTreeSet<_> = self.knows[to].union(&past).copied().collect();
        self.knows[to] = union;
        self.knows[to].insert(ev);
        (ev, past)
    }
}

/// Runs an execution through real reductions while checking the safety
/// property against the oracle.
fn run_checked(technique: Technique, msgs: &[(usize, usize)]) {
    let mut reds: Vec<Box<dyn Reduction>> = (0..N).map(|_| make_reduction(technique, N)).collect();
    let mut oracle = Oracle::new();
    let mut clocks = vec![0u64; N];
    let mut ssn = vec![vec![0u64; N]; N];
    for &(from, to) in msgs {
        let (pb, _) = reds[from].build(to, clocks[from]);
        // Safety: after integrating, the receiver must know the whole
        // causal past of the message.
        let (ev, past) = oracle.step(from, to);
        reds[to].integrate(from, clocks[from], &pb);
        clocks[to] += 1;
        assert_eq!(clocks[to], ev.1);
        let det = Determinant {
            receiver: to,
            clock: clocks[to],
            sender: from,
            ssn: ssn[from][to],
            cause: clocks[from],
        };
        ssn[from][to] += 1;
        reds[to].add_local(det);
        let retained: BTreeSet<(usize, u64)> = reds[to]
            .retained()
            .into_iter()
            .map(|d| (d.receiver, d.clock))
            .collect();
        for needed in &past {
            assert!(
                retained.contains(needed),
                "{technique:?}: receiver {to} missing event {needed:?} from the \
                 causal past of a message it received"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn causal_past_is_always_covered(msgs in exec_strategy(60)) {
        for t in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
            run_checked(t, &msgs);
        }
    }

    #[test]
    fn no_event_is_piggybacked_twice_on_one_channel(msgs in exec_strategy(60)) {
        for t in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
            let mut reds: Vec<Box<dyn Reduction>> =
                (0..N).map(|_| make_reduction(t, N)).collect();
            let mut clocks = vec![0u64; N];
            // sent[from][to]: events already piggybacked on that channel.
            let mut sent: Vec<Vec<BTreeSet<(usize, u64)>>> =
                vec![vec![BTreeSet::new(); N]; N];
            for &(from, to) in &msgs {
                let (pb, _) = reds[from].build(to, clocks[from]);
                for d in &pb {
                    let key = (d.receiver, d.clock);
                    prop_assert!(
                        sent[from][to].insert(key),
                        "{:?}: event {:?} resent on channel {}->{}",
                        t, key, from, to
                    );
                }
                reds[to].integrate(from, clocks[from], &pb);
                clocks[to] += 1;
                reds[to].add_local(Determinant {
                    receiver: to,
                    clock: clocks[to],
                    sender: from,
                    ssn: 0,
                    cause: clocks[from],
                });
            }
        }
    }

    #[test]
    fn graph_methods_never_send_receiver_its_own_events(msgs in exec_strategy(60)) {
        for t in [Technique::Manetho, Technique::LogOn] {
            let mut reds: Vec<Box<dyn Reduction>> =
                (0..N).map(|_| make_reduction(t, N)).collect();
            let mut clocks = vec![0u64; N];
            for &(from, to) in &msgs {
                let (pb, _) = reds[from].build(to, clocks[from]);
                prop_assert!(
                    pb.iter().all(|d| d.receiver != to),
                    "{:?}: sent {} its own event", t, to
                );
                reds[to].integrate(from, clocks[from], &pb);
                clocks[to] += 1;
                reds[to].add_local(Determinant {
                    receiver: to,
                    clock: clocks[to],
                    sender: from,
                    ssn: 0,
                    cause: clocks[from],
                });
            }
        }
    }

    #[test]
    fn codec_roundtrips(dets in prop::collection::vec(
        (0..N, 1u64..1000, 0..N, 0u64..1000, 0u64..1000),
        0..50,
    )) {
        let mut dets: Vec<Determinant> = dets
            .into_iter()
            .map(|(receiver, clock, sender, ssn, cause)| Determinant {
                receiver,
                clock,
                sender,
                ssn,
                cause,
            })
            .collect();
        // Flat preserves arbitrary order. All generated fields are in
        // wire range, so encoding cannot fail.
        let flat = encode_flat(&dets).expect("in-range determinants encode");
        prop_assert_eq!(flat.len() as u64, flat_len(&dets));
        prop_assert_eq!(decode_flat(flat).unwrap(), dets.clone());
        // Factored groups runs of equal receiver; canonicalize first.
        dets.sort_by_key(|d| (d.receiver, d.clock));
        let fac = encode_factored(&dets).expect("in-range determinants encode");
        prop_assert_eq!(fac.len() as u64, factored_len(&dets));
        prop_assert_eq!(decode_factored(fac).unwrap(), dets);
    }

    #[test]
    fn stability_never_loses_unstable_events(
        msgs in exec_strategy(40),
        stable_at in prop::collection::vec(0u64..10, N),
    ) {
        for t in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
            let mut red = make_reduction(t, N);
            let mut clocks = vec![0u64; N];
            for &(from, to) in &msgs {
                let _ = from;
                clocks[to] += 1;
                red.add_local(Determinant {
                    receiver: to,
                    clock: clocks[to],
                    sender: from,
                    ssn: 0,
                    cause: 0,
                });
            }
            red.apply_stable(&stable_at);
            for d in red.retained() {
                prop_assert!(
                    d.clock > stable_at[d.receiver],
                    "{:?}: stable event retained", t
                );
            }
            // Everything above the watermark is still there.
            let expect: usize = (0..N)
                .map(|c| clocks[c].saturating_sub(stable_at[c]) as usize)
                .sum();
            prop_assert_eq!(red.retained_count(), expect);
        }
    }
}
