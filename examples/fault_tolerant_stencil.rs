//! A fault-tolerant 1D heat-diffusion stencil with *real* numerics,
//! application-level checkpoints, and an injected crash.
//!
//! Each rank owns a block of a 1D rod and iterates the explicit heat
//! equation, exchanging halo cells with its neighbours every step. Rank 1
//! is killed mid-run; causal message logging restores it from its last
//! checkpoint and replays its receptions. The final temperature profile
//! is compared against a sequential reference computed in plain Rust —
//! bitwise equality demonstrates that recovery is exact, not just
//! approximate.
//!
//! ```sh
//! cargo run --release -p vlog-bench --example fault_tolerant_stencil
//! ```

use std::sync::Arc;

use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{
    app, decode_f64s, encode_f64s, run_cluster, ClusterConfig, FaultPlan, Payload, RecvSelector,
};

const RANKS: usize = 4;
const CELLS_PER_RANK: usize = 16;
const STEPS: u64 = 200;
const ALPHA: f64 = 0.25;

/// Sequential reference: the whole rod in one array.
fn reference() -> Vec<f64> {
    let n = RANKS * CELLS_PER_RANK;
    let mut rod: Vec<f64> = (0..n).map(init_temp).collect();
    for _ in 0..STEPS {
        let prev = rod.clone();
        for i in 0..n {
            let left = if i == 0 { prev[0] } else { prev[i - 1] };
            let right = if i == n - 1 { prev[n - 1] } else { prev[i + 1] };
            rod[i] = prev[i] + ALPHA * (left - 2.0 * prev[i] + right);
        }
    }
    rod
}

fn init_temp(i: usize) -> f64 {
    // A hot spike in the middle of the rod.
    let n = (RANKS * CELLS_PER_RANK) as f64;
    let x = i as f64 / n;
    100.0 * (-((x - 0.5) * 12.0).powi(2)).exp()
}

/// Serialized per-rank state: iteration counter + cell values.
fn pack_state(step: u64, cells: &[f64]) -> Payload {
    let mut bytes = step.to_le_bytes().to_vec();
    bytes.extend_from_slice(&encode_f64s(cells));
    Payload::new(bytes)
}

fn unpack_state(bytes: &[u8]) -> (u64, Vec<f64>) {
    let step = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    let cells = decode_f64s(&bytes::Bytes::copy_from_slice(&bytes[8..]));
    (step, cells)
}

fn main() {
    let gathered: Arc<std::sync::Mutex<Vec<Vec<f64>>>> =
        Arc::new(std::sync::Mutex::new(vec![Vec::new(); RANKS]));
    let sink = gathered.clone();

    let program = app(move |mpi| {
        let sink = sink.clone();
        async move {
            let me = mpi.rank();
            let n = mpi.size();
            // Restore from a checkpoint image or start fresh.
            let (start, mut cells) = match mpi.restored() {
                Some(bytes) => unpack_state(bytes),
                None => (
                    0,
                    (0..CELLS_PER_RANK)
                        .map(|i| init_temp(me * CELLS_PER_RANK + i))
                        .collect(),
                ),
            };
            if start > 0 {
                println!("rank {me}: restored at step {start}");
            }
            for step in start..STEPS {
                // Offer a checkpoint every iteration; the scheduler decides.
                mpi.checkpoint_point(pack_state(step, &cells)).await;
                // Halo exchange (boundary ranks mirror their edge cell).
                let left_halo = if me > 0 {
                    let m = mpi
                        .sendrecv(
                            me - 1,
                            0,
                            Payload::new(encode_f64s(&cells[..1])),
                            RecvSelector::of(me - 1, 1),
                        )
                        .await;
                    decode_f64s(&m.payload.data)[0]
                } else {
                    cells[0]
                };
                let right_halo = if me + 1 < n {
                    let m = mpi
                        .sendrecv(
                            me + 1,
                            1,
                            Payload::new(encode_f64s(&cells[CELLS_PER_RANK - 1..])),
                            RecvSelector::of(me + 1, 0),
                        )
                        .await;
                    decode_f64s(&m.payload.data)[0]
                } else {
                    cells[CELLS_PER_RANK - 1]
                };
                // Explicit Euler step.
                let prev = cells.clone();
                for i in 0..CELLS_PER_RANK {
                    let l = if i == 0 { left_halo } else { prev[i - 1] };
                    let r = if i == CELLS_PER_RANK - 1 {
                        right_halo
                    } else {
                        prev[i + 1]
                    };
                    cells[i] = prev[i] + ALPHA * (l - 2.0 * prev[i] + r);
                }
                mpi.compute(2_000.0 * CELLS_PER_RANK as f64).await;
            }
            sink.lock().unwrap()[me] = cells;
        }
    });

    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(20)),
    );
    let mut cfg = ClusterConfig::new(RANKS);
    cfg.detect_delay = SimDuration::from_millis(10);
    // Kill rank 1 in the thick of it.
    let faults = FaultPlan::kill_at(SimDuration::from_millis(45), 1);
    let report = run_cluster(&cfg, suite, program, &faults);

    assert!(report.completed, "run did not complete");
    let parallel: Vec<f64> = gathered.lock().unwrap().concat();
    let serial = reference();
    let max_err = parallel
        .iter()
        .zip(&serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!();
    println!("virtual time          : {}", report.makespan);
    println!(
        "crashes survived      : {}",
        report.stats.get("node_crashes")
    );
    println!(
        "recoveries            : {:?}",
        report.rank_stats[1].recovery_total
    );
    println!("max |parallel-serial| : {max_err:e}");
    assert_eq!(
        parallel, serial,
        "recovered execution diverged from the sequential reference"
    );
    println!("OK: bitwise-identical to the sequential reference despite the crash.");
}
