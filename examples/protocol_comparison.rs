//! Compare every fault-tolerance protocol on one workload (fault-free
//! overhead, piggyback volume and behaviour under a crash), then sweep
//! the whole workload registry under causal logging to show how the
//! piggyback burden depends on the traffic shape.
//!
//! ```sh
//! cargo run --release -p vlog-bench --example protocol_comparison
//! ```

use std::sync::Arc;

use vlog_core::{CausalSuite, CoordinatedSuite, PessimisticSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{ClusterConfig, FaultPlan, Suite, VdummySuite};
use vlog_workloads::{registry, run_workload, Class, NasBench, NasConfig, RegistryScale};

fn main() {
    let np = 4;
    let nas = NasConfig::new(NasBench::CG, Class::A, np).fraction(0.5);
    let ckpt = SimDuration::from_millis(400);

    let suites: Vec<(Arc<dyn Suite>, bool)> = vec![
        (Arc::new(VdummySuite), false),
        (
            Arc::new(CausalSuite::new(Technique::Vcausal, true).with_checkpoints(ckpt)),
            true,
        ),
        (
            Arc::new(CausalSuite::new(Technique::Manetho, true).with_checkpoints(ckpt)),
            true,
        ),
        (
            Arc::new(CausalSuite::new(Technique::LogOn, true).with_checkpoints(ckpt)),
            true,
        ),
        (
            Arc::new(CausalSuite::new(Technique::Manetho, false).with_checkpoints(ckpt)),
            true,
        ),
        (
            Arc::new(PessimisticSuite::new().with_checkpoints(ckpt)),
            true,
        ),
        (Arc::new(CoordinatedSuite::new(ckpt)), true),
    ];

    println!(
        "{:<32} {:>12} {:>10} {:>12} {:>12}",
        "protocol", "fault-free", "pb %", "with fault", "recoveries"
    );
    for (suite, fault_tolerant) in suites {
        let mut cfg = ClusterConfig::new(np);
        cfg.detect_delay = SimDuration::from_millis(20);
        let clean = run_workload(&nas, &cfg, suite.clone(), &FaultPlan::none());
        assert!(clean.report.completed);
        let (faulted_time, recoveries) = if fault_tolerant {
            let kill = clean.report.makespan.mul_f64(0.5);
            let run = run_workload(&nas, &cfg, suite.clone(), &FaultPlan::kill_at(kill, 0));
            assert!(
                run.report.completed,
                "{}: faulted run failed",
                run.report.suite
            );
            let rec: usize = run
                .report
                .rank_stats
                .iter()
                .map(|s| s.recovery_total.len())
                .sum();
            (format!("{}", run.report.makespan), rec.to_string())
        } else {
            ("n/a (no FT)".into(), "-".into())
        };
        println!(
            "{:<32} {:>12} {:>9.2}% {:>12} {:>12}",
            clean.report.suite,
            format!("{}", clean.report.makespan),
            clean.report.piggyback_percent(),
            faulted_time,
            recoveries,
        );
    }

    // Second view: one protocol, every registered workload — the
    // piggyback burden is a property of the traffic shape.
    println!(
        "\n{:<16} {:<12} {:>12} {:>10} {:>10} {:>12}",
        "family", "workload", "makespan", "pb %", "msgs", "max msg"
    );
    for w in registry(RegistryScale::Smoke) {
        let mut cfg = ClusterConfig::new(w.np());
        cfg.detect_delay = SimDuration::from_millis(20);
        let suite = Arc::new(
            CausalSuite::new(Technique::Vcausal, true)
                .with_checkpoints(SimDuration::from_millis(50)),
        );
        let run = run_workload(w.as_ref(), &cfg, suite, &FaultPlan::none());
        assert!(run.report.completed, "{} did not complete", run.label);
        println!(
            "{:<16} {:<12} {:>12} {:>9.2}% {:>10} {:>11}B",
            run.family,
            run.label,
            format!("{}", run.report.makespan),
            run.piggyback_percent(),
            run.report.stats.messages,
            run.msg_histogram().max_bucket_bytes(),
        );
    }
}
