//! Quickstart: run an MPI-style program under causal message logging with
//! an Event Logger on the simulated cluster.
//!
//! ```sh
//! cargo run --release -p vlog-bench --example quickstart
//! ```

use std::sync::Arc;

use vlog_core::{CausalSuite, Technique};
use vlog_vmpi::{app, run_cluster, ClusterConfig, FaultPlan, RecvSelector};

fn main() {
    // A four-rank program: rank 0 scatters greetings, everyone answers.
    let program = app(|mpi| async move {
        let me = mpi.rank();
        let n = mpi.size();
        if me == 0 {
            for dst in 1..n {
                mpi.send_bytes(dst, 0, format!("hello {dst}").into_bytes())
                    .await;
            }
            for _ in 1..n {
                let reply = mpi.recv(RecvSelector::any()).await;
                println!(
                    "rank 0 <- rank {}: {}",
                    reply.src,
                    String::from_utf8_lossy(&reply.payload.data)
                );
            }
        } else {
            let m = mpi.recv_from(0, 0).await;
            let text = String::from_utf8_lossy(&m.payload.data).to_uppercase();
            mpi.send_bytes(0, 1, text.into_bytes()).await;
        }
        // Everyone meets before exiting.
        mpi.barrier().await;
    });

    // Causal message logging, Manetho piggyback reduction, Event Logger on.
    let suite = Arc::new(CausalSuite::new(Technique::Manetho, true));
    let report = run_cluster(&ClusterConfig::new(4), suite, program, &FaultPlan::none());

    println!();
    println!("suite        : {}", report.suite);
    println!("completed    : {}", report.completed);
    println!("virtual time : {}", report.makespan);
    println!("messages     : {}", report.stats.messages);
    println!(
        "bytes        : {} payload + {} piggyback + {} control",
        report.stats.bytes.payload, report.stats.bytes.piggyback, report.stats.bytes.control
    );
    let events: u64 = report.rank_stats.iter().map(|s| s.pb_events_sent).sum();
    println!("piggybacked  : {events} determinants");
}
