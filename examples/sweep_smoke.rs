//! Sweep-driver smoke test: runs a small grid of independent cluster
//! runs sequentially and on a worker pool, and checks that the two
//! sweeps produce byte-identical reports.
//!
//! ```text
//! cargo run --release --example sweep_smoke -- --threads 2
//! ```
//!
//! CI runs this with `--threads 2` on every push so the parallel path
//! (and the `Send` core underneath it) is exercised continuously.

use std::sync::Arc;

use vlog_bench::{default_threads, run_many};
use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{app, run_cluster, ClusterConfig, FaultPlan, Payload, RecvSelector, RunReport};

fn parse_threads() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            let v = args.next().expect("--threads needs a value");
            return v.parse().expect("unparseable --threads value");
        }
    }
    default_threads()
}

fn run_one(technique: Technique, el: bool, seed: u64, with_fault: bool) -> RunReport {
    let prog = app(|mpi| async move {
        let me = mpi.rank();
        let n = mpi.size();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let start = match mpi.restored() {
            Some(b) => u64::from_le_bytes(b[..8].try_into().unwrap()),
            None => 0,
        };
        for it in start..10 {
            mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                .await;
            let _ = mpi
                .sendrecv(
                    right,
                    0,
                    Payload::new(vec![me as u8, it as u8]),
                    RecvSelector::of(left, 0),
                )
                .await;
        }
    });
    let mut cfg = ClusterConfig::new(3);
    cfg.seed = seed;
    cfg.detect_delay = SimDuration::from_millis(8);
    cfg.event_limit = Some(50_000_000);
    let suite =
        Arc::new(CausalSuite::new(technique, el).with_checkpoints(SimDuration::from_millis(6)));
    let faults = if with_fault {
        FaultPlan::kill_at(SimDuration::from_millis(5), 1)
    } else {
        FaultPlan::none()
    };
    let report = run_cluster(&cfg, suite, prog, &faults);
    assert!(report.completed, "sweep job did not complete");
    report
}

fn fingerprint(r: &RunReport) -> String {
    format!(
        "suite={} makespan={:?} events={} stats={:?} ranks={:?}",
        r.suite, r.makespan, r.events, r.stats, r.rank_stats
    )
}

fn main() {
    let threads = parse_threads();
    let mut jobs = Vec::new();
    for technique in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
        for el in [true, false] {
            for seed in [1u64, 7] {
                for with_fault in [false, true] {
                    jobs.push((technique, el, seed, with_fault));
                }
            }
        }
    }
    let n_jobs = jobs.len();
    let runner =
        |(t, el, seed, f): (Technique, bool, u64, bool)| fingerprint(&run_one(t, el, seed, f));
    let sequential = run_many(jobs.clone(), 1, runner);
    let sharded = run_many(jobs, threads, runner);
    assert_eq!(
        sequential, sharded,
        "sweep on {threads} threads diverged from the sequential sweep"
    );
    println!("sweep_smoke: {n_jobs} runs byte-identical on 1 and {threads} thread(s)");
}
