//! Anatomy of a recovery: kill a rank mid-run and dissect the phases —
//! detection, image fetch, determinant collection (from the Event Logger
//! and from the peers), payload reclaim and replay — with and without an
//! Event Logger. This is Figure 10's mechanism, narrated.
//!
//! ```sh
//! cargo run --release -p vlog-bench --example recovery_anatomy
//! ```

use std::sync::Arc;

use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{ClusterConfig, FaultPlan};
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

fn main() {
    let np = 8;
    println!("workload: NAS LU class A on {np} ranks, kill rank 0 mid-run\n");
    for el in [true, false] {
        let nas = NasConfig::new(NasBench::LU, Class::A, np).fraction(0.03);
        let mut cfg = ClusterConfig::new(np);
        cfg.detect_delay = SimDuration::from_millis(50);
        // Probe the pure application span, then pick the checkpoint
        // period and kill time relative to it.
        let mut probe_nas = nas.clone();
        probe_nas.checkpoints = false;
        let probe = run_workload(
            &probe_nas,
            &cfg,
            Arc::new(CausalSuite::new(Technique::Vcausal, el)),
            &FaultPlan::none(),
        );
        assert!(probe.report.completed);
        let t_app = probe.report.makespan;
        let suite =
            Arc::new(CausalSuite::new(Technique::Vcausal, el).with_checkpoints(t_app.mul_f64(0.3)));
        let run = run_workload(
            &nas,
            &cfg,
            suite,
            &FaultPlan::kill_at(t_app.mul_f64(0.55), 0),
        );
        assert!(run.report.completed);
        let st = &run.report.rank_stats[0];
        let el_label = if el {
            "WITH Event Logger"
        } else {
            "WITHOUT Event Logger"
        };
        println!("=== {el_label} ===");
        println!("  fault-free application span : {t_app}");
        println!("  faulted makespan            : {}", run.report.makespan);
        println!(
            "  determinant collection      : {} (the Figure 10 metric)",
            st.recovery_collect
                .first()
                .map_or("-".into(), |d| format!("{d}"))
        );
        println!(
            "  full recovery (to live)     : {}",
            st.recovery_total
                .first()
                .map_or("-".into(), |d| format!("{d}"))
        );
        println!(
            "  events stable at the EL     : {}",
            if el {
                format!("{}", st.el_acked_events)
            } else {
                "n/a".into()
            }
        );
        println!(
            "  piggyback share of traffic  : {:.2}%",
            run.report.piggyback_percent()
        );
        println!();
    }
    println!(
        "Without the EL, every alive rank ships its whole causality store to\n\
         the victim and piggybacks grow all run long; with it, collection is\n\
         one bulk read plus n-1 (nearly empty) reclaim responses."
    );
}
