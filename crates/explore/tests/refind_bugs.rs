//! Harness self-tests: the explorer must re-find the two historical
//! protocol bugs (fixed in PR 5, re-introduced behind test-only flags)
//! within a CI-sized budget, and its shrunken traces must reproduce the
//! violation deterministically.
//!
//! These are the ground-truth cases for the whole harness: if the
//! explorer cannot find a bug we *know* is there, its "no violations"
//! verdict on the clean protocols means nothing.

use vlog_explore::{
    buggy_marker_storm_scenario, buggy_restart_window_scenario, explore, Budget, Scenario,
    Violation,
};

/// CI-sized budget: small enough to keep the test cheap, large enough
/// that both seeded bugs are found well inside it.
fn ci_budget() -> Budget {
    Budget {
        depth: 4,
        schedules: 12,
        seed: 0x1905_2005,
    }
}

/// Runs the explorer on one buggy scenario and checks the full
/// find → confirm → shrink → replay contract.
fn assert_explorer_finds(scenario: Scenario) -> Violation {
    let name = scenario.name;
    let report = explore(&[scenario], &ci_budget());
    assert_eq!(
        report.violations.len(),
        1,
        "{name}: expected exactly one confirmed violation, got {:?}",
        report
            .violations
            .iter()
            .map(Violation::replay_line)
            .collect::<Vec<_>>()
    );
    let v = report.violations.into_iter().next().unwrap();
    assert_eq!(v.scenario, name);
    assert!(
        v.confirmed,
        "{name}: recorded decision trace failed to confirm the violation"
    );
    v
}

/// The shrunken trace is the deliverable: feeding it back through
/// `run_raw` must reproduce the same violation, run after run.
fn assert_replays_deterministically(scenario: &Scenario, v: &Violation) {
    let first = scenario.run_raw(&v.raw);
    let second = scenario.run_raw(&v.raw);
    assert_eq!(
        first.violation.as_deref(),
        Some(v.reason.as_str()),
        "minimal script did not reproduce the reported violation"
    );
    assert_eq!(
        first.violation, second.violation,
        "minimal script is not deterministic"
    );
}

#[test]
fn explorer_refinds_the_restart_window_stall() {
    // PR 5 bug #1: a replay supply landing inside the victim's restart
    // window was threaded through the not-yet-restored channel
    // watermarks instead of parked, stalling recovery forever. The
    // stall burns the run's event budget on periodic timers, so it
    // surfaces as the event-limit panic (or, with a roomier budget, as
    // an incomplete run).
    let v = assert_explorer_finds(buggy_restart_window_scenario());
    assert!(
        v.reason.contains("stalled")
            || v.reason.contains("lost recovery")
            || v.reason.contains("panic"),
        "restart-window bug should surface as a stall, a lost recovery \
         or an in-sim panic, got: {}",
        v.reason
    );
    assert_replays_deterministically(&buggy_restart_window_scenario(), &v);
}

#[test]
fn explorer_refinds_the_marker_storm() {
    // PR 5 bug #2: finished ranks answering every marker (not each id
    // once) make marker volume grow without bound — caught by the
    // message-ceiling invariant.
    let v = assert_explorer_finds(buggy_marker_storm_scenario());
    assert!(
        v.reason.contains("storm") || v.reason.contains("stalled"),
        "marker-storm bug should trip the message ceiling (or burn the \
         event budget), got: {}",
        v.reason
    );
    assert_replays_deterministically(&buggy_marker_storm_scenario(), &v);
}
