//! # vlog-explore — schedule exploration over the deterministic kernel
//!
//! Model-checking-lite for the MPICH-V reproduction: the deterministic
//! simulation explores one interleaving per seed, so a protocol bug that
//! needs an adversarial message ordering can hide forever behind a lucky
//! schedule. This crate turns the kernel's schedule-policy seam
//! ([`vlog_sim::schedule`]) into a bounded explorer:
//!
//! 1. **Decision scripts.** A schedule is a short list of decisions
//!    `(delivery index, extra delay)`: the `index`-th payload-carrying
//!    delivery the kernel pops is deferred by `delay` (and thereby
//!    reordered behind every same-time peer). Scripts are drawn from a
//!    seeded RNG under an env-tunable budget (`VLOG_EXPLORE_DEPTH`,
//!    `VLOG_EXPLORE_SCHEDULES`, `VLOG_EXPLORE_SEED` — see [`Budget`]),
//!    deduplicated, and each distinct script is one explored schedule.
//! 2. **Scenarios.** Each explored schedule runs a full protocol cluster
//!    ([`Scenario`]): causal, pessimistic and coordinated suites over a
//!    self-validating ring program, under timed faults and faults armed
//!    on enumerated protocol-phase boundaries
//!    ([`vlog_vmpi::ProtoPhase`]).
//! 3. **Invariants.** Every run must complete within its event budget
//!    (stall detection), stay under a per-scenario message ceiling
//!    (storm detection), record the expected recoveries, replay to a
//!    byte-identical report (determinism under perturbation), and not
//!    panic in-simulation — the ring program asserts exact per-channel
//!    payload contents, which catches any FIFO or causal-order
//!    violation, and kernel debug asserts catch clock regressions.
//! 4. **Shrinking.** A violating script is first confirmed by re-running
//!    its *recorded* decision trace (only the decisions that actually
//!    fired), then greedily minimized with the bounded DFS shrinker the
//!    vendored proptest shim exposes
//!    ([`proptest::test_runner::minimize`]). The result is a minimal,
//!    seed-free, replayable schedule: feeding [`Violation::raw`] back
//!    through [`Scenario::run_raw`] reproduces the violation
//!    deterministically.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use proptest::collection::{vec as vec_of, VecStrategy};
use proptest::test_runner::minimize;
use proptest::{Strategy, TestRng};
use rand::SeedableRng;
use vlog_core::{CausalSuite, CoordinatedSuite, PbFormat, PessimisticSuite, Technique};
use vlog_sim::{env_knob, AppliedTrace, Decision, ScriptPolicy, SimDuration};
use vlog_vmpi::{
    app, run_cluster, AppSpec, ClusterConfig, FaultPlan, Payload, ProtoPhase, RecvSelector,
    RunReport, Suite,
};

/// A raw decision as drawn/shrunk: `(delivery index, extra delay in ns)`.
/// Kept as a plain tuple so the vendored proptest tuple/vec strategies
/// generate and shrink it directly.
pub type RawDecision = (u64, u64);

/// Delivery indices are drawn from `0..MAX_INDEX`. Indices beyond the
/// run's delivery count never fire (recorded traces drop them), so a
/// generous bound costs nothing.
pub const MAX_INDEX: u64 = 512;

/// Injected delays are drawn from `0..=MAX_DELTA_NS` (5 ms — the scale
/// of detection delays and checkpoint periods, so a deferral can move a
/// delivery across a protocol phase). Delay 0 still reorders: the
/// re-inserted event takes a fresh sequence number and lands behind
/// every same-time peer.
pub const MAX_DELTA_NS: u64 = 5_000_000;

/// Exploration budget, env-tunable with the shared
/// [`vlog_sim::env_knob`] warn-and-fallback contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum decisions per script (`VLOG_EXPLORE_DEPTH`).
    pub depth: usize,
    /// Total distinct schedules to explore across all scenarios
    /// (`VLOG_EXPLORE_SCHEDULES`).
    pub schedules: u64,
    /// Seed for script generation (`VLOG_EXPLORE_SEED`).
    pub seed: u64,
}

impl Budget {
    /// Reads `VLOG_EXPLORE_DEPTH` / `VLOG_EXPLORE_SCHEDULES` /
    /// `VLOG_EXPLORE_SEED`, defaulting to a CI-sized smoke budget.
    pub fn from_env() -> Budget {
        Budget {
            depth: env_knob::positive_usize_or_else("VLOG_EXPLORE_DEPTH", || 4),
            schedules: env_knob::positive_u64("VLOG_EXPLORE_SCHEDULES", 48),
            seed: env_knob::any_u64("VLOG_EXPLORE_SEED", 0x1905_2005),
        }
    }
}

/// Converts a raw script into kernel [`Decision`]s.
pub fn decisions(raw: &[RawDecision]) -> Vec<Decision> {
    raw.iter()
        .map(|&(index, delta_ns)| Decision {
            index,
            delta: SimDuration::from_nanos(delta_ns),
        })
        .collect()
}

/// The outcome of one scheduled run.
pub struct RunOutcome {
    /// Full-report fingerprint, for replay-convergence comparison.
    /// `None` when the run violated an invariant.
    pub fingerprint: Option<String>,
    /// Why the run violated an invariant, if it did.
    pub violation: Option<String>,
    /// The decisions that actually fired, in firing order — the recorded
    /// trace a confirmation run replays.
    pub applied: Vec<Decision>,
}

/// One protocol configuration the explorer perturbs: a suite, a
/// self-validating program, a fault plan and the invariant thresholds.
pub struct Scenario {
    /// Name for reports.
    pub name: &'static str,
    suite: Arc<dyn Suite>,
    program: AppSpec,
    cfg: ClusterConfig,
    faults: FaultPlan,
    /// Hard ceiling on kernel message count (storm detector).
    pub message_ceiling: u64,
    /// Completed recoveries the run must record (victims of the plan).
    pub min_recoveries: usize,
    /// EL shard re-balances the run must record (EL-failure plans).
    pub min_reshards: u64,
}

/// Deterministic per-(rank, iteration) ring-message content. Every
/// receive asserts these exact bytes, so any FIFO, causal-order or
/// replay inconsistency panics inside the simulation.
fn token(rank: usize, it: u64) -> Vec<u8> {
    vec![
        rank as u8,
        (it & 0xff) as u8,
        (it >> 8) as u8,
        (rank as u64 * 31 + it * 7) as u8,
    ]
}

/// Ring exchange with application-level checkpoints and in-program
/// validation (the same self-checking shape the protocol cluster tests
/// use).
fn ring_program(iters: u64) -> AppSpec {
    skewed_ring_program(iters, SimDuration::ZERO)
}

/// [`ring_program`] plus a completion skew: after the ring, rank 0 alone
/// stays alive for `tail` while every other rank is finished. That skew
/// is what the coordinated marker-storm bug needs — finished ranks
/// answering snapshot markers while the run is still going.
fn skewed_ring_program(iters: u64, tail: SimDuration) -> AppSpec {
    app(move |mpi| async move {
        let n = mpi.size();
        let me = mpi.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let start = match mpi.restored() {
            Some(bytes) => u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            None => 0,
        };
        for it in start..iters {
            mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                .await;
            let m = mpi
                .sendrecv(
                    right,
                    0,
                    Payload::new(token(me, it)),
                    RecvSelector::of(left, 0),
                )
                .await;
            assert_eq!(
                m.payload.data.to_vec(),
                token(left, it),
                "rank {me} iteration {it}: per-channel delivery order violated"
            );
        }
        if me == 0 && tail > SimDuration::ZERO {
            mpi.elapse(tail).await;
        }
    })
}

/// Full-report fingerprint: every observable the harness has. Two runs
/// of the same scenario under the same script must produce identical
/// fingerprints (replay convergence).
pub fn fingerprint(report: &RunReport) -> String {
    format!(
        "suite={} completed={} makespan={:?} events={} stats={:?} ranks={:?}",
        report.suite,
        report.completed,
        report.makespan,
        report.events,
        report.stats,
        report.rank_stats,
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Scenario {
    fn new(
        name: &'static str,
        suite: Arc<dyn Suite>,
        ranks: usize,
        iters: u64,
        faults: FaultPlan,
        message_ceiling: u64,
        min_recoveries: usize,
    ) -> Scenario {
        let mut cfg = ClusterConfig::new(ranks);
        cfg.detect_delay = SimDuration::from_millis(10);
        // Bounded run: a stall empties the calendar and returns early; a
        // storm hits the event cap. Either way `completed` stays false.
        cfg.event_limit = Some(2_000_000);
        // Every explored schedule also checks the causality log: a
        // schedule that completes but leaves a dangling or absent cause
        // is a violation, and a stalled schedule's report names the
        // event the run was waiting for.
        cfg.export_liveness = true;
        Scenario {
            name,
            suite,
            program: ring_program(iters),
            cfg,
            faults,
            message_ceiling,
            min_recoveries,
            min_reshards: 0,
        }
    }

    /// Runs the scenario once under `raw` and checks every per-run
    /// invariant (completion, message ceiling, expected recoveries,
    /// in-simulation panics). Replay convergence spans two runs and is
    /// checked by [`explore`].
    pub fn run_raw(&self, raw: &[RawDecision]) -> RunOutcome {
        let script = decisions(raw);
        // The policy is built inside the run; smuggle its applied-trace
        // handle back out so the recorded decision trace survives the run.
        let applied_slot: Arc<Mutex<Option<AppliedTrace>>> = Arc::new(Mutex::new(None));
        let slot = applied_slot.clone();
        let mut cfg = self.cfg.clone();
        cfg.schedule_policy = Some(Arc::new(move || {
            let policy = ScriptPolicy::new(script.clone());
            *slot.lock().unwrap() = Some(policy.applied());
            Box::new(policy)
        }));
        let suite = self.suite.clone();
        let program = self.program.clone();
        let faults = self.faults.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cluster(&cfg, suite, program, &faults)
        }));
        let applied: Vec<Decision> = applied_slot
            .lock()
            .unwrap()
            .as_ref()
            .map(|t| t.lock().unwrap().clone())
            .unwrap_or_default();
        let report = match result {
            Err(p) => {
                return RunOutcome {
                    fingerprint: None,
                    violation: Some(format!("in-simulation panic: {}", panic_message(&*p))),
                    applied,
                }
            }
            Ok(report) => report,
        };
        let liveness = report.liveness.as_ref();
        let violation = if report.stats.messages > self.message_ceiling {
            Some(format!(
                "message storm: {} messages exceeds ceiling {}",
                report.stats.messages, self.message_ceiling
            ))
        } else if !report.completed {
            // A stall names its dangling cause: the causality log knows
            // which declared edge never fired.
            let why = liveness
                .map(|l| format!("; liveness: {}", l.summary()))
                .unwrap_or_default();
            Some(format!(
                "stalled: run did not complete (events={}, makespan={:?}){why}",
                report.events, report.makespan
            ))
        } else if liveness.is_some_and(|l| !l.is_clean()) {
            // `no_dangling_causes`: even a run that completed must leave
            // no declared cause unfired, no consumed cause unproduced
            // and no once-only event duplicated.
            Some(format!(
                "dangling causes: {}",
                liveness.map(|l| l.summary()).unwrap_or_default()
            ))
        } else {
            let recoveries: usize = report
                .rank_stats
                .iter()
                .map(|s| s.recovery_total.len())
                .sum();
            if recoveries < self.min_recoveries {
                Some(format!(
                    "lost recovery: {recoveries} completed recoveries, expected >= {}",
                    self.min_recoveries
                ))
            } else if report.el_reshards() < self.min_reshards {
                Some(format!(
                    "lost re-shard: {} EL re-balances recorded, expected >= {}",
                    report.el_reshards(),
                    self.min_reshards
                ))
            } else {
                None
            }
        };
        if violation.is_some() {
            return RunOutcome {
                fingerprint: None,
                violation,
                applied,
            };
        }
        RunOutcome {
            fingerprint: Some(fingerprint(&report)),
            violation: None,
            applied,
        }
    }
}

/// The scenario set the smoke exploration covers: the three protocol
/// families, each under perturbation with a timed mid-run crash, plus
/// phase-armed faults at every enumerated protocol boundary.
pub fn default_scenarios() -> Vec<Scenario> {
    let kill0 = || FaultPlan::kill_at(SimDuration::from_millis(8), 0);
    vec![
        Scenario::new(
            "causal+el/crash",
            Arc::new(
                CausalSuite::new(Technique::Vcausal, true)
                    .with_checkpoints(SimDuration::from_millis(4)),
            ),
            3,
            80,
            kill0(),
            60_000,
            1,
        ),
        Scenario::new(
            "manetho-noel/crash",
            Arc::new(
                CausalSuite::new(Technique::Manetho, false)
                    .with_checkpoints(SimDuration::from_millis(4)),
            ),
            3,
            80,
            kill0(),
            60_000,
            1,
        ),
        Scenario::new(
            "pessimistic/crash",
            Arc::new(PessimisticSuite::new().with_checkpoints(SimDuration::from_millis(4))),
            3,
            80,
            kill0(),
            60_000,
            1,
        ),
        Scenario::new(
            "coordinated/crash",
            Arc::new(CoordinatedSuite::new(SimDuration::from_millis(5))),
            3,
            120,
            FaultPlan::kill_at(SimDuration::from_millis(12), 1),
            60_000,
            0,
        ),
        Scenario::new(
            "causal+el/phase-det-shipped",
            Arc::new(
                CausalSuite::new(Technique::Vcausal, true)
                    .with_checkpoints(SimDuration::from_millis(4)),
            ),
            3,
            80,
            FaultPlan::kill_at_phase(ProtoPhase::DeterminantShipped, 1, 5),
            60_000,
            1,
        ),
        Scenario::new(
            "causal+el/phase-ack-received",
            Arc::new(
                CausalSuite::new(Technique::Vcausal, true)
                    .with_checkpoints(SimDuration::from_millis(4)),
            ),
            3,
            80,
            FaultPlan::kill_at_phase(ProtoPhase::AckReceived, 0, 3),
            60_000,
            1,
        ),
        Scenario::new(
            "pessimistic/phase-det-shipped",
            Arc::new(PessimisticSuite::new().with_checkpoints(SimDuration::from_millis(4))),
            3,
            80,
            FaultPlan::kill_at_phase(ProtoPhase::DeterminantShipped, 1, 5),
            60_000,
            1,
        ),
        Scenario::new(
            "coordinated/phase-marker-sent",
            Arc::new(CoordinatedSuite::new(SimDuration::from_millis(5))),
            3,
            120,
            FaultPlan::kill_at_phase(ProtoPhase::MarkerSent, 1, 1),
            60_000,
            0,
        ),
        Scenario::new(
            "causal+el/phase-image-fetched",
            // Double fault: a timed crash, then a second crash of the same
            // rank the instant its restart completes (the ImageFetched
            // boundary) — the recovery-of-a-recovery path.
            Arc::new(
                CausalSuite::new(Technique::Vcausal, true)
                    .with_checkpoints(SimDuration::from_millis(4)),
            ),
            3,
            80,
            FaultPlan::kill_at(SimDuration::from_millis(8), 0).then_kill_at_phase(
                ProtoPhase::ImageFetched,
                0,
                1,
            ),
            60_000,
            1,
        ),
        {
            // Distributed EL losing a shard mid-run: shard 0 dies, its
            // ranks re-shard onto shard 1, unacked batches are handed
            // off — the run must still complete with no rank recovery.
            let mut s = Scenario::new(
                "causal+el2/el-failure",
                Arc::new(
                    CausalSuite::new(Technique::Vcausal, true)
                        .with_checkpoints(SimDuration::from_millis(4))
                        .with_distributed_el(2, SimDuration::from_millis(2)),
                ),
                3,
                80,
                // Early kill: the re-shard lands at 2ms + the 10ms
                // detection delay, well inside the ~15ms run.
                FaultPlan::kill_el_at(SimDuration::from_millis(2), 0),
                60_000,
                0,
            );
            s.min_reshards = 1;
            s
        },
        {
            // EL failure compounded by a rank crash after the re-shard:
            // rank 1 recovers against the survivor shard (its own shard,
            // 1, is the one that lived).
            let mut s = Scenario::new(
                "causal+el2/el-failure+crash",
                Arc::new(
                    CausalSuite::new(Technique::Vcausal, true)
                        .with_checkpoints(SimDuration::from_millis(4))
                        .with_distributed_el(2, SimDuration::from_millis(2)),
                ),
                3,
                80,
                FaultPlan::kill_el_at(SimDuration::from_millis(2), 0)
                    .then_kill(SimDuration::from_millis(14), 1),
                60_000,
                1,
            );
            s.min_reshards = 1;
            s
        },
        Scenario::new(
            // Compact wire format + send-side stability pruning under a
            // mid-run crash: the victim's replay must converge to the
            // same bytes the flat format would have produced — the ring
            // program's exact-payload asserts and the explorer's replay
            // convergence check both fail if pruning ever drops a
            // determinant recovery still needed.
            "causal+el/compact+prune",
            Arc::new(
                CausalSuite::new(Technique::Vcausal, true)
                    .with_checkpoints(SimDuration::from_millis(4))
                    .with_pb_format(PbFormat::Compact),
            ),
            3,
            80,
            kill0(),
            60_000,
            1,
        ),
    ]
}

/// Scenario with the PR-5 restart-window stall re-introduced behind
/// [`vlog_vmpi::ClusterConfig::buggy_restart_window`]. The bug only
/// bites when a peer's message lands inside the victim's restart window,
/// which is exactly the kind of timing the explorer's deferral decisions
/// widen — the harness self-test asserts it is found within a CI budget.
pub fn buggy_restart_window_scenario() -> Scenario {
    let mut s = Scenario::new(
        "buggy/restart-window",
        Arc::new(
            CausalSuite::new(Technique::Vcausal, true)
                .with_checkpoints(SimDuration::from_millis(4)),
        ),
        3,
        80,
        // Double fault: the second crash lands the instant the first
        // restart completes, so the first recovery's replay supplies are
        // still in flight from the peers and arrive during the *second*
        // restart window. Parking (the fix) re-feeds them after the
        // image is restored; the buggy flag threads them straight
        // through the not-yet-restored watermarks and recovery stalls
        // forever.
        FaultPlan::kill_at_phase(ProtoPhase::DeterminantShipped, 1, 5).then_kill_at_phase(
            ProtoPhase::ImageFetched,
            1,
            1,
        ),
        60_000,
        1,
    );
    // Fast detection keeps the replacement's boot inside the replay
    // supplies' flight time (the clean run still completes — only the
    // buggy flag differs from a passing configuration).
    s.cfg.detect_delay = SimDuration::from_micros(30);
    // A stall burns the whole event budget on periodic timers before it
    // is caught; a small cap keeps every violating probe (and every
    // shrink probe) cheap. Clean runs finish in ~2.5k events.
    s.cfg.event_limit = Some(100_000);
    s.cfg.buggy_restart_window = true;
    s
}

/// Scenario with the PR-5 coordinated marker storm re-introduced behind
/// [`vlog_core::CoordinatedSuite::with_storm_bug`]: finished ranks
/// answer every marker instead of each id once, so marker volume grows
/// without bound and trips the message ceiling.
pub fn buggy_marker_storm_scenario() -> Scenario {
    let mut s = Scenario::new(
        "buggy/marker-storm",
        Arc::new(CoordinatedSuite::new(SimDuration::from_millis(5)).with_storm_bug()),
        3,
        40,
        FaultPlan::none(),
        // The clean run sends ~200 messages; the storm sends thousands.
        2_000,
        0,
    );
    // The storm needs finished ranks answering markers while the run is
    // still going: rank 0 lingers after the ring, so the two finished
    // ranks spend many snapshot periods bouncing marker volleys at each
    // other — unbounded under the bug, once per snapshot id when fixed.
    s.program = skewed_ring_program(40, SimDuration::from_millis(40));
    // Storms burn the whole event budget before stopping; keep the cap
    // small so every storming probe (including shrink probes) is cheap.
    s.cfg.event_limit = Some(400_000);
    s
}

/// A violating schedule: confirmed against its recorded decision trace,
/// then shrunk to a minimal replayable script.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Scenario that violated.
    pub scenario: String,
    /// Invariant that failed, as reported by the *minimal* script's run.
    pub reason: String,
    /// Minimal raw script — feed back through [`Scenario::run_raw`] to
    /// reproduce deterministically.
    pub raw: Vec<RawDecision>,
    /// Minimal script as kernel decisions.
    pub script: Vec<Decision>,
    /// Exploration seed that produced the original failing script.
    pub seed: u64,
    /// Accepted shrink steps from the original script to the minimum.
    pub shrink_steps: usize,
    /// Whether re-running the recorded decision trace reproduced the
    /// violation before shrinking (it always should — the kernel is
    /// deterministic).
    pub confirmed: bool,
}

impl Violation {
    /// One-line replay recipe.
    pub fn replay_line(&self) -> String {
        format!(
            "violation[{}]: {} | minimal script {:?} (seed {:#x}, {} shrink steps, confirmed={})",
            self.scenario, self.reason, self.raw, self.seed, self.shrink_steps, self.confirmed
        )
    }
}

/// What an exploration did and found.
#[derive(Debug)]
pub struct ExploreReport {
    /// Scenarios explored.
    pub scenarios: usize,
    /// Distinct schedules (deduplicated scripts) whose invariants were
    /// checked, summed over scenarios.
    pub distinct_schedules: u64,
    /// Total simulation runs (each schedule runs twice for replay
    /// convergence; confirmation and shrinking add more).
    pub runs: u64,
    /// Confirmed, shrunk violations (empty on healthy protocols).
    pub violations: Vec<Violation>,
}

fn script_strategy(depth: usize) -> VecStrategy<(std::ops::Range<u64>, std::ops::Range<u64>)> {
    vec_of((0..MAX_INDEX, 0..MAX_DELTA_NS + 1), 0..=depth)
}

/// FNV-1a over the scenario name, so each scenario draws from its own
/// deterministic stream under one exploration seed.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Explores `budget.schedules` distinct schedules spread over
/// `scenarios`, checking every invariant on each. The first violation in
/// a scenario is confirmed against its recorded decision trace, shrunk,
/// and reported; exploration then moves to the next scenario.
pub fn explore(scenarios: &[Scenario], budget: &Budget) -> ExploreReport {
    let mut report = ExploreReport {
        scenarios: scenarios.len(),
        distinct_schedules: 0,
        runs: 0,
        violations: Vec::new(),
    };
    if scenarios.is_empty() || budget.schedules == 0 {
        return report;
    }
    // Spread the budget (remainder to the leading scenarios, so the
    // requested total is explored exactly); every scenario gets at least
    // its baseline.
    let n = scenarios.len() as u64;
    let (base, extra) = (budget.schedules / n, budget.schedules % n);
    for (i, scenario) in scenarios.iter().enumerate() {
        let per = (base + u64::from((i as u64) < extra)).max(1);
        let strat = script_strategy(budget.depth);
        let mut rng = TestRng::seed_from_u64(budget.seed ^ name_hash(scenario.name));
        let mut seen: BTreeSet<Vec<RawDecision>> = BTreeSet::new();
        let mut explored = 0u64;
        // Schedule 0 is always the unperturbed baseline.
        seen.insert(Vec::new());
        let mut draws = 0u64;
        let mut next = Some(Vec::new());
        while explored < per {
            let raw = match next.take() {
                Some(raw) => raw,
                None => {
                    // Cap redraws so a tiny decision space cannot loop.
                    if draws >= per.saturating_mul(8) {
                        break;
                    }
                    draws += 1;
                    let raw = strat.new_value(&mut rng);
                    if !seen.insert(raw.clone()) {
                        continue;
                    }
                    raw
                }
            };
            explored += 1;
            let first = scenario.run_raw(&raw);
            report.runs += 1;
            let outcome = match first.violation {
                Some(_) => first,
                None => {
                    // Replay convergence: the same script must reproduce
                    // the same report byte for byte.
                    let second = scenario.run_raw(&raw);
                    report.runs += 1;
                    match (first.fingerprint, second.fingerprint) {
                        (Some(a), Some(b)) if a != b => RunOutcome {
                            fingerprint: None,
                            violation: Some(format!(
                                "replay diverged: {}",
                                vlog_sim::diff::first_divergence(&a, &b)
                                    .unwrap_or_else(|| "(no divergence found)".into())
                            )),
                            applied: second.applied,
                        },
                        _ => {
                            report.distinct_schedules += 1;
                            continue;
                        }
                    }
                }
            };
            report.distinct_schedules += 1;
            // Violation: confirm by re-running the *recorded* trace (the
            // decisions that actually fired), then shrink.
            let recorded: Vec<RawDecision> = outcome
                .applied
                .iter()
                .map(|d| (d.index, d.delta.as_nanos()))
                .collect();
            let confirm = scenario.run_raw(&recorded);
            report.runs += 1;
            let (confirmed, start) = match confirm.violation {
                Some(_) => (true, recorded),
                // Should be unreachable (deterministic kernel): fall back
                // to shrinking the full script.
                None => (false, raw),
            };
            let (minimal, steps, probes) = minimize(&strat, start, &mut |cand| {
                if let Some(reason) = scenario.run_raw(&cand).violation {
                    panic!("{reason}");
                }
            });
            report.runs += probes as u64 + 1;
            let reason = scenario
                .run_raw(&minimal)
                .violation
                .unwrap_or_else(|| "violation vanished after shrinking".into());
            report.violations.push(Violation {
                scenario: scenario.name.to_string(),
                reason,
                script: decisions(&minimal),
                raw: minimal,
                seed: budget.seed,
                shrink_steps: steps,
                confirmed,
            });
            break; // one confirmed violation per scenario is enough
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_come_from_env_knobs_with_defaults() {
        // The knobs are unset in the test environment: the defaults.
        let b = Budget::from_env();
        assert!(b.depth >= 1);
        assert!(b.schedules >= 1);
    }

    #[test]
    fn decisions_convert_raw_tuples() {
        let d = decisions(&[(3, 1_000)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].index, 3);
        assert_eq!(d[0].delta, SimDuration::from_nanos(1_000));
    }

    #[test]
    fn empty_exploration_is_a_no_op() {
        let report = explore(
            &[],
            &Budget {
                depth: 4,
                schedules: 10,
                seed: 1,
            },
        );
        assert_eq!(report.distinct_schedules, 0);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn baseline_schedule_of_a_clean_scenario_passes() {
        let scenarios = default_scenarios();
        let scenario = &scenarios[0];
        let outcome = scenario.run_raw(&[]);
        assert!(
            outcome.violation.is_none(),
            "baseline violated: {:?}",
            outcome.violation
        );
        assert!(outcome.applied.is_empty(), "empty script fired decisions");
    }

    #[test]
    fn compact_prune_scenario_recovers_on_the_baseline_schedule() {
        let scenarios = default_scenarios();
        let scenario = scenarios
            .iter()
            .find(|s| s.name == "causal+el/compact+prune")
            .expect("compact+prune scenario is registered");
        // min_recoveries = 1 makes run_raw itself assert the victim
        // recovered; a clean outcome means replay converged through the
        // compact codec and pruning path.
        let outcome = scenario.run_raw(&[]);
        assert!(
            outcome.violation.is_none(),
            "compact+prune baseline violated: {:?}",
            outcome.violation
        );
    }
}
