//! Seeded smoke exploration over the default scenario set.
//!
//! Explores `VLOG_EXPLORE_SCHEDULES` distinct perturbation schedules
//! (depth `VLOG_EXPLORE_DEPTH`, seed `VLOG_EXPLORE_SEED`) spread across
//! the clean protocol scenarios and asserts zero invariant violations.
//! Exits 1 — printing each violation's minimal replayable schedule —
//! otherwise. `scripts/verify.sh` runs this as its exploration gate.

use vlog_explore::{default_scenarios, explore, Budget};

fn main() {
    let budget = Budget::from_env();
    let scenarios = default_scenarios();
    eprintln!(
        "explore_smoke: {} scenarios, budget depth={} schedules={} seed={:#x}",
        scenarios.len(),
        budget.depth,
        budget.schedules,
        budget.seed
    );
    let report = explore(&scenarios, &budget);
    eprintln!(
        "explore_smoke: {} distinct schedules checked over {} scenarios ({} runs)",
        report.distinct_schedules, report.scenarios, report.runs
    );
    if report.violations.is_empty() {
        eprintln!("explore_smoke: no invariant violations");
        return;
    }
    for v in &report.violations {
        eprintln!("explore_smoke: {}", v.replay_line());
    }
    std::process::exit(1);
}
