//! Seeded smoke exploration over the default scenario set.
//!
//! Explores `VLOG_EXPLORE_SCHEDULES` distinct perturbation schedules
//! (depth `VLOG_EXPLORE_DEPTH`, seed `VLOG_EXPLORE_SEED`) spread across
//! the clean protocol scenarios and asserts zero invariant violations.
//! Exits 1 — printing each violation's minimal replayable schedule —
//! otherwise. `scripts/verify.sh` runs this as its exploration gate.
//!
//! Runs with the kernel's self-profiling counters on and reports the
//! exploration throughput (schedules/sec, events/sec) derived from the
//! dispatch-phase counters — the number the raw-speed work moves.

use vlog_explore::{default_scenarios, explore, Budget};
use vlog_sim::profiler;

fn main() {
    let budget = Budget::from_env();
    let scenarios = default_scenarios();
    eprintln!(
        "explore_smoke: {} scenarios, budget depth={} schedules={} seed={:#x}",
        scenarios.len(),
        budget.depth,
        budget.schedules,
        budget.seed
    );
    // Programmatic enable (not the VLOG_PROFILE env knob, which would
    // also print a per-run stderr block for every explored schedule).
    profiler::set_enabled(true);
    let report = explore(&scenarios, &budget);
    let dispatch = profiler::take()
        .into_iter()
        .find(|r| r.phase == profiler::Phase::Dispatch);
    eprintln!(
        "explore_smoke: {} distinct schedules checked over {} scenarios ({} runs)",
        report.distinct_schedules, report.scenarios, report.runs
    );
    if let Some(d) = dispatch.filter(|d| d.nanos > 0) {
        let secs = d.nanos as f64 / 1e9;
        eprintln!(
            "explore_smoke: throughput {:.0} schedules/sec, {:.0} events/sec \
             ({} events dispatched in {:.3}s)",
            report.distinct_schedules as f64 / secs,
            d.calls as f64 / secs,
            d.calls,
            secs
        );
    }
    if report.violations.is_empty() {
        eprintln!("explore_smoke: no invariant violations");
        return;
    }
    for v in &report.violations {
        eprintln!("explore_smoke: {}", v.replay_line());
    }
    std::process::exit(1);
}
