//! The simulation kernel: virtual clock, event queue, actors, tasks,
//! CPU resources and fault injection.
//!
//! # Determinism
//!
//! Events are ordered by `(time, sequence)`; the sequence is a monotonic
//! counter, so simultaneous events fire in scheduling order. Tasks are
//! polled from a FIFO ready queue. All randomness flows from one seeded
//! [`SmallRng`]. Two runs with the same seed and the same program produce
//! bit-identical statistics.
//!
//! # Actors and generations
//!
//! Services (communication daemons, the Event Logger, the checkpoint
//! server, the dispatcher) are [`Actor`]s registered on a node. Crashing a
//! node drops its actors and tasks; restarting installs a fresh actor in
//! the *same slot* with a bumped generation. Deliveries and timers capture
//! the generation of their target at creation: anything addressed to a dead
//! incarnation is silently dropped, which models TCP connections dying with
//! the process.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::exec::{noop_waker, ExecHandle, ExecShared, SharedExec, TaskId, TaskSlot};
use crate::net::{EthernetParams, Network, WireSize};
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};

/// Index of a simulated machine.
pub type NodeId = usize;
/// Index of a registered actor slot (stable across restarts).
pub type ActorId = usize;

/// A message arriving at an actor.
pub struct Delivery {
    /// Node that emitted the message.
    pub src_node: NodeId,
    /// Wire-size accounting used for statistics.
    pub size: WireSize,
    /// The message body; actors downcast to their protocol type.
    pub body: Box<dyn Any + Send>,
}

/// An entry in the simulation calendar.
pub enum Event {
    /// Arbitrary kernel-context work (fault injection, op completion, ...).
    Closure(Box<dyn FnOnce(&mut Sim) + Send>),
    /// Wakes an actor without carrying data (pipe readable, batch flush...).
    Poke { actor: ActorId, token: u64 },
    /// A timer set through [`Sim::set_timer`].
    Timer {
        actor: ActorId,
        gen: u32,
        token: u64,
    },
    /// A network (or loopback) message delivery.
    Deliver {
        actor: ActorId,
        gen: u32,
        msg: Delivery,
    },
}

impl Event {
    /// Convenience constructor for closure events.
    pub fn closure(f: impl FnOnce(&mut Sim) + Send + 'static) -> Event {
        Event::Closure(Box::new(f))
    }
}

/// Message/timer-driven service running on a node.
///
/// Handlers receive `&mut Sim` so they can schedule events, send messages
/// and charge CPU time. The kernel guarantees a handler is never re-entered.
pub trait Actor: Send + 'static {
    /// A message addressed to this actor arrived.
    fn on_deliver(&mut self, sim: &mut Sim, me: ActorId, msg: Delivery);
    /// A poke (data-less wake-up) arrived.
    fn on_poke(&mut self, sim: &mut Sim, me: ActorId, token: u64) {
        let _ = (sim, me, token);
    }
    /// A timer set by this actor fired.
    fn on_timer(&mut self, sim: &mut Sim, me: ActorId, token: u64) {
        let _ = (sim, me, token);
    }
    /// The hosting node is crashing; the actor is dropped right after.
    /// Most actors need no cleanup — volatile state dies with them.
    fn on_crash(&mut self, sim: &mut Sim, me: ActorId) {
        let _ = (sim, me);
    }
}

struct ActorSlot {
    actor: Option<Box<dyn Actor>>,
    node: NodeId,
    gen: u32,
    alive: bool,
}

struct QEntry {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Network model parameters.
    pub net: EthernetParams,
    /// Optional hard cap on dispatched events (runaway protection).
    pub event_limit: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            net: EthernetParams::default(),
            event_limit: None,
        }
    }
}

/// The simulation world. See module docs.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<QEntry>>,
    actors: Vec<ActorSlot>,
    tasks: Vec<TaskSlot>,
    exec: SharedExec,
    net: Network,
    /// Per-node sequential service-CPU resource (daemon work, servers).
    cpu_free: Vec<SimTime>,
    nodes: usize,
    stats: Stats,
    rng: SmallRng,
    stop: bool,
    events_processed: u64,
    event_limit: Option<u64>,
}

impl Sim {
    pub fn new(seed: u64) -> Self {
        Self::with_config(SimConfig {
            seed,
            ..SimConfig::default()
        })
    }

    pub fn with_config(cfg: SimConfig) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            actors: Vec::new(),
            tasks: Vec::new(),
            exec: ExecShared::new(),
            net: Network::new(cfg.net),
            cpu_free: Vec::new(),
            nodes: 0,
            stats: Stats::new(),
            rng: SmallRng::seed_from_u64(cfg.seed),
            stop: false,
            events_processed: 0,
            event_limit: cfg.event_limit,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    pub fn net(&self) -> &Network {
        &self.net
    }

    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Handle usable from task context (staging, op cells, sleeps).
    pub fn exec(&self) -> ExecHandle {
        ExecHandle {
            shared: self.exec.clone(),
        }
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// Registers a new machine and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.nodes;
        self.nodes += 1;
        self.cpu_free.push(SimTime::ZERO);
        self.net.ensure_node(id);
        id
    }

    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Registers an actor on `node`; the returned id is stable across
    /// crash/restart cycles of that slot.
    pub fn add_actor(&mut self, node: NodeId, actor: Box<dyn Actor>) -> ActorId {
        assert!(node < self.nodes, "unknown node");
        let id = self.actors.len();
        self.actors.push(ActorSlot {
            actor: Some(actor),
            node,
            gen: 0,
            alive: true,
        });
        id
    }

    /// Installs a fresh actor in an existing slot (restart). Bumps the
    /// generation so stale deliveries and timers are dropped.
    pub fn replace_actor(&mut self, id: ActorId, actor: Box<dyn Actor>) {
        let slot = &mut self.actors[id];
        slot.gen += 1;
        slot.actor = Some(actor);
        slot.alive = true;
    }

    /// Current generation of an actor slot.
    pub fn actor_gen(&self, id: ActorId) -> u32 {
        self.actors[id].gen
    }

    pub fn actor_alive(&self, id: ActorId) -> bool {
        self.actors[id].alive
    }

    pub fn actor_node(&self, id: ActorId) -> NodeId {
        self.actors[id].node
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Schedules an event `delay` from now.
    pub fn schedule(&mut self, delay: SimDuration, event: Event) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules an event at an absolute instant (must not be in the past).
    pub fn schedule_at(&mut self, time: SimTime, event: Event) {
        debug_assert!(time >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QEntry { time, seq, event }));
    }

    /// Schedules kernel-context work `delay` from now.
    pub fn after(&mut self, delay: SimDuration, f: impl FnOnce(&mut Sim) + Send + 'static) {
        self.schedule(delay, Event::closure(f));
    }

    /// Sets a timer for an actor; dropped if the actor is restarted first.
    pub fn set_timer(&mut self, actor: ActorId, delay: SimDuration, token: u64) {
        let gen = self.actors[actor].gen;
        self.schedule(delay, Event::Timer { actor, gen, token });
    }

    /// Requests the run loop to exit at the next dispatch boundary.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    // ------------------------------------------------------------------
    // Communication
    // ------------------------------------------------------------------

    /// Sends a message across the network. Consumes NIC/link time on both
    /// ends according to the Ethernet model; the delivery fires when the
    /// last byte reaches the destination. Panics on same-node sends — use
    /// [`Sim::local_send`] for those.
    pub fn net_send(
        &mut self,
        src_node: NodeId,
        dst_actor: ActorId,
        size: WireSize,
        body: Box<dyn Any + Send>,
    ) {
        let slot = &self.actors[dst_actor];
        let dst_node = slot.node;
        let gen = slot.gen;
        let arrival = self.net.send(self.now, src_node, dst_node, size.total());
        self.stats.record_message(size);
        self.schedule_at(
            arrival,
            Event::Deliver {
                actor: dst_actor,
                gen,
                msg: Delivery {
                    src_node,
                    size,
                    body,
                },
            },
        );
    }

    /// Delivers a message to an actor on the *same* node through loopback:
    /// no NIC time, fixed small delay.
    pub fn local_send(
        &mut self,
        src_node: NodeId,
        dst_actor: ActorId,
        size: WireSize,
        body: Box<dyn Any + Send>,
        delay: SimDuration,
    ) {
        let gen = self.actors[dst_actor].gen;
        self.schedule(
            delay,
            Event::Deliver {
                actor: dst_actor,
                gen,
                msg: Delivery {
                    src_node,
                    size,
                    body,
                },
            },
        );
    }

    /// Serializes `work` on the node's service CPU (single-threaded daemon
    /// model): the work starts when the CPU is free and the returned
    /// instant is its completion time.
    pub fn charge_cpu(&mut self, node: NodeId, work: SimDuration) -> SimTime {
        let start = self.cpu_free[node].max(self.now);
        let end = start + work;
        self.cpu_free[node] = end;
        end
    }

    // ------------------------------------------------------------------
    // Tasks
    // ------------------------------------------------------------------

    /// Spawns a task bound to a node (killed when the node crashes).
    pub fn spawn(
        &mut self,
        node: Option<NodeId>,
        fut: impl std::future::Future<Output = ()> + Send + 'static,
    ) -> TaskId {
        self.spawn_inner(node, Box::pin(fut), None)
    }

    /// Spawns a task and registers a callback to run on normal completion.
    pub fn spawn_with_exit(
        &mut self,
        node: Option<NodeId>,
        fut: impl std::future::Future<Output = ()> + Send + 'static,
        on_exit: impl FnOnce(&mut Sim) + Send + 'static,
    ) -> TaskId {
        self.spawn_inner(node, Box::pin(fut), Some(Box::new(on_exit)))
    }

    /// Spawns a task bound to no node (test harness helpers).
    pub fn spawn_detached(
        &mut self,
        fut: impl std::future::Future<Output = ()> + Send + 'static,
    ) -> TaskId {
        self.spawn(None, fut)
    }

    fn spawn_inner(
        &mut self,
        node: Option<NodeId>,
        fut: std::pin::Pin<Box<dyn std::future::Future<Output = ()> + Send>>,
        on_exit: Option<Box<dyn FnOnce(&mut Sim) + Send>>,
    ) -> TaskId {
        // Reuse a dead slot if possible to keep indices small.
        let idx = self
            .tasks
            .iter()
            .position(|t| t.fut.is_none() && t.on_exit.is_none());
        let (idx, gen) = match idx {
            Some(i) => {
                let slot = &mut self.tasks[i];
                slot.gen += 1;
                slot.fut = Some(fut);
                slot.node = node;
                slot.on_exit = on_exit;
                (i, slot.gen)
            }
            None => {
                self.tasks.push(TaskSlot {
                    fut: Some(fut),
                    gen: 0,
                    node,
                    on_exit,
                });
                (self.tasks.len() - 1, 0)
            }
        };
        let id = TaskId {
            idx: idx as u32,
            gen,
        };
        self.exec.lock().unwrap().ready.push_back(id);
        id
    }

    /// Drops a task's future (fail-stop kill). Its exit callback does not
    /// run; pending completions addressed to it are discarded.
    pub fn kill_task(&mut self, id: TaskId) {
        let slot = &mut self.tasks[id.idx as usize];
        if slot.gen == id.gen {
            slot.fut = None;
            slot.on_exit = None;
            slot.gen += 1; // invalidate queued wake-ups
        }
    }

    pub fn task_alive(&self, id: TaskId) -> bool {
        let slot = &self.tasks[id.idx as usize];
        slot.gen == id.gen && slot.fut.is_some()
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /// Fail-stop crash of a machine: every task bound to the node is
    /// dropped, every actor gets `on_crash` and is dropped (slot kept, not
    /// alive), and the node's NIC and CPU state is reset.
    pub fn crash_node(&mut self, node: NodeId) {
        // Kill tasks first so actors observe a world without them.
        for i in 0..self.tasks.len() {
            if self.tasks[i].node == Some(node) && self.tasks[i].fut.is_some() {
                self.tasks[i].fut = None;
                self.tasks[i].on_exit = None;
                self.tasks[i].gen += 1;
            }
        }
        for id in 0..self.actors.len() {
            if self.actors[id].node == node && self.actors[id].alive {
                if let Some(mut a) = self.actors[id].actor.take() {
                    a.on_crash(self, id);
                }
                self.actors[id].alive = false;
                self.actors[id].gen += 1;
            }
        }
        self.net.reset_node(node);
        self.cpu_free[node] = self.now;
        self.stats.bump("node_crashes");
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Runs until the calendar is empty or a stop is requested.
    pub fn run(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// Runs until `deadline` (events at `deadline` included). Returns true
    /// if the simulation stopped or drained before the deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        self.drain_tasks();
        loop {
            if self.stop {
                return true;
            }
            let Some(Reverse(head)) = self.queue.peek() else {
                return true;
            };
            if head.time > deadline {
                self.now = deadline;
                self.exec.lock().unwrap().now = deadline;
                return false;
            }
            let Reverse(entry) = self.queue.pop().unwrap();
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            self.exec.lock().unwrap().now = entry.time;
            self.dispatch(entry.event);
            self.drain_tasks();
            self.events_processed += 1;
            if let Some(limit) = self.event_limit {
                assert!(
                    self.events_processed <= limit,
                    "event limit exceeded ({limit}) — runaway simulation?"
                );
            }
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Closure(f) => f(self),
            Event::Poke { actor, token } => {
                self.with_actor(actor, None, |a, sim, me| a.on_poke(sim, me, token));
            }
            Event::Timer { actor, gen, token } => {
                self.with_actor(actor, Some(gen), |a, sim, me| a.on_timer(sim, me, token));
            }
            Event::Deliver { actor, gen, msg } => {
                let matched =
                    self.with_actor(actor, Some(gen), |a, sim, me| a.on_deliver(sim, me, msg));
                if !matched {
                    self.stats.bump("net_dropped_dead_target");
                }
            }
        }
    }

    /// Runs `f` on a live actor with the kernel re-borrowable. Returns
    /// false if the actor is dead or from another generation.
    fn with_actor<F>(&mut self, id: ActorId, gen: Option<u32>, f: F) -> bool
    where
        F: FnOnce(&mut dyn Actor, &mut Sim, ActorId),
    {
        {
            let slot = &self.actors[id];
            if !slot.alive || gen.is_some_and(|g| g != slot.gen) {
                return false;
            }
        }
        let Some(mut actor) = self.actors[id].actor.take() else {
            // Never re-enter a running handler.
            panic!("actor {id} re-entered");
        };
        let gen_now = self.actors[id].gen;
        f(&mut *actor, self, id);
        let slot = &mut self.actors[id];
        if slot.alive && slot.gen == gen_now && slot.actor.is_none() {
            slot.actor = Some(actor);
        }
        true
    }

    /// Polls ready tasks until quiescent, flushing staged events between
    /// polls. Called by the run loop after every event dispatch.
    fn drain_tasks(&mut self) {
        loop {
            self.flush_staged();
            let next = self.exec.lock().unwrap().ready.pop_front();
            let Some(tid) = next else { break };
            self.poll_task(tid);
        }
        self.flush_staged();
    }

    fn flush_staged(&mut self) {
        let (staged, stop) = {
            let mut ex = self.exec.lock().unwrap();
            (std::mem::take(&mut ex.staged), ex.stop)
        };
        if stop {
            self.stop = true;
        }
        for (delay, ev) in staged {
            self.schedule(delay, ev);
        }
    }

    fn poll_task(&mut self, id: TaskId) {
        let idx = id.idx as usize;
        {
            let slot = &self.tasks[idx];
            if slot.gen != id.gen || slot.fut.is_none() {
                return; // stale wake-up for a dead incarnation
            }
        }
        let mut fut = self.tasks[idx].fut.take().unwrap();
        self.exec.lock().unwrap().current = Some(id);
        let waker = noop_waker();
        let mut cx = std::task::Context::from_waker(&waker);
        let poll = fut.as_mut().poll(&mut cx);
        self.exec.lock().unwrap().current = None;
        let slot = &mut self.tasks[idx];
        match poll {
            std::task::Poll::Pending => {
                // The slot may have been invalidated by a crash during the
                // poll; only restore the future for the same incarnation.
                if slot.gen == id.gen {
                    slot.fut = Some(fut);
                }
            }
            std::task::Poll::Ready(()) => {
                let cb = if slot.gen == id.gen {
                    slot.on_exit.take()
                } else {
                    None
                };
                drop(fut);
                if let Some(cb) = cb {
                    cb(self);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    struct Echo {
        got: Arc<Mutex<Vec<(NodeId, u64)>>>,
    }
    impl Actor for Echo {
        fn on_deliver(&mut self, _sim: &mut Sim, _me: ActorId, msg: Delivery) {
            let v = *msg.body.downcast::<u64>().unwrap();
            self.got.lock().unwrap().push((msg.src_node, v));
        }
        fn on_timer(&mut self, _sim: &mut Sim, _me: ActorId, token: u64) {
            self.got.lock().unwrap().push((usize::MAX, token));
        }
    }

    fn small(n: u64) -> WireSize {
        WireSize {
            header: 0,
            payload: n,
            piggyback: 0,
            control: 0,
        }
    }

    #[test]
    fn deliver_and_stats() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let n1 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n1, Box::new(Echo { got: got.clone() }));
        sim.net_send(n0, a, small(100), Box::new(42u64));
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &[(n0, 42u64)]);
        assert_eq!(sim.stats().messages, 1);
        assert_eq!(sim.stats().bytes.payload, 100);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn timers_respect_generation() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n0, Box::new(Echo { got: got.clone() }));
        sim.set_timer(a, SimDuration::from_micros(10), 1);
        // Replace before the timer fires: the timer must be dropped.
        sim.replace_actor(a, Box::new(Echo { got: got.clone() }));
        sim.set_timer(a, SimDuration::from_micros(20), 2);
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &[(usize::MAX, 2u64)]);
    }

    #[test]
    fn crash_drops_in_flight_messages() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let n1 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n1, Box::new(Echo { got: got.clone() }));
        sim.net_send(n0, a, small(10), Box::new(1u64));
        // Crash the receiver before delivery.
        sim.after(SimDuration::from_nanos(1), move |sim| sim.crash_node(1));
        sim.run();
        assert!(got.lock().unwrap().is_empty());
        assert_eq!(sim.stats().get("net_dropped_dead_target"), 1);
        assert_eq!(sim.stats().get("node_crashes"), 1);
    }

    #[test]
    fn restart_receives_new_traffic() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let n1 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n1, Box::new(Echo { got: got.clone() }));
        sim.after(SimDuration::from_micros(1), move |sim| sim.crash_node(1));
        let got2 = got.clone();
        sim.after(SimDuration::from_micros(2), move |sim| {
            sim.replace_actor(a, Box::new(Echo { got: got2.clone() }));
            sim.net_send(0, a, small(10), Box::new(9u64));
        });
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &[(n0, 9u64)]);
        let _ = n1;
    }

    #[test]
    fn charge_cpu_serializes() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let t1 = sim.charge_cpu(n0, SimDuration::from_micros(5));
        let t2 = sim.charge_cpu(n0, SimDuration::from_micros(5));
        assert_eq!(t1.as_nanos(), 5_000);
        assert_eq!(t2.as_nanos(), 10_000);
    }

    #[test]
    fn killed_task_never_resumes() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let h = sim.exec();
        let hit = Arc::new(Mutex::new(false));
        let hit2 = hit.clone();
        let id = sim.spawn(Some(n0), async move {
            h.sleep(SimDuration::from_micros(10)).await;
            *hit2.lock().unwrap() = true;
        });
        sim.after(SimDuration::from_micros(5), move |sim| sim.kill_task(id));
        sim.run();
        assert!(!*hit.lock().unwrap());
        assert!(!sim.task_alive(id));
    }

    #[test]
    fn exit_callback_runs_on_completion_only() {
        let mut sim = Sim::new(7);
        let done = Arc::new(Mutex::new(0));
        let d = done.clone();
        let h = sim.exec();
        sim.spawn_with_exit(
            None,
            async move {
                h.sleep(SimDuration::from_micros(1)).await;
            },
            move |_| *d.lock().unwrap() += 1,
        );
        sim.run();
        assert_eq!(*done.lock().unwrap(), 1);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut sim = Sim::new(7);
        let h = sim.exec();
        let count = Arc::new(Mutex::new(0));
        let c = count.clone();
        sim.spawn_detached(async move {
            for _ in 0..10 {
                h.sleep(SimDuration::from_micros(10)).await;
                *c.lock().unwrap() += 1;
            }
        });
        let finished = sim.run_until(SimTime::from_nanos(35_000));
        assert!(!finished);
        assert_eq!(*count.lock().unwrap(), 3);
        sim.run();
        assert_eq!(*count.lock().unwrap(), 10);
    }

    #[test]
    fn sim_is_send() {
        fn assert_send<T: Send>() {}
        // A whole simulation — actors, tasks, queued events and futures
        // included — must be movable to a worker thread so independent
        // cluster runs can be sharded across threads.
        assert_send::<Sim>();
    }

    #[test]
    #[should_panic(expected = "event limit exceeded")]
    fn event_limit_catches_runaway() {
        let mut sim = Sim::with_config(SimConfig {
            event_limit: Some(10),
            ..SimConfig::default()
        });
        fn rearm(sim: &mut Sim) {
            sim.after(SimDuration::from_nanos(1), rearm);
        }
        sim.after(SimDuration::from_nanos(1), rearm);
        sim.run();
    }
}
