//! The simulation kernel: virtual clock, event queue, actors, tasks,
//! CPU resources and fault injection.
//!
//! # Determinism
//!
//! Events are ordered by `(time, sequence)`; the sequence is a monotonic
//! counter, so simultaneous events fire in scheduling order. Tasks are
//! polled from a FIFO ready queue. All randomness flows from one seeded
//! [`SmallRng`]. Two runs with the same seed and the same program produce
//! bit-identical statistics.
//!
//! # Actors and generations
//!
//! Services (communication daemons, the Event Logger, the checkpoint
//! server, the dispatcher) are [`Actor`]s registered on a node. Crashing a
//! node drops its actors and tasks; restarting installs a fresh actor in
//! the *same slot* with a bumped generation. Deliveries capture the
//! generation of their target at creation: anything addressed to a dead
//! incarnation is silently dropped, which models TCP connections dying
//! with the process. Timers are tracked per actor slot as cancellable
//! [`TimerHandle`]s: crashing or replacing an actor *detaches* its
//! outstanding timers at once (the payload is freed and the handler will
//! never run), while the calendar entry keeps its dispatch position so
//! event accounting is identical to the historical drop-at-dispatch
//! behaviour.
//!
//! # The calendar
//!
//! Events live in the arena-backed [`EventCalendar`]:
//! a slab with free-list reuse addressed by stable
//! [`EventKey`] handles, a hierarchical timer
//! wheel for near-future events, and a binary heap kept only as
//! far-future overflow. Dispatch order is exact `(time, seq)` — see the
//! [`calendar`](crate::calendar) module docs for the determinism
//! argument.

use std::any::Any;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::calendar::{EventCalendar, EventKey};
use crate::exec::{noop_waker, ExecHandle, ExecShared, SharedExec, TaskId, TaskSlot};
use crate::net::{NetProfile, Network, WireSize};
use crate::profiler;
use crate::schedule::{EventInfo, EventKind, PopDecision, SchedulePolicy};
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};

/// Index of a simulated machine.
pub type NodeId = usize;
/// Index of a registered actor slot (stable across restarts).
pub type ActorId = usize;

/// A message arriving at an actor.
pub struct Delivery {
    /// Node that emitted the message.
    pub src_node: NodeId,
    /// Wire-size accounting used for statistics.
    pub size: WireSize,
    /// The message body; actors downcast to their protocol type.
    pub body: Box<dyn Any + Send>,
}

/// An entry in the simulation calendar.
pub enum Event {
    /// Arbitrary kernel-context work (fault injection, op completion, ...).
    Closure(Box<dyn FnOnce(&mut Sim) + Send>),
    /// Wakes an actor without carrying data (pipe readable, batch flush...).
    Poke { actor: ActorId, token: u64 },
    /// A timer set through [`Sim::set_timer`].
    Timer {
        actor: ActorId,
        gen: u32,
        token: u64,
    },
    /// A network (or loopback) message delivery.
    Deliver {
        actor: ActorId,
        gen: u32,
        msg: Delivery,
    },
}

impl Event {
    /// Convenience constructor for closure events.
    pub fn closure(f: impl FnOnce(&mut Sim) + Send + 'static) -> Event {
        Event::Closure(Box::new(f))
    }
}

/// Message/timer-driven service running on a node.
///
/// Handlers receive `&mut Sim` so they can schedule events, send messages
/// and charge CPU time. The kernel guarantees a handler is never re-entered.
pub trait Actor: Send + 'static {
    /// A message addressed to this actor arrived.
    fn on_deliver(&mut self, sim: &mut Sim, me: ActorId, msg: Delivery);
    /// A poke (data-less wake-up) arrived.
    fn on_poke(&mut self, sim: &mut Sim, me: ActorId, token: u64) {
        let _ = (sim, me, token);
    }
    /// A timer set by this actor fired.
    fn on_timer(&mut self, sim: &mut Sim, me: ActorId, token: u64) {
        let _ = (sim, me, token);
    }
    /// The hosting node is crashing; the actor is dropped right after.
    /// Most actors need no cleanup — volatile state dies with them.
    fn on_crash(&mut self, sim: &mut Sim, me: ActorId) {
        let _ = (sim, me);
    }
}

/// Cancellable handle on a pending timer, returned by [`Sim::set_timer`].
/// Stale handles (fired, cancelled, or belonging to a dead incarnation)
/// are detected and ignored by [`Sim::cancel_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    key: EventKey,
    actor: ActorId,
}

struct ActorSlot {
    actor: Option<Box<dyn Actor>>,
    node: NodeId,
    gen: u32,
    alive: bool,
    /// Calendar keys of this incarnation's outstanding timers. Fired
    /// timers are unregistered at dispatch; crash/replace detaches the
    /// rest wholesale instead of letting each one reach dispatch just to
    /// fail a generation check.
    timers: Vec<EventKey>,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Network fabric profile.
    pub net: NetProfile,
    /// Optional hard cap on dispatched events (runaway protection).
    pub event_limit: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            net: NetProfile::default(),
            event_limit: None,
        }
    }
}

/// The simulation world. See module docs.
pub struct Sim {
    now: SimTime,
    calendar: EventCalendar<Event>,
    actors: Vec<ActorSlot>,
    tasks: Vec<TaskSlot>,
    exec: SharedExec,
    net: Network,
    /// Per-node sequential service-CPU resource (daemon work, servers).
    cpu_free: Vec<SimTime>,
    nodes: usize,
    stats: Stats,
    rng: SmallRng,
    stop: bool,
    events_processed: u64,
    event_limit: Option<u64>,
    /// Optional schedule-exploration seam; `None` is the untouched fast
    /// path (see [`crate::schedule`]).
    policy: Option<Box<dyn SchedulePolicy>>,
}

impl Sim {
    pub fn new(seed: u64) -> Self {
        Self::with_config(SimConfig {
            seed,
            ..SimConfig::default()
        })
    }

    pub fn with_config(cfg: SimConfig) -> Self {
        Sim {
            now: SimTime::ZERO,
            calendar: EventCalendar::new(),
            actors: Vec::new(),
            tasks: Vec::new(),
            exec: ExecShared::new(),
            net: Network::new(cfg.net),
            cpu_free: Vec::new(),
            nodes: 0,
            stats: Stats::new(),
            rng: SmallRng::seed_from_u64(cfg.seed),
            stop: false,
            events_processed: 0,
            event_limit: cfg.event_limit,
            policy: None,
        }
    }

    /// Installs a [`SchedulePolicy`] consulted for every payload-carrying
    /// event before dispatch. With no policy (the default) the pop path
    /// is untouched; [`crate::schedule::Fifo`] is byte-identical to it.
    pub fn set_schedule_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.policy = Some(policy);
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    pub fn net(&self) -> &Network {
        &self.net
    }

    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Handle usable from task context (staging, op cells, sleeps).
    pub fn exec(&self) -> ExecHandle {
        ExecHandle {
            shared: self.exec.clone(),
        }
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// Registers a new machine and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.nodes;
        self.nodes += 1;
        self.cpu_free.push(SimTime::ZERO);
        self.net.ensure_node(id);
        id
    }

    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Registers an actor on `node`; the returned id is stable across
    /// crash/restart cycles of that slot.
    pub fn add_actor(&mut self, node: NodeId, actor: Box<dyn Actor>) -> ActorId {
        self.add_actor_with(node, |_, _| actor)
    }

    /// Registers an actor whose constructor needs its own [`ActorId`] —
    /// e.g. to arm timers for itself and keep the returned cancellable
    /// handles. The slot is allocated first, `build` runs with the kernel
    /// re-borrowable (it may call [`Sim::set_timer`] for `id`), and the
    /// actor it returns is installed in the slot.
    pub fn add_actor_with<F>(&mut self, node: NodeId, build: F) -> ActorId
    where
        F: FnOnce(&mut Sim, ActorId) -> Box<dyn Actor>,
    {
        assert!(node < self.nodes, "unknown node");
        let id = self.actors.len();
        self.actors.push(ActorSlot {
            actor: None,
            node,
            gen: 0,
            alive: true,
            timers: Vec::new(),
        });
        let actor = build(self, id);
        self.actors[id].actor = Some(actor);
        id
    }

    /// Installs a fresh actor in an existing slot (restart). Bumps the
    /// generation so stale deliveries are dropped, and detaches the old
    /// incarnation's timers.
    pub fn replace_actor(&mut self, id: ActorId, actor: Box<dyn Actor>) {
        self.detach_actor_timers(id);
        let slot = &mut self.actors[id];
        slot.gen += 1;
        slot.actor = Some(actor);
        slot.alive = true;
    }

    /// Detaches every outstanding timer of an actor slot: payloads are
    /// freed now and the handlers never run, while the calendar entries
    /// keep their dispatch positions (see [`Sim::cancel_timer`]).
    fn detach_actor_timers(&mut self, id: ActorId) {
        let timers = std::mem::take(&mut self.actors[id].timers);
        for key in timers {
            self.calendar.detach(key);
        }
    }

    /// Current generation of an actor slot.
    pub fn actor_gen(&self, id: ActorId) -> u32 {
        self.actors[id].gen
    }

    pub fn actor_alive(&self, id: ActorId) -> bool {
        self.actors[id].alive
    }

    pub fn actor_node(&self, id: ActorId) -> NodeId {
        self.actors[id].node
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Schedules an event `delay` from now. The returned key can cancel
    /// it through the calendar while it is still pending.
    pub fn schedule(&mut self, delay: SimDuration, event: Event) -> EventKey {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules an event at an absolute instant (must not be in the past,
    /// must not be the [`SimTime::MAX`] sentinel).
    pub fn schedule_at(&mut self, time: SimTime, event: Event) -> EventKey {
        // MAX is the "run forever" deadline / "never" timeout sentinel;
        // an event actually scheduled there is always a saturated (or
        // formerly wrapped) arithmetic bug upstream.
        assert!(
            time < SimTime::MAX,
            "attempted to schedule an event at the SimTime::MAX sentinel"
        );
        debug_assert!(time >= self.now, "scheduling into the past");
        self.calendar.schedule(time, event)
    }

    /// Schedules kernel-context work `delay` from now.
    pub fn after(&mut self, delay: SimDuration, f: impl FnOnce(&mut Sim) + Send + 'static) {
        self.schedule(delay, Event::closure(f));
    }

    /// Sets a timer for an actor; detached (never fires) if the actor is
    /// crashed or restarted first, cancellable through the returned
    /// handle.
    pub fn set_timer(&mut self, actor: ActorId, delay: SimDuration, token: u64) -> TimerHandle {
        let gen = self.actors[actor].gen;
        let key = self.schedule(delay, Event::Timer { actor, gen, token });
        self.actors[actor].timers.push(key);
        TimerHandle { key, actor }
    }

    /// Cancels a pending timer: its handler will not run. Returns false
    /// for stale handles (already fired, cancelled, or detached by a
    /// crash/restart of the owning actor).
    ///
    /// The calendar entry keeps its `(time, seq)` dispatch position and
    /// is popped as a counted no-op — exactly the accounting of the
    /// legacy path where a dead incarnation's timer reached dispatch and
    /// failed the generation check. Cancellation therefore never shifts
    /// `events_processed` or the virtual clock relative to the
    /// generation-drop behaviour it replaces.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        if self.calendar.detach(handle.key).is_none() {
            return false;
        }
        self.unregister_timer(handle.actor, handle.key);
        true
    }

    /// Removes a timer key from its actor's outstanding-timer registry
    /// (at cancellation, or when a live timer reaches dispatch).
    fn unregister_timer(&mut self, actor: ActorId, key: EventKey) {
        let timers = &mut self.actors[actor].timers;
        if let Some(pos) = timers.iter().position(|k| *k == key) {
            timers.swap_remove(pos);
        }
    }

    /// Requests the run loop to exit at the next dispatch boundary.
    pub fn stop(&mut self) {
        self.stop = true;
    }

    // ------------------------------------------------------------------
    // Communication
    // ------------------------------------------------------------------

    /// Sends a message across the network. Consumes NIC/link time on both
    /// ends according to the Ethernet model; the delivery fires when the
    /// last byte reaches the destination. Panics on same-node sends — use
    /// [`Sim::local_send`] for those.
    pub fn net_send(
        &mut self,
        src_node: NodeId,
        dst_actor: ActorId,
        size: WireSize,
        body: Box<dyn Any + Send>,
    ) {
        let slot = &self.actors[dst_actor];
        let dst_node = slot.node;
        let gen = slot.gen;
        let arrival = {
            let _p = profiler::scope(profiler::Phase::Net);
            self.net.send(self.now, src_node, dst_node, size.total())
        };
        {
            let _p = profiler::scope(profiler::Phase::Stats);
            self.stats.record_message(size);
        }
        self.schedule_at(
            arrival,
            Event::Deliver {
                actor: dst_actor,
                gen,
                msg: Delivery {
                    src_node,
                    size,
                    body,
                },
            },
        );
    }

    /// Delivers a message to an actor on the *same* node through loopback:
    /// no NIC time, fixed small delay.
    pub fn local_send(
        &mut self,
        src_node: NodeId,
        dst_actor: ActorId,
        size: WireSize,
        body: Box<dyn Any + Send>,
        delay: SimDuration,
    ) {
        let gen = self.actors[dst_actor].gen;
        self.schedule(
            delay,
            Event::Deliver {
                actor: dst_actor,
                gen,
                msg: Delivery {
                    src_node,
                    size,
                    body,
                },
            },
        );
    }

    /// Serializes `work` on the node's service CPU (single-threaded daemon
    /// model): the work starts when the CPU is free and the returned
    /// instant is its completion time.
    pub fn charge_cpu(&mut self, node: NodeId, work: SimDuration) -> SimTime {
        let start = self.cpu_free[node].max(self.now);
        let end = start + work;
        self.cpu_free[node] = end;
        end
    }

    // ------------------------------------------------------------------
    // Tasks
    // ------------------------------------------------------------------

    /// Spawns a task bound to a node (killed when the node crashes).
    pub fn spawn(
        &mut self,
        node: Option<NodeId>,
        fut: impl std::future::Future<Output = ()> + Send + 'static,
    ) -> TaskId {
        self.spawn_inner(node, Box::pin(fut), None)
    }

    /// Spawns a task and registers a callback to run on normal completion.
    pub fn spawn_with_exit(
        &mut self,
        node: Option<NodeId>,
        fut: impl std::future::Future<Output = ()> + Send + 'static,
        on_exit: impl FnOnce(&mut Sim) + Send + 'static,
    ) -> TaskId {
        self.spawn_inner(node, Box::pin(fut), Some(Box::new(on_exit)))
    }

    /// Spawns a task bound to no node (test harness helpers).
    pub fn spawn_detached(
        &mut self,
        fut: impl std::future::Future<Output = ()> + Send + 'static,
    ) -> TaskId {
        self.spawn(None, fut)
    }

    fn spawn_inner(
        &mut self,
        node: Option<NodeId>,
        fut: std::pin::Pin<Box<dyn std::future::Future<Output = ()> + Send>>,
        on_exit: Option<Box<dyn FnOnce(&mut Sim) + Send>>,
    ) -> TaskId {
        // Reuse a dead slot if possible to keep indices small.
        let idx = self
            .tasks
            .iter()
            .position(|t| t.fut.is_none() && t.on_exit.is_none());
        let (idx, gen) = match idx {
            Some(i) => {
                let slot = &mut self.tasks[i];
                slot.gen += 1;
                slot.fut = Some(fut);
                slot.node = node;
                slot.on_exit = on_exit;
                (i, slot.gen)
            }
            None => {
                self.tasks.push(TaskSlot {
                    fut: Some(fut),
                    gen: 0,
                    node,
                    on_exit,
                });
                (self.tasks.len() - 1, 0)
            }
        };
        let id = TaskId {
            idx: idx as u32,
            gen,
        };
        self.exec.lock().unwrap().ready.push_back(id);
        id
    }

    /// Drops a task's future (fail-stop kill). Its exit callback does not
    /// run; pending completions addressed to it are discarded.
    pub fn kill_task(&mut self, id: TaskId) {
        let slot = &mut self.tasks[id.idx as usize];
        if slot.gen == id.gen {
            slot.fut = None;
            slot.on_exit = None;
            slot.gen += 1; // invalidate queued wake-ups
        }
    }

    pub fn task_alive(&self, id: TaskId) -> bool {
        let slot = &self.tasks[id.idx as usize];
        slot.gen == id.gen && slot.fut.is_some()
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /// Fail-stop crash of a machine: every task bound to the node is
    /// dropped, every actor gets `on_crash` and is dropped (slot kept, not
    /// alive), and the node's NIC and CPU state is reset.
    pub fn crash_node(&mut self, node: NodeId) {
        // Kill tasks first so actors observe a world without them.
        for i in 0..self.tasks.len() {
            if self.tasks[i].node == Some(node) && self.tasks[i].fut.is_some() {
                self.tasks[i].fut = None;
                self.tasks[i].on_exit = None;
                self.tasks[i].gen += 1;
            }
        }
        for id in 0..self.actors.len() {
            if self.actors[id].node == node && self.actors[id].alive {
                if let Some(mut a) = self.actors[id].actor.take() {
                    a.on_crash(self, id);
                }
                // Timers die with the incarnation — including any the
                // actor armed from `on_crash` just above.
                self.detach_actor_timers(id);
                self.actors[id].alive = false;
                self.actors[id].gen += 1;
            }
        }
        self.net.reset_node(node);
        self.cpu_free[node] = self.now;
        self.stats.bump("node_crashes");
        crate::event!("node-crashed" { node = node });
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Runs until the calendar is empty or a stop is requested.
    pub fn run(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// Runs until `deadline` (events at `deadline` included). Returns true
    /// if the simulation stopped or drained before the deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        self.drain_tasks();
        loop {
            if self.stop {
                return true;
            }
            let Some(head_time) = self.calendar.peek_time() else {
                return true;
            };
            if head_time > deadline {
                self.now = deadline;
                self.exec.lock().unwrap().now = deadline;
                return false;
            }
            let (time, seq, key, event) = {
                let _p = profiler::scope(profiler::Phase::Calendar);
                self.calendar.pop().unwrap()
            };
            debug_assert!(time >= self.now);
            // The schedule-policy seam: a policy may defer a live event,
            // which re-inserts it at `time + delta` with a fresh (highest)
            // sequence number — behind its same-time peers for delta 0 —
            // without advancing the clock or the event counter. Detached
            // (None-payload) slots are never offered to the policy.
            let event = match event {
                Some(ev) if self.policy.is_some() => {
                    let info = EventInfo {
                        time,
                        seq,
                        kind: EventKind::of(&ev),
                    };
                    match self.policy.as_mut().unwrap().on_pop(&info) {
                        PopDecision::Dispatch => Some(ev),
                        PopDecision::Defer { delta } => {
                            let timer_actor = match &ev {
                                Event::Timer { actor, .. } => Some(*actor),
                                _ => None,
                            };
                            let new_key = self.schedule_at(time + delta, ev);
                            // Keep cancellable-timer bookkeeping pointing
                            // at the live calendar entry.
                            if let Some(actor) = timer_actor {
                                let timers = &mut self.actors[actor].timers;
                                if let Some(pos) = timers.iter().position(|k| *k == key) {
                                    timers[pos] = new_key;
                                }
                            }
                            // Hand the policy the authoritative dispatch
                            // position of the deferred instance, so it can
                            // recognize the re-offer exactly (FIFO
                            // bookkeeping in ScriptPolicy).
                            let (new_time, new_seq) =
                                self.calendar.position_of(new_key).expect("just scheduled");
                            self.policy.as_mut().unwrap().on_deferred(new_time, new_seq);
                            continue;
                        }
                    }
                }
                other => other,
            };
            self.now = time;
            self.exec.lock().unwrap().now = time;
            // A detached event (None payload) still advances the clock
            // and the event counter: it occupies the dispatch slot a
            // dead incarnation's timer would have burned anyway.
            {
                let _p = profiler::scope(profiler::Phase::Dispatch);
                if let Some(event) = event {
                    self.dispatch(key, event);
                }
                self.drain_tasks();
            }
            self.events_processed += 1;
            if let Some(limit) = self.event_limit {
                assert!(
                    self.events_processed <= limit,
                    "event limit exceeded ({limit}) — runaway simulation?"
                );
            }
        }
    }

    fn dispatch(&mut self, key: EventKey, event: Event) {
        match event {
            Event::Closure(f) => f(self),
            Event::Poke { actor, token } => {
                self.with_actor(actor, None, |a, sim, me| a.on_poke(sim, me, token));
            }
            Event::Timer { actor, gen, token } => {
                // A live (non-detached) timer always belongs to the
                // current generation: stale ones were detached wholesale
                // when the incarnation died.
                self.unregister_timer(actor, key);
                crate::event!("timer-fired" { actor = actor, token = token });
                self.with_actor(actor, Some(gen), |a, sim, me| a.on_timer(sim, me, token));
            }
            Event::Deliver { actor, gen, msg } => {
                crate::event!("sim-deliver" { actor = actor });
                let matched =
                    self.with_actor(actor, Some(gen), |a, sim, me| a.on_deliver(sim, me, msg));
                if !matched {
                    self.stats.bump("net_dropped_dead_target");
                }
            }
        }
    }

    /// Runs `f` on a live actor with the kernel re-borrowable. Returns
    /// false if the actor is dead or from another generation.
    fn with_actor<F>(&mut self, id: ActorId, gen: Option<u32>, f: F) -> bool
    where
        F: FnOnce(&mut dyn Actor, &mut Sim, ActorId),
    {
        {
            let slot = &self.actors[id];
            if !slot.alive || gen.is_some_and(|g| g != slot.gen) {
                return false;
            }
        }
        let Some(mut actor) = self.actors[id].actor.take() else {
            // Never re-enter a running handler.
            panic!("actor {id} re-entered");
        };
        let gen_now = self.actors[id].gen;
        f(&mut *actor, self, id);
        let slot = &mut self.actors[id];
        if slot.alive && slot.gen == gen_now && slot.actor.is_none() {
            slot.actor = Some(actor);
        }
        true
    }

    /// Polls ready tasks until quiescent, flushing staged events between
    /// polls. Called by the run loop after every event dispatch.
    fn drain_tasks(&mut self) {
        loop {
            self.flush_staged();
            let next = self.exec.lock().unwrap().ready.pop_front();
            let Some(tid) = next else { break };
            self.poll_task(tid);
        }
        self.flush_staged();
    }

    fn flush_staged(&mut self) {
        let (staged, stop) = {
            let mut ex = self.exec.lock().unwrap();
            (std::mem::take(&mut ex.staged), ex.stop)
        };
        if stop {
            self.stop = true;
        }
        for (delay, ev) in staged {
            self.schedule(delay, ev);
        }
    }

    fn poll_task(&mut self, id: TaskId) {
        let idx = id.idx as usize;
        {
            let slot = &self.tasks[idx];
            if slot.gen != id.gen || slot.fut.is_none() {
                return; // stale wake-up for a dead incarnation
            }
        }
        let mut fut = self.tasks[idx].fut.take().unwrap();
        self.exec.lock().unwrap().current = Some(id);
        let waker = noop_waker();
        let mut cx = std::task::Context::from_waker(&waker);
        let poll = fut.as_mut().poll(&mut cx);
        self.exec.lock().unwrap().current = None;
        let slot = &mut self.tasks[idx];
        match poll {
            std::task::Poll::Pending => {
                // The slot may have been invalidated by a crash during the
                // poll; only restore the future for the same incarnation.
                if slot.gen == id.gen {
                    slot.fut = Some(fut);
                }
            }
            std::task::Poll::Ready(()) => {
                let cb = if slot.gen == id.gen {
                    slot.on_exit.take()
                } else {
                    None
                };
                drop(fut);
                if let Some(cb) = cb {
                    cb(self);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    struct Echo {
        got: Arc<Mutex<Vec<(NodeId, u64)>>>,
    }
    impl Actor for Echo {
        fn on_deliver(&mut self, _sim: &mut Sim, _me: ActorId, msg: Delivery) {
            let v = *msg.body.downcast::<u64>().unwrap();
            self.got.lock().unwrap().push((msg.src_node, v));
        }
        fn on_timer(&mut self, _sim: &mut Sim, _me: ActorId, token: u64) {
            self.got.lock().unwrap().push((usize::MAX, token));
        }
    }

    fn small(n: u64) -> WireSize {
        WireSize {
            header: 0,
            payload: n,
            piggyback: 0,
            control: 0,
        }
    }

    #[test]
    fn deliver_and_stats() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let n1 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n1, Box::new(Echo { got: got.clone() }));
        sim.net_send(n0, a, small(100), Box::new(42u64));
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &[(n0, 42u64)]);
        assert_eq!(sim.stats().messages, 1);
        assert_eq!(sim.stats().bytes.payload, 100);
        assert!(sim.now() > SimTime::ZERO);
    }

    #[test]
    fn timers_respect_generation() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n0, Box::new(Echo { got: got.clone() }));
        sim.set_timer(a, SimDuration::from_micros(10), 1);
        // Replace before the timer fires: the timer must be dropped.
        sim.replace_actor(a, Box::new(Echo { got: got.clone() }));
        sim.set_timer(a, SimDuration::from_micros(20), 2);
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &[(usize::MAX, 2u64)]);
        // The detached timer still burned its dispatch slot, exactly as
        // the old generation-check drop did.
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn cancelled_timer_never_fires_but_keeps_accounting() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n0, Box::new(Echo { got: got.clone() }));
        let h1 = sim.set_timer(a, SimDuration::from_micros(10), 1);
        sim.set_timer(a, SimDuration::from_micros(20), 2);
        assert!(sim.cancel_timer(h1));
        assert!(!sim.cancel_timer(h1), "double cancel is a no-op");
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &[(usize::MAX, 2u64)]);
        assert_eq!(sim.events_processed(), 2);
        // A fired timer's handle is stale.
        let mut sim2 = Sim::new(7);
        let n = sim2.add_node();
        let a2 = sim2.add_actor(n, Box::new(Echo { got: got.clone() }));
        let h = sim2.set_timer(a2, SimDuration::from_micros(1), 9);
        sim2.run();
        assert!(!sim2.cancel_timer(h));
    }

    #[test]
    fn add_actor_with_can_arm_its_own_timers() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor_with(n0, |sim, me| {
            sim.set_timer(me, SimDuration::from_micros(5), 77);
            Box::new(Echo { got: got.clone() })
        });
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &[(usize::MAX, 77u64)]);
        let _ = a;
    }

    #[test]
    fn crash_detaches_timers_but_counts_their_slots() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n0, Box::new(Echo { got: got.clone() }));
        sim.set_timer(a, SimDuration::from_micros(10), 1);
        sim.set_timer(a, SimDuration::from_micros(12), 2);
        sim.after(SimDuration::from_micros(1), move |sim| sim.crash_node(0));
        sim.run();
        assert!(got.lock().unwrap().is_empty());
        // crash closure + two detached timer slots.
        assert_eq!(sim.events_processed(), 3);
        assert_eq!(sim.now().as_nanos(), 12_000);
    }

    #[test]
    #[should_panic(expected = "SimTime::MAX sentinel")]
    fn scheduling_at_the_sentinel_is_rejected() {
        let mut sim = Sim::new(7);
        // A wrapped/saturated delay must be caught loudly, not silently
        // reorder the calendar.
        sim.after(SimDuration::from_nanos(u64::MAX), |_| {});
    }

    #[test]
    fn crash_drops_in_flight_messages() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let n1 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n1, Box::new(Echo { got: got.clone() }));
        sim.net_send(n0, a, small(10), Box::new(1u64));
        // Crash the receiver before delivery.
        sim.after(SimDuration::from_nanos(1), move |sim| sim.crash_node(1));
        sim.run();
        assert!(got.lock().unwrap().is_empty());
        assert_eq!(sim.stats().get("net_dropped_dead_target"), 1);
        assert_eq!(sim.stats().get("node_crashes"), 1);
    }

    #[test]
    fn restart_receives_new_traffic() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let n1 = sim.add_node();
        let got = Arc::new(Mutex::new(Vec::new()));
        let a = sim.add_actor(n1, Box::new(Echo { got: got.clone() }));
        sim.after(SimDuration::from_micros(1), move |sim| sim.crash_node(1));
        let got2 = got.clone();
        sim.after(SimDuration::from_micros(2), move |sim| {
            sim.replace_actor(a, Box::new(Echo { got: got2.clone() }));
            sim.net_send(0, a, small(10), Box::new(9u64));
        });
        sim.run();
        assert_eq!(&*got.lock().unwrap(), &[(n0, 9u64)]);
        let _ = n1;
    }

    #[test]
    fn charge_cpu_serializes() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let t1 = sim.charge_cpu(n0, SimDuration::from_micros(5));
        let t2 = sim.charge_cpu(n0, SimDuration::from_micros(5));
        assert_eq!(t1.as_nanos(), 5_000);
        assert_eq!(t2.as_nanos(), 10_000);
    }

    #[test]
    fn killed_task_never_resumes() {
        let mut sim = Sim::new(7);
        let n0 = sim.add_node();
        let h = sim.exec();
        let hit = Arc::new(Mutex::new(false));
        let hit2 = hit.clone();
        let id = sim.spawn(Some(n0), async move {
            h.sleep(SimDuration::from_micros(10)).await;
            *hit2.lock().unwrap() = true;
        });
        sim.after(SimDuration::from_micros(5), move |sim| sim.kill_task(id));
        sim.run();
        assert!(!*hit.lock().unwrap());
        assert!(!sim.task_alive(id));
    }

    #[test]
    fn exit_callback_runs_on_completion_only() {
        let mut sim = Sim::new(7);
        let done = Arc::new(Mutex::new(0));
        let d = done.clone();
        let h = sim.exec();
        sim.spawn_with_exit(
            None,
            async move {
                h.sleep(SimDuration::from_micros(1)).await;
            },
            move |_| *d.lock().unwrap() += 1,
        );
        sim.run();
        assert_eq!(*done.lock().unwrap(), 1);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut sim = Sim::new(7);
        let h = sim.exec();
        let count = Arc::new(Mutex::new(0));
        let c = count.clone();
        sim.spawn_detached(async move {
            for _ in 0..10 {
                h.sleep(SimDuration::from_micros(10)).await;
                *c.lock().unwrap() += 1;
            }
        });
        let finished = sim.run_until(SimTime::from_nanos(35_000));
        assert!(!finished);
        assert_eq!(*count.lock().unwrap(), 3);
        sim.run();
        assert_eq!(*count.lock().unwrap(), 10);
    }

    #[test]
    fn sim_is_send() {
        fn assert_send<T: Send>() {}
        // A whole simulation — actors, tasks, queued events and futures
        // included — must be movable to a worker thread so independent
        // cluster runs can be sharded across threads.
        assert_send::<Sim>();
    }

    #[test]
    #[should_panic(expected = "event limit exceeded")]
    fn event_limit_catches_runaway() {
        let mut sim = Sim::with_config(SimConfig {
            event_limit: Some(10),
            ..SimConfig::default()
        });
        fn rearm(sim: &mut Sim) {
            sim.after(SimDuration::from_nanos(1), rearm);
        }
        sim.after(SimDuration::from_nanos(1), rearm);
        sim.run();
    }
}
