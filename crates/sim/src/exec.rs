//! Single-threaded async process model over a `Send` core.
//!
//! Simulated application processes (MPI ranks in the reproduction) are
//! ordinary `async` blocks. Every blocking operation — send, receive,
//! compute, checkpoint — is an [`OpCell`] that the *kernel side* (actors,
//! scheduled closures) completes at the right virtual time. The executor
//! never blocks an OS thread and never needs real wakers: when a cell
//! completes, the waiting task is pushed onto a ready queue that the
//! simulation loop drains after every event dispatch.
//!
//! Killing a simulated process is simply dropping its future, which is the
//! fail-stop model the paper assumes: all volatile state vanishes, pending
//! operations are abandoned, and completions racing with the kill are
//! discarded thanks to per-task generation counters.
//!
//! Task code must not touch the [`Sim`](crate::kernel::Sim) directly — it
//! would be mutably borrowed by the run loop. Instead tasks *stage* events
//! through the [`ExecHandle`]; the run loop flushes staged events into the
//! real queue between polls. This mirrors the paper's architecture where
//! the MPI process only talks to its communication daemon through a pipe.
//!
//! # Ownership and `Send`
//!
//! Tasks and actors live in arena slots owned by the kernel and are
//! addressed by index+generation handles ([`TaskId`],
//! [`ActorId`](crate::kernel::ActorId)). The only genuinely shared state
//! is `ExecShared` (kernel ↔ task futures) and the one-shot [`OpCell`]s
//! (kernel ↔ one waiting task); both are `Arc<Mutex<…>>` so a whole
//! simulation — futures included — is `Send` and independent cluster runs
//! can be sharded across worker threads. Each run stays single-threaded,
//! so the mutexes are never contended.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::kernel::Event;
use crate::time::SimDuration;

/// Identifier of a spawned task. The generation distinguishes incarnations
/// of a restarted process occupying the same slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct TaskId {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

/// Shared handle on [`ExecShared`].
pub(crate) type SharedExec = Arc<Mutex<ExecShared>>;

/// State shared between the kernel, task handles and operation cells.
pub(crate) struct ExecShared {
    /// Tasks ready to be polled.
    pub(crate) ready: VecDeque<TaskId>,
    /// Task currently being polled, if any.
    pub(crate) current: Option<TaskId>,
    /// Events staged from task context, flushed by the run loop.
    pub(crate) staged: Vec<(SimDuration, Event)>,
    /// Set from task context to stop the simulation loop.
    pub(crate) stop: bool,
    /// Mirror of the kernel clock, readable from task context.
    pub(crate) now: crate::time::SimTime,
}

impl ExecShared {
    pub(crate) fn new() -> SharedExec {
        Arc::new(Mutex::new(ExecShared {
            ready: VecDeque::new(),
            current: None,
            staged: Vec::new(),
            stop: false,
            now: crate::time::SimTime::ZERO,
        }))
    }
}

/// Clonable handle on the executor, usable from task context.
#[derive(Clone)]
pub struct ExecHandle {
    pub(crate) shared: SharedExec,
}

impl ExecHandle {
    /// Creates a fresh operation cell bound to this executor.
    pub fn new_op<T: Send + 'static>(&self) -> OpCell<T> {
        OpCell {
            inner: Arc::new(Mutex::new(OpInner {
                result: None,
                waiter: None,
                exec: self.shared.clone(),
            })),
        }
    }

    /// Stages an event to fire `delay` after the current virtual time.
    /// Callable from task context; the run loop flushes it.
    pub fn stage(&self, delay: SimDuration, ev: Event) {
        self.shared.lock().unwrap().staged.push((delay, ev));
    }

    /// Stages an actor poke (used by pipes between processes and daemons).
    pub fn stage_poke(&self, delay: SimDuration, actor: crate::kernel::ActorId, token: u64) {
        self.stage(delay, Event::Poke { actor, token });
    }

    /// Requests the simulation loop to stop at the next opportunity.
    pub fn stage_stop(&self) {
        self.shared.lock().unwrap().stop = true;
    }

    /// Suspends the calling task for `dur` of virtual time.
    pub fn sleep(&self, dur: SimDuration) -> OpFuture<()> {
        let cell = self.new_op::<()>();
        let done = cell.clone();
        self.stage(dur, Event::closure(move |_| done.complete(())));
        cell.wait()
    }

    /// The task being polled right now. Panics outside task context.
    pub fn current_task(&self) -> TaskId {
        self.shared
            .lock()
            .unwrap()
            .current
            .expect("current_task() called outside task context")
    }

    /// Current virtual time, readable from task context. Applications use
    /// this through `Mpi::time()` for in-program measurements.
    pub fn now(&self) -> crate::time::SimTime {
        self.shared.lock().unwrap().now
    }
}

struct OpInner<T> {
    result: Option<T>,
    waiter: Option<TaskId>,
    exec: SharedExec,
}

/// A one-shot completion cell: the kernel side calls [`OpCell::complete`],
/// the task side awaits [`OpCell::wait`]. Clonable (shared ownership).
pub struct OpCell<T> {
    inner: Arc<Mutex<OpInner<T>>>,
}

impl<T> Clone for OpCell<T> {
    fn clone(&self) -> Self {
        OpCell {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send + 'static> OpCell<T> {
    /// Completes the operation. If a task is waiting it becomes ready.
    ///
    /// Panics if the cell was already completed: operations are one-shot,
    /// a double completion is a kernel bug.
    pub fn complete(&self, value: T) {
        let mut inner = self.inner.lock().unwrap();
        assert!(inner.result.is_none(), "OpCell completed twice");
        inner.result = Some(value);
        if let Some(t) = inner.waiter.take() {
            inner.exec.lock().unwrap().ready.push_back(t);
        }
    }

    /// True once `complete` has been called and the value not yet consumed.
    pub fn is_done(&self) -> bool {
        self.inner.lock().unwrap().result.is_some()
    }

    /// Returns the future resolving to the completed value.
    pub fn wait(&self) -> OpFuture<T> {
        OpFuture {
            inner: self.inner.clone(),
        }
    }
}

/// Future returned by [`OpCell::wait`].
pub struct OpFuture<T> {
    inner: Arc<Mutex<OpInner<T>>>,
}

impl<T: Send + 'static> Future for OpFuture<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(v) = inner.result.take() {
            Poll::Ready(v)
        } else {
            let current = inner
                .exec
                .lock()
                .unwrap()
                .current
                .expect("OpFuture polled outside task context");
            inner.waiter = Some(current);
            Poll::Pending
        }
    }
}

/// Storage for one spawned task.
pub(crate) struct TaskSlot {
    pub(crate) fut: Option<Pin<Box<dyn Future<Output = ()> + Send>>>,
    pub(crate) gen: u32,
    pub(crate) node: Option<crate::kernel::NodeId>,
    pub(crate) on_exit: Option<Box<dyn FnOnce(&mut crate::kernel::Sim) + Send>>,
}

/// A waker that does nothing: readiness is signalled through the executor's
/// ready queue by [`OpCell::complete`], never through `Waker::wake`.
pub(crate) fn noop_waker() -> Waker {
    const VTABLE: RawWakerVTable = RawWakerVTable::new(
        |_| RawWaker::new(std::ptr::null(), &VTABLE),
        |_| {},
        |_| {},
        |_| {},
    );
    // SAFETY: all vtable functions are no-ops; the data pointer is unused.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;

    #[test]
    fn op_cell_completes_before_wait() {
        let mut sim = Sim::new(1);
        let cell = sim.exec().new_op::<u32>();
        cell.complete(5);
        assert!(cell.is_done());
        sim.spawn_detached({
            let cell = cell.clone();
            async move {
                assert_eq!(cell.wait().await, 5);
            }
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "OpCell completed twice")]
    fn double_complete_panics() {
        let sim = Sim::new(1);
        let cell = sim.exec().new_op::<u32>();
        cell.complete(1);
        cell.complete(2);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let mut sim = Sim::new(1);
        let h = sim.exec();
        sim.spawn_detached(async move {
            h.sleep(SimDuration::from_micros(10)).await;
            h.sleep(SimDuration::from_micros(5)).await;
        });
        sim.run();
        assert_eq!(sim.now().as_nanos(), 15_000);
    }

    #[test]
    fn two_tasks_interleave_deterministically() {
        let mut sim = Sim::new(1);
        let log: Arc<Mutex<Vec<(u64, &'static str)>>> = Arc::new(Mutex::new(Vec::new()));
        for (name, step) in [("a", 3u64), ("b", 5u64)] {
            let h = sim.exec();
            let log = log.clone();
            sim.spawn_detached(async move {
                for _ in 0..3 {
                    h.sleep(SimDuration::from_micros(step)).await;
                    log.lock().unwrap().push((step, name));
                }
            });
        }
        sim.run();
        let got = log.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![(3, "a"), (5, "b"), (3, "a"), (3, "a"), (5, "b"), (5, "b")]
        );
        assert_eq!(sim.now().as_nanos(), 15_000);
    }

    #[test]
    fn handles_and_cells_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ExecHandle>();
        assert_send::<OpCell<u64>>();
        assert_send::<OpFuture<()>>();
        assert_send::<TaskId>();
    }
}
