//! Centralized parsing of `VLOG_*` environment knobs.
//!
//! Every env-tunable knob in the workspace (`VLOG_THREADS`,
//! `VLOG_EXPLORE_DEPTH`, `VLOG_EXPLORE_SCHEDULES`, ...) shares one
//! warn-and-fallback contract: an *unset* variable silently uses its
//! default, while a malformed or meaningless value is **not** silently
//! absorbed — the knob falls back to the default with a warning on
//! stderr, so a typo'd CI variable shows up in the logs instead of as a
//! mysteriously mis-budgeted run. Parsing is pure ([`parse_positive`],
//! [`parse_any`]) so both failure modes are unit-testable without
//! touching the process-global, race-prone environment.

use std::fmt;

/// Why a knob override string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnobError {
    /// The value parsed as zero where zero is meaningless (no worker
    /// threads, no explored schedules, ...).
    Zero,
    /// The value did not parse as an unsigned integer.
    NotANumber(String),
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobError::Zero => write!(f, "0 is not a usable value here"),
            KnobError::NotANumber(raw) => {
                write!(f, "{raw:?} is not an unsigned integer")
            }
        }
    }
}

/// Parses a positive (non-zero) unsigned integer override. Pure.
pub fn parse_positive(raw: &str) -> Result<u64, KnobError> {
    match parse_any(raw)? {
        0 => Err(KnobError::Zero),
        n => Ok(n),
    }
}

/// Parses an unsigned integer override where any value — zero included
/// (e.g. an RNG seed) — is meaningful. Accepts decimal or `0x`-prefixed
/// hex (seeds are conventionally quoted in hex). Pure.
pub fn parse_any(raw: &str) -> Result<u64, KnobError> {
    let s = raw.trim();
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    parsed.map_err(|_| KnobError::NotANumber(raw.to_string()))
}

/// Looks up `name` and parses it with `parse`, falling back to
/// `default()` (silently when unset, with a stderr warning when
/// malformed).
fn knob<T: fmt::Display>(
    name: &str,
    parse: impl FnOnce(&str) -> Result<u64, KnobError>,
    convert: impl FnOnce(u64) -> T,
    default: impl FnOnce() -> T,
) -> T {
    match std::env::var(name) {
        Err(_) => default(),
        Ok(raw) => match parse(&raw) {
            Ok(n) => convert(n),
            Err(e) => {
                let fallback = default();
                eprintln!(
                    "warning: ignoring {name}={raw:?} ({e}); \
                     falling back to {fallback}"
                );
                fallback
            }
        },
    }
}

/// Reads env knob `name` as a positive integer with warn-and-fallback.
pub fn positive_u64(name: &str, default: u64) -> u64 {
    knob(name, parse_positive, |n| n, || default)
}

/// [`positive_u64`] narrowed to `usize`, with a lazily computed default
/// (e.g. the machine's available parallelism for `VLOG_THREADS`).
pub fn positive_usize_or_else(name: &str, default: impl FnOnce() -> usize) -> usize {
    knob(name, parse_positive, |n| n as usize, default)
}

/// Reads env knob `name` as an arbitrary `u64` (zero allowed — seeds)
/// with warn-and-fallback.
pub fn any_u64(name: &str, default: u64) -> u64 {
    knob(name, parse_any, |n| n, || default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_rejected_where_meaningless() {
        assert_eq!(parse_positive("0"), Err(KnobError::Zero));
        assert_eq!(parse_positive(" 0 "), Err(KnobError::Zero));
        assert_eq!(parse_any("0"), Ok(0), "zero is fine for seed-like knobs");
    }

    #[test]
    fn hex_seeds_parse() {
        assert_eq!(parse_any("0x19052005"), Ok(0x1905_2005));
        assert_eq!(parse_any(" 0XFF "), Ok(255));
        assert_eq!(parse_positive("0x10"), Ok(16));
        assert_eq!(
            parse_any("0x"),
            Err(KnobError::NotANumber("0x".to_string()))
        );
        assert_eq!(
            parse_any("0xzz"),
            Err(KnobError::NotANumber("0xzz".to_string()))
        );
    }

    #[test]
    fn non_numeric_values_are_rejected() {
        for raw in ["four", "", "4x", "-2", "1.5"] {
            assert_eq!(
                parse_positive(raw),
                Err(KnobError::NotANumber(raw.to_string())),
                "raw={raw:?}"
            );
            assert_eq!(
                parse_any(raw),
                Err(KnobError::NotANumber(raw.to_string())),
                "raw={raw:?}"
            );
        }
    }

    #[test]
    fn valid_overrides_parse_with_whitespace() {
        assert_eq!(parse_positive("1"), Ok(1));
        assert_eq!(parse_positive(" 16 "), Ok(16));
        assert_eq!(parse_any(" 42 "), Ok(42));
    }

    #[test]
    fn unset_knobs_use_the_default() {
        // An env var that no harness sets: the silent-default path.
        assert_eq!(positive_u64("VLOG_TEST_KNOB_THAT_IS_NEVER_SET", 7), 7);
        assert_eq!(any_u64("VLOG_TEST_KNOB_THAT_IS_NEVER_SET", 0), 0);
        assert_eq!(
            positive_usize_or_else("VLOG_TEST_KNOB_THAT_IS_NEVER_SET", || 3),
            3
        );
    }
}
