//! # vlog-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate on which the MPICH-V reproduction runs. It
//! provides:
//!
//! * a **virtual clock** with nanosecond resolution ([`SimTime`]),
//! * a deterministic **event calendar** and run loop ([`Sim`]): an
//!   arena-backed slab of events plus a hierarchical timer wheel with a
//!   far-future overflow heap ([`calendar`]), dispatching in exact
//!   `(time, sequence)` order with O(1) scheduling and cancellation,
//! * an **actor** model for message/timer-driven services such as
//!   communication daemons, the Event Logger, the checkpoint server and the
//!   dispatcher ([`Actor`]),
//! * a single-threaded **async process model**: simulated application
//!   processes are `async` tasks whose blocking operations are completed by
//!   the kernel ([`exec`]). Killing a process is dropping its future, which
//!   gives fail-stop semantics for free,
//! * a **switched-Ethernet network model** with full-duplex per-NIC
//!   contention and cut-through frame pipelining ([`net`]),
//! * **fault injection** (node crash / restart events),
//! * a pluggable **schedule policy** seam at the calendar pop site for
//!   schedule exploration — same-time reorders, bounded latency
//!   injection, replayable decision traces ([`schedule`]),
//! * byte/time **statistics** used by the benchmark harnesses ([`stats`]),
//! * kernel **self-profiling**: per-phase wall-clock counters behind the
//!   `VLOG_PROFILE` knob ([`profiler`]) — wall time never enters the
//!   deterministic statistics,
//! * a **causality log** with liveness detectors behind the
//!   `VLOG_CAUSALITY` knob ([`causality`]): protocol layers record
//!   `event! { ... caused_by ... }` edges and dangling/absent-cause
//!   analysis turns a hang into a named diagnosis,
//! * shared harness utilities: centralized `VLOG_*` env-knob parsing
//!   ([`env_knob`]) and first-divergence report diffing ([`diff`]).
//!
//! Everything is deterministic: the queue is ordered by `(time, sequence)`,
//! randomness comes from one seeded RNG, and there is exactly one OS thread.
//!
//! ## Example
//!
//! ```
//! use vlog_sim::{Sim, SimDuration};
//!
//! let mut sim = Sim::new(42);
//! let cell = sim.exec().new_op::<u32>();
//! let done = cell.clone();
//! sim.after(SimDuration::from_micros(5), move |_| {
//!     done.complete(7);
//! });
//! let h = sim.exec();
//! sim.spawn_detached(async move {
//!     let v = cell.wait().await;
//!     assert_eq!(v, 7);
//!     h.stage_stop();
//! });
//! sim.run();
//! assert_eq!(sim.now().as_nanos(), 5_000);
//! ```

pub mod calendar;
pub mod causality;
pub mod diff;
pub mod env_knob;
pub mod exec;
pub mod kernel;
pub mod net;
pub mod profiler;
pub mod schedule;
pub mod stats;
pub mod time;

pub use calendar::{EventCalendar, EventKey};
pub use exec::{ExecHandle, OpCell, TaskId};
pub use kernel::{Actor, ActorId, Delivery, Event, NodeId, Sim, SimConfig, TimerHandle};
pub use net::{EthernetParams, HeteroLinks, NetProfile, Network, WireSize, SERVICE_BOUNDARY};
pub use schedule::{
    AppliedTrace, Decision, EventInfo, EventKind, Fifo, PopDecision, SchedulePolicy, ScriptPolicy,
};
pub use stats::{MsgHistogram, Stats};
pub use time::{SimDuration, SimTime};
