//! Simulation statistics.
//!
//! The benchmark harnesses derive every paper table from these counters.
//! Byte counters are split by wire category so that Figure 7 ("piggybacked
//! bytes as a percentage of total exchanged bytes") can be computed exactly;
//! named counters let the protocol crates record protocol-specific
//! quantities (events piggybacked, graph vertices visited, ...) without the
//! kernel knowing about them.

use std::collections::BTreeMap;

use crate::net::WireSize;
use crate::time::SimDuration;

/// Number of power-of-two size buckets: bucket 47 absorbs everything at
/// or above 64 TiB, far beyond any message this simulation moves.
const HIST_BUCKETS: usize = 48;

/// Message-count histogram over power-of-two total-wire-size buckets.
///
/// Bucket `i` counts delivered messages whose total wire size (header +
/// payload + piggyback + control) is in `[2^(i-1)+1, 2^i]` bytes, with
/// bucket 0 holding empty and 1-byte messages. Workload harnesses use it
/// to characterize a traffic shape (LU's sub-kilobyte storms vs FT's
/// megabyte transposes) without logging every message.
#[derive(Clone, PartialEq, Eq)]
pub struct MsgHistogram {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for MsgHistogram {
    fn default() -> Self {
        MsgHistogram {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl MsgHistogram {
    /// Bucket index for a message of `bytes` total wire size.
    fn bucket_of(bytes: u64) -> usize {
        let ceil_log2 = (64 - bytes.saturating_sub(1).leading_zeros()) as usize;
        ceil_log2.min(HIST_BUCKETS - 1)
    }

    /// Records one message of `bytes` total wire size.
    pub fn record(&mut self, bytes: u64) {
        self.buckets[Self::bucket_of(bytes)] += 1;
    }

    /// Total messages recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Messages recorded in the bucket whose upper bound is `2^i` bytes.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Non-empty `(upper_bound_bytes, count)` pairs, smallest sizes first.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i.min(63), c))
    }

    /// Inclusive byte range `[lo, hi]` of bucket `i`: bucket 0 holds 0-
    /// and 1-byte messages, bucket `i > 0` holds `2^(i-1)+1 ..= 2^i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        let i = i.min(HIST_BUCKETS - 1).min(63);
        if i == 0 {
            (0, 1)
        } else {
            ((1u64 << (i - 1)) + 1, 1u64 << i)
        }
    }

    /// Upper bound (bytes) of the largest non-empty bucket, 0 when empty.
    pub fn max_bucket_bytes(&self) -> u64 {
        self.nonzero().map(|(b, _)| b).max().unwrap_or(0)
    }

    /// Merges another histogram into this one, bucket-wise. Commutative
    /// and associative, so shard-local histograms can be combined in any
    /// order.
    pub fn merge(&mut self, other: &MsgHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

impl std::fmt::Debug for MsgHistogram {
    /// Compact sparse form so report fingerprints stay readable, with
    /// each bucket labelled by its full power-of-two byte range:
    /// `{0..=1: 2, 33..=64: 12, 2049..=4096: 3}` — bucket `i > 0` spans
    /// `2^(i-1)+1 ..= 2^i` bytes, bucket 0 holds empty and 1-byte
    /// messages.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (i, &count) in self.buckets.iter().enumerate().filter(|(_, &c)| c > 0) {
            let (lo, hi) = Self::bucket_range(i);
            map.entry(&format_args!("{lo}..={hi}"), &count);
        }
        map.finish()
    }
}

/// Aggregated counters for one simulation run.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Number of network messages delivered.
    pub messages: u64,
    /// Bytes by category, summed over all delivered messages.
    pub bytes: WireSize,
    /// Message-count histogram over power-of-two wire-size buckets.
    pub msg_sizes: MsgHistogram,
    /// Companion histogram over per-message *piggyback* bytes, recorded
    /// only for messages that carry causality piggyback. Shows the shape
    /// of the metadata (is it one fat blob per burst or a trickle?)
    /// where `bytes.piggyback` only shows the volume.
    pub pb_sizes: MsgHistogram,
    /// Named additive counters (protocol-specific). A key belongs to
    /// exactly one of `counters`/`gauges` — additive keys are written
    /// through [`Stats::add`]/[`Stats::bump`], never [`Stats::set_max`].
    counters: BTreeMap<&'static str, u64>,
    /// Named peak gauges (queue depths, outstanding-event highs),
    /// written exclusively through [`Stats::set_max`]. Kept apart from
    /// the additive counters so [`Stats::merge`] can apply the lawful
    /// combine per key class: `+` for counters, `max` for gauges.
    gauges: BTreeMap<&'static str, u64>,
    /// Named duration accumulators (protocol-specific).
    durations: BTreeMap<&'static str, SimDuration>,
}

impl Stats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered message of the given wire size.
    pub fn record_message(&mut self, size: WireSize) {
        self.messages += 1;
        self.bytes.header += size.header;
        self.bytes.payload += size.payload;
        self.bytes.piggyback += size.piggyback;
        self.bytes.control += size.control;
        self.msg_sizes.record(size.total());
        if size.piggyback > 0 {
            self.pb_sizes.record(size.piggyback);
        }
    }

    /// Adds `v` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, key: &'static str, v: u64) {
        *self.counters.entry(key).or_insert(0) += v;
    }

    /// Increments the named counter by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Raises the named gauge to `v` if `v` exceeds its current value
    /// (peak-gauge semantics: queue depths, outstanding-event highs).
    /// A gauge key must never also be written through [`Stats::add`].
    pub fn set_max(&mut self, key: &'static str, v: u64) {
        let slot = self.gauges.entry(key).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Current value of a named counter or gauge (zero if never
    /// written). Keys are disjoint across the two classes, so one
    /// lookup namespace serves both.
    pub fn get(&self, key: &str) -> u64 {
        self.counters
            .get(key)
            .or_else(|| self.gauges.get(key))
            .copied()
            .unwrap_or(0)
    }

    /// Adds to the named duration accumulator.
    pub fn add_time(&mut self, key: &'static str, d: SimDuration) {
        *self.durations.entry(key).or_default() += d;
    }

    /// Current value of a named duration accumulator.
    pub fn get_time(&self, key: &str) -> SimDuration {
        self.durations
            .get(key)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// All named additive counters, sorted by key (deterministic
    /// iteration).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All named peak gauges, sorted by key.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another `Stats` into this one with the lawful combine per
    /// field: `+` for message/byte totals, histogram buckets, additive
    /// counters and durations; `max` for peak gauges. Commutative and
    /// associative (property-tested in `vlog-tests`), so per-shard
    /// accumulators can be folded in any order and always equal the
    /// sequential single-accumulator result.
    pub fn merge(&mut self, other: &Stats) {
        self.messages += other.messages;
        self.bytes.header += other.bytes.header;
        self.bytes.payload += other.bytes.payload;
        self.bytes.piggyback += other.bytes.piggyback;
        self.bytes.control += other.bytes.control;
        self.msg_sizes.merge(&other.msg_sizes);
        self.pb_sizes.merge(&other.pb_sizes);
        for (k, v) in other.counters.iter() {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.gauges.iter() {
            let slot = self.gauges.entry(k).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (k, d) in other.durations.iter() {
            *self.durations.entry(k).or_default() += *d;
        }
    }

    /// All named duration accumulators, sorted by key.
    pub fn durations(&self) -> impl Iterator<Item = (&'static str, SimDuration)> + '_ {
        self.durations.iter().map(|(k, v)| (*k, *v))
    }

    /// Total bytes that crossed the network, all categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.total()
    }

    /// Piggybacked bytes as a percentage of all exchanged bytes
    /// (the Figure 7 metric). Returns 0 for an empty run.
    pub fn piggyback_percent(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            100.0 * self.bytes.piggyback as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accounting() {
        let mut s = Stats::new();
        s.record_message(WireSize {
            header: 10,
            payload: 90,
            piggyback: 0,
            control: 0,
        });
        s.record_message(WireSize {
            header: 10,
            payload: 0,
            piggyback: 100,
            control: 0,
        });
        assert_eq!(s.messages, 2);
        assert_eq!(s.total_bytes(), 210);
        assert!((s.piggyback_percent() - 100.0 * 100.0 / 210.0).abs() < 1e-9);
    }

    #[test]
    fn named_counters_and_durations() {
        let mut s = Stats::new();
        s.bump("events");
        s.add("events", 4);
        assert_eq!(s.get("events"), 5);
        assert_eq!(s.get("missing"), 0);
        s.add_time("pb_send", SimDuration::from_micros(3));
        s.add_time("pb_send", SimDuration::from_micros(2));
        assert_eq!(s.get_time("pb_send").as_nanos(), 5_000);
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["events"]);
    }

    #[test]
    fn empty_run_has_no_piggyback_percent() {
        let s = Stats::new();
        assert_eq!(s.piggyback_percent(), 0.0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = MsgHistogram::default();
        for bytes in [0u64, 1, 2, 3, 64, 65, 1 << 20] {
            h.record(bytes);
        }
        // 0 and 1 land in bucket 0; 2 in bucket 1; 3 in bucket 2 (<=4);
        // 64 in bucket 6; 65 in bucket 7; 1 MiB in bucket 20.
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(6), 1);
        assert_eq!(h.bucket(7), 1);
        assert_eq!(h.bucket(20), 1);
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_bucket_bytes(), 1 << 20);
        let sparse: Vec<_> = h.nonzero().collect();
        assert_eq!(sparse[0], (1, 2));
        assert_eq!(sparse.last().copied(), Some((1 << 20, 1)));
    }

    #[test]
    fn histogram_absorbs_huge_messages_without_overflow() {
        let mut h = MsgHistogram::default();
        h.record(u64::MAX);
        h.record(1u64 << 50);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket(HIST_BUCKETS - 1), 2);
    }

    #[test]
    fn messages_land_in_the_stats_histogram() {
        let mut s = Stats::new();
        s.record_message(WireSize {
            header: 10,
            payload: 90,
            piggyback: 0,
            control: 0,
        });
        assert_eq!(s.msg_sizes.count(), 1);
        assert_eq!(s.msg_sizes.bucket(7), 1); // 100 bytes in 65..=128
        assert_eq!(format!("{:?}", s.msg_sizes), "{65..=128: 1}");
    }

    #[test]
    fn piggyback_histogram_counts_only_carrying_messages() {
        let mut s = Stats::new();
        s.record_message(WireSize {
            header: 10,
            payload: 90,
            piggyback: 0,
            control: 0,
        });
        s.record_message(WireSize {
            header: 10,
            payload: 0,
            piggyback: 100,
            control: 0,
        });
        // Both land in msg_sizes; only the carrier lands in pb_sizes,
        // bucketed by its piggyback bytes alone (100 -> 65..=128).
        assert_eq!(s.msg_sizes.count(), 2);
        assert_eq!(s.pb_sizes.count(), 1);
        assert_eq!(s.pb_sizes.bucket(7), 1);

        let mut other = Stats::new();
        other.record_message(WireSize {
            header: 0,
            payload: 0,
            piggyback: 3,
            control: 0,
        });
        s.merge(&other);
        assert_eq!(s.pb_sizes.count(), 2);
        assert_eq!(s.pb_sizes.bucket(2), 1);
    }

    #[test]
    fn debug_output_names_the_bucket_ranges() {
        let mut h = MsgHistogram::default();
        h.record(0);
        h.record(1);
        h.record(50);
        assert_eq!(format!("{h:?}"), "{0..=1: 2, 33..=64: 1}");
        assert_eq!(MsgHistogram::bucket_range(0), (0, 1));
        assert_eq!(MsgHistogram::bucket_range(1), (2, 2));
        assert_eq!(MsgHistogram::bucket_range(6), (33, 64));
        // The overflow bucket clamps at the largest representable range.
        let (lo, hi) = MsgHistogram::bucket_range(HIST_BUCKETS - 1);
        assert!(lo < hi);
    }

    #[test]
    fn set_max_keeps_the_peak() {
        let mut s = Stats::new();
        s.set_max("peak", 3);
        s.set_max("peak", 9);
        s.set_max("peak", 5);
        assert_eq!(s.get("peak"), 9);
        // set_max on a gauge that was never written creates it.
        s.set_max("fresh", 0);
        assert_eq!(s.get("fresh"), 0);
        // Gauges live in their own namespace, not among the counters.
        assert_eq!(s.counters().count(), 0);
        let gauges: Vec<_> = s.gauges().collect();
        assert_eq!(gauges, vec![("fresh", 0), ("peak", 9)]);
    }

    #[test]
    fn merge_applies_the_lawful_combine_per_field() {
        let mut a = Stats::new();
        a.record_message(WireSize {
            header: 10,
            payload: 90,
            piggyback: 0,
            control: 0,
        });
        a.add("el_records", 3);
        a.set_max("el_peak_queue", 5);
        a.add_time("el_ack_latency", SimDuration::from_micros(2));

        let mut b = Stats::new();
        b.record_message(WireSize {
            header: 10,
            payload: 0,
            piggyback: 100,
            control: 0,
        });
        b.add("el_records", 4);
        b.bump("node_crashes");
        b.set_max("el_peak_queue", 2);
        b.add_time("el_ack_latency", SimDuration::from_micros(3));

        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.messages, 2);
        assert_eq!(ab.total_bytes(), 210);
        assert_eq!(ab.msg_sizes.count(), 2);
        assert_eq!(ab.get("el_records"), 7);
        assert_eq!(ab.get("node_crashes"), 1);
        assert_eq!(ab.get("el_peak_queue"), 5, "gauges merge by max, not +");
        assert_eq!(ab.get_time("el_ack_latency").as_nanos(), 5_000);

        // Commutative: b.merge(a) observes the same totals.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(format!("{ab:?}"), format!("{ba:?}"));
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = MsgHistogram::default();
        a.record(1);
        a.record(100);
        let mut b = MsgHistogram::default();
        b.record(100);
        b.record(1 << 20);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bucket(0), 1);
        assert_eq!(a.bucket(7), 2);
        assert_eq!(a.bucket(20), 1);
    }
}
