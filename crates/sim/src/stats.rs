//! Simulation statistics.
//!
//! The benchmark harnesses derive every paper table from these counters.
//! Byte counters are split by wire category so that Figure 7 ("piggybacked
//! bytes as a percentage of total exchanged bytes") can be computed exactly;
//! named counters let the protocol crates record protocol-specific
//! quantities (events piggybacked, graph vertices visited, ...) without the
//! kernel knowing about them.

use std::collections::BTreeMap;

use crate::net::WireSize;
use crate::time::SimDuration;

/// Aggregated counters for one simulation run.
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Number of network messages delivered.
    pub messages: u64,
    /// Bytes by category, summed over all delivered messages.
    pub bytes: WireSize,
    /// Named integer counters (protocol-specific).
    counters: BTreeMap<&'static str, u64>,
    /// Named duration accumulators (protocol-specific).
    durations: BTreeMap<&'static str, SimDuration>,
}

impl Stats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered message of the given wire size.
    pub fn record_message(&mut self, size: WireSize) {
        self.messages += 1;
        self.bytes.header += size.header;
        self.bytes.payload += size.payload;
        self.bytes.piggyback += size.piggyback;
        self.bytes.control += size.control;
    }

    /// Adds `v` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, key: &'static str, v: u64) {
        *self.counters.entry(key).or_insert(0) += v;
    }

    /// Increments the named counter by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of a named counter (zero if never written).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Adds to the named duration accumulator.
    pub fn add_time(&mut self, key: &'static str, d: SimDuration) {
        *self.durations.entry(key).or_default() += d;
    }

    /// Current value of a named duration accumulator.
    pub fn get_time(&self, key: &str) -> SimDuration {
        self.durations
            .get(key)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// All named counters, sorted by key (deterministic iteration).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All named duration accumulators, sorted by key.
    pub fn durations(&self) -> impl Iterator<Item = (&'static str, SimDuration)> + '_ {
        self.durations.iter().map(|(k, v)| (*k, *v))
    }

    /// Total bytes that crossed the network, all categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.total()
    }

    /// Piggybacked bytes as a percentage of all exchanged bytes
    /// (the Figure 7 metric). Returns 0 for an empty run.
    pub fn piggyback_percent(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            100.0 * self.bytes.piggyback as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accounting() {
        let mut s = Stats::new();
        s.record_message(WireSize {
            header: 10,
            payload: 90,
            piggyback: 0,
            control: 0,
        });
        s.record_message(WireSize {
            header: 10,
            payload: 0,
            piggyback: 100,
            control: 0,
        });
        assert_eq!(s.messages, 2);
        assert_eq!(s.total_bytes(), 210);
        assert!((s.piggyback_percent() - 100.0 * 100.0 / 210.0).abs() < 1e-9);
    }

    #[test]
    fn named_counters_and_durations() {
        let mut s = Stats::new();
        s.bump("events");
        s.add("events", 4);
        assert_eq!(s.get("events"), 5);
        assert_eq!(s.get("missing"), 0);
        s.add_time("pb_send", SimDuration::from_micros(3));
        s.add_time("pb_send", SimDuration::from_micros(2));
        assert_eq!(s.get_time("pb_send").as_nanos(), 5_000);
        let keys: Vec<_> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["events"]);
    }

    #[test]
    fn empty_run_has_no_piggyback_percent() {
        let s = Stats::new();
        assert_eq!(s.piggyback_percent(), 0.0);
    }
}
