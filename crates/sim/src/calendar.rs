//! The arena-backed event calendar: a slab of event slots addressed by
//! stable [`EventKey`] handles, a hierarchical timer wheel for near-future
//! events, and a plain binary heap kept only as far-future overflow.
//!
//! # Ordering contract
//!
//! The calendar dispatches in **exact `(time, seq)` order**, byte-for-byte
//! identical to a global `BinaryHeap` ordered the same way. The wheel only
//! *partitions* events into time ranges; whenever a range becomes current
//! its entries are moved into a small exact-order staging buffer (`cur`)
//! that produces the final order. Determinism therefore does not depend on
//! bucket granularity, cascade timing or insertion pattern.
//!
//! # Structure
//!
//! * **Arena.** Every scheduled event lives in a slab slot — payload,
//!   `(time, seq)` and an intrusive chain link — recycled through a free
//!   list, so the steady-state run loop allocates nothing per event. The
//!   `(idx, gen)` pair is the public [`EventKey`]: stale keys (popped,
//!   cancelled or recycled slots) are detected by a generation mismatch.
//! * **Wheel.** [`LEVELS`] levels of 64 slots; a wheel slot is just the
//!   `u32` head of a chain threaded through the arena's link fields, so
//!   parking an event is two stores and no allocation. A level-`k` slot
//!   spans `64^k` ticks of [`TICK_NS`] nanoseconds; level `k` covers the
//!   next `64^(k+1)` ticks. Insertion picks the level by distance from
//!   the wheel's current tick (O(1)); per-level occupancy bitmaps make
//!   "find the earliest non-empty slot" O(1). Entering a level-`k>0`
//!   slot cascades its chain one level down; entering a level-0 slot
//!   moves it into `cur` (one bulk sort per bucket, O(1) tail pops).
//!   Empty stretches of virtual time are skipped without touching any
//!   slot.
//! * **Overflow.** Events farther than the wheel horizon (~68 s of
//!   virtual time) wait in a binary heap and are folded into the wheel
//!   as the clock approaches them. Experiments in this repo rarely put
//!   anything there; it exists so the wheel never needs resizing.
//!
//! # Cancellation
//!
//! Entries are removed lazily (the industry-standard tombstone scheme —
//! eagerly unlinking from a wheel chain or a heap would be O(n)):
//!
//! * [`EventCalendar::cancel`] frees the payload now and leaves a
//!   tombstone that is silently dropped — it never surfaces from
//!   [`EventCalendar::pop`] and its arena slot returns to the free list
//!   as soon as its container releases it.
//! * [`EventCalendar::detach`] frees the payload now but keeps the
//!   dispatch slot: `pop` still yields `(time, seq, None)` at the
//!   scheduled instant. The kernel uses this for timers of dead actor
//!   incarnations so that event accounting (`events_processed`, clock
//!   advancement) stays byte-identical to the historical behaviour of
//!   dropping them at dispatch time via a generation check.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Nanoseconds per wheel tick (level-0 slot width). Events inside the
/// same tick are ordered exactly by the `cur` staging buffer, so this is
/// a pure performance knob, not a resolution limit.
pub const TICK_NS: u64 = 1 << 12; // 4.096 us
const TICK_SHIFT: u32 = 12;
/// Bits per wheel level (64 slots each).
const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels; the horizon is `64^LEVELS` ticks (~68.7 s).
pub const LEVELS: usize = 4;
/// End-of-chain marker for the intrusive wheel lists.
const NIL: u32 = u32::MAX;

/// Ticks covered by one slot of `level`.
#[inline]
const fn slot_span(level: usize) -> u64 {
    1u64 << (LEVEL_BITS * level as u32)
}

/// Ticks covered by the whole of `level` (64 slots).
#[inline]
const fn level_span(level: usize) -> u64 {
    1u64 << (LEVEL_BITS * (level as u32 + 1))
}

#[inline]
fn tick_of(t: SimTime) -> u64 {
    t.as_nanos() >> TICK_SHIFT
}

/// Stable handle on a scheduled event. Survives any amount of wheel
/// cascading; invalidated when the event pops, is cancelled, or (for
/// detached events) finally dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    idx: u32,
    gen: u32,
}

/// Ordering data plus the arena address, as staged in `cur` and the
/// overflow heap. 24 bytes, `Copy`.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    idx: u32,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One arena slot: the event itself plus its chain link.
///
/// `payload == None` means detached (still dispatches as a counted
/// no-op) or, with `tombstone` set, cancelled (silently dropped). A slot
/// is only returned to the free list by whichever container holds it —
/// a wheel chain, `cur`, or the overflow heap — so chains never dangle.
struct ArenaSlot<T> {
    gen: u32,
    next: u32,
    time: SimTime,
    seq: u64,
    payload: Option<T>,
    tombstone: bool,
}

/// See module docs. `T` is the event payload; the simulation kernel uses
/// its `Event` enum, tests and benches use plain integers.
pub struct EventCalendar<T> {
    slots: Vec<ArenaSlot<T>>,
    free: Vec<u32>,
    seq: u64,
    /// Exact-order staging buffer for the currently active time window,
    /// sorted by `(time, seq)` ascending; `cur_head` is the next dispatch
    /// position (the consumed prefix is reclaimed when the buffer
    /// drains). Refill bulk-sorts a whole bucket once; a later arrival
    /// inside the window is placed by binary search — for the common
    /// burst shape (same tick, rising sequence numbers) that position is
    /// the end, an O(1) push.
    cur: Vec<Entry>,
    cur_head: usize,
    /// Exclusive end of the active window: every pending entry with
    /// `time < cur_end` is in `cur`; everything in the wheel or overflow
    /// is at `cur_end` or later.
    cur_end: SimTime,
    /// Chain heads into the arena, one per wheel slot.
    heads: [[u32; SLOTS]; LEVELS],
    occupied: [u64; LEVELS],
    /// Current wheel position in ticks; never exceeds the earliest
    /// pending wheel/overflow entry's tick.
    wheel_tick: u64,
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Pending pops: live + detached entries (tombstones excluded).
    len: usize,
}

impl<T> Default for EventCalendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventCalendar<T> {
    pub fn new() -> Self {
        EventCalendar {
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            cur: Vec::new(),
            cur_head: 0,
            cur_end: SimTime::ZERO,
            heads: [[NIL; SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            wheel_tick: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending dispatches (live and detached events).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at `time`. Events are dispatched in `(time,
    /// insertion order)`; `time` must not be earlier than the last popped
    /// entry (the kernel asserts this at its own layer).
    pub fn schedule(&mut self, time: SimTime, payload: T) -> EventKey {
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                debug_assert!(slot.payload.is_none() && !slot.tombstone);
                slot.time = time;
                slot.seq = seq;
                slot.payload = Some(payload);
                slot.next = NIL;
                i
            }
            None => {
                self.slots.push(ArenaSlot {
                    gen: 0,
                    next: NIL,
                    time,
                    seq,
                    payload: Some(payload),
                    tombstone: false,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[idx as usize].gen;
        self.insert(Entry { time, seq, idx });
        self.len += 1;
        EventKey { idx, gen }
    }

    /// The `(time, seq)` dispatch position of a pending live entry, or
    /// `None` for a stale key (popped, cancelled, or detached). The
    /// schedule-policy seam uses this to hand a policy the authoritative
    /// dispatch position of an event it just deferred.
    pub fn position_of(&self, key: EventKey) -> Option<(SimTime, u64)> {
        let slot = self.slots.get(key.idx as usize)?;
        (slot.gen == key.gen && slot.payload.is_some() && !slot.tombstone)
            .then(|| (slot.time, slot.seq))
    }

    /// Cancels a pending event: the payload is freed immediately and the
    /// event will never be observed by `pop` (the arena slot is recycled
    /// once its container releases the tombstone). Returns the payload,
    /// or `None` if the key is stale (already popped, cancelled, or
    /// detached).
    pub fn cancel(&mut self, key: EventKey) -> Option<T> {
        let slot = self.slots.get_mut(key.idx as usize)?;
        if slot.gen != key.gen || slot.payload.is_none() {
            return None;
        }
        let payload = slot.payload.take();
        slot.tombstone = true;
        // Invalidate every copy of the key right away; the slot itself
        // stays parked until the wheel/heap/cur naturally reaches it.
        slot.gen = slot.gen.wrapping_add(1);
        self.len -= 1;
        payload
    }

    /// Detaches a pending event: the payload is freed immediately but the
    /// dispatch slot is kept — `pop` still yields `(time, seq, None)` at
    /// the scheduled instant. Returns the payload, or `None` for a stale
    /// key.
    pub fn detach(&mut self, key: EventKey) -> Option<T> {
        let slot = self.slots.get_mut(key.idx as usize)?;
        if slot.gen != key.gen || slot.tombstone {
            return None;
        }
        slot.payload.take()
    }

    /// Time of the next dispatch (live or detached), if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.prepare() {
            self.cur.get(self.cur_head).map(|e| e.time)
        } else {
            None
        }
    }

    /// Pops the next entry in exact `(time, seq)` order. The payload is
    /// `None` for detached events.
    pub fn pop(&mut self) -> Option<(SimTime, u64, EventKey, Option<T>)> {
        if !self.prepare() {
            return None;
        }
        let e = self.cur_pop().expect("prepare guaranteed a head");
        let gen = self.slots[e.idx as usize].gen;
        let payload = self.release(e.idx);
        self.len -= 1;
        Some((e.time, e.seq, EventKey { idx: e.idx, gen }, payload))
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    #[inline]
    fn is_tombstone(&self, e: &Entry) -> bool {
        self.slots[e.idx as usize].tombstone
    }

    /// Advances past the staging head, reclaiming the buffer once the
    /// consumed prefix reaches the end.
    #[inline]
    fn cur_pop(&mut self) -> Option<Entry> {
        let e = self.cur.get(self.cur_head).copied()?;
        self.cur_head += 1;
        if self.cur_head == self.cur.len() {
            self.cur.clear();
            self.cur_head = 0;
        }
        Some(e)
    }

    /// Frees an arena slot and returns whatever payload it still held.
    #[inline]
    fn release(&mut self, idx: u32) -> Option<T> {
        let slot = &mut self.slots[idx as usize];
        let payload = slot.payload.take();
        slot.tombstone = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        payload
    }

    /// Routes an entry to the staging buffer, a wheel chain, or overflow.
    fn insert(&mut self, e: Entry) {
        let t = tick_of(e.time);
        // Into the active exact-order window — or behind the wheel
        // position (possible when tombstone purging advanced the wheel
        // past a fully-cancelled future): `cur` keeps exact order either
        // way, and everything in the wheel/overflow is provably later.
        if e.time < self.cur_end || t < self.wheel_tick {
            // Ascending order: find the first pending entry that sorts
            // after the newcomer. New events carry the highest sequence
            // number, so a same-time burst lands at the end — a plain
            // push with nothing to shift.
            let pos =
                self.cur_head + self.cur[self.cur_head..].partition_point(|x| x.cmp(&e).is_lt());
            self.cur.insert(pos, e);
            return;
        }
        let delta = t - self.wheel_tick;
        for level in 0..LEVELS {
            if delta < level_span(level) {
                let slot = ((t >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.slots[e.idx as usize].next = self.heads[level][slot];
                self.heads[level][slot] = e.idx;
                self.occupied[level] |= 1 << slot;
                return;
            }
        }
        self.overflow.push(Reverse(e));
    }

    /// Earliest candidate wheel slot as `(lower_bound_tick, level, slot)`,
    /// taking wrap-around into account (slots "behind" the current index
    /// belong to the next frame of their level).
    ///
    /// The bound is exact enough to drive the search: for every slot
    /// except the one holding `wheel_tick` itself, entries provably lie
    /// in a single frame, so the arithmetic range start is a reachable
    /// lower bound. The index slot of a level > 0 is the one place where
    /// current-frame and next-frame entries can legally mix (an insert
    /// near the end of a frame may wrap into the same slot one frame
    /// later while its delta stays within the level span), so its bound
    /// is computed from its actual minimum entry — otherwise a
    /// next-frame resident would shadow genuinely earlier slots and
    /// cascading it would re-insert it in place, looping forever.
    fn earliest_wheel_slot(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let idx = ((self.wheel_tick >> shift) & (SLOTS as u64 - 1)) as u32;
            let span = slot_span(level);
            let frame = level_span(level);
            let frame_base = self.wheel_tick & !(frame - 1);
            let ahead = occ & (u64::MAX << idx);
            let wrapped = occ & !(u64::MAX << idx);
            let mut cand: Option<(u64, usize)> = None;
            let mut consider = |bound: u64, slot: usize| {
                if cand.is_none_or(|(b, _)| bound < b) {
                    cand = Some((bound, slot));
                }
            };
            if ahead != 0 {
                let s = ahead.trailing_zeros() as usize;
                if level > 0 && s as u32 == idx {
                    // The index slot can mix current-frame entries with
                    // next-frame ones; its true minimum decides, and the
                    // following ahead slot / first wrapped slot may beat
                    // an all-next-frame index slot.
                    let mut min = u64::MAX;
                    let mut link = self.heads[level][s];
                    while link != NIL {
                        let slot = &self.slots[link as usize];
                        min = min.min(tick_of(slot.time));
                        link = slot.next;
                    }
                    consider(min, s);
                    let rest = ahead & (ahead - 1);
                    if rest != 0 {
                        let s2 = rest.trailing_zeros() as usize;
                        consider(frame_base + s2 as u64 * span, s2);
                    }
                    if wrapped != 0 {
                        let w = wrapped.trailing_zeros() as usize;
                        consider(frame_base + frame + w as u64 * span, w);
                    }
                } else {
                    consider((frame_base + s as u64 * span).max(self.wheel_tick), s);
                }
            } else {
                let w = wrapped.trailing_zeros() as usize;
                consider(frame_base + frame + w as u64 * span, w);
            }
            let (start, slot) = cand.expect("level was occupied");
            // `<=` prefers cascading the highest level on ties: a coarser
            // slot starting at the same tick may hold an equally early
            // entry, so it must be broken up before a level-0 take.
            if best.is_none_or(|(bs, _, _)| start <= bs) {
                best = Some((start, level, slot));
            }
        }
        best
    }

    /// Detaches a wheel slot's chain and returns its head.
    fn take_chain(&mut self, level: usize, slot: usize) -> u32 {
        let head = self.heads[level][slot];
        self.heads[level][slot] = NIL;
        self.occupied[level] &= !(1 << slot);
        head
    }

    /// Refills `cur` from the wheel/overflow. Returns false when the
    /// calendar has nothing pending at all. `cur` must be empty.
    fn refill(&mut self) -> bool {
        debug_assert!(self.cur.is_empty());
        loop {
            // Drop cancelled overflow heads so they never steer refill.
            while let Some(Reverse(e)) = self.overflow.peek() {
                if self.is_tombstone(e) {
                    let idx = e.idx;
                    self.overflow.pop();
                    self.release(idx);
                } else {
                    break;
                }
            }
            let wheel_next = self.earliest_wheel_slot();
            let overflow_next = self.overflow.peek().map(|Reverse(e)| tick_of(e.time));
            match (wheel_next, overflow_next) {
                (None, None) => return false,
                // Wheel empty: jump straight to the overflow head (no
                // occupied slot exists, so no cascade is owed) and fold
                // one level-0 frame's worth of overflow in.
                (None, Some(ot)) => {
                    debug_assert!(ot >= self.wheel_tick);
                    self.wheel_tick = ot;
                    self.fold_overflow_upto(ot + slot_span(1));
                }
                // Overflow head is at or before the earliest wheel slot:
                // fold it (and everything up to that slot) into the wheel
                // so the ordinary wheel path below sees all of it.
                (Some((wt, _, _)), Some(ot)) if ot <= wt => {
                    self.fold_overflow_upto(wt + 1);
                }
                (Some((wt, level, slot)), _) => {
                    debug_assert!(wt >= self.wheel_tick);
                    self.wheel_tick = wt;
                    let mut link = self.take_chain(level, slot);
                    if level == 0 {
                        // This tick becomes the active window.
                        self.cur_end =
                            SimTime::from_nanos((wt << TICK_SHIFT).saturating_add(TICK_NS));
                        while link != NIL {
                            let slot = &self.slots[link as usize];
                            let (e, next) = (
                                Entry {
                                    time: slot.time,
                                    seq: slot.seq,
                                    idx: link,
                                },
                                slot.next,
                            );
                            if slot.tombstone {
                                self.release(link);
                            } else {
                                self.cur.push(e);
                            }
                            link = next;
                        }
                        if !self.cur.is_empty() {
                            self.cur.sort_unstable();
                            return true;
                        }
                        // Chain held only tombstones; keep searching.
                    } else {
                        // Cascade one level down (strictly: re-insertion
                        // lands below `level` because the slot spans
                        // fewer ticks than `level`'s own span).
                        while link != NIL {
                            let slot = &self.slots[link as usize];
                            let (e, next) = (
                                Entry {
                                    time: slot.time,
                                    seq: slot.seq,
                                    idx: link,
                                },
                                slot.next,
                            );
                            if slot.tombstone {
                                self.release(link);
                            } else {
                                self.insert(e);
                            }
                            link = next;
                        }
                    }
                }
            }
        }
    }

    /// Moves overflow entries with `tick < bound` into the wheel.
    fn fold_overflow_upto(&mut self, bound: u64) {
        while let Some(Reverse(e)) = self.overflow.peek() {
            if tick_of(e.time) >= bound {
                break;
            }
            let Reverse(e) = self.overflow.pop().unwrap();
            if self.is_tombstone(&e) {
                self.release(e.idx);
            } else {
                self.insert(e);
            }
        }
    }

    /// Ensures the head of `cur` is a live or detached entry. Returns
    /// false when the calendar is fully drained.
    fn prepare(&mut self) -> bool {
        loop {
            while let Some(e) = self.cur.get(self.cur_head) {
                if self.is_tombstone(e) {
                    let idx = e.idx;
                    self.cur_pop();
                    self.release(idx);
                } else {
                    return true;
                }
            }
            if !self.refill() {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(cal: &mut EventCalendar<u32>) -> Vec<(u64, u64, Option<u32>)> {
        let mut out = Vec::new();
        while let Some((t, s, _k, p)) = cal.pop() {
            out.push((t.as_nanos(), s, p));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut cal = EventCalendar::new();
        cal.schedule(SimTime::from_nanos(50), 0);
        cal.schedule(SimTime::from_nanos(10), 1);
        cal.schedule(SimTime::from_nanos(10), 2);
        cal.schedule(SimTime::from_nanos(7), 3);
        assert_eq!(
            drain(&mut cal),
            vec![
                (7, 3, Some(3)),
                (10, 1, Some(1)),
                (10, 2, Some(2)),
                (50, 0, Some(0))
            ]
        );
    }

    #[test]
    fn spans_every_level_and_overflow() {
        // One event per magnitude: same tick, next tick, each wheel
        // level, far beyond the horizon.
        let times: Vec<u64> = vec![
            1,
            TICK_NS + 1,
            TICK_NS * 100,
            TICK_NS * 5_000,
            TICK_NS * 300_000,
            TICK_NS * 10_000_000,
            TICK_NS * (1 << 25), // beyond the 64^4-tick horizon
        ];
        let mut cal = EventCalendar::new();
        for (i, t) in times.iter().enumerate().rev() {
            cal.schedule(SimTime::from_nanos(*t), i as u32);
        }
        let popped = drain(&mut cal);
        let got: Vec<u64> = popped.iter().map(|(t, _, _)| *t).collect();
        assert_eq!(got, times);
        assert!(popped.iter().all(|(_, _, p)| p.is_some()));
    }

    #[test]
    fn cancel_removes_detach_keeps_slot() {
        let mut cal = EventCalendar::new();
        let a = cal.schedule(SimTime::from_nanos(10), 1u32);
        let b = cal.schedule(SimTime::from_nanos(20), 2);
        let c = cal.schedule(SimTime::from_nanos(30), 3);
        assert_eq!(cal.cancel(a), Some(1));
        assert_eq!(cal.cancel(a), None, "double cancel is a no-op");
        assert_eq!(cal.detach(b), Some(2));
        assert_eq!(cal.detach(b), None, "double detach is a no-op");
        assert_eq!(cal.len(), 2);
        assert_eq!(
            drain(&mut cal),
            vec![(20, 1, None), (30, 2, Some(3))],
            "cancelled entry vanished, detached entry kept its dispatch slot"
        );
        let _ = c;
    }

    #[test]
    fn keys_are_stale_after_pop_and_reuse() {
        let mut cal = EventCalendar::new();
        let a = cal.schedule(SimTime::from_nanos(5), 1u32);
        assert!(cal.pop().is_some());
        assert_eq!(cal.cancel(a), None, "popped key is stale");
        // The freed slot is recycled with a new generation.
        let b = cal.schedule(SimTime::from_nanos(9), 2);
        assert_ne!(a, b);
        assert_eq!(cal.cancel(b), Some(2));
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_exact_order() {
        // Steady-state churn: every popped event schedules a successor a
        // little later, crossing many tick and frame boundaries.
        let mut cal = EventCalendar::new();
        let mut scheduled = Vec::new();
        for i in 0..4u64 {
            cal.schedule(SimTime::from_nanos(i * 37), i as u32);
            scheduled.push((i * 37, i as u32));
        }
        let mut next_id = 4u32;
        let mut popped = Vec::new();
        while let Some((t, _s, _k, p)) = cal.pop() {
            popped.push((t.as_nanos(), p.unwrap()));
            if next_id < 400 {
                // Deterministic pseudo-random stride, often same-tick.
                let stride = (next_id as u64 * 2_654_435_761) % 9_001;
                let at = t + crate::time::SimDuration::from_nanos(stride);
                cal.schedule(at, next_id);
                scheduled.push((at.as_nanos(), next_id));
                next_id += 1;
            }
        }
        // Ground truth: `scheduled` is in sequence order, so a *stable*
        // sort by time is exactly the `(time, seq)` dispatch order —
        // same-time ties included.
        let mut expect = scheduled;
        expect.sort_by_key(|&(t, _)| t);
        assert_eq!(popped, expect);
    }

    #[test]
    fn empty_calendar_behaves() {
        let mut cal = EventCalendar::<u32>::new();
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
        assert!(cal.pop().is_none());
    }

    #[test]
    fn slots_are_reused_without_growing_the_arena() {
        let mut cal = EventCalendar::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                cal.schedule(
                    SimTime::from_nanos(round * 1000 + i),
                    (round * 8 + i) as u32,
                );
            }
            for _ in 0..8 {
                assert!(cal.pop().is_some());
            }
        }
        // Steady-state churn of 8 in flight never needs more than 8
        // arena slots (free-list reuse), regardless of total volume.
        assert!(cal.slots.len() <= 8, "arena grew to {}", cal.slots.len());
    }
}
