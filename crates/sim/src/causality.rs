//! Declarative causality log + liveness diagnostics.
//!
//! The protocols already track causality for recovery; this module
//! surfaces it for observability, modeled on Sui's
//! `sui-causality-log`. Protocol code records *edges* between typed
//! events — "this event happened, caused by that one", "this actor
//! cannot make progress until that event fires", "this message was
//! consumed, someone must have produced it" — into a per-run,
//! **thread-local** log. At analysis time three detectors read the
//! log:
//!
//! * **dangling causes** — an [`expect`]ed cause that no producer ever
//!   fired, annotated with the waiting event, its owner rank and the
//!   causal chain back to the last satisfied event ("replay at rank 3
//!   waiting on a delivery whose determinant batch was never acked"),
//! * **absent causes** — a cause recorded as [`consume`]d (or named in
//!   a `caused_by` edge) with no recorded producer,
//! * **duplicate once-only events** — a [`produced_unique`] contract
//!   violated by a second production (the marker-storm shape: a
//!   finished rank answering the same snapshot id over and over).
//!
//! Like the kernel profiler ([`crate::profiler`]), collection is **off
//! by default**, costs one relaxed atomic load per record site when
//! disabled, and its readings never enter a run report or the
//! determinism fingerprint unless a harness explicitly exports them.
//! All detectors run at analysis time only, so the verdict is
//! insensitive to the order in which edges were recorded — producing
//! after consuming is as well-formed as the reverse.
//!
//! Enablement has three independent sources, strongest first:
//! process-wide [`set_enabled`] (tests/harnesses; environment mutation
//! races under a parallel test runner), the `VLOG_CAUSALITY`
//! environment knob (any non-zero value; also requests the per-run
//! stderr dump), and per-thread [`set_thread_enabled`] (the cluster
//! runner's export path and the property tests, which must not leak
//! enablement into concurrently running tests).

use std::cell::{Cell, RefCell};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::env_knob;

/// Maximum number of `name = value` arguments a [`Key`] carries.
pub const MAX_ARGS: usize = 3;

/// Cap on causal-chain length reported for a dangling cause.
const MAX_CHAIN: usize = 8;

/// A typed event identity: a static kind string plus up to
/// [`MAX_ARGS`] named `u64` arguments. Producer and consumer sides
/// must build *identical* keys — matching is exact, never by prefix or
/// threshold — so key schemas are designed around values both sides
/// know (ranks, sequence numbers, snapshot ids), not clocks.
///
/// Built with the [`crate::ckey!`] macro:
/// `ckey!("det-batch-acked", rank = 3, seq = 7)`.
#[derive(Clone, Copy, Debug)]
pub struct Key {
    kind: &'static str,
    names: &'static [&'static str],
    vals: [u64; MAX_ARGS],
    len: u8,
}

impl Key {
    /// Builds a key from a kind, argument names and values. Prefer
    /// [`crate::ckey!`], which keeps names and values in lockstep.
    pub fn from_parts(kind: &'static str, names: &'static [&'static str], vals: &[u64]) -> Self {
        assert!(
            vals.len() <= MAX_ARGS,
            "causality keys carry at most {MAX_ARGS} args"
        );
        assert_eq!(names.len(), vals.len(), "names/values length mismatch");
        let mut v = [0u64; MAX_ARGS];
        v[..vals.len()].copy_from_slice(vals);
        Key {
            kind,
            names,
            vals: v,
            len: vals.len() as u8,
        }
    }

    /// The event kind string.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Looks up a named argument (for structured test assertions).
    pub fn get(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|i| self.vals[i])
    }

    fn fields(&self) -> &[u64] {
        &self.vals[..self.len as usize]
    }
}

/// Identity is `(kind, argument values)`; argument *names* are fixed
/// per kind by convention and excluded from comparison.
impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.kind
            .cmp(other.kind)
            .then_with(|| self.fields().cmp(other.fields()))
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.kind)?;
        for (i, (name, val)) in self.names.iter().zip(self.fields()).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={val}")?;
        }
        write!(f, "}}")
    }
}

/// Builds a [`Key`]: `ckey!("kind", rank = r, seq = s)`. Argument
/// values are coerced to `u64` with `as`.
#[macro_export]
macro_rules! ckey {
    ($kind:literal $(, $name:ident = $val:expr )* $(,)?) => {{
        const NAMES: &[&str] = &[$(stringify!($name)),*];
        $crate::causality::Key::from_parts($kind, NAMES, &[$(($val) as u64),*])
    }};
}

/// Records a produced event, optionally with a `caused_by` edge:
///
/// ```ignore
/// event!("image-fetched" { rank = r } caused_by "restart-boot" { rank = r });
/// event!("det-batch-shipped" { rank = r, seq = s });
/// ```
#[macro_export]
macro_rules! event {
    ($kind:literal { $($n:ident = $v:expr),* $(,)? }
     caused_by $ck:literal { $($cn:ident = $cv:expr),* $(,)? }) => {
        $crate::causality::produced(
            $crate::ckey!($kind $(, $n = $v)*),
            Some($crate::ckey!($ck $(, $cn = $cv)*)),
        )
    };
    ($kind:literal { $($n:ident = $v:expr),* $(,)? }) => {
        $crate::causality::produced($crate::ckey!($kind $(, $n = $v)*), None)
    };
}

#[derive(Debug, Clone, Copy)]
struct ProducedEntry {
    caused_by: Option<Key>,
    count: u64,
    unique: bool,
}

#[derive(Debug, Clone, Copy)]
struct ExpectEntry {
    waiter: Key,
    owner: u64,
}

#[derive(Default)]
struct Log {
    produced: BTreeMap<Key, ProducedEntry>,
    expects: BTreeMap<Key, ExpectEntry>,
    consumed: BTreeMap<Key, Key>,
    produced_events: u64,
}

thread_local! {
    static LOG: RefCell<Log> = RefCell::new(Log::default());
    /// Per-thread enable bit ([`set_thread_enabled`]).
    static RUN_LOCAL: Cell<bool> = const { Cell::new(false) };
}

/// Programmatic process-wide enable flag ([`set_enabled`]).
static FORCED: AtomicBool = AtomicBool::new(false);

/// `VLOG_CAUSALITY` knob, read once per process.
fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| env_knob::any_u64("VLOG_CAUSALITY", 0) != 0)
}

/// Whether record sites currently collect (process flag, env knob, or
/// thread-local flag).
#[inline]
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || RUN_LOCAL.with(|c| c.get()) || env_enabled()
}

/// Whether the per-run stderr liveness dump is requested
/// (`VLOG_CAUSALITY` only — programmatic enablement collects silently
/// so tests can read the log without spamming stderr).
pub fn report_each_run() -> bool {
    env_enabled()
}

/// Turns collection on or off process-wide, independent of the
/// environment (the determinism conformance sweep force-enables this
/// across all sweep threads).
pub fn set_enabled(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// Turns collection on or off for the calling thread only. Used by the
/// cluster runner's export path and by property tests, neither of
/// which may leak enablement into concurrently running tests.
pub fn set_thread_enabled(on: bool) {
    RUN_LOCAL.with(|c| c.set(on));
}

/// Records that `key` fired, optionally naming its cause. Repeat
/// productions of the same key bump a count; the first recorded cause
/// edge wins. Prefer the [`crate::event!`] macro.
pub fn produced(key: Key, caused_by: Option<Key>) {
    if !enabled() {
        return;
    }
    record(key, caused_by, false);
}

/// [`produced`] plus a once-per-key contract: producing the same key
/// twice is reported as a duplicate (the marker-storm detector).
pub fn produced_unique(key: Key, caused_by: Option<Key>) {
    if !enabled() {
        return;
    }
    record(key, caused_by, true);
}

fn record(key: Key, caused_by: Option<Key>, unique: bool) {
    LOG.with(|l| {
        let mut log = l.borrow_mut();
        log.produced_events += 1;
        let entry = log.produced.entry(key).or_insert(ProducedEntry {
            caused_by: None,
            count: 0,
            unique,
        });
        entry.count += 1;
        entry.unique |= unique;
        if entry.caused_by.is_none() {
            entry.caused_by = caused_by;
        }
    });
}

/// Declares that `waiter` (owned by rank `owner`) cannot make progress
/// until `cause` fires. Satisfied — order-insensitively, at analysis
/// time — by any production of the exact same key; cleared early by
/// [`cancel`] or [`cancel_owner`] when the expectation becomes moot.
pub fn expect(cause: Key, waiter: Key, owner: u64) {
    if !enabled() {
        return;
    }
    LOG.with(|l| {
        l.borrow_mut()
            .expects
            .insert(cause, ExpectEntry { waiter, owner });
    });
}

/// Records that `by` consumed `cause`. A consumed cause with no
/// producer anywhere in the run is reported as absent.
pub fn consume(cause: Key, by: Key) {
    if !enabled() {
        return;
    }
    LOG.with(|l| {
        l.borrow_mut().consumed.entry(cause).or_insert(by);
    });
}

/// Withdraws a single pending expectation (the awaited event became
/// moot — e.g. an Event-Logger shard died and its in-flight batch will
/// be re-offered to the replacement).
pub fn cancel(cause: Key) {
    if !enabled() {
        return;
    }
    LOG.with(|l| {
        l.borrow_mut().expects.remove(&cause);
    });
}

/// Withdraws every pending expectation owned by `owner`. Called when a
/// rank finishes (nothing waits on its progress any more) and when a
/// dead incarnation's expectations are superseded by a recovery boot.
pub fn cancel_owner(owner: u64) {
    if !enabled() {
        return;
    }
    LOG.with(|l| {
        l.borrow_mut().expects.retain(|_, e| e.owner != owner);
    });
}

/// Clears the calling thread's log. The cluster runner resets before
/// and after every run so sweeps on pooled worker threads never see a
/// previous run's edges.
pub fn reset() {
    LOG.with(|l| *l.borrow_mut() = Log::default());
}

/// How an absent cause was referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Recorded through [`consume`].
    Consumed,
    /// Named as a `caused_by` edge of a produced event.
    CausedBy,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::Consumed => write!(f, "consumed"),
            EdgeKind::CausedBy => write!(f, "caused_by"),
        }
    }
}

/// A declared cause that never fired, with the event waiting on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dangling {
    /// The cause key no producer ever recorded.
    pub cause: Key,
    /// The event that declared it cannot progress without `cause`.
    pub waiter: Key,
    /// Rank that owns the expectation.
    pub owner: u64,
    /// Causal chain from `waiter` back through recorded `caused_by`
    /// edges to the last satisfied event (capped, cycle-guarded).
    pub chain: Vec<Key>,
}

/// A cause referenced (consumed or named in a `caused_by` edge) with
/// no recorded producer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Absent {
    /// The producer-less cause key.
    pub cause: Key,
    /// The event that referenced it.
    pub by: Key,
    /// How it was referenced.
    pub edge: EdgeKind,
}

/// A once-per-key contract violated by repeat production.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Duplicate {
    /// The key declared once-only through [`produced_unique`].
    pub key: Key,
    /// How many times it was actually produced.
    pub count: u64,
}

/// The analysis verdict over one run's causality log. `None` in a
/// `RunReport` unless a harness explicitly exported it; never part of
/// a determinism fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LivenessReport {
    /// Expected causes that never fired.
    pub dangling: Vec<Dangling>,
    /// Referenced causes with no producer.
    pub absent: Vec<Absent>,
    /// Violated once-only contracts.
    pub duplicates: Vec<Duplicate>,
    /// Total produced-event records in the log (a coverage gauge: zero
    /// with causality enabled means nothing was instrumented).
    pub produced_events: u64,
}

impl LivenessReport {
    /// True when every detector came back empty.
    pub fn is_clean(&self) -> bool {
        self.dangling.is_empty() && self.absent.is_empty() && self.duplicates.is_empty()
    }

    /// One-line digest for invariant-violation messages.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("liveness clean ({} events)", self.produced_events);
        }
        let mut out = format!(
            "{} dangling, {} absent, {} duplicate",
            self.dangling.len(),
            self.absent.len(),
            self.duplicates.len()
        );
        if let Some(d) = self.dangling.first() {
            out.push_str(&format!(
                "; first dangling: {} awaited by {} (owner rank {})",
                d.cause, d.waiter, d.owner
            ));
        } else if let Some(a) = self.absent.first() {
            out.push_str(&format!(
                "; first absent: {} ({} by {})",
                a.cause, a.edge, a.by
            ));
        } else if let Some(dup) = self.duplicates.first() {
            out.push_str(&format!(
                "; first duplicate: {} produced {} times",
                dup.key, dup.count
            ));
        }
        out
    }
}

fn chain_from(produced: &BTreeMap<Key, ProducedEntry>, start: Key) -> Vec<Key> {
    let mut chain = vec![start];
    let mut cur = start;
    for _ in 0..MAX_CHAIN {
        let Some(entry) = produced.get(&cur) else {
            break;
        };
        let Some(cause) = entry.caused_by else {
            break;
        };
        if chain.contains(&cause) {
            break;
        }
        chain.push(cause);
        cur = cause;
    }
    chain
}

/// Runs all three detectors over the calling thread's log. Pure read —
/// the log is left intact (the watchdog analyzes mid-run; the cluster
/// runner analyzes again at exit). Deterministic: results are ordered
/// by key, not by recording order.
pub fn analyze() -> LivenessReport {
    LOG.with(|l| {
        let log = l.borrow();
        let dangling = log
            .expects
            .iter()
            .filter(|(cause, _)| !log.produced.contains_key(cause))
            .map(|(cause, e)| Dangling {
                cause: *cause,
                waiter: e.waiter,
                owner: e.owner,
                chain: chain_from(&log.produced, e.waiter),
            })
            .collect();
        let mut absent: Vec<Absent> = log
            .consumed
            .iter()
            .filter(|(cause, _)| !log.produced.contains_key(cause))
            .map(|(cause, by)| Absent {
                cause: *cause,
                by: *by,
                edge: EdgeKind::Consumed,
            })
            .collect();
        for (key, entry) in &log.produced {
            if let Some(cause) = entry.caused_by {
                if !log.produced.contains_key(&cause) {
                    absent.push(Absent {
                        cause,
                        by: *key,
                        edge: EdgeKind::CausedBy,
                    });
                }
            }
        }
        absent.sort();
        let duplicates = log
            .produced
            .iter()
            .filter(|(_, e)| e.unique && e.count > 1)
            .map(|(key, e)| Duplicate {
                key: *key,
                count: e.count,
            })
            .collect();
        LivenessReport {
            dangling,
            absent,
            duplicates,
            produced_events: log.produced_events,
        }
    })
}

// `Absent` ordering for the deterministic sort above.
impl PartialOrd for Absent {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Absent {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        (self.cause, self.edge, self.by).cmp(&(other.cause, other.edge, other.by))
    }
}

/// Renders a report as the stderr block the cluster runner prints when
/// `VLOG_CAUSALITY` is set and the watchdog prints on a hang.
pub fn render(label: &str, report: &LivenessReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "liveness [{label}] {} events recorded",
        report.produced_events
    );
    if report.is_clean() {
        let _ = writeln!(out, "  clean: no dangling, absent or duplicate causes");
        return out;
    }
    if !report.dangling.is_empty() {
        let _ = writeln!(out, "  dangling causes: {}", report.dangling.len());
        for d in &report.dangling {
            let _ = writeln!(
                out,
                "    {} waiting on {} (owner rank {})",
                d.waiter, d.cause, d.owner
            );
            if d.chain.len() > 1 {
                let rendered: Vec<String> = d.chain.iter().map(|k| k.to_string()).collect();
                let _ = writeln!(out, "      chain: {}", rendered.join(" <- "));
            }
        }
    }
    if !report.absent.is_empty() {
        let _ = writeln!(out, "  absent causes: {}", report.absent.len());
        for a in &report.absent {
            let _ = writeln!(
                out,
                "    {} {} by {} but never produced",
                a.cause, a.edge, a.by
            );
        }
    }
    if !report.duplicates.is_empty() {
        let _ = writeln!(
            out,
            "  duplicate once-only events: {}",
            report.duplicates.len()
        );
        for dup in &report.duplicates {
            let _ = writeln!(out, "    {} produced {} times", dup.key, dup.count);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test runs enabled-per-thread against a fresh log; the
    /// process-global flag is never touched, so these are safe under a
    /// parallel test runner.
    fn with_log<R>(f: impl FnOnce() -> R) -> R {
        set_thread_enabled(true);
        reset();
        let out = f();
        reset();
        set_thread_enabled(false);
        out
    }

    #[test]
    fn key_identity_ignores_names_but_not_values() {
        let a = ckey!("x", rank = 1, seq = 2);
        let b = ckey!("x", rank = 1, seq = 2);
        let c = ckey!("x", rank = 1, seq = 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c);
        assert_eq!(a.to_string(), "x{rank=1, seq=2}");
        assert_eq!(a.kind(), "x");
        assert_eq!(a.get("seq"), Some(2));
        assert_eq!(a.get("nope"), None);
        let bare = ckey!("bare");
        assert_eq!(bare.to_string(), "bare{}");
    }

    #[test]
    fn dangling_expectation_is_reported_with_chain() {
        with_log(|| {
            event!("node-crashed" { node = 4 });
            event!("restart-boot" { rank = 1 } caused_by "node-crashed" { node = 4 });
            expect(
                ckey!("image-fetched", rank = 1),
                ckey!("restart-boot", rank = 1),
                1,
            );
            let r = analyze();
            assert!(!r.is_clean());
            assert_eq!(r.dangling.len(), 1);
            let d = &r.dangling[0];
            assert_eq!(d.cause, ckey!("image-fetched", rank = 1));
            assert_eq!(d.owner, 1);
            assert_eq!(
                d.chain,
                vec![
                    ckey!("restart-boot", rank = 1),
                    ckey!("node-crashed", node = 4)
                ]
            );
            let text = render("unit", &r);
            assert!(text.contains("restart-boot{rank=1} waiting on image-fetched{rank=1}"));
            assert!(text.contains("chain: restart-boot{rank=1} <- node-crashed{node=4}"));
        });
    }

    #[test]
    fn satisfied_expectation_is_clean_regardless_of_order() {
        with_log(|| {
            // Consume and expect *before* the producer fires: the
            // detectors run at analysis time, so order cannot matter.
            consume(
                ckey!("marker", from = 0, to = 1, id = 9),
                ckey!("rank", r = 1),
            );
            expect(
                ckey!("marker", from = 0, to = 1, id = 9),
                ckey!("snapshot", rank = 1, id = 9),
                1,
            );
            event!("marker" { from = 0, to = 1, id = 9 });
            assert!(analyze().is_clean());
        });
    }

    #[test]
    fn absent_cause_flags_consumes_and_caused_by_edges() {
        with_log(|| {
            consume(ckey!("gc-notice", from = 2, to = 0), ckey!("rank", r = 0));
            event!("replay" { rank = 1 } caused_by "ghost" { rank = 1 });
            let r = analyze();
            assert_eq!(r.absent.len(), 2);
            assert!(r
                .absent
                .iter()
                .any(|a| a.cause == ckey!("gc-notice", from = 2, to = 0)
                    && a.edge == EdgeKind::Consumed));
            assert!(r
                .absent
                .iter()
                .any(|a| a.cause == ckey!("ghost", rank = 1) && a.edge == EdgeKind::CausedBy));
        });
    }

    #[test]
    fn cancel_and_cancel_owner_withdraw_expectations() {
        with_log(|| {
            expect(ckey!("a"), ckey!("w", r = 0), 0);
            expect(ckey!("b"), ckey!("w", r = 1), 1);
            expect(ckey!("c"), ckey!("w", r = 1), 1);
            cancel(ckey!("b"));
            let r = analyze();
            assert_eq!(r.dangling.len(), 2);
            cancel_owner(1);
            let r = analyze();
            assert_eq!(r.dangling.len(), 1);
            assert_eq!(r.dangling[0].cause, ckey!("a"));
        });
    }

    #[test]
    fn unique_contract_reports_duplicates() {
        with_log(|| {
            produced_unique(ckey!("close", rank = 2, id = 3), None);
            assert!(analyze().is_clean());
            produced_unique(ckey!("close", rank = 2, id = 3), None);
            produced_unique(ckey!("close", rank = 2, id = 3), None);
            let r = analyze();
            assert_eq!(r.duplicates.len(), 1);
            assert_eq!(r.duplicates[0].count, 3);
            assert!(render("unit", &r).contains("close{rank=2, id=3} produced 3 times"));
        });
    }

    #[test]
    fn disabled_sites_record_nothing_and_reset_clears() {
        set_thread_enabled(false);
        // Skip when the env knob or a concurrent force-enable is live.
        if !enabled() {
            reset();
            event!("x" { a = 1 });
            expect(ckey!("y"), ckey!("x", a = 1), 0);
            let r = analyze();
            assert!(r.is_clean());
            assert_eq!(r.produced_events, 0);
        }
        with_log(|| {
            event!("x" { a = 1 });
            assert_eq!(analyze().produced_events, 1);
            reset();
            assert_eq!(analyze().produced_events, 0);
        });
    }
}
