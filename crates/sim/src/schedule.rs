//! Pluggable schedule policies: a seam at the kernel's calendar pop site.
//!
//! The kernel dispatches events in exact `(time, seq)` order. For
//! schedule exploration (model-checking-lite) a [`SchedulePolicy`] may
//! intercept each payload-carrying event *before* it dispatches and
//! defer it: the event is re-inserted into the calendar at
//! `time + delta` with a fresh (highest) sequence number, without
//! advancing the clock or the event counter. A zero `delta` therefore
//! reorders the event behind its same-time peers; a positive `delta`
//! injects bounded extra latency (e.g. delays a delivery past a
//! checkpoint marker). [`ScriptPolicy`] additionally keeps every
//! perturbation *sound*: per-channel FIFO order — the reliable-channel
//! assumption the protocols are entitled to — is preserved by holding
//! later same-channel deliveries behind a deferred one.
//!
//! Determinism is preserved: given the same seed and the same policy
//! decisions, the perturbed run is itself byte-reproducible, so any
//! schedule an explorer finds can be replayed from its recorded
//! decision trace. With no policy installed the pop path is untouched;
//! the [`Fifo`] policy consults but always dispatches and is
//! byte-identical to no policy at all (guarded by
//! `crates/sim/tests/schedule_properties.rs`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::kernel::{ActorId, Event, NodeId};
use crate::time::{SimDuration, SimTime};

/// What kind of event is about to dispatch, as visible to a policy.
///
/// Carries enough metadata to make perturbation decisions addressable
/// (which actor, where the message came from, how big it is) without
/// exposing the payload itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Kernel-context work (fault injection, op completion, ...).
    Closure,
    /// A data-less actor wake-up.
    Poke {
        /// Target actor slot.
        actor: ActorId,
    },
    /// An actor timer.
    Timer {
        /// Owning actor slot.
        actor: ActorId,
    },
    /// A message delivery.
    Deliver {
        /// Destination actor slot.
        actor: ActorId,
        /// Node that emitted the message.
        src_node: NodeId,
        /// Total wire bytes of the message.
        bytes: u64,
    },
}

impl EventKind {
    /// Classifies a kernel event (internal; the kernel calls this at the
    /// pop site).
    pub(crate) fn of(event: &Event) -> EventKind {
        match event {
            Event::Closure(_) => EventKind::Closure,
            Event::Poke { actor, .. } => EventKind::Poke { actor: *actor },
            Event::Timer { actor, .. } => EventKind::Timer { actor: *actor },
            Event::Deliver { actor, msg, .. } => EventKind::Deliver {
                actor: *actor,
                src_node: msg.src_node,
                bytes: msg.size.total(),
            },
        }
    }
}

/// Metadata of the event at the head of the calendar, offered to a
/// [`SchedulePolicy`] before dispatch.
#[derive(Debug, Clone, Copy)]
pub struct EventInfo {
    /// Scheduled dispatch instant.
    pub time: SimTime,
    /// Calendar sequence number (stable tiebreaker among same-time
    /// events; together with `time` it addresses this dispatch slot).
    pub seq: u64,
    /// Event classification and addressing metadata.
    pub kind: EventKind,
}

/// A policy's verdict on the event about to dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopDecision {
    /// Dispatch now, in the normal `(time, seq)` position.
    Dispatch,
    /// Re-insert the event at `time + delta` with a fresh sequence
    /// number. `delta == 0` reorders it behind all currently scheduled
    /// same-time events; `delta > 0` injects extra latency. The clock
    /// and `events_processed` are not touched by a deferral.
    ///
    /// Deferring a `Timer` keeps the kernel's crash-detach bookkeeping
    /// intact but invalidates any externally held [`crate::TimerHandle`]
    /// for it (a later cancel becomes a no-op), so policies normally
    /// perturb only deliveries — as [`ScriptPolicy`] does.
    Defer {
        /// Extra latency to inject (zero = same-time reorder).
        delta: SimDuration,
    },
}

/// A schedule policy: consulted by [`crate::Sim`] for every
/// payload-carrying event popped from the calendar (detached no-op
/// slots are never offered). Installed with
/// [`crate::Sim::set_schedule_policy`].
pub trait SchedulePolicy: Send {
    /// Decide the fate of the event described by `info`.
    fn on_pop(&mut self, info: &EventInfo) -> PopDecision;

    /// Called by the kernel immediately after a [`PopDecision::Defer`]
    /// re-inserted the event, with the authoritative `(time, seq)`
    /// dispatch position of the new calendar entry. A stateful policy
    /// uses this to recognize the re-offer exactly when it pops again.
    fn on_deferred(&mut self, new_time: SimTime, new_seq: u64) {
        let _ = (new_time, new_seq);
    }
}

/// The identity policy: always dispatch. A run with `Fifo` installed is
/// byte-identical to a run with no policy at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl SchedulePolicy for Fifo {
    fn on_pop(&mut self, _info: &EventInfo) -> PopDecision {
        PopDecision::Dispatch
    }
}

/// One recorded perturbation decision: the `index`-th message delivery
/// offered to the policy was deferred by `delta`.
///
/// The index counts only `Deliver` events (the policy-visible message
/// stream), which is deterministic given the seed and the decisions
/// applied so far — so a trace of `Decision`s replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Decision {
    /// Position in the run's delivery stream (0-based).
    pub index: u64,
    /// Latency injected at that position (zero = same-time reorder).
    pub delta: SimDuration,
}

/// Shared handle on the decisions a [`ScriptPolicy`] actually applied;
/// read it after the run to get the replayable trace.
pub type AppliedTrace = Arc<Mutex<Vec<Decision>>>;

/// A deterministic perturbation script: defers the `index`-th message
/// delivery by the scripted `delta`. Each entry fires at most once, so
/// any finite script terminates; non-`Deliver` events always dispatch.
///
/// **Per-channel FIFO is preserved.** The protocols above the kernel
/// assume reliable FIFO channels (the TCP connections of the real
/// MPICH-V), so a sound perturbation models *extra latency on a
/// channel*, never reordering within one. The policy therefore tracks,
/// per channel `(src_node, dst actor)`, the deferred instances still in
/// flight — identified by the exact `(time, seq)` position the kernel
/// reports through [`SchedulePolicy::on_deferred`] — plus the highest
/// target assigned so far. A delivery popped while channel-mates are
/// pending is held behind them (re-inserted at the highest target,
/// where its fresher sequence number keeps it last); deferral targets
/// per channel never decrease, so pending instances re-offer — and
/// dispatch — in original channel order. These forced holds are derived
/// deterministically from the script, so they are not recorded as
/// decisions. A scripted deferral of a pending instance that has
/// channel-mates queued behind it is skipped (dispatching the channel
/// head early is sound; pushing it behind its successors is not).
/// Deliveries on *other* channels still overtake freely — that
/// cross-channel reordering is the schedule space being explored.
///
/// The script doubles as the decision trace: running the same script on
/// the same seed replays the same schedule byte-for-byte, and
/// [`ScriptPolicy::applied`] exposes which entries actually fired
/// (entries beyond the run's delivery count are silently unused).
pub struct ScriptPolicy {
    script: BTreeMap<u64, SimDuration>,
    deliveries: u64,
    /// Per-channel FIFO bookkeeping for deferred deliveries in flight.
    channels: BTreeMap<(NodeId, ActorId), ChannelHold>,
    /// Channel whose deferral is awaiting its [`Self::on_deferred`]
    /// position report from the kernel.
    deferring: Option<(NodeId, ActorId)>,
    applied: AppliedTrace,
}

/// Deferred-delivery state of one channel.
#[derive(Default)]
struct ChannelHold {
    /// `(time, seq)` dispatch positions of this channel's deferred
    /// instances, in channel order (targets never decrease and ties
    /// break by the strictly increasing seq).
    pending: std::collections::BTreeSet<(SimTime, u64)>,
    /// Highest deferral target assigned on this channel; later holds
    /// and deferrals never undercut it.
    max_target: SimTime,
}

impl ScriptPolicy {
    /// Builds a policy from a perturbation script. Later duplicates of
    /// an index win (the script is keyed by delivery index).
    pub fn new(script: impl IntoIterator<Item = Decision>) -> ScriptPolicy {
        ScriptPolicy {
            script: script.into_iter().map(|d| (d.index, d.delta)).collect(),
            deliveries: 0,
            channels: BTreeMap::new(),
            deferring: None,
            applied: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle on the decisions applied so far; clone it out before
    /// installing the policy and read it after the run.
    pub fn applied(&self) -> AppliedTrace {
        self.applied.clone()
    }
}

impl SchedulePolicy for ScriptPolicy {
    fn on_pop(&mut self, info: &EventInfo) -> PopDecision {
        let EventKind::Deliver {
            actor, src_node, ..
        } = info.kind
        else {
            return PopDecision::Dispatch;
        };
        let index = self.deliveries;
        self.deliveries += 1;
        let chan = (src_node, actor);
        let hold = self.channels.entry(chan).or_default();
        // A pending instance pops in channel order (targets never
        // decrease, seqs strictly increase), so a match is always the
        // channel's earliest deferred delivery.
        let reoffer = hold.pending.remove(&(info.time, info.seq));
        let scripted = self.script.remove(&index);
        let target = match scripted {
            Some(delta) => {
                if reoffer && !hold.pending.is_empty() {
                    // Re-deferring the channel head behind its queued
                    // successors would reorder the channel; dispatching
                    // it on time is sound. Skip the decision (the spent
                    // index never recurs, so the entry is simply unused).
                    None
                } else {
                    self.applied.lock().unwrap().push(Decision { index, delta });
                    Some((info.time + delta).max(hold.max_target))
                }
            }
            // FIFO hold: this delivery trails deferred channel-mates and
            // must stay behind them. Derived from the script, so not
            // recorded as a decision. (`max_target >= info.time` here:
            // a pending instance's target is never in the past.)
            None if !reoffer && !hold.pending.is_empty() => Some(hold.max_target),
            None => None,
        };
        match target {
            Some(target) => {
                hold.max_target = target;
                self.deferring = Some(chan);
                PopDecision::Defer {
                    delta: target.saturating_since(info.time),
                }
            }
            None => {
                if hold.pending.is_empty() {
                    self.channels.remove(&chan);
                }
                PopDecision::Dispatch
            }
        }
    }

    fn on_deferred(&mut self, new_time: SimTime, new_seq: u64) {
        let chan = self
            .deferring
            .take()
            .expect("on_deferred without a pending deferral");
        self.channels
            .get_mut(&chan)
            .expect("deferring channel exists")
            .pending
            .insert((new_time, new_seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver_info_at(nanos: u64, seq: u64) -> EventInfo {
        EventInfo {
            time: SimTime::ZERO + SimDuration::from_nanos(nanos),
            seq,
            kind: EventKind::Deliver {
                actor: 0,
                src_node: 0,
                bytes: 1,
            },
        }
    }

    fn deliver_info(seq: u64) -> EventInfo {
        deliver_info_at(0, seq)
    }

    #[test]
    fn fifo_always_dispatches() {
        let mut p = Fifo;
        assert_eq!(p.on_pop(&deliver_info(0)), PopDecision::Dispatch);
    }

    #[test]
    fn script_fires_each_entry_once_and_records_it() {
        let mut p = ScriptPolicy::new([Decision {
            index: 1,
            delta: SimDuration::from_nanos(5),
        }]);
        let applied = p.applied();
        assert_eq!(p.on_pop(&deliver_info(0)), PopDecision::Dispatch);
        assert_eq!(
            p.on_pop(&deliver_info(1)),
            PopDecision::Defer {
                delta: SimDuration::from_nanos(5)
            }
        );
        // The kernel reports where the deferred event landed ...
        p.on_deferred(SimTime::ZERO + SimDuration::from_nanos(5), 2);
        // ... and the re-offer at that exact position is a *new* index;
        // the spent entry must not re-fire.
        assert_eq!(p.on_pop(&deliver_info_at(5, 2)), PopDecision::Dispatch);
        assert_eq!(
            &*applied.lock().unwrap(),
            &[Decision {
                index: 1,
                delta: SimDuration::from_nanos(5)
            }]
        );
    }

    #[test]
    fn deferral_holds_later_deliveries_on_the_same_channel() {
        let mut p = ScriptPolicy::new([Decision {
            index: 0,
            delta: SimDuration::from_nanos(100),
        }]);
        let applied = p.applied();
        let info = |t, seq, src| EventInfo {
            time: SimTime::ZERO + SimDuration::from_nanos(t),
            seq,
            kind: EventKind::Deliver {
                actor: 0,
                src_node: src,
                bytes: 1,
            },
        };
        let at = |t| SimTime::ZERO + SimDuration::from_nanos(t);
        // Delivery 0 (channel 0→0) deferred to t=100; the kernel reports
        // the fresh calendar position it landed at.
        assert_eq!(
            p.on_pop(&info(0, 0, 0)),
            PopDecision::Defer {
                delta: SimDuration::from_nanos(100)
            }
        );
        p.on_deferred(at(100), 10);
        // Delivery 1, same channel at t=40: held back to t=100 so channel
        // FIFO survives — but not recorded as a decision.
        assert_eq!(
            p.on_pop(&info(40, 1, 0)),
            PopDecision::Defer {
                delta: SimDuration::from_nanos(60)
            }
        );
        p.on_deferred(at(100), 11);
        // Delivery 2 on a *different* channel overtakes freely.
        assert_eq!(p.on_pop(&info(40, 2, 1)), PopDecision::Dispatch);
        // The deferred pair re-offers at the exact positions the kernel
        // reported and dispatches in original (fresh-seq) order; the
        // holds are spent.
        assert_eq!(p.on_pop(&info(100, 10, 0)), PopDecision::Dispatch);
        assert_eq!(p.on_pop(&info(100, 11, 0)), PopDecision::Dispatch);
        assert_eq!(
            &*applied.lock().unwrap(),
            &[Decision {
                index: 0,
                delta: SimDuration::from_nanos(100)
            }],
            "forced FIFO holds must not pollute the recorded trace"
        );
    }

    #[test]
    fn re_deferring_a_held_channel_head_is_skipped() {
        // Pushing a deferred channel head behind its queued successors
        // would reorder the channel — the scripted decision is dropped
        // and the head dispatches on time instead.
        let mut p = ScriptPolicy::new([
            Decision {
                index: 0,
                delta: SimDuration::from_nanos(100),
            },
            Decision {
                index: 2,
                delta: SimDuration::from_nanos(50),
            },
        ]);
        let applied = p.applied();
        let at = |t| SimTime::ZERO + SimDuration::from_nanos(t);
        let info = |t, seq| EventInfo {
            time: at(t),
            seq,
            kind: EventKind::Deliver {
                actor: 0,
                src_node: 0,
                bytes: 1,
            },
        };
        assert_eq!(
            p.on_pop(&info(0, 0)),
            PopDecision::Defer {
                delta: SimDuration::from_nanos(100)
            }
        );
        p.on_deferred(at(100), 10);
        // Same-channel successor, FIFO-held behind the deferred head.
        assert_eq!(
            p.on_pop(&info(40, 1)),
            PopDecision::Defer {
                delta: SimDuration::from_nanos(60)
            }
        );
        p.on_deferred(at(100), 11);
        // The head re-offers as index 2 — scripted for another deferral,
        // but a successor is queued behind it: skip and dispatch.
        assert_eq!(p.on_pop(&info(100, 10)), PopDecision::Dispatch);
        assert_eq!(p.on_pop(&info(100, 11)), PopDecision::Dispatch);
        assert_eq!(
            &*applied.lock().unwrap(),
            &[Decision {
                index: 0,
                delta: SimDuration::from_nanos(100)
            }],
            "a skipped decision must not be recorded"
        );
    }

    #[test]
    fn script_ignores_non_delivery_events() {
        let mut p = ScriptPolicy::new([Decision {
            index: 0,
            delta: SimDuration::ZERO,
        }]);
        let timer = EventInfo {
            time: SimTime::ZERO,
            seq: 0,
            kind: EventKind::Timer { actor: 3 },
        };
        // Timers neither consume a delivery index nor get deferred.
        assert_eq!(p.on_pop(&timer), PopDecision::Dispatch);
        assert_eq!(
            p.on_pop(&deliver_info(1)),
            PopDecision::Defer {
                delta: SimDuration::ZERO
            }
        );
    }
}
