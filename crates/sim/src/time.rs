//! Virtual time.
//!
//! The simulation clock counts nanoseconds since simulation start in a
//! `u64`, which is enough for ~584 years of virtual time — far beyond any
//! experiment in the paper. All network and CPU cost computations round to
//! whole nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Saturating difference between two instants.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Builds a duration from a fractional second count, rounding to ns.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimDuration((s * 1e9).round() as u64)
    }
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0 && k.is_finite());
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// Saturating: arithmetic at or near the [`SimTime::MAX`] sentinel
    /// (the "run forever" deadline, detection-disabled timeouts, ...)
    /// clamps instead of wrapping past zero in release builds. The
    /// kernel separately asserts that the sentinel itself is never
    /// *scheduled*, so a saturated instant is caught loudly rather than
    /// silently reordering the calendar.
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative SimDuration");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    /// Saturating, for the same reason as `SimTime + SimDuration`.
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

/// Human-friendly rendering with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!(((t + d) - t).as_nanos(), 2_000);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((SimDuration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b).as_nanos(), 0);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
        let d = SimDuration::from_nanos(3);
        assert_eq!(d.saturating_sub(SimDuration::from_nanos(10)).as_nanos(), 0);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 5_000);
        assert_eq!(d.mul_f64(2.0).as_nanos(), 20_000);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn addition_saturates_at_the_sentinel() {
        // Regression: these used to wrap in release builds, scheduling
        // "never" timeouts into the simulation's distant past.
        let big = SimDuration::from_nanos(u64::MAX - 5);
        assert_eq!(SimTime::MAX + big, SimTime::MAX);
        assert_eq!(SimTime::from_nanos(10) + big, SimTime::MAX);
        let mut t = SimTime::from_nanos(u64::MAX - 2);
        t += SimDuration::from_nanos(100);
        assert_eq!(t, SimTime::MAX);
        assert_eq!((big + SimDuration::from_nanos(100)).as_nanos(), u64::MAX);
        let mut d = big;
        d += SimDuration::from_nanos(100);
        assert_eq!(d.as_nanos(), u64::MAX);
        // Ordinary arithmetic is unchanged.
        assert_eq!(
            (SimTime::from_nanos(3) + SimDuration::from_nanos(4)).as_nanos(),
            7
        );
    }
}
