//! Kernel self-profiling: per-phase wall-clock counters.
//!
//! The simulator's headline number is simulated events per wall-second;
//! this module tells you where the wall time goes. Each [`Phase`] of
//! the run loop (calendar operations, event dispatch, network
//! modelling, statistics accounting, piggyback codec work) owns a
//! thread-local accumulator of call count and elapsed nanoseconds,
//! charged through cheap [`scope`] drop-guards placed on the hot paths.
//!
//! Profiling is **off by default** and costs one relaxed atomic load
//! per scope when disabled. It is enabled either by the `VLOG_PROFILE`
//! environment knob (any non-zero value, parsed through
//! [`crate::env_knob`]) or programmatically through [`set_enabled`]
//! (tests and harnesses — environment mutation races across parallel
//! tests, a process-local flag does not).
//!
//! Wall-clock readings never enter [`crate::stats::Stats`] or any run
//! report: reports are part of the determinism fingerprint, and wall
//! time is the one quantity two identical runs legitimately disagree
//! on. Instead the cluster runner prints an Event-Logger-gauge-style
//! block to **stderr** after each run when `VLOG_PROFILE` is set, and
//! harnesses (the explore smoke gate) read [`take`]/[`snapshot`]
//! directly to derive throughput lines such as schedules per second.
//!
//! Phases may nest (the codec scope runs inside a dispatch scope), so
//! the per-phase nanoseconds are *inclusive* and do not sum to the
//! total wall time of the run.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::env_knob;

/// The instrumented sections of the kernel hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Event-calendar operations: popping the next event, peeking the
    /// frontier, re-scheduling.
    Calendar,
    /// Dispatching one popped event into its actor/closure/task
    /// handler (includes all protocol hook work).
    Dispatch,
    /// Network modelling: NIC contention, frame pipelining, delivery
    /// scheduling in [`crate::net`].
    Net,
    /// Statistics accounting: per-message byte/histogram updates.
    Stats,
    /// Piggyback codec work: reduction builds and wire-length
    /// computation in the causal protocols.
    Codec,
}

/// Number of [`Phase`] variants (accumulator array size).
const N_PHASES: usize = 5;

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::Calendar => 0,
            Phase::Dispatch => 1,
            Phase::Net => 2,
            Phase::Stats => 3,
            Phase::Codec => 4,
        }
    }

    /// All phases in reporting order.
    pub fn all() -> [Phase; N_PHASES] {
        [
            Phase::Calendar,
            Phase::Dispatch,
            Phase::Net,
            Phase::Stats,
            Phase::Codec,
        ]
    }

    /// Fixed-width label used in the stderr report.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Calendar => "calendar",
            Phase::Dispatch => "dispatch",
            Phase::Net => "net",
            Phase::Stats => "stats",
            Phase::Codec => "codec",
        }
    }
}

/// One phase's accumulated readings on the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseReading {
    /// Which phase this row describes.
    pub phase: Phase,
    /// Number of scopes charged to the phase.
    pub calls: u64,
    /// Total inclusive wall time of those scopes, nanoseconds.
    pub nanos: u64,
}

thread_local! {
    /// (calls, nanos) per phase, this thread only.
    static ACCUM: RefCell<[(u64, u64); N_PHASES]> =
        const { RefCell::new([(0, 0); N_PHASES]) };
}

/// Programmatic enable flag ([`set_enabled`]).
static FORCED: AtomicBool = AtomicBool::new(false);

/// `VLOG_PROFILE` knob, read once per process.
fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| env_knob::any_u64("VLOG_PROFILE", 0) != 0)
}

/// Whether profiling scopes currently record (knob or programmatic).
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || env_enabled()
}

/// Whether the per-run stderr report is requested (`VLOG_PROFILE` only
/// — [`set_enabled`] collects silently so tests and harnesses can read
/// the counters without spamming every run's stderr).
pub fn report_each_run() -> bool {
    env_enabled()
}

/// Turns profiling collection on or off process-wide, independent of
/// the environment. Used by tests (environment mutation is racy under
/// a parallel test runner) and by harnesses that consume the counters
/// programmatically.
pub fn set_enabled(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// Drop-guard charging its lifetime to a [`Phase`]. Inert (no clock
/// read) when profiling is disabled.
pub struct ScopeGuard {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let d = start.elapsed().as_nanos() as u64;
            ACCUM.with(|a| {
                let cell = &mut a.borrow_mut()[self.phase.index()];
                cell.0 += 1;
                cell.1 += d;
            });
        }
    }
}

/// Opens a profiling scope for `phase`; the elapsed wall time is
/// charged when the guard drops. One relaxed atomic load when
/// profiling is off.
#[inline]
pub fn scope(phase: Phase) -> ScopeGuard {
    ScopeGuard {
        phase,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Current readings of every phase on this thread, reporting order.
pub fn snapshot() -> Vec<PhaseReading> {
    ACCUM.with(|a| {
        let acc = a.borrow();
        Phase::all()
            .iter()
            .map(|&phase| PhaseReading {
                phase,
                calls: acc[phase.index()].0,
                nanos: acc[phase.index()].1,
            })
            .collect()
    })
}

/// [`snapshot`] + reset: returns this thread's readings and zeroes the
/// accumulators, so successive runs on one worker thread report their
/// own deltas.
pub fn take() -> Vec<PhaseReading> {
    let out = snapshot();
    ACCUM.with(|a| *a.borrow_mut() = [(0, 0); N_PHASES]);
    out
}

/// Renders readings as the gauge-style block the cluster runner prints
/// to stderr: one `label: calls / total / per-call` line per non-empty
/// phase, plus an events-per-second headline derived from the dispatch
/// phase.
pub fn render(label: &str, readings: &[PhaseReading]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "profile [{label}]");
    for r in readings {
        if r.calls == 0 {
            continue;
        }
        let per_call = r.nanos as f64 / r.calls as f64;
        let _ = writeln!(
            out,
            "  {:<8} {:>12} calls {:>14} ns {:>10.1} ns/call",
            r.phase.label(),
            r.calls,
            r.nanos,
            per_call
        );
    }
    if let Some(d) = readings
        .iter()
        .find(|r| r.phase == Phase::Dispatch && r.nanos > 0)
    {
        let _ = writeln!(
            out,
            "  events/sec {:.0} (dispatch-phase wall time)",
            d.calls as f64 * 1e9 / d.nanos as f64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers the enable/disable/accumulate/reset cycle: the
    /// enable flag is process-global, so splitting these assertions
    /// across parallel-running tests would race on it.
    #[test]
    fn scopes_accumulate_when_enabled_and_take_resets() {
        set_enabled(true);
        let _ = take();
        {
            let _g = scope(Phase::Calendar);
            std::hint::black_box(0u64);
        }
        {
            let _g = scope(Phase::Calendar);
        }
        let snap = snapshot();
        let cal = snap
            .iter()
            .find(|r| r.phase == Phase::Calendar)
            .copied()
            .unwrap();
        assert_eq!(cal.calls, 2);
        let taken = take();
        assert_eq!(
            taken.iter().map(|r| r.calls).sum::<u64>(),
            snap.iter().map(|r| r.calls).sum::<u64>()
        );
        let cleared = snapshot();
        assert!(cleared.iter().all(|r| r.calls == 0 && r.nanos == 0));
        set_enabled(false);
        // Disabled scopes are inert guards: no clock read, no record.
        // (Skip the assertion when VLOG_PROFILE forces collection on.)
        if !enabled() {
            let before = snapshot();
            {
                let _g = scope(Phase::Net);
            }
            assert_eq!(snapshot(), before);
        }
    }

    #[test]
    fn render_reports_nonzero_phases_only() {
        let rows = vec![
            PhaseReading {
                phase: Phase::Calendar,
                calls: 0,
                nanos: 0,
            },
            PhaseReading {
                phase: Phase::Dispatch,
                calls: 4,
                nanos: 2_000,
            },
        ];
        let text = render("unit", &rows);
        assert!(text.contains("profile [unit]"));
        assert!(!text.contains("calendar"));
        assert!(text.contains("dispatch"));
        assert!(text.contains("events/sec 2000000"));
    }
}
