//! Structural first-divergence diff for determinism fingerprints.
//!
//! The determinism suites and the schedule explorer compare *large*
//! one-line report fingerprints (kernel counters, per-rank protocol
//! stats). A plain `assert_eq!` on mismatch dumps both multi-kilobyte
//! strings, burying the one field that differs. [`first_divergence`]
//! instead locates the first differing position and renders a short
//! context window around it from both sides, so a CI log shows *what*
//! diverged at a glance.

/// Largest number of characters shown on each side of the divergence
/// point.
const CONTEXT: usize = 64;

/// Clamps `i` down to a UTF-8 character boundary of `s`.
fn floor_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Clamps `i` up to a UTF-8 character boundary of `s`.
fn ceil_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

/// A `±CONTEXT`-character window of `s` around byte offset `at`, with
/// ellipses marking elided prefix/suffix.
fn window(s: &str, at: usize) -> String {
    let start = floor_boundary(s, at.saturating_sub(CONTEXT));
    let end = ceil_boundary(s, at.saturating_add(CONTEXT));
    format!(
        "{}{}{}",
        if start > 0 { "…" } else { "" },
        &s[start..end],
        if end < s.len() { "…" } else { "" },
    )
}

/// Describes the first position at which `a` and `b` differ — line,
/// column and a context window from each side — or `None` when they are
/// identical. Works for one-line fingerprints (column-addressed) and
/// multi-line reports (line-addressed) alike.
pub fn first_divergence(a: &str, b: &str) -> Option<String> {
    if a == b {
        return None;
    }
    // First differing byte, clamped to a char boundary for slicing.
    let i = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    let at = floor_boundary(a, floor_boundary(b, i));
    let line = a[..at].matches('\n').count() + 1;
    let col = at - a[..at].rfind('\n').map_or(0, |p| p + 1) + 1;
    Some(format!(
        "first divergence at line {line}, col {col} (byte {at}; \
         left {} bytes, right {} bytes):\n  left:  {}\n  right: {}",
        a.len(),
        b.len(),
        window(a, at),
        window(b, at),
    ))
}

/// First divergence across two report *sequences* (e.g. the job-ordered
/// fingerprint vectors two sweeps produced): names the first differing
/// element, then drills into it with [`first_divergence`]. `None` when
/// the sequences are identical.
pub fn first_report_divergence(a: &[String], b: &[String]) -> Option<String> {
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if let Some(d) = first_divergence(x, y) {
            return Some(format!(
                "report {i} of {} differs; {d}",
                a.len().min(b.len())
            ));
        }
    }
    if a.len() != b.len() {
        return Some(format!(
            "report counts differ: left has {}, right has {} \
             (first {} reports are identical)",
            a.len(),
            b.len(),
            a.len().min(b.len()),
        ));
    }
    None
}

/// Panics with a focused [`first_report_divergence`] message when the
/// two report sequences differ; the determinism suites call this in
/// place of a raw `assert_eq!` dump.
#[track_caller]
pub fn assert_reports_identical(label: &str, a: &[String], b: &[String]) {
    if let Some(d) = first_report_divergence(a, b) {
        panic!("{label}: {d}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_no_divergence() {
        assert_eq!(first_divergence("abc", "abc"), None);
        assert_eq!(first_report_divergence(&[], &[]), None);
    }

    #[test]
    fn divergence_points_at_the_first_differing_field() {
        let a = "suite=causal completed=true events=100 stats=ok";
        let b = "suite=causal completed=true events=101 stats=ok";
        let d = first_divergence(a, b).unwrap();
        assert!(d.contains("col 38"), "{d}");
        assert!(d.contains("events=100"), "{d}");
        assert!(d.contains("events=101"), "{d}");
    }

    #[test]
    fn long_fingerprints_are_windowed_not_dumped() {
        let a = format!("{}X{}", "a".repeat(500), "b".repeat(500));
        let b = format!("{}Y{}", "a".repeat(500), "b".repeat(500));
        let d = first_divergence(&a, &b).unwrap();
        assert!(d.len() < 500, "context must stay short: {} bytes", d.len());
        assert!(d.contains('…'), "{d}");
        assert!(d.contains("byte 500"), "{d}");
    }

    #[test]
    fn prefix_relationship_is_reported() {
        let d = first_divergence("abc", "abcdef").unwrap();
        assert!(d.contains("left 3 bytes, right 6 bytes"), "{d}");
    }

    #[test]
    fn multiline_divergence_is_line_addressed() {
        let a = "one\ntwo\nthree";
        let b = "one\ntwVo\nthree";
        let d = first_divergence(a, b).unwrap();
        assert!(d.contains("line 2, col 3"), "{d}");
    }

    #[test]
    fn report_vectors_name_the_differing_element() {
        let a = vec!["same".to_string(), "left".to_string()];
        let b = vec!["same".to_string(), "right".to_string()];
        let d = first_report_divergence(&a, &b).unwrap();
        assert!(d.starts_with("report 1 of 2"), "{d}");
        let short = vec!["same".to_string()];
        let d = first_report_divergence(&a, &short).unwrap();
        assert!(d.contains("report counts differ"), "{d}");
    }

    #[test]
    #[should_panic(expected = "determinism: report 0")]
    fn assert_helper_panics_with_context() {
        assert_reports_identical("determinism", &["a".to_string()], &["b".to_string()]);
    }

    #[test]
    fn utf8_divergence_stays_on_char_boundaries() {
        let a = "makespan=4.096µs events=10";
        let b = "makespan=4.096µs events=11";
        let d = first_divergence(a, b).unwrap();
        assert!(d.contains("events=10"), "{d}");
    }
}
