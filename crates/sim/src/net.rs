//! Switched-Ethernet network model.
//!
//! The paper's cluster is 32 nodes on a single Fast-Ethernet (100 Mbit/s)
//! switch. The phenomena the evaluation depends on are first-order link
//! effects, which this model captures:
//!
//! * **serialization**: a message of `b` bytes occupies the sender's NIC
//!   egress for `b / effective_bandwidth`,
//! * **cut-through pipelining**: the receiver's link starts draining after
//!   one propagation latency, so streaming throughput equals line rate and
//!   is *not* halved by store-and-forward at message granularity (matching
//!   NetPIPE's ~90 Mbit/s on 100 Mbit/s hardware),
//! * **contention**: per-node egress and ingress are busy resources; the
//!   Event Logger saturating its ingress under LU/16 (paper §V-D.1) emerges
//!   from this rather than being scripted,
//! * **full vs half duplex**: the V daemons exploit full-duplex links while
//!   the P4 baseline serializes send and receive at message level (the
//!   paper credits Vdummy's wins over P4 to exactly this).
//!
//! TCP dynamics (slow start, acks) are abstracted into a constant
//! efficiency factor and a fixed one-way latency, both calibrated against
//! Figure 6 of the paper (see `vlog-bench`, `fig6*`).

use crate::time::{SimDuration, SimTime};

/// Wire-size accounting, split by category so Figure 7 (piggyback bytes as
/// % of total exchanged bytes) can be computed exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSize {
    /// Framing the MPI library itself adds (message headers).
    pub header: u64,
    /// Application payload bytes.
    pub payload: u64,
    /// Causal-protocol piggyback bytes.
    pub piggyback: u64,
    /// Control traffic (acks, event-logger records, checkpoints, markers).
    pub control: u64,
}

impl WireSize {
    pub fn total(&self) -> u64 {
        self.header + self.payload + self.piggyback + self.control
    }

    /// A payload-only size.
    pub fn payload(n: u64) -> WireSize {
        WireSize {
            payload: n,
            ..WireSize::default()
        }
    }

    /// A control-only size.
    pub fn control(n: u64) -> WireSize {
        WireSize {
            control: n,
            ..WireSize::default()
        }
    }
}

/// Parameters of the Ethernet model. Defaults model the paper's testbed:
/// one Fast-Ethernet switch, 100 Mbit/s NICs.
#[derive(Debug, Clone)]
pub struct EthernetParams {
    /// Raw line rate in bits per second.
    pub bandwidth_bps: f64,
    /// Fraction of the line rate usable by payload once TCP/IP framing,
    /// interframe gaps and ack traffic are accounted for.
    pub efficiency: f64,
    /// MTU-sized frame used for the cut-through store granularity.
    pub frame_bytes: u64,
    /// Minimum Ethernet frame.
    pub min_frame_bytes: u64,
    /// Per-message header overhead on the wire (Ethernet+IP+TCP).
    pub per_msg_overhead: u64,
    /// Fixed one-way latency: NIC interrupts, kernel stack, switch transit.
    pub latency: SimDuration,
    /// When true, a node's egress and ingress share one resource
    /// (message-level half duplex, modelling the P4 channel).
    pub half_duplex: bool,
}

impl Default for EthernetParams {
    fn default() -> Self {
        EthernetParams {
            bandwidth_bps: 100e6,
            efficiency: 0.93,
            frame_bytes: 1500,
            min_frame_bytes: 64,
            per_msg_overhead: 66,
            latency: SimDuration::from_nanos(41_500),
            half_duplex: false,
        }
    }
}

impl EthernetParams {
    /// Nanoseconds to push one byte through the effective link rate.
    pub fn ns_per_byte(&self) -> f64 {
        8e9 / (self.bandwidth_bps * self.efficiency)
    }

    /// Serialization delay of `bytes` on one link.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 * self.ns_per_byte()).round() as u64)
    }
}

/// Per-node link occupancy state.
pub struct Network {
    params: EthernetParams,
    tx_free: Vec<SimTime>,
    rx_free: Vec<SimTime>,
}

impl Network {
    pub fn new(params: EthernetParams) -> Self {
        Network {
            params,
            tx_free: Vec::new(),
            rx_free: Vec::new(),
        }
    }

    pub fn params(&self) -> &EthernetParams {
        &self.params
    }

    pub fn ensure_node(&mut self, node: usize) {
        while self.tx_free.len() <= node {
            self.tx_free.push(SimTime::ZERO);
            self.rx_free.push(SimTime::ZERO);
        }
    }

    /// Clears busy state of a crashed node's NIC.
    pub fn reset_node(&mut self, node: usize) {
        self.ensure_node(node);
        self.tx_free[node] = SimTime::ZERO;
        self.rx_free[node] = SimTime::ZERO;
    }

    fn tx(&mut self, node: usize) -> &mut SimTime {
        &mut self.tx_free[node]
    }

    fn rx(&mut self, node: usize) -> &mut SimTime {
        // Half duplex: one shared resource per node.
        if self.params.half_duplex {
            &mut self.tx_free[node]
        } else {
            &mut self.rx_free[node]
        }
    }

    /// Books the transfer of `app_bytes` from `src` to `dst` starting no
    /// earlier than `now`; returns the instant the last byte arrives.
    pub fn send(&mut self, now: SimTime, src: usize, dst: usize, app_bytes: u64) -> SimTime {
        assert_ne!(src, dst, "use loopback for same-node messages");
        self.ensure_node(src.max(dst));
        let p = &self.params;
        let wire_bytes = (app_bytes + p.per_msg_overhead).max(p.min_frame_bytes);
        let ser = p.serialization(wire_bytes);
        let frame_store = p.serialization(wire_bytes.min(p.frame_bytes));
        let latency = p.latency;

        let tx_start = now.max(*self.tx(src));
        let tx_end = tx_start + ser;
        *self.tx(src) = tx_end;

        // Cut-through: first bits reach the destination link one latency
        // after they leave; the destination link must serialize the whole
        // message and cannot finish before the source has finished sending
        // plus one frame of store delay.
        let rx_start = (tx_start + latency).max(*self.rx(dst));
        let rx_end = (rx_start + ser).max(tx_end + latency + frame_store);
        *self.rx(dst) = rx_end;
        rx_end
    }

    /// One-way time for a message on an idle network (no contention).
    /// Useful for model validation and analytic checks in tests.
    pub fn uncontended_one_way(&self, app_bytes: u64) -> SimDuration {
        let p = &self.params;
        let wire_bytes = (app_bytes + p.per_msg_overhead).max(p.min_frame_bytes);
        let ser = p.serialization(wire_bytes);
        let frame_store = p.serialization(wire_bytes.min(p.frame_bytes));
        ser + p.latency + frame_store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(EthernetParams::default())
    }

    #[test]
    fn small_message_latency_is_dominated_by_fixed_costs() {
        let mut n = net();
        let t = n.send(SimTime::ZERO, 0, 1, 1);
        // 67 wire bytes serialized twice (src link + dst link via cut
        // through) + fixed latency: comfortably under 100 us on FastE.
        let one_way = n.uncontended_one_way(1);
        assert_eq!(t.as_nanos(), one_way.as_nanos());
        assert!(one_way.as_micros_f64() > 40.0 && one_way.as_micros_f64() < 80.0);
    }

    #[test]
    fn streaming_throughput_reaches_line_rate() {
        // Send 100 x 64 KiB back to back: total time must be close to the
        // serialization of the total volume, not twice it (cut-through).
        let mut n = net();
        let msg = 64 * 1024u64;
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = n.send(SimTime::ZERO, 0, 1, msg);
        }
        let total_bytes = 100 * (msg + 66);
        let ideal = EthernetParams::default().serialization(total_bytes);
        let slack = last.as_nanos() as f64 / ideal.as_nanos() as f64;
        assert!(slack < 1.02, "throughput collapsed: slack={slack}");
    }

    #[test]
    fn ingress_contention_serializes_two_senders() {
        let mut n = net();
        let msg = 1_000_000u64;
        let a = n.send(SimTime::ZERO, 0, 2, msg);
        let b = n.send(SimTime::ZERO, 1, 2, msg);
        // The second message must queue behind the first on node 2's link.
        let ser = EthernetParams::default().serialization(msg + 66);
        assert!(b > a);
        assert!((b - a).as_nanos() >= ser.as_nanos() * 99 / 100);
    }

    #[test]
    fn full_duplex_overlaps_opposite_directions() {
        let mut n = net();
        let msg = 1_000_000u64;
        let a = n.send(SimTime::ZERO, 0, 1, msg);
        let b = n.send(SimTime::ZERO, 1, 0, msg);
        // Opposite directions share nothing: finish times are identical.
        assert_eq!(a, b);
    }

    #[test]
    fn half_duplex_serializes_opposite_directions() {
        let mut params = EthernetParams::default();
        params.half_duplex = true;
        let mut n = Network::new(params);
        let msg = 1_000_000u64;
        let a = n.send(SimTime::ZERO, 0, 1, msg);
        let b = n.send(SimTime::ZERO, 1, 0, msg);
        assert!(b > a, "half duplex must serialize the two transfers");
    }

    #[test]
    fn reset_clears_busy_state() {
        let mut n = net();
        n.send(SimTime::ZERO, 0, 1, 10_000_000);
        n.reset_node(0);
        n.reset_node(1);
        let t = n.send(SimTime::from_nanos(1), 0, 1, 1);
        assert!(t.as_micros_f64() < 100.0);
    }

    #[test]
    fn tiny_messages_pay_fixed_wire_costs() {
        let p = EthernetParams::default();
        let n = Network::new(p.clone());
        // A 0-byte app message still pays header overhead on the wire, so
        // it is barely cheaper than a 1-byte message and much more than 0.
        let t0 = n.uncontended_one_way(0);
        let t1 = n.uncontended_one_way(1);
        assert!(t0 <= t1);
        assert!(t0.as_micros_f64() > p.latency.as_micros_f64());
        assert!((t1.as_nanos() - t0.as_nanos()) < 1_000);
    }
}
