//! Switched-Ethernet network model behind a pluggable fabric profile.
//!
//! The paper's cluster is 32 nodes on a single Fast-Ethernet (100 Mbit/s)
//! switch. The phenomena the evaluation depends on are first-order link
//! effects, which this model captures:
//!
//! * **serialization**: a message of `b` bytes occupies the sender's NIC
//!   egress for `b / effective_bandwidth`,
//! * **cut-through pipelining**: the receiver's link starts draining after
//!   one propagation latency, so streaming throughput equals line rate and
//!   is *not* halved by store-and-forward at message granularity (matching
//!   NetPIPE's ~90 Mbit/s on 100 Mbit/s hardware),
//! * **contention**: per-node egress and ingress are busy resources; the
//!   Event Logger saturating its ingress under LU/16 (paper §V-D.1) emerges
//!   from this rather than being scripted,
//! * **full vs half duplex**: the V daemons exploit full-duplex links while
//!   the P4 baseline serializes send and receive at message level (the
//!   paper credits Vdummy's wins over P4 to exactly this).
//!
//! TCP dynamics (slow start, acks) are abstracted into a constant
//! efficiency factor and a fixed one-way latency, both calibrated against
//! Figure 6 of the paper (see `vlog-bench`, `fig6*`).
//!
//! [`NetProfile`] generalizes the fabric beyond the paper's testbed: the
//! 2005 Fast-Ethernet switch stays the byte-identical default, and the
//! harnesses can additionally sweep a gigabit switch, bonded multi-NIC
//! nodes and a heterogeneous core/uplink split where the stable service
//! nodes sit behind faster links than the compute ranks. Faster fabrics
//! are what move the Event Logger bottleneck from ack round-trips to the
//! logger's own CPU (see `vlog-core::el` and the `regimes` bench).

use crate::time::{SimDuration, SimTime};

/// Wire-size accounting, split by category so Figure 7 (piggyback bytes as
/// % of total exchanged bytes) can be computed exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSize {
    /// Framing the MPI library itself adds (message headers).
    pub header: u64,
    /// Application payload bytes.
    pub payload: u64,
    /// Causal-protocol piggyback bytes.
    pub piggyback: u64,
    /// Control traffic (acks, event-logger records, checkpoints, markers).
    pub control: u64,
}

impl WireSize {
    pub fn total(&self) -> u64 {
        self.header + self.payload + self.piggyback + self.control
    }

    /// A payload-only size.
    pub fn payload(n: u64) -> WireSize {
        WireSize {
            payload: n,
            ..WireSize::default()
        }
    }

    /// A control-only size.
    pub fn control(n: u64) -> WireSize {
        WireSize {
            control: n,
            ..WireSize::default()
        }
    }
}

/// Parameters of one Ethernet link class. Defaults model the paper's
/// testbed: one Fast-Ethernet switch, 100 Mbit/s NICs.
#[derive(Debug, Clone)]
pub struct EthernetParams {
    /// Raw line rate in bits per second.
    pub bandwidth_bps: f64,
    /// Fraction of the line rate usable by payload once TCP/IP framing,
    /// interframe gaps and ack traffic are accounted for.
    pub efficiency: f64,
    /// MTU-sized frame used for the cut-through store granularity.
    pub frame_bytes: u64,
    /// Minimum Ethernet frame.
    pub min_frame_bytes: u64,
    /// Per-message header overhead on the wire (Ethernet+IP+TCP).
    pub per_msg_overhead: u64,
    /// Fixed one-way latency: NIC interrupts, kernel stack, switch transit.
    pub latency: SimDuration,
    /// When true, a node's egress and ingress share one resource
    /// (message-level half duplex, modelling the P4 channel).
    pub half_duplex: bool,
}

impl Default for EthernetParams {
    fn default() -> Self {
        EthernetParams {
            bandwidth_bps: 100e6,
            efficiency: 0.93,
            frame_bytes: 1500,
            min_frame_bytes: 64,
            per_msg_overhead: 66,
            latency: SimDuration::from_nanos(41_500),
            half_duplex: false,
        }
    }
}

impl EthernetParams {
    /// The 2005-era gigabit link class: 10x the line rate and a shorter
    /// fixed latency (server NICs with interrupt coalescing tuned down).
    pub fn gigabit() -> Self {
        EthernetParams {
            bandwidth_bps: 1e9,
            efficiency: 0.93,
            latency: SimDuration::from_nanos(29_500),
            ..EthernetParams::default()
        }
    }

    /// Nanoseconds to push one byte through the effective link rate.
    pub fn ns_per_byte(&self) -> f64 {
        8e9 / (self.bandwidth_bps * self.efficiency)
    }

    /// Serialization delay of `bytes` on one link.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 * self.ns_per_byte()).round() as u64)
    }
}

/// Marker for [`HeteroLinks::fast_from`]: "the fast class starts at the
/// first service node". The cluster builder resolves it to the actual
/// rank count (compute nodes are `0..ranks`, service nodes follow).
pub const SERVICE_BOUNDARY: usize = usize::MAX;

/// Heterogeneous split of a [`NetProfile`]: nodes with id `>= fast_from`
/// attach through `fast` links, everything below through the profile's
/// base links. A transfer serializes at each endpoint's own rate and
/// pays the slower endpoint's fixed latency.
#[derive(Debug, Clone)]
pub struct HeteroLinks {
    /// First node id of the fast class ([`SERVICE_BOUNDARY`] = resolved
    /// to the rank count by the cluster builder, so the stable service
    /// nodes — checkpoint server, dispatcher, Event Logger shards — get
    /// the fast uplinks).
    pub fast_from: usize,
    /// Link class of the fast nodes.
    pub fast: EthernetParams,
}

/// A named network fabric: a base link class, a NIC count per node, and
/// an optional heterogeneous fast class. The Fast-Ethernet-2005 default
/// reproduces the paper's testbed byte-identically (one NIC, one
/// homogeneous link class — the send arithmetic degenerates to exactly
/// the pre-profile model).
#[derive(Debug, Clone)]
pub struct NetProfile {
    /// Stable profile name, used as the report/registry axis key and
    /// accepted by [`NetProfile::by_name`] / `VLOG_NET_PROFILE`.
    pub name: &'static str,
    /// Link class of every node not covered by `hetero`.
    pub base: EthernetParams,
    /// Parallel NIC channels per node (bonded links; 1 = the paper's
    /// single NIC).
    pub nics: usize,
    /// Optional heterogeneous fast class.
    pub hetero: Option<HeteroLinks>,
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile::fast_ethernet_2005()
    }
}

impl NetProfile {
    /// The paper's testbed: one Fast-Ethernet switch. Byte-identical to
    /// the historical hard-coded model.
    pub fn fast_ethernet_2005() -> Self {
        NetProfile {
            name: "fast-ethernet-2005",
            base: EthernetParams::default(),
            nics: 1,
            hetero: None,
        }
    }

    /// A single gigabit switch: 10x line rate everywhere.
    pub fn gigabit() -> Self {
        NetProfile {
            name: "gigabit",
            base: EthernetParams::gigabit(),
            nics: 1,
            hetero: None,
        }
    }

    /// Two bonded gigabit NICs per node (channel bonding): concurrent
    /// transfers spread over the two channels.
    pub fn dual_gigabit() -> Self {
        NetProfile {
            name: "dual-gigabit",
            base: EthernetParams::gigabit(),
            nics: 2,
            hetero: None,
        }
    }

    /// Heterogeneous core/uplink split: compute ranks keep the paper's
    /// Fast-Ethernet NICs, while the stable service nodes (checkpoint
    /// server, dispatcher, Event Logger shards) sit behind gigabit
    /// uplinks — the classic "faster ingress for the servers" upgrade.
    /// The boundary is resolved by the cluster builder (see
    /// [`SERVICE_BOUNDARY`] and [`NetProfile::resolve_service_boundary`]).
    pub fn hetero_uplink() -> Self {
        NetProfile {
            name: "hetero-uplink",
            base: EthernetParams::default(),
            nics: 1,
            hetero: Some(HeteroLinks {
                fast_from: SERVICE_BOUNDARY,
                fast: EthernetParams::gigabit(),
            }),
        }
    }

    /// Every named profile, in presentation order.
    pub fn all() -> Vec<NetProfile> {
        vec![
            NetProfile::fast_ethernet_2005(),
            NetProfile::gigabit(),
            NetProfile::dual_gigabit(),
            NetProfile::hetero_uplink(),
        ]
    }

    /// Looks a profile up by its stable name.
    pub fn by_name(name: &str) -> Option<NetProfile> {
        NetProfile::all().into_iter().find(|p| p.name == name)
    }

    /// Reads the `VLOG_NET_PROFILE` env knob with the workspace's
    /// warn-and-fallback contract: unset silently uses `default`, an
    /// unknown name warns on stderr and falls back.
    pub fn from_env_or(default: NetProfile) -> NetProfile {
        match std::env::var("VLOG_NET_PROFILE") {
            Err(_) => default,
            Ok(raw) => match NetProfile::by_name(raw.trim()) {
                Some(p) => p,
                None => {
                    let known: Vec<&str> = NetProfile::all().iter().map(|p| p.name).collect();
                    eprintln!(
                        "warning: ignoring VLOG_NET_PROFILE={raw:?} (unknown profile; \
                         known: {known:?}); falling back to {}",
                        default.name
                    );
                    default
                }
            },
        }
    }

    /// Pins a [`SERVICE_BOUNDARY`] heterogeneous split to the actual
    /// compute/service boundary (node ids `>= ranks` are service nodes).
    /// No-op for homogeneous profiles or already-resolved boundaries.
    pub fn resolve_service_boundary(&mut self, ranks: usize) {
        if let Some(h) = self.hetero.as_mut() {
            if h.fast_from == SERVICE_BOUNDARY {
                h.fast_from = ranks;
            }
        }
    }

    /// The link class `node` attaches through.
    pub fn node_params(&self, node: usize) -> &EthernetParams {
        match &self.hetero {
            Some(h) if node >= h.fast_from => &h.fast,
            _ => &self.base,
        }
    }
}

/// Per-node link occupancy state under a [`NetProfile`]. Each node owns
/// `nics` egress and `nics` ingress channels; a transfer books the
/// earliest-free channel on each side (lowest index on ties, so channel
/// selection is deterministic).
pub struct Network {
    profile: NetProfile,
    /// Flattened `[node][channel]` egress-free times (stride = nics).
    tx_free: Vec<SimTime>,
    /// Flattened `[node][channel]` ingress-free times (stride = nics).
    rx_free: Vec<SimTime>,
}

/// Picks the earliest-free channel (first on ties).
fn pick(channels: &mut [SimTime]) -> &mut SimTime {
    let mut best = 0;
    for (i, t) in channels.iter().enumerate().skip(1) {
        if *t < channels[best] {
            best = i;
        }
    }
    &mut channels[best]
}

impl Network {
    pub fn new(profile: NetProfile) -> Self {
        assert!(profile.nics >= 1, "a node needs at least one NIC");
        Network {
            profile,
            tx_free: Vec::new(),
            rx_free: Vec::new(),
        }
    }

    /// Compatibility constructor: a homogeneous single-NIC fabric from
    /// raw link parameters.
    pub fn from_params(params: EthernetParams) -> Self {
        Network::new(NetProfile {
            name: "custom",
            base: params,
            nics: 1,
            hetero: None,
        })
    }

    /// The base link-class parameters of the fabric.
    pub fn params(&self) -> &EthernetParams {
        &self.profile.base
    }

    /// The fabric profile.
    pub fn profile(&self) -> &NetProfile {
        &self.profile
    }

    pub fn ensure_node(&mut self, node: usize) {
        let need = (node + 1) * self.profile.nics;
        while self.tx_free.len() < need {
            self.tx_free.push(SimTime::ZERO);
            self.rx_free.push(SimTime::ZERO);
        }
    }

    /// Clears busy state of a crashed node's NIC(s).
    pub fn reset_node(&mut self, node: usize) {
        self.ensure_node(node);
        let k = self.profile.nics;
        for ch in 0..k {
            self.tx_free[node * k + ch] = SimTime::ZERO;
            self.rx_free[node * k + ch] = SimTime::ZERO;
        }
    }

    fn tx(&mut self, node: usize) -> &mut SimTime {
        let k = self.profile.nics;
        pick(&mut self.tx_free[node * k..(node + 1) * k])
    }

    fn rx(&mut self, node: usize) -> &mut SimTime {
        // Half duplex: egress and ingress share the node's channel(s).
        let k = self.profile.nics;
        if self.profile.base.half_duplex {
            pick(&mut self.tx_free[node * k..(node + 1) * k])
        } else {
            pick(&mut self.rx_free[node * k..(node + 1) * k])
        }
    }

    /// Books the transfer of `app_bytes` from `src` to `dst` starting no
    /// earlier than `now`; returns the instant the last byte arrives.
    ///
    /// Each endpoint serializes at its own link class's rate; the fixed
    /// latency is the slower endpoint's. For a homogeneous single-NIC
    /// profile this is byte-identical to the paper-testbed model.
    pub fn send(&mut self, now: SimTime, src: usize, dst: usize, app_bytes: u64) -> SimTime {
        assert_ne!(src, dst, "use loopback for same-node messages");
        self.ensure_node(src.max(dst));
        let sp = self.profile.node_params(src);
        let dp = self.profile.node_params(dst);
        let wire_bytes = (app_bytes + sp.per_msg_overhead).max(sp.min_frame_bytes);
        let ser_tx = sp.serialization(wire_bytes);
        let ser_rx = dp.serialization(wire_bytes);
        let frame_store = dp.serialization(wire_bytes.min(dp.frame_bytes));
        let latency = sp.latency.max(dp.latency);

        let tx = self.tx(src);
        let tx_start = now.max(*tx);
        let tx_end = tx_start + ser_tx;
        *tx = tx_end;

        // Cut-through: first bits reach the destination link one latency
        // after they leave; the destination link must serialize the whole
        // message and cannot finish before the source has finished sending
        // plus one frame of store delay.
        let rx = self.rx(dst);
        let rx_start = (tx_start + latency).max(*rx);
        let rx_end = (rx_start + ser_rx).max(tx_end + latency + frame_store);
        *rx = rx_end;
        rx_end
    }

    /// One-way time for a message on an idle network (no contention),
    /// over the base link class. Useful for model validation and
    /// analytic checks in tests.
    pub fn uncontended_one_way(&self, app_bytes: u64) -> SimDuration {
        let p = &self.profile.base;
        let wire_bytes = (app_bytes + p.per_msg_overhead).max(p.min_frame_bytes);
        let ser = p.serialization(wire_bytes);
        let frame_store = p.serialization(wire_bytes.min(p.frame_bytes));
        ser + p.latency + frame_store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetProfile::fast_ethernet_2005())
    }

    #[test]
    fn small_message_latency_is_dominated_by_fixed_costs() {
        let mut n = net();
        let t = n.send(SimTime::ZERO, 0, 1, 1);
        // 67 wire bytes serialized twice (src link + dst link via cut
        // through) + fixed latency: comfortably under 100 us on FastE.
        let one_way = n.uncontended_one_way(1);
        assert_eq!(t.as_nanos(), one_way.as_nanos());
        assert!(one_way.as_micros_f64() > 40.0 && one_way.as_micros_f64() < 80.0);
    }

    #[test]
    fn streaming_throughput_reaches_line_rate() {
        // Send 100 x 64 KiB back to back: total time must be close to the
        // serialization of the total volume, not twice it (cut-through).
        let mut n = net();
        let msg = 64 * 1024u64;
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = n.send(SimTime::ZERO, 0, 1, msg);
        }
        let total_bytes = 100 * (msg + 66);
        let ideal = EthernetParams::default().serialization(total_bytes);
        let slack = last.as_nanos() as f64 / ideal.as_nanos() as f64;
        assert!(slack < 1.02, "throughput collapsed: slack={slack}");
    }

    #[test]
    fn ingress_contention_serializes_two_senders() {
        let mut n = net();
        let msg = 1_000_000u64;
        let a = n.send(SimTime::ZERO, 0, 2, msg);
        let b = n.send(SimTime::ZERO, 1, 2, msg);
        // The second message must queue behind the first on node 2's link.
        let ser = EthernetParams::default().serialization(msg + 66);
        assert!(b > a);
        assert!((b - a).as_nanos() >= ser.as_nanos() * 99 / 100);
    }

    #[test]
    fn full_duplex_overlaps_opposite_directions() {
        let mut n = net();
        let msg = 1_000_000u64;
        let a = n.send(SimTime::ZERO, 0, 1, msg);
        let b = n.send(SimTime::ZERO, 1, 0, msg);
        // Opposite directions share nothing: finish times are identical.
        assert_eq!(a, b);
    }

    #[test]
    fn half_duplex_serializes_opposite_directions() {
        let mut params = EthernetParams::default();
        params.half_duplex = true;
        let mut n = Network::from_params(params);
        let msg = 1_000_000u64;
        let a = n.send(SimTime::ZERO, 0, 1, msg);
        let b = n.send(SimTime::ZERO, 1, 0, msg);
        assert!(b > a, "half duplex must serialize the two transfers");
    }

    #[test]
    fn reset_clears_busy_state() {
        let mut n = net();
        n.send(SimTime::ZERO, 0, 1, 10_000_000);
        n.reset_node(0);
        n.reset_node(1);
        let t = n.send(SimTime::from_nanos(1), 0, 1, 1);
        assert!(t.as_micros_f64() < 100.0);
    }

    #[test]
    fn tiny_messages_pay_fixed_wire_costs() {
        let p = EthernetParams::default();
        let n = Network::from_params(p.clone());
        // A 0-byte app message still pays header overhead on the wire, so
        // it is barely cheaper than a 1-byte message and much more than 0.
        let t0 = n.uncontended_one_way(0);
        let t1 = n.uncontended_one_way(1);
        assert!(t0 <= t1);
        assert!(t0.as_micros_f64() > p.latency.as_micros_f64());
        assert!((t1.as_nanos() - t0.as_nanos()) < 1_000);
    }

    #[test]
    fn gigabit_profile_is_an_order_faster_on_bulk() {
        let mut faste = net();
        let mut giga = Network::new(NetProfile::gigabit());
        let msg = 1_000_000u64;
        let a = faste.send(SimTime::ZERO, 0, 1, msg);
        let b = giga.send(SimTime::ZERO, 0, 1, msg);
        let ratio = a.as_nanos() as f64 / b.as_nanos() as f64;
        assert!(
            (8.0..12.0).contains(&ratio),
            "gigabit speedup off: {ratio:.1}x"
        );
    }

    #[test]
    fn dual_nic_overlaps_two_ingress_streams() {
        // Two senders into one dual-NIC receiver: each stream takes its
        // own channel, so both finish when a single uncontended transfer
        // would. A single-NIC receiver serializes them.
        let msg = 1_000_000u64;
        let mut dual = Network::new(NetProfile::dual_gigabit());
        let a = dual.send(SimTime::ZERO, 0, 2, msg);
        let b = dual.send(SimTime::ZERO, 1, 2, msg);
        assert_eq!(a, b, "bonded channels must carry the streams in parallel");
        let mut single = Network::new(NetProfile::gigabit());
        let c = single.send(SimTime::ZERO, 0, 2, msg);
        let d = single.send(SimTime::ZERO, 1, 2, msg);
        assert!(d > c, "single NIC must serialize the two streams");
        // A third stream into the dual-NIC receiver queues again.
        let e = dual.send(SimTime::ZERO, 3, 2, msg);
        assert!(e > a);
    }

    #[test]
    fn hetero_uplink_drains_service_ingress_faster() {
        let mut profile = NetProfile::hetero_uplink();
        profile.resolve_service_boundary(2); // nodes >= 2 are service nodes
        let mut n = Network::new(profile);
        let msg = 1_000_000u64;
        // rank -> service: receiver drains at gigabit, so back-to-back
        // records from two ranks queue far less at the service ingress
        // than they would on the all-FastE fabric.
        let a = n.send(SimTime::ZERO, 0, 2, msg);
        let b = n.send(SimTime::ZERO, 1, 2, msg);
        let mut flat = net();
        let fa = flat.send(SimTime::ZERO, 0, 2, msg);
        let fb = flat.send(SimTime::ZERO, 1, 2, msg);
        assert!(
            (b - a).as_nanos() < (fb - fa).as_nanos() / 5,
            "gigabit uplink should collapse the ingress queue: hetero gap {:?} vs flat gap {:?}",
            b - a,
            fb - fa
        );
        // rank -> rank stays pure FastE: byte-identical to the flat fabric
        // (fresh networks so neither side carries leftover occupancy).
        let mut hetero_fresh = Network::new(n.profile().clone());
        let mut flat_fresh = net();
        assert_eq!(
            hetero_fresh.send(SimTime::ZERO, 0, 1, msg),
            flat_fresh.send(SimTime::ZERO, 0, 1, msg)
        );
    }

    #[test]
    fn profiles_resolve_by_name_and_boundary() {
        for p in NetProfile::all() {
            assert_eq!(NetProfile::by_name(p.name).unwrap().name, p.name);
        }
        assert!(NetProfile::by_name("token-ring").is_none());
        let mut h = NetProfile::hetero_uplink();
        assert_eq!(h.hetero.as_ref().unwrap().fast_from, SERVICE_BOUNDARY);
        h.resolve_service_boundary(16);
        assert_eq!(h.hetero.as_ref().unwrap().fast_from, 16);
        h.resolve_service_boundary(4); // already pinned: no-op
        assert_eq!(h.hetero.as_ref().unwrap().fast_from, 16);
        assert_eq!(h.node_params(15).bandwidth_bps, 100e6);
        assert_eq!(h.node_params(16).bandwidth_bps, 1e9);
    }
}
