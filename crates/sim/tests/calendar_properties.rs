//! Property tests of the event calendar: the wheel/arena structure must
//! dispatch in **exactly** the order of the old global binary heap, under
//! any interleaving of schedules, cancellations, detachments and pops.
//!
//! The model is the pre-refactor structure itself — a `BinaryHeap`
//! ordered by `(time, seq)` with lazy skip of cancelled entries — so any
//! divergence is a real ordering (or staleness-detection) bug in the
//! calendar, not a modelling artifact.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use vlog_sim::{EventCalendar, EventKey, SimTime};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Pending,
    Cancelled,
    Detached,
    Popped,
}

/// Reference model: the old heap, plus explicit status tracking.
struct Model {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    status: Vec<Status>,
    seq: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            heap: BinaryHeap::new(),
            status: Vec::new(),
            seq: 0,
        }
    }

    fn schedule(&mut self, time: u64) -> u32 {
        let id = self.status.len() as u32;
        self.status.push(Status::Pending);
        self.heap.push(Reverse((time, self.seq, id)));
        self.seq += 1;
        id
    }

    /// Next dispatch: skips cancelled entries, keeps detached slots.
    fn pop(&mut self) -> Option<(u64, u64, Option<u32>)> {
        while let Some(Reverse((time, seq, id))) = self.heap.pop() {
            match self.status[id as usize] {
                Status::Cancelled => continue,
                Status::Pending => {
                    self.status[id as usize] = Status::Popped;
                    return Some((time, seq, Some(id)));
                }
                Status::Detached => {
                    self.status[id as usize] = Status::Popped;
                    return Some((time, seq, None));
                }
                Status::Popped => unreachable!("popped id still in the model heap"),
            }
        }
        None
    }
}

/// One scripted step. `arg` selects a delay or a victim key.
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule { delay: u64 },
    Cancel { victim: usize },
    Detach { victim: usize },
    Pop,
}

fn decode_op((kind, arg): (u8, u64)) -> Op {
    match kind % 6 {
        // Two schedule arms: near-future delays live in the wheel's low
        // levels; the rare huge ones cross every level and the overflow
        // heap (the wheel horizon is ~2^36 ns).
        0 | 1 => Op::Schedule {
            delay: arg % 50_000_000,
        },
        2 => Op::Schedule {
            delay: (arg % 64) * (1 << 31),
        },
        3 => Op::Cancel {
            victim: arg as usize,
        },
        4 => Op::Detach {
            victim: arg as usize,
        },
        _ => Op::Pop,
    }
}

/// Runs the script through both structures, checking every observation.
fn run_script(raw_ops: &[(u8, u64)]) {
    let mut cal: EventCalendar<u32> = EventCalendar::new();
    let mut model = Model::new();
    let mut keys: Vec<(EventKey, u32)> = Vec::new();
    let mut now = 0u64;
    for &raw in raw_ops {
        match decode_op(raw) {
            Op::Schedule { delay } => {
                let time = now.saturating_add(delay);
                let id = model.schedule(time);
                let key = cal.schedule(SimTime::from_nanos(time), id);
                keys.push((key, id));
            }
            Op::Cancel { victim } if !keys.is_empty() => {
                let (key, id) = keys[victim % keys.len()];
                let expect = model.status[id as usize] == Status::Pending;
                if expect {
                    model.status[id as usize] = Status::Cancelled;
                }
                let got = cal.cancel(key);
                prop_assert_eq!(
                    got.is_some(),
                    expect,
                    "cancel of id {} disagreed with the model",
                    id
                );
                if let Some(p) = got {
                    prop_assert_eq!(p, id);
                }
            }
            Op::Detach { victim } if !keys.is_empty() => {
                let (key, id) = keys[victim % keys.len()];
                let expect = model.status[id as usize] == Status::Pending;
                if expect {
                    model.status[id as usize] = Status::Detached;
                }
                let got = cal.detach(key);
                prop_assert_eq!(
                    got.is_some(),
                    expect,
                    "detach of id {} disagreed with the model",
                    id
                );
            }
            Op::Cancel { .. } | Op::Detach { .. } => {}
            Op::Pop => {
                let want = model.pop();
                let got = cal.pop().map(|(t, s, _k, p)| (t.as_nanos(), s, p));
                prop_assert_eq!(got, want, "pop order diverged from the heap model");
                if let Some((t, _, _)) = got {
                    now = t;
                }
            }
        }
    }
    // Drain both to the end: the tails must agree too.
    loop {
        let want = model.pop();
        let got = cal.pop().map(|(t, s, _k, p)| (t.as_nanos(), s, p));
        prop_assert_eq!(got, want, "drain order diverged from the heap model");
        if got.is_none() {
            prop_assert!(cal.is_empty());
            return;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random `(time, seq)` schedules with interleaved cancellations,
    /// detachments and pops dispatch identically through the old heap
    /// ordering model and the wheel/arena calendar.
    #[test]
    fn calendar_matches_heap_model(
        ops in prop::collection::vec((any::<u8>(), any::<u64>()), 1..120),
    ) {
        run_script(&ops);
    }

    /// Pure schedule-then-drain at wheel-stressing magnitudes: every
    /// level plus the overflow heap, including same-tick collisions.
    #[test]
    fn bulk_drain_is_fully_sorted(
        times in prop::collection::vec(0u64..(1u64 << 40), 1..200),
    ) {
        let mut cal: EventCalendar<u32> = EventCalendar::new();
        for (i, t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_nanos(*t), i as u32);
        }
        let mut want: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, i as u64))
            .collect();
        want.sort_unstable();
        let mut got = Vec::new();
        while let Some((t, s, _k, p)) = cal.pop() {
            prop_assert!(p.is_some());
            got.push((t.as_nanos(), s));
        }
        prop_assert_eq!(got, want);
    }
}
