//! Property tests of the network model: conservation and ordering laws
//! that every higher layer depends on.

use proptest::prelude::*;
use vlog_sim::{EthernetParams, Network, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deliveries on one (src, dst) pair never reorder: FIFO channels are
    /// the foundation of ssn-based duplicate detection and replay.
    #[test]
    fn per_pair_fifo(sizes in prop::collection::vec(1u64..2_000_000, 1..40)) {
        let mut net = Network::from_params(EthernetParams::default());
        let mut last = SimTime::ZERO;
        for s in sizes {
            let t = net.send(SimTime::ZERO, 0, 1, s);
            prop_assert!(t >= last, "delivery reordered");
            last = t;
        }
    }

    /// A message is never delivered before its serialization plus latency
    /// could possibly complete, and contention only ever delays.
    #[test]
    fn no_time_travel(
        sizes in prop::collection::vec(1u64..1_000_000, 1..30),
        starts in prop::collection::vec(0u64..1_000_000, 1..30),
    ) {
        let params = EthernetParams::default();
        let mut net = Network::from_params(params.clone());
        let mut now = SimTime::ZERO;
        for (s, dt) in sizes.iter().zip(&starts) {
            now = now + vlog_sim::SimDuration::from_nanos(*dt);
            let t = net.send(now, 0, 1, *s);
            let floor = now + net.uncontended_one_way(*s);
            let _ = floor;
            prop_assert!(t >= now + params.latency, "delivered before latency");
        }
    }

    /// Disjoint pairs never interact: (0->1) timing is identical whether
    /// or not (2->3) traffic exists.
    #[test]
    fn disjoint_pairs_are_independent(
        mine in prop::collection::vec(1u64..500_000, 1..20),
        other in prop::collection::vec(1u64..500_000, 0..20),
    ) {
        let mut quiet = Network::from_params(EthernetParams::default());
        let solo: Vec<_> = mine.iter().map(|s| quiet.send(SimTime::ZERO, 0, 1, *s)).collect();
        let mut busy = Network::from_params(EthernetParams::default());
        for s in &other {
            busy.send(SimTime::ZERO, 2, 3, *s);
        }
        let with_noise: Vec<_> = mine.iter().map(|s| busy.send(SimTime::ZERO, 0, 1, *s)).collect();
        prop_assert_eq!(solo, with_noise);
    }

    /// Throughput conservation: n back-to-back messages into one link can
    /// never beat the link's serialization of their total volume.
    #[test]
    fn bandwidth_is_conserved(sizes in prop::collection::vec(1u64..1_000_000, 2..30)) {
        let params = EthernetParams::default();
        let mut net = Network::from_params(params.clone());
        let mut last = SimTime::ZERO;
        let mut wire_total = 0u64;
        for s in &sizes {
            last = net.send(SimTime::ZERO, 0, 1, *s);
            wire_total += (*s + params.per_msg_overhead).max(params.min_frame_bytes);
        }
        let floor = params.serialization(wire_total);
        prop_assert!(
            last.as_nanos() >= floor.as_nanos(),
            "total transfer beat the line rate"
        );
    }
}
