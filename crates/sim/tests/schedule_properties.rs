//! Property tests of the schedule-policy seam (`vlog_sim::schedule`).
//!
//! The seam lets an explorer defer message deliveries — but it must
//! never change what the protocols above are entitled to assume, and it
//! must never change anything at all when no perturbation is scripted.
//! Laws checked here, over a timer-driven all-to-all message mesh:
//!
//! 1. **Baseline identity.** A run with no policy, with [`Fifo`], and
//!    with an *empty* [`ScriptPolicy`] produce byte-identical transcripts
//!    (delivery log, event count, kernel stats) — installing the seam
//!    without using it is invisible.
//! 2. **Per-channel FIFO.** For random perturbation scripts, per-channel
//!    (src → dst actor) sequence numbers still arrive in order: a sound
//!    perturbation injects channel latency, never intra-channel
//!    reordering.
//! 3. **Monotone clock.** Delivery timestamps never regress in dispatch
//!    order, and no message arrives earlier than its unperturbed arrival
//!    (a deferral only ever adds latency).
//! 4. **Conservation.** Every sent message is delivered exactly once.
//! 5. **Replay determinism.** The same script replays a byte-identical
//!    transcript, so recorded decision traces are trustworthy evidence.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use vlog_sim::{
    diff, Actor, ActorId, Decision, Delivery, Fifo, SchedulePolicy, ScriptPolicy, Sim, SimDuration,
    SimTime, WireSize,
};

/// One observed delivery: (src actor/node, dst actor, per-channel seq,
/// arrival instant).
type LogEntry = (usize, usize, u64, SimTime);
type SharedLog = Arc<Mutex<Vec<LogEntry>>>;

const RANKS: usize = 3;
const ROUNDS: u64 = 25;
/// Keeps sends of consecutive rounds close enough that a deferral window
/// (up to 1 ms below) spans many rounds of cross-traffic.
const ROUND_GAP: SimDuration = SimDuration::from_micros(10);

/// Mesh node: every round, sends one sequenced message to every peer,
/// then re-arms its round timer. Traffic is timer-driven (timers are
/// never perturbed), so the send schedule is identical across policies
/// and only delivery timing can differ.
struct Peer {
    me: ActorId,
    seq: Vec<u64>,
    rounds_left: u64,
    log: SharedLog,
}

impl Actor for Peer {
    fn on_deliver(&mut self, sim: &mut Sim, me: ActorId, msg: Delivery) {
        let (src, seq) = *msg.body.downcast::<(usize, u64)>().unwrap();
        self.log.lock().unwrap().push((src, me, seq, sim.now()));
    }

    fn on_timer(&mut self, sim: &mut Sim, me: ActorId, _token: u64) {
        for dst in 0..RANKS {
            if dst == me {
                continue;
            }
            let seq = self.seq[dst];
            self.seq[dst] += 1;
            // Size varies with (round, dst) so link serialization creates
            // uneven arrival spacing worth reordering across channels.
            let size = WireSize {
                header: 16,
                payload: 64 + 32 * ((seq + dst as u64) % 5),
                ..WireSize::default()
            };
            sim.net_send(self.me, dst, size, Box::new((me, seq)));
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            sim.set_timer(me, ROUND_GAP, 0);
        }
    }
}

/// Runs the mesh under `policy` and returns (delivery log, transcript).
/// The transcript folds in everything observable — log, event count,
/// final clock, kernel stats — for byte-identity comparisons.
fn run_mesh(policy: Option<Box<dyn SchedulePolicy>>) -> (Vec<LogEntry>, String) {
    let mut sim = Sim::new(0x5EED);
    if let Some(p) = policy {
        sim.set_schedule_policy(p);
    }
    let log: SharedLog = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..RANKS {
        sim.add_node();
    }
    for node in 0..RANKS {
        let log = log.clone();
        sim.add_actor_with(node, |sim, id| {
            sim.set_timer(id, SimDuration::from_micros(1), 0);
            Box::new(Peer {
                me: id,
                seq: vec![0; RANKS],
                rounds_left: ROUNDS - 1,
                log,
            })
        });
    }
    sim.run();
    let log = log.lock().unwrap().clone();
    let transcript = format!(
        "log={log:?} events={} now={:?} stats={:?}",
        sim.events_processed(),
        sim.now(),
        sim.stats(),
    );
    (log, transcript)
}

fn script_policy(script: &[(u64, u64)]) -> Box<dyn SchedulePolicy> {
    Box::new(ScriptPolicy::new(script.iter().map(|&(index, delta)| {
        Decision {
            index,
            delta: SimDuration::from_nanos(delta),
        }
    })))
}

/// Law 1: no policy ≡ `Fifo` ≡ empty script, byte for byte.
#[test]
fn idle_policies_are_byte_identical_to_no_policy() {
    let (_, bare) = run_mesh(None);
    let (_, fifo) = run_mesh(Some(Box::new(Fifo)));
    let (_, empty) = run_mesh(Some(script_policy(&[])));
    diff::assert_reports_identical("fifo-vs-none", &[bare.clone()], &[fifo]);
    diff::assert_reports_identical("empty-script-vs-none", &[bare], &[empty]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Laws 2–5 under random perturbation scripts.
    #[test]
    fn perturbed_runs_keep_the_kernel_laws(
        script in prop::collection::vec((0u64..150, 0u64..1_000_000), 0..5),
    ) {
        let (baseline, _) = run_mesh(None);
        let (log, transcript) = run_mesh(Some(script_policy(&script)));

        // Law 3a: the dispatch clock never regresses.
        for w in log.windows(2) {
            prop_assert!(
                w[1].3 >= w[0].3,
                "clock regressed: {:?} then {:?}", w[0], w[1]
            );
        }

        // Law 2: per-channel FIFO — seq strictly increases per (src, dst).
        let mut last_seq = std::collections::BTreeMap::new();
        for &(src, dst, seq, t) in &log {
            if let Some(prev) = last_seq.insert((src, dst), seq) {
                prop_assert!(
                    seq == prev + 1,
                    "channel {src}->{dst} reordered: seq {seq} after {prev} at {t:?}"
                );
            } else {
                prop_assert!(seq == 0, "channel {src}->{dst} started at seq {seq}");
            }
        }

        // Law 4: exactly-once conservation against the baseline multiset.
        let key = |e: &LogEntry| (e.0, e.1, e.2);
        let mut sent: Vec<_> = baseline.iter().map(key).collect();
        let mut got: Vec<_> = log.iter().map(key).collect();
        sent.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(&sent, &got, "messages lost or duplicated");

        // Law 3b: a deferral only adds latency — nothing arrives earlier
        // than its unperturbed arrival.
        let base_time: std::collections::BTreeMap<_, _> =
            baseline.iter().map(|e| (key(e), e.3)).collect();
        for e in &log {
            prop_assert!(
                e.3 >= base_time[&key(e)],
                "{:?} arrived before its unperturbed arrival {:?}",
                e, base_time[&key(e)]
            );
        }

        // Law 5: the same script replays byte-identically.
        let (_, replay) = run_mesh(Some(script_policy(&script)));
        if let Some(d) = diff::first_divergence(&transcript, &replay) {
            prop_assert!(false, "replay diverged: {d}");
        }
    }
}
