//! Protocol CPU cost model.
//!
//! The paper's Figure 8 measures "time to manage piggyback information" —
//! CPU time spent serializing causality on send and integrating it on
//! receive. We charge those costs in virtual time with an
//! *operation-count* model: the real protocol data structures run for
//! real, and every structural operation (event serialized, graph vertex
//! visited, vertex inserted, ...) is counted and multiplied by a
//! calibrated per-operation constant. The constants below are fitted to
//! the 2 GHz AthlonXP of the paper's testbed; the Criterion benches
//! (`vlog-bench`) measure the actual Rust cost of the same operations for
//! comparison.

use vlog_sim::SimDuration;

/// Per-operation costs of causal protocol work.
#[derive(Debug, Clone)]
pub struct CausalCosts {
    /// Creating a reception event (allocate id, local bookkeeping).
    pub event_create_ns: u64,
    /// Building and queueing one Event Logger record.
    pub el_ship_ns: u64,
    /// Processing one Event Logger acknowledgement.
    pub el_ack_ns: u64,
    /// Fixed cost of copying one message into the sender-based log.
    pub sender_log_fixed_ns: u64,
    /// Per-byte memcpy cost of the sender-based copy (ns/byte).
    pub sender_log_ns_per_byte: f64,
    /// Serializing one determinant into a piggyback.
    pub serialize_event_ns: u64,
    /// Integrating one received determinant into the causality store.
    pub integrate_event_ns: u64,
    /// Visiting one vertex during an antecedence-graph traversal.
    pub graph_visit_ns: u64,
    /// Inserting one vertex and generating its edges (Manetho's
    /// receive-side pass).
    pub graph_insert_ns: u64,
    /// LogOn's cheaper single-pass insertion.
    pub logon_insert_ns: u64,
    /// LogOn's send-side reordering, per emitted event (the partial-order
    /// sort that accelerates the receiver).
    pub logon_reorder_ns: u64,
    /// Memory-pressure penalty: per message and per side, scaled by
    /// log2(1 + retained determinants). Models the cache behaviour of
    /// ever-growing causality structures that the paper blames for the
    /// no-EL latency inflation ("the size of the antecedence graph keeps
    /// growing on each node"). Sequence stores (Vcausal).
    pub mem_ns_log2_seq: u64,
    /// Same penalty for the antecedence-graph stores (Manetho, LogOn):
    /// nodes plus edges, so heavier per retained event.
    pub mem_ns_log2_graph: u64,
}

impl Default for CausalCosts {
    fn default() -> Self {
        CausalCosts {
            event_create_ns: 4_200,
            el_ship_ns: 5_600,
            el_ack_ns: 1_100,
            sender_log_fixed_ns: 6_200,
            sender_log_ns_per_byte: 0.8,
            serialize_event_ns: 420,
            integrate_event_ns: 480,
            graph_visit_ns: 90,
            graph_insert_ns: 780,
            logon_insert_ns: 520,
            logon_reorder_ns: 640,
            mem_ns_log2_seq: 820,
            mem_ns_log2_graph: 1_150,
        }
    }
}

impl CausalCosts {
    /// Cost of the sender-based copy of a `bytes`-long payload.
    pub fn sender_log_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos(
            self.sender_log_fixed_ns + (bytes as f64 * self.sender_log_ns_per_byte) as u64,
        )
    }

    /// Shorthand for nanosecond durations.
    pub fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_log_cost_scales_with_bytes() {
        let c = CausalCosts::default();
        let small = c.sender_log_cost(1);
        let big = c.sender_log_cost(1_000_000);
        assert!(small.as_nanos() >= c.sender_log_fixed_ns);
        assert!(big.as_nanos() > small.as_nanos() + 500_000);
    }
}
