//! Sender-based payload logging (paper §III).
//!
//! *"When a process sends a message, it stores its payload on its volatile
//! memory. When a process is restarted, it requests all other processes
//! to send back every message needed for its reexecution."*
//!
//! The log lives in the sender's volatile memory, is copied into
//! checkpoint images (the paper includes "the payload of some messages"
//! in the image) and is garbage-collected when a *receiver* commits a
//! checkpoint covering the logged receptions.

use std::collections::BTreeMap;

use vlog_vmpi::{Payload, Rank, Ssn, Tag};

/// One logged message.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub tag: Tag,
    pub payload: Payload,
}

/// Per-destination sender-based message log.
#[derive(Debug, Clone)]
pub struct SenderLog {
    per_dst: Vec<BTreeMap<Ssn, LogEntry>>,
    bytes: u64,
    /// Per-destination replay-shipment marker: the recovery incarnation
    /// last served and the next ssn to ship it. Retried reclaims of the
    /// same incarnation resume from the marker instead of re-sending the
    /// whole log; a new incarnation (later id) starts over.
    shipped: Vec<Option<(u64, Ssn)>>,
}

impl SenderLog {
    pub fn new(n: usize) -> Self {
        SenderLog {
            per_dst: vec![BTreeMap::new(); n],
            bytes: 0,
            shipped: vec![None; n],
        }
    }

    /// Logs a message; idempotent on (dst, ssn) so held-send re-gating and
    /// replay re-sends don't double-count.
    pub fn insert(&mut self, dst: Rank, ssn: Ssn, tag: Tag, payload: &Payload) -> bool {
        if self.per_dst[dst].contains_key(&ssn) {
            return false;
        }
        self.bytes += payload.len();
        self.per_dst[dst].insert(
            ssn,
            LogEntry {
                tag,
                payload: payload.clone(),
            },
        );
        true
    }

    /// Drops entries to `dst` with `ssn < below` — the receiver's
    /// committed checkpoint covers them.
    pub fn prune_below(&mut self, dst: Rank, below: Ssn) {
        let keep = self.per_dst[dst].split_off(&below);
        let dropped = std::mem::replace(&mut self.per_dst[dst], keep);
        for e in dropped.values() {
            self.bytes -= e.payload.len();
        }
    }

    /// Where a replay to `dst` for `recovery_id` should start: the stored
    /// marker when this incarnation was already (partially) served, else
    /// the receiver's channel watermark `wm`.
    pub fn replay_start(&self, dst: Rank, recovery_id: u64, wm: Ssn) -> Ssn {
        match self.shipped[dst] {
            Some((id, next)) if id == recovery_id => next.max(wm),
            _ => wm,
        }
    }

    /// Records that entries below `next` were shipped to `dst` for
    /// `recovery_id`. Monotone within one incarnation; a different id
    /// replaces the marker outright.
    pub fn note_shipped(&mut self, dst: Rank, recovery_id: u64, next: Ssn) {
        let next = match self.shipped[dst] {
            Some((id, cur)) if id == recovery_id => cur.max(next),
            _ => next,
        };
        self.shipped[dst] = Some((recovery_id, next));
    }

    /// Logged messages to `dst` with `ssn >= from`, ascending (the replay
    /// stream for a recovering receiver).
    pub fn entries_from(&self, dst: Rank, from: Ssn) -> impl Iterator<Item = (Ssn, &LogEntry)> {
        self.per_dst[dst].range(from..).map(|(s, e)| (*s, e))
    }

    /// Total payload bytes held (image sizing and memory metrics).
    pub fn payload_bytes(&self) -> u64 {
        self.bytes
    }

    /// Total number of logged messages.
    pub fn len(&self) -> usize {
        self.per_dst.iter().map(|m| m.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: u64) -> Payload {
        Payload::synthetic(n)
    }

    #[test]
    fn insert_is_idempotent() {
        let mut log = SenderLog::new(2);
        assert!(log.insert(1, 0, 5, &payload(100)));
        assert!(!log.insert(1, 0, 5, &payload(100)));
        assert_eq!(log.len(), 1);
        assert_eq!(log.payload_bytes(), 100);
    }

    #[test]
    fn prune_below_respects_boundary() {
        let mut log = SenderLog::new(2);
        for ssn in 0..10 {
            log.insert(1, ssn, 0, &payload(10));
        }
        log.prune_below(1, 4);
        assert_eq!(log.len(), 6);
        assert_eq!(log.payload_bytes(), 60);
        let ssns: Vec<Ssn> = log.entries_from(1, 0).map(|(s, _)| s).collect();
        assert_eq!(ssns, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn entries_from_filters_watermark() {
        let mut log = SenderLog::new(3);
        for ssn in 0..5 {
            log.insert(2, ssn, 1, &payload(1));
        }
        let got: Vec<Ssn> = log.entries_from(2, 3).map(|(s, _)| s).collect();
        assert_eq!(got, vec![3, 4]);
        // Other destination untouched.
        assert_eq!(log.entries_from(1, 0).count(), 0);
    }

    #[test]
    fn replay_markers_dedupe_within_one_incarnation() {
        let mut log = SenderLog::new(2);
        for ssn in 0..8 {
            log.insert(1, ssn, 0, &payload(1));
        }
        // First reclaim of incarnation 7: everything from the watermark.
        assert_eq!(log.replay_start(1, 7, 3), 3);
        log.note_shipped(1, 7, 8);
        // Retry of the same incarnation resumes past what was shipped.
        assert_eq!(log.replay_start(1, 7, 3), 8);
        // A later crash (new incarnation) starts over from its watermark.
        assert_eq!(log.replay_start(1, 9, 3), 3);
        log.note_shipped(1, 9, 5);
        assert_eq!(log.replay_start(1, 9, 3), 5);
        // The marker never regresses within an incarnation.
        log.note_shipped(1, 9, 4);
        assert_eq!(log.replay_start(1, 9, 3), 5);
        // Other destinations carry independent markers.
        assert_eq!(log.replay_start(0, 9, 0), 0);
    }
}
