//! Sender-based payload logging (paper §III).
//!
//! *"When a process sends a message, it stores its payload on its volatile
//! memory. When a process is restarted, it requests all other processes
//! to send back every message needed for its reexecution."*
//!
//! The log lives in the sender's volatile memory, is copied into
//! checkpoint images (the paper includes "the payload of some messages"
//! in the image) and is garbage-collected when a *receiver* commits a
//! checkpoint covering the logged receptions.

use std::collections::BTreeMap;

use vlog_vmpi::{Payload, Rank, Ssn, Tag};

/// One logged message.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub tag: Tag,
    pub payload: Payload,
}

/// Per-destination sender-based message log.
#[derive(Debug, Clone)]
pub struct SenderLog {
    per_dst: Vec<BTreeMap<Ssn, LogEntry>>,
    bytes: u64,
}

impl SenderLog {
    pub fn new(n: usize) -> Self {
        SenderLog {
            per_dst: vec![BTreeMap::new(); n],
            bytes: 0,
        }
    }

    /// Logs a message; idempotent on (dst, ssn) so held-send re-gating and
    /// replay re-sends don't double-count.
    pub fn insert(&mut self, dst: Rank, ssn: Ssn, tag: Tag, payload: &Payload) -> bool {
        if self.per_dst[dst].contains_key(&ssn) {
            return false;
        }
        self.bytes += payload.len();
        self.per_dst[dst].insert(
            ssn,
            LogEntry {
                tag,
                payload: payload.clone(),
            },
        );
        true
    }

    /// Drops entries to `dst` with `ssn < below` — the receiver's
    /// committed checkpoint covers them.
    pub fn prune_below(&mut self, dst: Rank, below: Ssn) {
        let keep = self.per_dst[dst].split_off(&below);
        let dropped = std::mem::replace(&mut self.per_dst[dst], keep);
        for e in dropped.values() {
            self.bytes -= e.payload.len();
        }
    }

    /// Logged messages to `dst` with `ssn >= from`, ascending (the replay
    /// stream for a recovering receiver).
    pub fn entries_from(&self, dst: Rank, from: Ssn) -> impl Iterator<Item = (Ssn, &LogEntry)> {
        self.per_dst[dst].range(from..).map(|(s, e)| (*s, e))
    }

    /// Total payload bytes held (image sizing and memory metrics).
    pub fn payload_bytes(&self) -> u64 {
        self.bytes
    }

    /// Total number of logged messages.
    pub fn len(&self) -> usize {
        self.per_dst.iter().map(|m| m.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: u64) -> Payload {
        Payload::synthetic(n)
    }

    #[test]
    fn insert_is_idempotent() {
        let mut log = SenderLog::new(2);
        assert!(log.insert(1, 0, 5, &payload(100)));
        assert!(!log.insert(1, 0, 5, &payload(100)));
        assert_eq!(log.len(), 1);
        assert_eq!(log.payload_bytes(), 100);
    }

    #[test]
    fn prune_below_respects_boundary() {
        let mut log = SenderLog::new(2);
        for ssn in 0..10 {
            log.insert(1, ssn, 0, &payload(10));
        }
        log.prune_below(1, 4);
        assert_eq!(log.len(), 6);
        assert_eq!(log.payload_bytes(), 60);
        let ssns: Vec<Ssn> = log.entries_from(1, 0).map(|(s, _)| s).collect();
        assert_eq!(ssns, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn entries_from_filters_watermark() {
        let mut log = SenderLog::new(3);
        for ssn in 0..5 {
            log.insert(2, ssn, 1, &payload(1));
        }
        let got: Vec<Ssn> = log.entries_from(2, 3).map(|(s, _)| s).collect();
        assert_eq!(got, vec![3, 4]);
        // Other destination untouched.
        assert_eq!(log.entries_from(1, 0).count(), 0);
    }
}
