//! Distributed Event Loggers — the paper's future work, implemented.
//!
//! Conclusion of the paper: *"Using only one Event Logger for consistency
//! purpose will lead to a bottleneck as the number of processes grows. It
//! is thus necessary to investigate how to distribute the logging of
//! events among several Event Loggers. [...] Assigning a subset of the
//! nodes to one Event Logger seems the obvious way to gain scalability.
//! But in order to keep the good performance introduced by the Event
//! Logger in the system, each node has to receive the most up to date
//! array of logical clocks already logged. [...] by multicasting the
//! local array of logical clocks of every Event Logger to the other ones,
//! periodically or on specific events."*
//!
//! This module implements exactly that first design: rank `r` logs to EL
//! `r mod k`; each EL multicasts its stable-clock vector to its peers
//! every `gossip` interval; acknowledgements carry the *merged* global
//! vector, so every process can garbage-collect events of ranks served by
//! other loggers — at the freshness cost of one gossip period.

use std::sync::{Arc, Mutex};

use vlog_sim::{Actor, ActorId, Delivery, NodeId, Sim, SimDuration, TimerHandle, WireSize};
use vlog_vmpi::{DaemonMsg, RClock, Rank, Topology};

use crate::el::{el_ack_bytes, el_resp_bytes, record_el_saturation, ElMsg, ElReply, EL_SERVICE_NS};
use crate::event::Determinant;

/// Gossip between Event Logger instances: a stable-clock vector.
pub struct ElGossip {
    pub from_el: usize,
    pub stable: Vec<RClock>,
}

/// Per-determinant cost of building a recovery response.
const EL_RESP_NS_PER_DET: u64 = 120;

/// One instance of a distributed Event Logger.
pub struct ElShard {
    index: usize,
    node: NodeId,
    n: usize,
    /// Events of the ranks assigned here.
    stored: Vec<Vec<Determinant>>,
    /// Locally observed stable clocks (own ranks).
    local_stable: Vec<RClock>,
    /// Merged view including gossiped clocks from peer shards.
    merged_stable: Vec<RClock>,
    /// Peer shard actors (filled after installation).
    peers: Arc<Mutex<Vec<(ActorId, NodeId)>>>,
    gossip: SimDuration,
    /// Cancellable wheel handle of the armed gossip timer (rearmed at
    /// every firing; cancelled if the shard's node crashes).
    gossip_timer: Option<TimerHandle>,
}

impl ElShard {
    fn send_to(
        &self,
        sim: &mut Sim,
        to: ActorId,
        to_node: NodeId,
        bytes: u64,
        body: Box<dyn std::any::Any + Send>,
    ) {
        let size = WireSize::control(bytes);
        if to_node == self.node {
            sim.local_send(self.node, to, size, body, SimDuration::from_micros(15));
        } else {
            sim.net_send(self.node, to, size, body);
        }
    }

    fn multicast_gossip(&self, sim: &mut Sim) {
        let peers = self.peers.lock().unwrap().clone();
        for (i, (actor, node)) in peers.iter().enumerate() {
            if i != self.index {
                self.send_to(
                    sim,
                    *actor,
                    *node,
                    8 + 4 * self.n as u64,
                    Box::new(ElGossip {
                        from_el: self.index,
                        stable: self.local_stable.clone(),
                    }),
                );
            }
        }
    }
}

impl Actor for ElShard {
    fn on_deliver(&mut self, sim: &mut Sim, _me: ActorId, msg: Delivery) {
        let body = msg.body;
        let body = match body.downcast::<ElMsg>() {
            Ok(m) => {
                match *m {
                    ElMsg::Record {
                        from,
                        dets,
                        reply_to,
                    } => {
                        let batch_len = dets.len();
                        sim.stats_mut().bump("el_batches");
                        for det in dets {
                            let seq = &mut self.stored[from];
                            if seq.last().is_none_or(|last| last.clock < det.clock) {
                                seq.push(det);
                                self.local_stable[from] = det.clock;
                                self.merged_stable[from] = self.merged_stable[from].max(det.clock);
                                sim.stats_mut().bump("el_records");
                            } else {
                                sim.stats_mut().bump("el_duplicate_records");
                            }
                        }
                        let arrived = sim.now();
                        let end = sim.charge_cpu(
                            self.node,
                            SimDuration::from_nanos(EL_SERVICE_NS * batch_len.max(1) as u64),
                        );
                        record_el_saturation(
                            sim,
                            self.index,
                            end.saturating_since(arrived),
                            batch_len,
                        );
                        let stable = self.merged_stable.clone();
                        let node = self.node;
                        let bytes = el_ack_bytes(self.n);
                        sim.schedule_at(
                            end,
                            vlog_sim::Event::closure(move |sim| {
                                let body =
                                    Box::new(DaemonMsg::Proto(Box::new(ElReply::Ack { stable })));
                                let size = WireSize::control(bytes);
                                if sim.actor_node(reply_to) == node {
                                    sim.local_send(
                                        node,
                                        reply_to,
                                        size,
                                        body,
                                        SimDuration::from_micros(15),
                                    );
                                } else {
                                    sim.net_send(node, reply_to, size, body);
                                }
                            }),
                        );
                    }
                    ElMsg::Query {
                        victim,
                        from,
                        reply_to,
                    } => {
                        let dets: Vec<Determinant> = self.stored[victim]
                            .iter()
                            .filter(|d| d.clock > from)
                            .copied()
                            .collect();
                        let cost = SimDuration::from_nanos(
                            EL_SERVICE_NS + EL_RESP_NS_PER_DET * dets.len() as u64,
                        );
                        let end = sim.charge_cpu(self.node, cost);
                        let bytes = el_resp_bytes(dets.len(), self.n);
                        let stable = self.merged_stable.clone();
                        let node = self.node;
                        sim.stats_mut().bump("el_queries");
                        sim.schedule_at(
                            end,
                            vlog_sim::Event::closure(move |sim| {
                                let body =
                                    Box::new(DaemonMsg::Proto(Box::new(ElReply::QueryResp {
                                        dets,
                                        stable,
                                    })));
                                vlog_vmpi::daemon::stream_control(sim, node, reply_to, bytes, body);
                            }),
                        );
                    }
                }
                return;
            }
            Err(b) => b,
        };
        if let Ok(g) = body.downcast::<ElGossip>() {
            for c in 0..self.n {
                self.merged_stable[c] = self.merged_stable[c].max(g.stable[c]);
            }
            sim.stats_mut().bump("el_gossip_msgs");
        }
    }

    fn on_timer(&mut self, sim: &mut Sim, me: ActorId, token: u64) {
        self.multicast_gossip(sim);
        self.gossip_timer = Some(sim.set_timer(me, self.gossip, token));
    }

    fn on_crash(&mut self, sim: &mut Sim, _me: ActorId) {
        if let Some(h) = self.gossip_timer.take() {
            sim.cancel_timer(h);
        }
    }
}

/// Installs `k` Event Logger shards. The first lives on `first_node`;
/// each further shard gets a fresh stable node. Ranks are assigned round
/// robin (`topo.el_for`).
pub fn install_distributed_el(
    sim: &mut Sim,
    topo: &Topology,
    first_node: NodeId,
    k: usize,
    gossip: SimDuration,
) -> Vec<(ActorId, NodeId)> {
    assert!(k >= 1);
    let n = topo.n_ranks();
    let peers: Arc<Mutex<Vec<(ActorId, NodeId)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut els = Vec::with_capacity(k);
    for index in 0..k {
        let node = if index == 0 {
            first_node
        } else {
            sim.add_node()
        };
        let peers_handle = peers.clone();
        let id = sim.add_actor_with(node, |sim, id| {
            let mut shard = ElShard {
                index,
                node,
                n,
                stored: vec![Vec::new(); n],
                local_stable: vec![0; n],
                merged_stable: vec![0; n],
                peers: peers_handle,
                gossip,
                gossip_timer: None,
            };
            if k > 1 {
                // Stagger the gossip timers so shards do not synchronize.
                let first =
                    SimDuration::from_nanos(gossip.as_nanos() * (index as u64 + 1) / k as u64);
                shard.gossip_timer = Some(sim.set_timer(id, first, 0));
            }
            Box::new(shard)
        });
        els.push((id, node));
    }
    *peers.lock().unwrap() = els.clone();
    topo.set_els(els.clone());
    els
}

/// The rank-to-shard assignment used by clients: routed through the
/// epoch-published shard map of the topology view, so it keeps agreeing
/// with the servers after a re-shard (the historical `rank % k` hash
/// silently diverged from any rebalanced map).
pub fn shard_of(view: &vlog_vmpi::TopoView, rank: Rank) -> Option<usize> {
    view.shard_of(rank)
}

/// The epoch-0 static assignment the published map is seeded with.
pub fn shard_hash(rank: Rank, k: usize) -> usize {
    rank % k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hash_is_round_robin() {
        assert_eq!(shard_hash(0, 4), 0);
        assert_eq!(shard_hash(5, 4), 1);
        assert_eq!(shard_hash(7, 2), 1);
    }

    #[test]
    fn map_and_hash_agree_at_epoch_zero() {
        // The epoch-0 published map must be exactly the static hash; a
        // disagreement would route client records to a shard that never
        // gossips their stability.
        let mut sim = Sim::new(3);
        let topo = Topology::new();
        let daemons: Vec<_> = (0..6)
            .map(|_| {
                let node = sim.add_node();
                struct Nop;
                impl Actor for Nop {
                    fn on_deliver(&mut self, _: &mut Sim, _: ActorId, _: Delivery) {}
                }
                (sim.add_actor(node, Box::new(Nop)), node)
            })
            .collect();
        topo.set_ranks(
            daemons.iter().map(|d| d.0).collect(),
            daemons.iter().map(|d| d.1).collect(),
        );
        let stable = sim.add_node();
        let els = install_distributed_el(&mut sim, &topo, stable, 3, SimDuration::from_millis(20));
        let view = topo.view();
        for rank in 0..6 {
            assert_eq!(shard_of(&view, rank), Some(shard_hash(rank, 3)));
            assert_eq!(view.el_for(rank), Some(els[shard_hash(rank, 3)]));
        }
    }

    #[test]
    fn rebalance_reroutes_only_orphaned_ranks() {
        let mut sim = Sim::new(3);
        let topo = Topology::new();
        let daemons: Vec<_> = (0..6)
            .map(|_| {
                let node = sim.add_node();
                struct Nop;
                impl Actor for Nop {
                    fn on_deliver(&mut self, _: &mut Sim, _: ActorId, _: Delivery) {}
                }
                (sim.add_actor(node, Box::new(Nop)), node)
            })
            .collect();
        topo.set_ranks(
            daemons.iter().map(|d| d.0).collect(),
            daemons.iter().map(|d| d.1).collect(),
        );
        let stable = sim.add_node();
        install_distributed_el(&mut sim, &topo, stable, 3, SimDuration::from_millis(20));
        let before = topo.epoch();
        let epoch = topo.rebalance_after_el_failure(1).expect("survivors exist");
        assert!(epoch > before);
        let view = topo.view();
        // Ranks on live shards keep their assignment; shard-1 ranks
        // (1, 4) respread over the survivors {0, 2} deterministically.
        assert_eq!(shard_of(&view, 0), Some(0));
        assert_eq!(shard_of(&view, 2), Some(2));
        assert_eq!(shard_of(&view, 3), Some(0));
        assert_eq!(shard_of(&view, 5), Some(2));
        assert_eq!(shard_of(&view, 1), Some(2)); // survivors[1 % 2]
        assert_eq!(shard_of(&view, 4), Some(0)); // survivors[4 % 2]
                                                 // Killing the survivors one by one: last shard takes everything,
                                                 // then total loss reports None.
        assert!(topo.rebalance_after_el_failure(0).is_some());
        let view = topo.view();
        for rank in 0..6 {
            assert_eq!(shard_of(&view, rank), Some(2));
        }
        assert!(topo.rebalance_after_el_failure(2).is_none());
    }
}
