//! Sender-based pessimistic message logging (the MPICH-V2 protocol,
//! Bouteiller et al. SC'2003) — the Figure 1 baseline.
//!
//! *"Pessimistic message logging protocols ensure that all events of a
//! process P are safely logged on stable storage before P can impact the
//! system (sending a message) at the cost of synchronous operations."*
//!
//! Implementation: every reception ships its determinant to the Event
//! Logger like the causal protocols, but an outgoing message is *held* in
//! the daemon until the EL has acknowledged every event that precedes it
//! locally. No piggybacking at all; recovery gets every determinant from
//! the EL and payloads from the senders' logs.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use vlog_sim::{SimDuration, SimTime};
use vlog_vmpi::{
    AppMsg, Ctx, ElReshard, Payload, PiggybackBlob, ProtoBlob, ProtoPhase, RClock, Rank,
    RankStatCell, RecvGate, SchedulerCmd, SendGate, SharedRankStats, Ssn, Tag, VProtocol,
};

use crate::causal::CausalCtl;
use crate::costs::CausalCosts;
use crate::el::{el_batch_bytes, ElBatcher, ElMsg, ElReply};
use crate::event::Determinant;
use crate::sender_log::SenderLog;

/// Checkpoint-image section of the pessimistic protocol.
pub struct PessimisticBlob {
    slog: SenderLog,
    rclock: RClock,
    stable_own: RClock,
}

struct SupplyMsg {
    tag: Tag,
    payload: Payload,
    replayed: bool,
}

struct Recovery {
    started: SimTime,
    wm: RClock,
    collected: BTreeMap<RClock, Determinant>,
    supply: BTreeMap<(Rank, Ssn), SupplyMsg>,
    next: RClock,
    resp_el: bool,
    resp_from: BTreeSet<Rank>,
    collecting: bool,
    max_clock: RClock,
}

const RECLAIM_RETRY: SimDuration = SimDuration::from_millis(200);
const TIMER_RECLAIM: u64 = 1;

/// The pessimistic V-protocol for one rank.
pub struct PessimisticProtocol {
    rank: Rank,
    n: usize,
    costs: CausalCosts,
    /// Lock-free stats delta; flushed into the shared handle when the
    /// incarnation drops (crash or end-of-run).
    stats: RankStatCell,
    slog: SenderLog,
    rclock: RClock,
    /// Highest own event acknowledged stable by the EL.
    stable_own: RClock,
    ckpt_due: bool,
    /// Per-version receive watermarks (see `CausalProtocol::ckpt_expected`
    /// — GC notices must match the committed version exactly).
    ckpt_expected: BTreeMap<u64, Vec<Ssn>>,
    rec: Option<Recovery>,
    /// Wheel handle of the armed reclaim retry timer, cancelled as soon
    /// as collection completes instead of left to fire as a stale no-op.
    reclaim_timer: Option<vlog_sim::TimerHandle>,
    /// Ack-clocked record batcher on the ship-to-EL path.
    batcher: ElBatcher,
    /// Monotone batch seq for the causality log (see `CausalProtocol`).
    batches_sent: u64,
    /// Outstanding batch seqs, oldest first.
    el_outstanding: std::collections::VecDeque<u64>,
}

impl PessimisticProtocol {
    pub fn new(rank: Rank, n: usize, costs: CausalCosts, stats: SharedRankStats) -> Self {
        PessimisticProtocol {
            rank,
            n,
            costs,
            stats: RankStatCell::new(stats),
            slog: SenderLog::new(n),
            rclock: 0,
            stable_own: 0,
            ckpt_due: false,
            ckpt_expected: BTreeMap::new(),
            rec: None,
            reclaim_timer: None,
            batcher: ElBatcher::new(),
            batches_sent: 0,
            el_outstanding: std::collections::VecDeque::new(),
        }
    }

    fn el_actor(&self, ctx: &Ctx<'_>) -> vlog_sim::ActorId {
        // Routed through the epoch-published shard map, so the protocol
        // follows a re-shard to its new Event Logger automatically.
        ctx.core
            .topo_view()
            .el_for(self.rank)
            .expect("pessimistic logging requires an Event Logger")
            .0
    }

    fn ship_to_el(&mut self, ctx: &mut Ctx<'_>, det: Determinant) {
        crate::el::record_el_outstanding(ctx.sim, det.clock, self.stable_own);
        // Ack-clocked batching (see `ElBatcher`); the held-send release
        // protocol is untouched because the EL still acknowledges every
        // record — just one coalesced ack per batch.
        if let Some(batch) = self.batcher.offer(det) {
            self.send_batch(ctx, batch);
            ctx.phase_boundary(ProtoPhase::DeterminantShipped);
        }
    }

    fn send_batch(&mut self, ctx: &mut Ctx<'_>, batch: Vec<Determinant>) {
        self.batches_sent += 1;
        let seq = self.batches_sent;
        self.el_outstanding.push_back(seq);
        vlog_sim::event!("det-batch-shipped" { rank = self.rank, seq = seq });
        vlog_sim::causality::expect(
            vlog_sim::ckey!("det-batch-acked", rank = self.rank, seq = seq),
            vlog_sim::ckey!("det-batch-shipped", rank = self.rank, seq = seq),
            self.rank as u64,
        );
        let el = self.el_actor(ctx);
        let me = ctx.core.actor();
        ctx.core.control_to_actor(
            ctx.sim,
            el,
            el_batch_bytes(batch.len()),
            Box::new(ElMsg::Record {
                from: self.rank,
                dets: batch,
                reply_to: me,
            }),
        );
    }

    /// Re-shard handoff: the pessimistic protocol keeps no local
    /// determinant store (the EL has it all), so everything the dead
    /// shard may have lost is exactly the batcher's unacknowledged
    /// records — re-offer them toward the re-published shard.
    fn handle_reshard(&mut self, ctx: &mut Ctx<'_>, _reshard: ElReshard) {
        // The dead shard never acks the in-flight batches (see
        // `CausalProtocol::handle_reshard`).
        for seq in self.el_outstanding.drain(..) {
            vlog_sim::causality::cancel(vlog_sim::ckey!(
                "det-batch-acked",
                rank = self.rank,
                seq = seq
            ));
        }
        for det in self.batcher.take_unacked() {
            if let Some(batch) = self.batcher.offer(det) {
                self.send_batch(ctx, batch);
            }
        }
    }

    fn send_recovery_requests(&mut self, ctx: &mut Ctx<'_>) {
        let wm = self.rec.as_ref().map_or(0, |r| r.wm);
        let recovery_id = self.rec.as_ref().map_or(0, |r| r.started.as_nanos());
        let already: BTreeSet<Rank> = self
            .rec
            .as_ref()
            .map(|r| r.resp_from.clone())
            .unwrap_or_default();
        let watermarks = ctx.core.expected_watermarks();
        for peer in 0..self.n {
            if peer == self.rank || already.contains(&peer) {
                continue;
            }
            vlog_sim::causality::expect(
                vlog_sim::ckey!("reclaim-resp", victim = self.rank, from = peer),
                vlog_sim::ckey!("recovery-started", rank = self.rank),
                self.rank as u64,
            );
            ctx.core.control_to_rank(
                ctx.sim,
                peer,
                32 + 8 * self.n as u64,
                Box::new(CausalCtl::Reclaim {
                    victim: self.rank,
                    from_clock: wm,
                    watermarks: watermarks.clone(),
                    recovery_id,
                }),
            );
        }
        if !self.rec.as_ref().is_some_and(|r| r.resp_el) {
            vlog_sim::causality::expect(
                vlog_sim::ckey!("el-query-resp", victim = self.rank),
                vlog_sim::ckey!("recovery-started", rank = self.rank),
                self.rank as u64,
            );
            let el = self.el_actor(ctx);
            let me = ctx.core.actor();
            ctx.core.control_to_actor(
                ctx.sim,
                el,
                16,
                Box::new(ElMsg::Query {
                    victim: self.rank,
                    from: wm,
                    reply_to: me,
                }),
            );
        }
    }

    fn maybe_finish_collection(&mut self, ctx: &mut Ctx<'_>) {
        let complete = self
            .rec
            .as_ref()
            .is_some_and(|r| r.resp_el && r.resp_from.len() == self.n - 1);
        if !complete {
            return;
        }
        // Collection is done: the retry timer has nothing left to retry.
        if let Some(h) = self.reclaim_timer.take() {
            ctx.core.cancel_proto_timer(ctx.sim, h);
        }
        let now = ctx.sim.now();
        {
            let rec = self.rec.as_mut().unwrap();
            if rec.collecting {
                rec.collecting = false;
                rec.max_clock = rec.collected.keys().next_back().copied().unwrap_or(rec.wm);
                let dt = now.saturating_since(rec.started);
                self.stats.local().recovery_collect.push(dt);
            }
        }
        self.try_replay(ctx);
    }

    fn try_replay(&mut self, ctx: &mut Ctx<'_>) {
        enum Step {
            Done,
            Wait,
            Deliver(Determinant, SupplyMsg),
        }
        loop {
            let step = {
                let Some(rec) = self.rec.as_mut() else { return };
                if rec.collecting {
                    return;
                }
                match rec.collected.get(&rec.next).copied() {
                    None => {
                        if rec.next > rec.max_clock {
                            Step::Done
                        } else {
                            vlog_sim::causality::expect(
                                vlog_sim::ckey!("det-replay", rank = self.rank, clock = rec.next),
                                vlog_sim::ckey!("recovery-started", rank = self.rank),
                                self.rank as u64,
                            );
                            Step::Wait
                        }
                    }
                    Some(det) => match rec.supply.remove(&(det.sender, det.ssn)) {
                        Some(supply) => {
                            rec.next += 1;
                            Step::Deliver(det, supply)
                        }
                        None => {
                            vlog_sim::causality::expect(
                                vlog_sim::ckey!(
                                    "replay-supply",
                                    rank = self.rank,
                                    sender = det.sender,
                                    ssn = det.ssn
                                ),
                                vlog_sim::ckey!("det-replay", rank = self.rank, clock = det.clock),
                                self.rank as u64,
                            );
                            Step::Wait
                        }
                    },
                }
            };
            match step {
                Step::Done => {
                    self.finish_replay(ctx);
                    return;
                }
                Step::Wait => return,
                Step::Deliver(det, supply) => {
                    vlog_sim::event!("replay-consumed" { rank = self.rank, clock = det.clock }
                    caused_by "replay-supply" {
                        rank = self.rank,
                        sender = det.sender,
                        ssn = det.ssn
                    });
                    self.rclock = det.clock;
                    // Determinants collected from the EL are stable by
                    // definition of the pessimistic protocol.
                    self.stable_own = self.stable_own.max(det.clock);
                    ctx.core.inject_deliver(
                        det.sender,
                        supply.tag,
                        supply.payload,
                        SimDuration::from_nanos(self.costs.event_create_ns),
                    );
                }
            }
        }
    }

    fn finish_replay(&mut self, ctx: &mut Ctx<'_>) {
        let rec = self.rec.take().unwrap();
        ctx.core.set_recovered(ctx.sim);
        ctx.core.release_held();
        for ((src, ssn), m) in rec.supply {
            ctx.core.reaccept(AppMsg {
                src,
                dst: self.rank,
                tag: m.tag,
                ssn,
                payload: m.payload,
                piggyback: PiggybackBlob::empty(),
                replayed: m.replayed,
            });
        }
    }
}

impl VProtocol for PessimisticProtocol {
    fn name(&self) -> String {
        "Pessimistic+EL".into()
    }

    fn on_send_accept(
        &mut self,
        _ctx: &mut Ctx<'_>,
        dst: Rank,
        tag: Tag,
        ssn: Ssn,
        payload: &Payload,
    ) -> SendGate {
        let inserted = self.slog.insert(dst, ssn, tag, payload);
        // The pessimistic property: no impact on the system before every
        // local event is stable.
        if self.stable_own < self.rclock && self.rec.is_none() {
            return SendGate::Hold;
        }
        let cost = if inserted {
            self.costs.sender_log_cost(payload.len())
        } else {
            SimDuration::ZERO
        };
        SendGate::Go { cost }
    }

    fn on_app_msg(&mut self, ctx: &mut Ctx<'_>, msg: &mut AppMsg) -> RecvGate {
        if self.rec.is_some() {
            vlog_sim::event!("replay-supply" {
                rank = self.rank,
                sender = msg.src,
                ssn = msg.ssn
            });
            let key = (msg.src, msg.ssn);
            let supply = SupplyMsg {
                tag: msg.tag,
                payload: std::mem::take(&mut msg.payload),
                replayed: msg.replayed,
            };
            let rec = self.rec.as_mut().unwrap();
            rec.supply.entry(key).or_insert(supply);
            self.try_replay(ctx);
            return RecvGate::Consume;
        }
        self.rclock += 1;
        let det = Determinant {
            receiver: self.rank,
            clock: self.rclock,
            sender: msg.src,
            ssn: msg.ssn,
            cause: 0,
        };
        self.ship_to_el(ctx, det);
        let cost = SimDuration::from_nanos(self.costs.event_create_ns + self.costs.el_ship_ns);
        RecvGate::Deliver { cost }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, body: Box<dyn std::any::Any + Send>) {
        let body = match body.downcast::<ElReply>() {
            Ok(r) => {
                match *r {
                    ElReply::Ack { stable } => {
                        ctx.sim.charge_cpu(
                            ctx.core.node(),
                            SimDuration::from_nanos(self.costs.el_ack_ns),
                        );
                        if let Some(seq) = self.el_outstanding.pop_front() {
                            vlog_sim::event!("det-batch-acked" { rank = self.rank, seq = seq }
                                caused_by "det-batch-shipped" { rank = self.rank, seq = seq });
                        }
                        let prev = self.stable_own;
                        self.stable_own = self.stable_own.max(stable[self.rank]);
                        // Monotone watermark; the merge law is `max`.
                        self.stats.local().el_acked_events = self.stable_own;
                        if self.stable_own > prev && self.stable_own >= self.rclock {
                            ctx.core.release_held();
                        }
                        // The ack clocks the batcher: flush the records
                        // that coalesced behind the acknowledged batch.
                        if let Some(batch) = self.batcher.acked() {
                            self.send_batch(ctx, batch);
                        }
                        ctx.phase_boundary(ProtoPhase::AckReceived);
                    }
                    ElReply::QueryResp { dets, stable } => {
                        vlog_sim::event!("el-query-resp" { victim = self.rank });
                        self.stable_own = self.stable_own.max(stable[self.rank]);
                        if let Some(rec) = self.rec.as_mut() {
                            for d in &dets {
                                if d.clock > rec.wm {
                                    rec.collected.insert(d.clock, *d);
                                    vlog_sim::event!(
                                        "det-replay" { rank = self.rank, clock = d.clock }
                                        caused_by "el-query-resp" { victim = self.rank });
                                }
                            }
                            rec.resp_el = true;
                            self.maybe_finish_collection(ctx);
                        }
                    }
                }
                return;
            }
            Err(b) => b,
        };
        let body = match body.downcast::<CausalCtl>() {
            Ok(c) => {
                match *c {
                    CausalCtl::Reclaim {
                        victim,
                        watermarks,
                        recovery_id,
                        ..
                    } => {
                        // No causality to share (the EL has it all), but
                        // the victim still needs our logged payloads.
                        ctx.core.control_to_rank(
                            ctx.sim,
                            victim,
                            8,
                            Box::new(CausalCtl::ReclaimResp {
                                from: self.rank,
                                dets: Vec::new(),
                            }),
                        );
                        let from_ssn =
                            self.slog
                                .replay_start(victim, recovery_id, watermarks[self.rank]);
                        let entries: Vec<(Ssn, Tag, Payload)> = self
                            .slog
                            .entries_from(victim, from_ssn)
                            .map(|(ssn, e)| (ssn, e.tag, e.payload.clone()))
                            .collect();
                        let next = entries.last().map_or(from_ssn, |(ssn, _, _)| ssn + 1);
                        self.slog.note_shipped(victim, recovery_id, next);
                        for (ssn, tag, payload) in entries {
                            ctx.core.transmit_replay(ctx.sim, victim, tag, ssn, payload);
                        }
                    }
                    CausalCtl::ReclaimResp { from, .. } => {
                        vlog_sim::event!("reclaim-resp" { victim = self.rank, from = from });
                        if let Some(rec) = self.rec.as_mut() {
                            rec.resp_from.insert(from);
                            self.maybe_finish_collection(ctx);
                        }
                    }
                    CausalCtl::GcNotice { from, received, .. } => {
                        vlog_sim::causality::consume(
                            vlog_sim::ckey!("gc-notice", from = from, to = self.rank),
                            vlog_sim::ckey!("gc-handle", rank = self.rank),
                        );
                        self.slog.prune_below(from, received[self.rank]);
                    }
                }
                return;
            }
            Err(b) => b,
        };
        let body = match body.downcast::<ElReshard>() {
            Ok(r) => {
                self.handle_reshard(ctx, *r);
                return;
            }
            Err(b) => b,
        };
        if let Ok(cmd) = body.downcast::<SchedulerCmd>() {
            if matches!(*cmd, SchedulerCmd::TakeCheckpoint) {
                self.ckpt_due = true;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_RECLAIM && self.rec.as_ref().is_some_and(|r| r.collecting) {
            self.send_recovery_requests(ctx);
            self.reclaim_timer = Some(ctx.core.set_proto_timer(
                ctx.sim,
                RECLAIM_RETRY,
                TIMER_RECLAIM,
            ));
        }
    }

    fn checkpoint_due(&mut self, _ctx: &mut Ctx<'_>) -> bool {
        std::mem::take(&mut self.ckpt_due)
    }

    fn on_image_assembled(&mut self, ctx: &mut Ctx<'_>, version: u64) {
        self.ckpt_expected
            .insert(version, ctx.core.expected_watermarks());
        ctx.core.request_ship();
    }

    fn checkpoint_blob(&mut self, _ctx: &mut Ctx<'_>) -> ProtoBlob {
        let blob = PessimisticBlob {
            slog: self.slog.clone(),
            rclock: self.rclock,
            stable_own: self.stable_own,
        };
        let bytes = blob.slog.payload_bytes() + 16 * blob.slog.len() as u64 + 16;
        ProtoBlob {
            body: Some(Arc::new(blob)),
            bytes,
        }
    }

    fn on_checkpoint_committed(&mut self, ctx: &mut Ctx<'_>, version: u64) {
        let Some(received) = self.ckpt_expected.remove(&version) else {
            return;
        };
        self.ckpt_expected.retain(|v, _| *v > version);
        // Pessimistic logging tracks only its own EL stability; peers
        // ignore the vector (there is no piggyback to prune), but the
        // wire format stays shared with the causal protocols.
        let mut stable = vec![0; self.n];
        stable[self.rank] = self.stable_own;
        let wire = 8 + 8 * self.n as u64 + crate::piggyback::watermarks_len(&stable);
        for peer in 0..self.n {
            if peer != self.rank {
                vlog_sim::event!("gc-notice" { from = self.rank, to = peer });
                ctx.core.control_to_rank(
                    ctx.sim,
                    peer,
                    wire,
                    Box::new(CausalCtl::GcNotice {
                        from: self.rank,
                        received: received.clone(),
                        stable: stable.clone(),
                    }),
                );
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>, blob: Option<ProtoBlob>) {
        let wm = match blob.and_then(|b| b.body) {
            Some(body) => match body.downcast::<PessimisticBlob>() {
                Ok(b) => {
                    self.slog = b.slog.clone();
                    self.rclock = b.rclock;
                    self.stable_own = b.stable_own;
                    b.rclock
                }
                Err(_) => 0,
            },
            None => 0,
        };
        vlog_sim::event!("recovery-started" { rank = self.rank }
            caused_by "image-fetched" { rank = self.rank });
        self.rec = Some(Recovery {
            started: ctx.sim.now(),
            wm,
            collected: BTreeMap::new(),
            supply: BTreeMap::new(),
            next: wm + 1,
            resp_el: false,
            resp_from: BTreeSet::new(),
            collecting: true,
            max_clock: 0,
        });
        self.send_recovery_requests(ctx);
        self.reclaim_timer = Some(
            ctx.core
                .set_proto_timer(ctx.sim, RECLAIM_RETRY, TIMER_RECLAIM),
        );
    }
}
