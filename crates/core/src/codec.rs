//! Minimal byte-level encoding helpers (little endian). Hand-rolled to
//! keep wire sizes explicit and dependencies minimal.

use bytes::{Buf, BufMut, Bytes, BytesMut};

pub fn put_u16(out: &mut BytesMut, v: u16) {
    out.put_u16_le(v);
}

pub fn put_u32(out: &mut BytesMut, v: u32) {
    out.put_u32_le(v);
}

pub fn put_u64(out: &mut BytesMut, v: u64) {
    out.put_u64_le(v);
}

pub fn get_u16(buf: &mut Bytes) -> u16 {
    buf.get_u16_le()
}

pub fn get_u32(buf: &mut Bytes) -> u32 {
    buf.get_u32_le()
}

pub fn get_u64(buf: &mut Bytes) -> u64 {
    buf.get_u64_le()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = BytesMut::new();
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, 0x0123_4567_89AB_CDEF);
        let mut b = out.freeze();
        assert_eq!(get_u16(&mut b), 0xBEEF);
        assert_eq!(get_u32(&mut b), 0xDEAD_BEEF);
        assert_eq!(get_u64(&mut b), 0x0123_4567_89AB_CDEF);
        assert!(b.is_empty());
    }
}
