//! Minimal byte-level encoding helpers (little endian). Hand-rolled to
//! keep wire sizes explicit and dependencies minimal.
//!
//! The fixed-width getters are *checked*: a short buffer is reported as
//! [`PbCodecError::Truncated`] naming the field being decoded, mirroring
//! the encode-side overflow checks, instead of panicking mid-decode deep
//! inside the `bytes` shim. The LEB128 helpers back the `Compact`
//! piggyback format: unsigned varints plus the zigzag mapping that makes
//! small signed deltas cost one byte.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::piggyback::PbCodecError;

/// Longest LEB128 encoding of a `u64` (ten 7-bit groups cover 64 bits).
pub const MAX_UVARINT_BYTES: usize = 10;

pub fn put_u16(out: &mut BytesMut, v: u16) {
    out.put_u16_le(v);
}

pub fn put_u32(out: &mut BytesMut, v: u32) {
    out.put_u32_le(v);
}

pub fn put_u64(out: &mut BytesMut, v: u64) {
    out.put_u64_le(v);
}

fn need(buf: &Bytes, field: &'static str, bytes: usize) -> Result<(), PbCodecError> {
    if buf.remaining() < bytes {
        Err(PbCodecError::Truncated {
            field,
            need: bytes,
            have: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

pub fn get_u16(buf: &mut Bytes, field: &'static str) -> Result<u16, PbCodecError> {
    need(buf, field, 2)?;
    Ok(buf.get_u16_le())
}

pub fn get_u32(buf: &mut Bytes, field: &'static str) -> Result<u32, PbCodecError> {
    need(buf, field, 4)?;
    Ok(buf.get_u32_le())
}

pub fn get_u64(buf: &mut Bytes, field: &'static str) -> Result<u64, PbCodecError> {
    need(buf, field, 8)?;
    Ok(buf.get_u64_le())
}

/// Appends `v` as an unsigned LEB128 varint (7 value bits per byte, high
/// bit set on every byte but the last).
pub fn put_uvarint(out: &mut BytesMut, mut v: u64) {
    while v >= 0x80 {
        out.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.put_u8(v as u8);
}

/// Exact encoded length of [`put_uvarint`] for `v`.
pub fn uvarint_len(v: u64) -> u64 {
    // 1 byte per started 7-bit group; zero still takes one byte.
    let bits = 64 - v.leading_zeros() as u64;
    1 + bits.saturating_sub(1) / 7
}

/// Reads one unsigned LEB128 varint. A buffer that ends mid-varint is
/// [`PbCodecError::Truncated`]; a varint longer than
/// [`MAX_UVARINT_BYTES`] or carrying bits beyond 64 is reported as an
/// overflow of the 64-bit wire field.
pub fn get_uvarint(buf: &mut Bytes, field: &'static str) -> Result<u64, PbCodecError> {
    let mut v = 0u64;
    for i in 0..MAX_UVARINT_BYTES {
        need(buf, field, 1)?;
        let b = buf.get_u8();
        let group = (b & 0x7f) as u64;
        // The tenth byte may only contribute the final bit of a u64.
        if i == MAX_UVARINT_BYTES - 1 && group > 1 {
            return Err(PbCodecError::Overflow {
                field,
                value: group,
                wire_bits: 64,
            });
        }
        v |= group << (7 * i);
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(PbCodecError::Overflow {
        field,
        value: v,
        wire_bits: 64,
    })
}

/// Zigzag-maps a signed delta so near-zero values (of either sign) get
/// short varints: 0, -1, 1, -2, ... → 0, 1, 2, 3, ...
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = BytesMut::new();
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, 0x0123_4567_89AB_CDEF);
        let mut b = out.freeze();
        assert_eq!(get_u16(&mut b, "a").unwrap(), 0xBEEF);
        assert_eq!(get_u32(&mut b, "b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&mut b, "c").unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(b.is_empty());
    }

    #[test]
    fn short_buffers_are_reported_not_panicked() {
        let mut b = Bytes::copy_from_slice(&[0x01]);
        assert_eq!(
            get_u32(&mut b.clone(), "clock"),
            Err(PbCodecError::Truncated {
                field: "clock",
                need: 4,
                have: 1,
            })
        );
        assert_eq!(get_u16(&mut b.clone(), "rid").unwrap_err().field(), "rid");
        assert!(get_u64(&mut b, "ssn").is_err());
        let mut empty = Bytes::new();
        assert!(get_u16(&mut empty, "rid").is_err());
    }

    #[test]
    fn uvarint_roundtrips_across_all_group_boundaries() {
        let mut cases = vec![0u64, 1, 0x7f, 0x80, 0x3fff, 0x4000, u64::MAX];
        for shift in 1..64 {
            cases.push(1 << shift);
            cases.push((1 << shift) - 1);
        }
        for v in cases {
            let mut out = BytesMut::new();
            put_uvarint(&mut out, v);
            assert_eq!(out.len() as u64, uvarint_len(v), "len of {v:#x}");
            let mut b = out.freeze();
            assert_eq!(get_uvarint(&mut b, "v").unwrap(), v, "{v:#x}");
            assert!(b.is_empty());
        }
        assert_eq!(uvarint_len(0), 1);
        assert_eq!(uvarint_len(u64::MAX), MAX_UVARINT_BYTES as u64);
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        // Continuation bit set, then the buffer ends.
        let mut b = Bytes::copy_from_slice(&[0x80]);
        assert_eq!(
            get_uvarint(&mut b, "delta"),
            Err(PbCodecError::Truncated {
                field: "delta",
                need: 1,
                have: 0,
            })
        );
        // Ten continuation bytes: more than 64 bits of payload.
        let mut b = Bytes::copy_from_slice(&[0xff; 10]);
        assert!(matches!(
            get_uvarint(&mut b, "delta"),
            Err(PbCodecError::Overflow { field: "delta", .. })
        ));
        // A tenth byte carrying more than the final u64 bit overflows
        // even without a continuation bit.
        let mut b =
            Bytes::copy_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02]);
        assert!(matches!(
            get_uvarint(&mut b, "delta"),
            Err(PbCodecError::Overflow { .. })
        ));
    }

    #[test]
    fn zigzag_is_a_bijection_biased_to_small_magnitudes() {
        for v in [0i64, -1, 1, -2, 2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        // Deltas of ±63 or less fit a single varint byte.
        assert!(uvarint_len(zigzag(63)) == 1 && uvarint_len(zigzag(-63)) == 1);
    }
}
