//! # vlog-core — causal message logging with an Event Logger
//!
//! The paper's contribution (*"Impact of Event Logger on Causal Message
//! Logging Protocols for Fault Tolerant MPI"*, IPDPS 2005), implemented
//! as V-protocols for the `vlog-vmpi` framework:
//!
//! * **Causal message logging** ([`causal::CausalProtocol`]) with the
//!   three piggyback-reduction techniques the paper compares —
//!   [`vcausal::VcausalRed`] (sequences + channel watermarks),
//!   Manetho and LogOn ([`agred::GraphRed`] over the antecedence
//!   graph [`graph::AGraph`]) — each runnable **with or without** the
//!   [`el::EventLogger`].
//! * **Sender-based payload logging** ([`sender_log::SenderLog`]) and
//!   full crash **recovery**: determinant collection from the EL and from
//!   every alive rank, payload reclaim from the senders' volatile logs,
//!   ordered replay, duplicate-send suppression.
//! * The two Figure 1 baselines: sender-based **pessimistic** logging
//!   ([`pessimistic::PessimisticProtocol`], MPICH-V2 style) and
//!   **coordinated checkpointing** with global rollback
//!   ([`coordinated::CoordinatedProtocol`], Chandy-Lamport style).
//! * Byte-exact **piggyback codecs** ([`piggyback`]): the factored
//!   `{rid, nb, events}` format shared by Vcausal and Manetho, the flat
//!   order-preserving LogOn format, and the varint/delta `compact`
//!   format ([`piggyback::PbFormat`]) that drops the O(rank-count) field
//!   widths.
//!
//! Ready-made [`suite`]s bundle each protocol with its auxiliary stable
//! components for the cluster builder:
//!
//! ```ignore
//! use vlog_core::{CausalSuite, Technique};
//! let suite = Rc::new(CausalSuite::new(Technique::Manetho, /*el=*/true));
//! let report = vlog_vmpi::run_cluster(&cfg, suite, program, &faults);
//! ```

pub mod agred;
pub mod causal;
pub mod codec;
pub mod coordinated;
pub mod costs;
pub mod el;
pub mod el_multi;
pub mod event;
pub mod graph;
pub mod pessimistic;
pub mod piggyback;
pub mod reduction;
pub mod sender_log;
pub mod suite;
pub mod vcausal;

pub use bytes::Bytes;
pub use causal::{CausalCtl, CausalProtocol};
pub use coordinated::CoordinatedProtocol;
pub use costs::CausalCosts;
pub use el::{
    el_batch_bytes, shard_ack_key, shard_queue_key, ElBatcher, ElMsg, ElReply, EventLogger,
    EL_RECORD_BYTES,
};
pub use el_multi::{install_distributed_el, shard_hash, shard_of, ElShard};
pub use event::{Determinant, EventId};
pub use graph::AGraph;
pub use pessimistic::PessimisticProtocol;
pub use piggyback::{
    compact_len, decode_compact, decode_factored, decode_flat, decode_watermarks, encode_compact,
    encode_factored, encode_flat, encode_watermarks, factored_len, flat_len, watermarks_len,
    PbBody, PbCodecError, PbEncoder, PbFormat,
};
pub use reduction::{make_reduction, Reduction, Technique, Work};
pub use sender_log::SenderLog;
pub use suite::{CausalSuite, CoordinatedSuite, PessimisticSuite};
pub use vcausal::VcausalRed;
