//! The Vcausal piggyback reduction (paper §III-B.1).
//!
//! *"Each node uses one sequence of events per process to store the
//! causality information. When a node A receives some causality
//! information from a process B, it appends this information to its logs.
//! Moreover it stores knowledge of the last events e_p, created by each
//! process p, it has received from B. When A sends a message to B, it
//! piggybacks every event from e_p to the end of its sequences and
//! changes e_p to the last events it sends to B."*
//!
//! The reduction is deliberately weak: the per-channel watermark advances
//! only when events are *sent* ("changes e_p to the last events it sends
//! to B"). With plain sequences there is no way to infer what a peer
//! already holds, so Vcausal echoes events straight back to the peer that
//! piggybacked them — the paper's Figure 2 shows B returning A's own
//! event `id(m)` to A — and sends a receiver its own events (Figure 3:
//! P3 piggybacks all of a–j to P2). The antecedence-graph methods avoid
//! both by traversing the receiver's causal past, which is exactly why
//! Vcausal piggybacks 2-3× more than Manetho without an Event Logger,
//! and why it depends so strongly on one.

use std::collections::VecDeque;

use vlog_vmpi::{RClock, Rank};

use crate::event::Determinant;
use crate::reduction::{Reduction, Technique, Work};

#[derive(Clone)]
pub struct VcausalRed {
    n: usize,
    /// Retained determinants per creator, ascending clock.
    seqs: Vec<VecDeque<Determinant>>,
    /// Highest clock ever seen per creator (survives GC).
    heads: Vec<RClock>,
    /// `sent[peer][creator]`: highest clock of `creator`'s events this
    /// node has piggybacked to `peer` (send-side watermark only — the
    /// paper's Vcausal cannot infer what a peer learned elsewhere).
    sent: Vec<Vec<RClock>>,
    /// EL stability watermarks.
    stable: Vec<RClock>,
    /// `peer_stable[peer][creator]`: stability `peer` itself reported
    /// (via GC notices). Send-side pruning floor for that channel only —
    /// the peer already knows these events are safely logged, so they
    /// never need to reach it again.
    peer_stable: Vec<Vec<RClock>>,
}

impl VcausalRed {
    pub fn new(n: usize) -> Self {
        VcausalRed {
            n,
            seqs: vec![VecDeque::new(); n],
            heads: vec![0; n],
            sent: vec![vec![0; n]; n],
            stable: vec![0; n],
            peer_stable: vec![vec![0; n]; n],
        }
    }

    fn push(&mut self, det: Determinant) -> bool {
        let c = det.receiver;
        if det.clock <= self.heads[c] || det.clock <= self.stable[c] {
            return false; // already known or already stable
        }
        self.heads[c] = det.clock;
        self.seqs[c].push_back(det);
        true
    }
}

impl Reduction for VcausalRed {
    fn technique(&self) -> Technique {
        Technique::Vcausal
    }

    fn add_local(&mut self, det: Determinant) -> Work {
        let added = self.push(det);
        Work::inserts(added as u64)
    }

    fn integrate(&mut self, _from: Rank, _sender_clock: RClock, dets: &[Determinant]) -> Work {
        // Send-side watermarks only: learned events will be echoed back
        // to the peer that sent them (paper Figure 2) because plain
        // sequences cannot represent peer knowledge.
        let mut inserts = 0;
        for det in dets {
            if self.push(*det) {
                inserts += 1;
            }
        }
        Work {
            visits: dets.len() as u64,
            inserts,
        }
    }

    fn absorb(&mut self, dets: &[Determinant]) {
        // Recovered knowledge may arrive out of clock order; insert sorted.
        let mut sorted: Vec<_> = dets.to_vec();
        sorted.sort_by_key(|d| (d.receiver, d.clock));
        for det in sorted {
            self.push(det);
        }
    }

    fn build(&mut self, dst: Rank, _my_clock: RClock) -> (Vec<Determinant>, Work) {
        let mut out = Vec::new();
        let mut visits = 0u64;
        for c in 0..self.n {
            let wm = self.sent[dst][c]
                .max(self.stable[c])
                .max(self.peer_stable[dst][c]);
            // Sequences are ascending: walk back from the newest entry.
            let seq = &self.seqs[c];
            let mut start = seq.len();
            while start > 0 && seq[start - 1].clock > wm {
                start -= 1;
                visits += 1;
            }
            out.extend(seq.iter().skip(start).copied());
            self.sent[dst][c] = self.heads[c].max(self.sent[dst][c]);
        }
        (out, Work::visits(visits))
    }

    fn apply_stable(&mut self, stable: &[RClock]) {
        for c in 0..self.n {
            if stable[c] > self.stable[c] {
                self.stable[c] = stable[c];
                while self.seqs[c]
                    .front()
                    .is_some_and(|d| d.clock <= self.stable[c])
                {
                    self.seqs[c].pop_front();
                }
            }
        }
    }

    fn note_peer_stable(&mut self, peer: Rank, stable: &[RClock]) {
        for c in 0..self.n {
            self.peer_stable[peer][c] = self.peer_stable[peer][c].max(stable[c]);
        }
    }

    fn retained(&self) -> Vec<Determinant> {
        self.seqs.iter().flatten().copied().collect()
    }

    fn retained_count(&self) -> usize {
        self.seqs.iter().map(|s| s.len()).sum()
    }

    fn clone_box(&self) -> Box<dyn Reduction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(receiver: Rank, clock: RClock) -> Determinant {
        Determinant {
            receiver,
            clock,
            sender: (receiver + 1) % 4,
            ssn: clock,
            cause: 0,
        }
    }

    #[test]
    fn never_sends_twice_on_one_channel() {
        let mut r = VcausalRed::new(4);
        r.add_local(det(0, 1));
        r.add_local(det(0, 2));
        let (first, _) = r.build(1, 2);
        assert_eq!(first.len(), 2);
        let (second, _) = r.build(1, 2);
        assert!(second.is_empty(), "events were piggybacked twice");
        // A different channel still gets everything.
        let (other, _) = r.build(2, 2);
        assert_eq!(other.len(), 2);
    }

    #[test]
    fn integrate_skips_duplicate_inserts() {
        let mut r = VcausalRed::new(4);
        let d = det(2, 1);
        let w1 = r.integrate(1, 0, &[d]);
        assert_eq!(w1.inserts, 1);
        let w2 = r.integrate(3, 0, &[d]);
        assert_eq!(w2.inserts, 0, "duplicate insert");
    }

    #[test]
    fn learned_events_are_echoed_back_to_their_source() {
        // Paper Figure 2: B piggybacks A's own event id(m) back to A,
        // because Vcausal's watermark only advances on send.
        let mut r = VcausalRed::new(4);
        let d = det(2, 1); // event created by rank 2, learned from rank 1
        r.integrate(1, 0, &[d]);
        let (back_to_1, _) = r.build(1, 0);
        assert_eq!(back_to_1, vec![d], "Vcausal must echo learned events");
        // ... but only once per channel.
        let (again, _) = r.build(1, 0);
        assert!(again.is_empty());
        // And it even sends rank 2 its own event back.
        let (to_creator, _) = r.build(2, 0);
        assert_eq!(to_creator, vec![d]);
    }

    #[test]
    fn stability_garbage_collects_prefixes() {
        let mut r = VcausalRed::new(2);
        for k in 1..=10 {
            r.add_local(det(0, k));
        }
        assert_eq!(r.retained_count(), 10);
        r.apply_stable(&[7, 0]);
        assert_eq!(r.retained_count(), 3);
        let (pb, _) = r.build(1, 10);
        assert_eq!(pb.len(), 3);
        assert!(pb.iter().all(|d| d.clock > 7));
        // Late (stale) determinants below the watermark are not re-added.
        assert_eq!(r.integrate(1, 0, &[det(0, 5)]).inserts, 0);
    }

    #[test]
    fn stable_events_are_never_echoed() {
        let mut r = VcausalRed::new(2);
        r.absorb(&[det(1, 1), det(1, 2), det(1, 3)]);
        // Once the EL acknowledged them, they stop travelling entirely.
        r.apply_stable(&[0, 3]);
        let (pb, _) = r.build(1, 0);
        assert!(pb.is_empty());
    }

    #[test]
    fn peer_stability_prunes_that_channel_only() {
        let mut r = VcausalRed::new(3);
        for k in 1..=6 {
            r.add_local(det(0, k));
        }
        // Rank 1 reported (via a GC notice) that rank 0's events up to
        // clock 4 are EL-stable: piggybacks to 1 skip them...
        r.note_peer_stable(1, &[4, 0, 0]);
        let (to_1, _) = r.build(1, 6);
        assert_eq!(to_1.iter().map(|d| d.clock).collect::<Vec<_>>(), [5, 6]);
        // ...while rank 2 still gets everything, and the local store
        // keeps all six (peer knowledge is not global stability).
        let (to_2, _) = r.build(2, 6);
        assert_eq!(to_2.len(), 6);
        assert_eq!(r.retained_count(), 6);
        // Stale (lower) reports never regress the floor.
        r.note_peer_stable(1, &[2, 0, 0]);
        r.add_local(det(0, 7));
        let (again, _) = r.build(1, 7);
        assert_eq!(again.iter().map(|d| d.clock).collect::<Vec<_>>(), [7]);
    }

    #[test]
    fn clone_box_is_deep() {
        let mut r = VcausalRed::new(2);
        r.add_local(det(0, 1));
        let snap = r.clone_box();
        r.add_local(det(0, 2));
        assert_eq!(snap.retained_count(), 1);
        assert_eq!(r.retained_count(), 2);
    }
}
