//! Protocol suites: a V-protocol bundled with its auxiliary stable
//! components, ready to hand to the cluster builder.

use vlog_sim::{NodeId, Sim, SimDuration};
use vlog_vmpi::{
    CkptScheduler, RecoveryStyle, SchedulerPolicy, SharedRankStats, Suite, Topology, VProtocol,
};

use crate::causal::CausalProtocol;
use crate::coordinated::CoordinatedProtocol;
use crate::costs::CausalCosts;
use crate::el::EventLogger;
use crate::pessimistic::PessimisticProtocol;
use crate::piggyback::PbFormat;
use crate::reduction::Technique;

/// Causal message logging with a chosen piggyback-reduction technique,
/// with or without the Event Logger.
pub struct CausalSuite {
    pub technique: Technique,
    pub el: bool,
    pub scheduler: SchedulerPolicy,
    pub costs: CausalCosts,
    /// Number of Event Logger instances (1 = the paper's configuration;
    /// more = the paper's future-work distribution, see
    /// [`crate::el_multi`]).
    pub el_count: usize,
    /// Stable-clock gossip period between distributed EL shards.
    pub el_gossip: SimDuration,
    /// Piggyback wire format. `None` resolves per rank at install time:
    /// the `VLOG_PB_FORMAT` environment knob if set, else the
    /// technique's historical format ([`Technique::default_format`]).
    pub pb_format: Option<PbFormat>,
}

impl CausalSuite {
    pub fn new(technique: Technique, el: bool) -> Self {
        CausalSuite {
            technique,
            el,
            scheduler: SchedulerPolicy::Disabled,
            costs: CausalCosts::default(),
            el_count: 1,
            el_gossip: SimDuration::from_millis(20),
            pb_format: None,
        }
    }

    /// Pins the piggyback wire format (overrides both the technique
    /// default and the `VLOG_PB_FORMAT` environment knob).
    pub fn with_pb_format(mut self, format: PbFormat) -> Self {
        self.pb_format = Some(format);
        self
    }

    /// The format this suite resolves to for its protocol instances.
    fn resolved_format(&self) -> PbFormat {
        self.pb_format
            .unwrap_or_else(|| PbFormat::from_env_or(self.technique.default_format()))
    }

    /// Enables uncoordinated round-robin checkpoints every `period`.
    pub fn with_checkpoints(mut self, period: SimDuration) -> Self {
        self.scheduler = SchedulerPolicy::RoundRobin { period };
        self
    }

    /// Distributes the Event Logger over `k` shards gossiping their
    /// stable-clock vectors every `gossip`.
    pub fn with_distributed_el(mut self, k: usize, gossip: SimDuration) -> Self {
        assert!(k >= 1);
        self.el = true;
        self.el_count = k;
        self.el_gossip = gossip;
        self
    }
}

impl Suite for CausalSuite {
    fn name(&self) -> String {
        // The format shows up only when explicitly pinned to something
        // other than the technique's historical default, so baseline
        // suite names (and every report keyed on them) are unchanged.
        let fmt = match self.pb_format {
            Some(f) if f != self.technique.default_format() => format!(", {}", f.label()),
            _ => String::new(),
        };
        format!(
            "MPICH-Vcausal ({}{}{})",
            self.technique.label(),
            if self.el { ", EL" } else { ", no EL" },
            fmt
        )
    }

    fn install(&self, sim: &mut Sim, topo: &Topology, stable_nodes: &[NodeId]) {
        if self.el {
            if self.el_count <= 1 {
                let el = EventLogger::install(sim, stable_nodes[0], topo.n_ranks());
                topo.set_el(el, stable_nodes[0]);
            } else {
                crate::el_multi::install_distributed_el(
                    sim,
                    topo,
                    stable_nodes[0],
                    self.el_count,
                    self.el_gossip,
                );
            }
        }
        CkptScheduler::install(sim, stable_nodes[1], topo.clone(), self.scheduler);
    }

    fn make_protocol(
        &self,
        rank: usize,
        topo: &Topology,
        stats: SharedRankStats,
    ) -> Box<dyn VProtocol> {
        Box::new(CausalProtocol::new(
            self.technique,
            self.resolved_format(),
            self.el,
            rank,
            topo.n_ranks(),
            self.costs.clone(),
            stats,
        ))
    }

    fn recovery_style(&self) -> RecoveryStyle {
        RecoveryStyle::SingleRank
    }
}

/// Sender-based pessimistic message logging (MPICH-V2 style). Requires
/// the Event Logger.
pub struct PessimisticSuite {
    pub scheduler: SchedulerPolicy,
    pub costs: CausalCosts,
}

impl PessimisticSuite {
    pub fn new() -> Self {
        PessimisticSuite {
            scheduler: SchedulerPolicy::Disabled,
            costs: CausalCosts::default(),
        }
    }

    pub fn with_checkpoints(mut self, period: SimDuration) -> Self {
        self.scheduler = SchedulerPolicy::RoundRobin { period };
        self
    }
}

impl Default for PessimisticSuite {
    fn default() -> Self {
        Self::new()
    }
}

impl Suite for PessimisticSuite {
    fn name(&self) -> String {
        "MPICH-V2 (pessimistic, EL)".into()
    }

    fn install(&self, sim: &mut Sim, topo: &Topology, stable_nodes: &[NodeId]) {
        let el = EventLogger::install(sim, stable_nodes[0], topo.n_ranks());
        topo.set_el(el, stable_nodes[0]);
        CkptScheduler::install(sim, stable_nodes[1], topo.clone(), self.scheduler);
    }

    fn make_protocol(
        &self,
        rank: usize,
        topo: &Topology,
        stats: SharedRankStats,
    ) -> Box<dyn VProtocol> {
        Box::new(PessimisticProtocol::new(
            rank,
            topo.n_ranks(),
            self.costs.clone(),
            stats,
        ))
    }

    fn recovery_style(&self) -> RecoveryStyle {
        RecoveryStyle::SingleRank
    }
}

/// Coordinated checkpointing (Chandy-Lamport) with global rollback.
pub struct CoordinatedSuite {
    /// Global snapshot period.
    pub period: SimDuration,
    /// Test hook: build protocols with the marker-storm bug re-introduced
    /// (see [`CoordinatedProtocol::with_storm_bug`]).
    pub storm_bug: bool,
}

impl CoordinatedSuite {
    pub fn new(period: SimDuration) -> Self {
        CoordinatedSuite {
            period,
            storm_bug: false,
        }
    }

    /// Re-introduces the marker-storm bug in every rank's protocol, so
    /// the schedule explorer's self-test can prove its message-ceiling
    /// invariant catches the storm. Never use outside tests.
    pub fn with_storm_bug(mut self) -> Self {
        self.storm_bug = true;
        self
    }
}

impl Suite for CoordinatedSuite {
    fn name(&self) -> String {
        "MPICH-V/CL (coordinated)".into()
    }

    fn install(&self, sim: &mut Sim, topo: &Topology, stable_nodes: &[NodeId]) {
        CkptScheduler::install(
            sim,
            stable_nodes[1],
            topo.clone(),
            SchedulerPolicy::Coordinated {
                period: self.period,
            },
        );
    }

    fn make_protocol(
        &self,
        rank: usize,
        topo: &Topology,
        _stats: SharedRankStats,
    ) -> Box<dyn VProtocol> {
        let proto = CoordinatedProtocol::new(rank, topo.n_ranks());
        let proto = if self.storm_bug {
            proto.with_storm_bug()
        } else {
            proto
        };
        Box::new(proto)
    }

    fn recovery_style(&self) -> RecoveryStyle {
        RecoveryStyle::GlobalRollback
    }
}
