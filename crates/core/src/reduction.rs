//! The piggyback-reduction technique abstraction.
//!
//! All three protocols of the paper share the same causal-logging
//! skeleton (sender-based payload logging + piggybacked determinants +
//! optional Event Logger) and differ only in *which* determinants they
//! piggyback and *how much it costs to decide* (paper §III-B). That
//! varying part is the [`Reduction`] trait; `vlog-core` ships the three
//! implementations the paper compares:
//!
//! * [`crate::vcausal::VcausalRed`] — per-creator sequences with channel
//!   watermarks (cheap, weak reduction),
//! * [`crate::agred::GraphRed`] (Manetho flavour) — antecedence graph,
//!   border computed by traversal from the receiver's last known event,
//! * [`crate::agred::GraphRed`] (LogOn flavour) — antecedence graph,
//!   reverse exploration from the sender's last event, emission in
//!   partial order.

use vlog_vmpi::{RClock, Rank};

use crate::event::Determinant;
use crate::piggyback;

/// Which reduction technique a configuration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    Vcausal,
    Manetho,
    LogOn,
}

impl Technique {
    pub fn label(&self) -> &'static str {
        match self {
            Technique::Vcausal => "Vcausal",
            Technique::Manetho => "Manetho",
            Technique::LogOn => "LogOn",
        }
    }

    /// The paper's historical wire format for this technique: Vcausal and
    /// Manetho factor events by receiver rank, LogOn cannot (its partial
    /// order interleaves receivers). Suites may override with
    /// [`piggyback::PbFormat::Compact`].
    pub fn default_format(&self) -> piggyback::PbFormat {
        match self {
            Technique::Vcausal | Technique::Manetho => piggyback::PbFormat::Factored,
            Technique::LogOn => piggyback::PbFormat::Flat,
        }
    }

    /// Wire length of a piggyback under this technique's default format.
    pub fn wire_len(&self, dets: &[Determinant]) -> u64 {
        self.default_format().wire_len(dets)
    }
}

/// Work performed by a reduction operation, in structural operations. The
/// protocol converts these to virtual CPU time through
/// [`crate::costs::CausalCosts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Work {
    /// Graph vertices (or sequence entries) visited.
    pub visits: u64,
    /// Vertices / entries inserted.
    pub inserts: u64,
}

impl Work {
    pub fn visits(n: u64) -> Work {
        Work {
            visits: n,
            inserts: 0,
        }
    }

    pub fn inserts(n: u64) -> Work {
        Work {
            visits: 0,
            inserts: n,
        }
    }
}

/// A piggyback-reduction technique: the causality store of one process.
/// `Send + Sync` because causality stores travel inside checkpoint images
/// (`ProtoBlob`) that the checkpoint server shares across a `Send` run.
pub trait Reduction: Send + Sync {
    fn technique(&self) -> Technique;

    /// Records a reception event created locally.
    fn add_local(&mut self, det: Determinant) -> Work;

    /// Integrates determinants piggybacked on a message from `from`,
    /// whose reception clock at emission was `sender_clock`. Updates the
    /// knowledge tracked about `from`.
    fn integrate(&mut self, from: Rank, sender_clock: RClock, dets: &[Determinant]) -> Work;

    /// Absorbs determinants recovered during a restart (no peer-knowledge
    /// update, no cost accounting — recovery time is measured separately).
    fn absorb(&mut self, dets: &[Determinant]);

    /// Selects the determinants to piggyback on a message to `dst`
    /// (`my_clock` is the sender's current reception clock) and updates
    /// the sent-knowledge so nothing is ever piggybacked twice on one
    /// channel. The returned order is the emission order.
    fn build(&mut self, dst: Rank, my_clock: RClock) -> (Vec<Determinant>, Work);

    /// Applies Event Logger stability watermarks: determinants with
    /// `clock <= stable[creator]` are garbage-collected (never piggybacked
    /// again; the EL can always provide them).
    fn apply_stable(&mut self, stable: &[RClock]);

    /// Records what `peer` reported as *its* EL-stability vector (from a
    /// GC notice): determinants with `clock <= stable[creator]` never
    /// need to reach `peer` again — it already knows they are safely
    /// logged — so [`Reduction::build`] can prune them from piggybacks on
    /// that channel without touching the local store. Default: ignore
    /// (the reduction keeps its historical behaviour).
    fn note_peer_stable(&mut self, peer: Rank, stable: &[RClock]) {
        let _ = (peer, stable);
    }

    /// Every determinant currently retained (for checkpoint images and
    /// recovery reclaim responses).
    fn retained(&self) -> Vec<Determinant>;

    /// Number of retained determinants (memory pressure metric).
    fn retained_count(&self) -> usize;

    /// Deep clone for checkpoint images.
    fn clone_box(&self) -> Box<dyn Reduction>;
}

/// Constructs the reduction for a technique on an `n`-rank job.
pub fn make_reduction(t: Technique, n: usize) -> Box<dyn Reduction> {
    match t {
        Technique::Vcausal => Box::new(crate::vcausal::VcausalRed::new(n)),
        Technique::Manetho => Box::new(crate::agred::GraphRed::new(n, Technique::Manetho)),
        Technique::LogOn => Box::new(crate::agred::GraphRed::new(n, Technique::LogOn)),
    }
}
