//! Coordinated checkpointing (Chandy-Lamport style) — the Figure 1
//! baseline the message-logging protocols are compared against.
//!
//! The checkpoint scheduler periodically broadcasts a global snapshot id.
//! Each rank checkpoints at its next application-safe point, then sends a
//! **marker** to every peer; the marker carries the number of messages
//! the sender had emitted on that channel when it snapshotted
//! (`upto_ssn`). The receiver records, as channel state, every message
//! with `ssn < upto_ssn` accepted *after* its own snapshot; the channel
//! closes when its acceptance watermark reaches `upto_ssn`. The image
//! ships once every channel closed. On *any* failure the dispatcher rolls
//! **all** ranks back to the last globally complete snapshot; recorded
//! channel state is re-injected on restart.
//!
//! Deviations from textbook Chandy-Lamport, documented in DESIGN.md: the
//! snapshot is taken at the next application checkpoint point rather than
//! instantaneously at marker receipt, and markers carry sequence-number
//! watermarks instead of relying on in-band position (our transport can
//! reorder a rendezvous payload behind later eager messages, exactly like
//! multi-socket MPI implementations). Messages delivered between a
//! commanded snapshot and the local checkpoint point are covered by the
//! receiver's snapshot and regenerated deterministically by the sender's
//! rollback re-execution (duplicates are dropped by the channel sequence
//! numbers) — consistent for piecewise-deterministic programs, the same
//! assumption message logging already makes.

use std::sync::Arc;

use vlog_sim::SimDuration;
use vlog_vmpi::{
    AppMsg, Ctx, Payload, ProtoBlob, ProtoPhase, Rank, RecvGate, SchedulerCmd, Ssn, Tag, VProtocol,
};

/// Marker control message: "I snapshotted `id` having sent you
/// `upto_ssn` messages".
pub struct MarkerCtl {
    pub from: Rank,
    pub id: u64,
    pub upto_ssn: Ssn,
}

/// Channel recording state for one snapshot.
struct Phase {
    id: u64,
    /// Marker watermark per source (None until the marker arrives).
    upto: Vec<Option<Ssn>>,
    /// Channel still open (recording or waiting for its marker).
    open: Vec<bool>,
    /// Recorded channel state per source.
    logs: Vec<Vec<(Ssn, Tag, Payload)>>,
    shipped: bool,
}

/// Image section: the recorded channel state.
pub struct CoordBlob {
    logs: Vec<Vec<(Ssn, Tag, Payload)>>,
}

impl CoordBlob {
    fn wire_bytes(&self) -> u64 {
        8 + self
            .logs
            .iter()
            .flatten()
            .map(|(_, _, p)| p.len() + 16)
            .sum::<u64>()
    }
}

/// The coordinated-checkpointing V-protocol for one rank.
pub struct CoordinatedProtocol {
    rank: Rank,
    n: usize,
    /// Snapshot commanded but not yet taken.
    pending: Option<u64>,
    /// Markers that arrived before our snapshot: (id, src, upto).
    early_markers: Vec<(u64, Rank, Ssn)>,
    phase: Option<Phase>,
    /// Snapshot ids this rank has already closed its channels for
    /// after finishing its program. A finished rank must answer each
    /// snapshot id exactly once — replying to every incoming marker
    /// made two finished ranks bounce ever-growing marker storms at
    /// each other (each reply triggered 15 more replies) until the
    /// event queue ate all memory — but it must still answer *every*
    /// distinct id, including ones older than the newest it has seen
    /// (a slow peer can be mid-phase on an earlier id and needs this
    /// rank's marker to close its channel).
    closed_after_finish: std::collections::BTreeSet<u64>,
    /// Test hook (runtime `buggy` flag, never set outside tests):
    /// re-introduces the marker storm — a finished rank answers *every*
    /// incoming marker instead of each distinct id exactly once, so two
    /// finished ranks bounce ever-growing marker storms at each other.
    /// Exists so the schedule explorer's self-test can prove the
    /// message-ceiling invariant catches the storm.
    buggy_storm: bool,
}

impl CoordinatedProtocol {
    pub fn new(rank: Rank, n: usize) -> Self {
        CoordinatedProtocol {
            rank,
            n,
            pending: None,
            early_markers: Vec::new(),
            phase: None,
            closed_after_finish: std::collections::BTreeSet::new(),
            buggy_storm: false,
        }
    }

    /// Enables the marker-storm test bug (see `buggy_storm`).
    pub fn with_storm_bug(mut self) -> Self {
        self.buggy_storm = true;
        self
    }

    /// Closes this finished rank's channels for snapshot `id` (markers
    /// to every peer) — exactly once per distinct id.
    fn close_finished(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        if self.closed_after_finish.insert(id) || self.buggy_storm {
            // Once-only by design: a second production of the same
            // (rank, id) key is exactly the marker-storm bug, and the
            // causality log's duplicate detector names it.
            vlog_sim::causality::produced_unique(
                vlog_sim::ckey!("snapshot-close-finished", rank = self.rank, id = id),
                None,
            );
            self.send_markers(ctx, id);
        }
    }

    fn send_markers(&mut self, ctx: &mut Ctx<'_>, id: u64) {
        let sent = ctx.core.next_ssn_watermarks();
        for peer in 0..self.n {
            if peer != self.rank {
                vlog_sim::event!("marker" { from = self.rank, to = peer, id = id });
                ctx.core.control_to_rank(
                    ctx.sim,
                    peer,
                    24,
                    Box::new(MarkerCtl {
                        from: self.rank,
                        id,
                        upto_ssn: sent[peer],
                    }),
                );
            }
        }
        ctx.phase_boundary(ProtoPhase::MarkerSent);
    }

    /// Re-evaluates whether channel `src` can close, and ships the image
    /// when the last one does.
    fn maybe_close(&mut self, ctx: &mut Ctx<'_>, src: Rank) {
        let accepted = ctx.core.expected_of(src);
        let Some(phase) = self.phase.as_mut() else {
            return;
        };
        if !phase.open[src] {
            return;
        }
        let Some(upto) = phase.upto[src] else { return };
        if accepted >= upto {
            phase.open[src] = false;
            if !phase.shipped && !phase.open.iter().any(|&o| o) {
                phase.shipped = true;
                vlog_sim::event!(
                    "snapshot-shipped" { rank = self.rank, id = phase.id }
                    caused_by "snapshot-taken" { rank = self.rank, id = phase.id }
                );
                ctx.core.request_ship();
            }
        }
    }

    fn on_marker(&mut self, ctx: &mut Ctx<'_>, m: MarkerCtl) {
        vlog_sim::causality::consume(
            vlog_sim::ckey!("marker", from = m.from, to = self.rank, id = m.id),
            vlog_sim::ckey!("marker-handled", rank = self.rank),
        );
        if let Some(phase) = self.phase.as_ref() {
            if phase.id == m.id {
                self.phase.as_mut().unwrap().upto[m.from] = Some(m.upto_ssn);
                self.maybe_close(ctx, m.from);
                return;
            }
        }
        // Marker ahead of our own snapshot: the first marker plays the
        // Chandy-Lamport role of triggering the local snapshot.
        if self.pending.is_none() && self.phase.is_none() {
            if ctx.core.app_finished() {
                // We will never reach another checkpoint point; close our
                // channels (once per id) so peers can ship their images.
                self.close_finished(ctx, m.id);
                return;
            }
            self.pending = Some(m.id);
        }
        if self.pending == Some(m.id) {
            self.early_markers.push((m.id, m.from, m.upto_ssn));
        }
    }
}

impl VProtocol for CoordinatedProtocol {
    fn name(&self) -> String {
        "Coordinated".into()
    }

    fn on_app_msg(&mut self, ctx: &mut Ctx<'_>, msg: &mut AppMsg) -> RecvGate {
        if let Some(phase) = self.phase.as_mut() {
            if phase.open[msg.src] {
                let record = phase.upto[msg.src].is_none_or(|upto| msg.ssn < upto);
                if record {
                    phase.logs[msg.src].push((msg.ssn, msg.tag, msg.payload.clone()));
                }
            }
        }
        self.maybe_close(ctx, msg.src);
        RecvGate::Deliver {
            cost: SimDuration::ZERO,
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, body: Box<dyn std::any::Any + Send>) {
        let body = match body.downcast::<MarkerCtl>() {
            Ok(m) => {
                self.on_marker(ctx, *m);
                return;
            }
            Err(b) => b,
        };
        if let Ok(cmd) = body.downcast::<SchedulerCmd>() {
            if let SchedulerCmd::GlobalSnapshot { id } = *cmd {
                if self.phase.is_some() || self.pending.is_some() {
                    return; // previous snapshot still in flight
                }
                if ctx.core.app_finished() {
                    // No more safe points: close channels, skip the image.
                    self.close_finished(ctx, id);
                } else {
                    self.pending = Some(id);
                }
            }
        }
    }

    fn checkpoint_due(&mut self, _ctx: &mut Ctx<'_>) -> bool {
        self.pending.is_some()
    }

    fn snapshot_version(&mut self) -> Option<u64> {
        self.pending
    }

    fn on_image_assembled(&mut self, ctx: &mut Ctx<'_>, version: u64) {
        let id = self.pending.take().unwrap_or(version);
        vlog_sim::event!("snapshot-taken" { rank = self.rank, id = id });
        // The image cannot ship until every peer's marker for this id
        // arrives: declare those edges so a marker lost to a missing
        // sender shows up as the dangling cause of a stuck snapshot.
        for src in 0..self.n {
            if src != self.rank {
                vlog_sim::causality::expect(
                    vlog_sim::ckey!("marker", from = src, to = self.rank, id = id),
                    vlog_sim::ckey!("snapshot-taken", rank = self.rank, id = id),
                    self.rank as u64,
                );
            }
        }
        self.send_markers(ctx, id);
        let mut phase = Phase {
            id,
            upto: vec![None; self.n],
            open: (0..self.n).map(|s| s != self.rank).collect(),
            logs: vec![Vec::new(); self.n],
            shipped: false,
        };
        for (mid, src, upto) in std::mem::take(&mut self.early_markers) {
            if mid == id {
                phase.upto[src] = Some(upto);
            }
        }
        self.phase = Some(phase);
        // Channels that are already drained can close immediately.
        for src in 0..self.n {
            if src != self.rank {
                self.maybe_close(ctx, src);
            }
        }
    }

    fn checkpoint_blob(&mut self, _ctx: &mut Ctx<'_>) -> ProtoBlob {
        let blob = match self.phase.take() {
            Some(p) => CoordBlob { logs: p.logs },
            None => CoordBlob {
                logs: vec![Vec::new(); self.n],
            },
        };
        let bytes = blob.wire_bytes();
        ProtoBlob {
            body: Some(Arc::new(blob)),
            bytes,
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>, blob: Option<ProtoBlob>) {
        self.pending = None;
        self.early_markers.clear();
        self.phase = None;
        ctx.core.set_recovered(ctx.sim);
        let Some(body) = blob.and_then(|b| b.body) else {
            return;
        };
        let Ok(blob) = body.downcast::<CoordBlob>() else {
            return;
        };
        // Re-inject the recorded channel state; the expected sequence
        // numbers advance past every re-injected message so the senders'
        // rolled-back counters line up.
        for src in 0..self.n {
            for (ssn, tag, payload) in &blob.logs[src] {
                ctx.core.advance_expected(src, ssn + 1);
                ctx.core
                    .inject_deliver(src, *tag, payload.clone(), SimDuration::ZERO);
            }
        }
    }

    fn on_app_finished(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(id) = self.pending.take() {
            // The program ended before the next checkpoint point: close
            // our channels so peers can complete their snapshot — and
            // record the id, so markers for it that are still in flight
            // cannot trigger a second broadcast.
            self.close_finished(ctx, id);
        }
    }
}
