//! The piggyback wire formats (paper §III-C).
//!
//! *"In the implementation of Vcausal and Manetho protocols, in order to
//! reduce the piggybacked information size, the reception events are
//! factored by peer rank. These two implementations use the same
//! piggyback format: a list of `{rid, nb, sequence_of_events}` [...]
//! LogOn uses a partial order [...] it is not possible to factor events.
//! As a consequence, each event of the piggyback sequence contains the
//! receiver rank \[so\] for the same number of events to piggyback, the
//! actual size in bytes of data added to the message is higher for
//! LogOn."*
//!
//! The codecs are implemented byte-for-byte: the simulation charges the
//! exact encoded length on the wire, the flat codec preserves the partial
//! order LogOn relies on, and Criterion micro-benches measure the real
//! encode/decode cost of each. Three formats are selectable per suite
//! ([`PbFormat`]): the paper's two historical layouts, kept byte-identical
//! as baselines, plus the `compact` format that breaks their O(rank-count)
//! field widths with LEB128 varints and per-run delta encoding — see the
//! [`PbFormat::Compact`] docs for the layout.
//!
//! # Wire limits
//!
//! The `rid` and `sender` fields of the historical formats are u16 on the
//! wire and the per-group event count `nb` is u16. Encoding used to
//! truncate with `as u16`, silently wrapping for ranks ≥ 65 536 — and a
//! factored run of exactly 65 536 equal-receiver events encoded `nb = 0`,
//! making the decoder lose the whole group. Conversions are now checked:
//! out-of-range *values* (rank, clock, ssn) are reported as
//! [`PbCodecError`] instead of corrupting the stream, while over-long
//! runs — a shape limit, not a value limit — are transparently split into
//! several maximal groups, which the decoder reassembles for free. The
//! decode side is checked too: a truncated buffer is a
//! [`PbCodecError::Truncated`], not a panic. The compact format has no
//! value limits at all — every field travels as a varint.

use std::fmt;

use bytes::{Bytes, BytesMut};
use vlog_vmpi::{RClock, Rank};

use crate::codec;
use crate::event::Determinant;

/// Per-group header of the factored format: rid (u16) + nb (u16).
pub const GROUP_HEADER_BYTES: u64 = 4;
/// Per-event body bytes (shared by the two fixed-width formats).
pub const EVENT_BODY_BYTES: u64 = Determinant::BODY_BYTES;
/// Per-event bytes of the flat (LogOn) format: rid (u16) + body.
pub const FLAT_EVENT_BYTES: u64 = 2 + EVENT_BODY_BYTES;
/// Maximum events per factored group (the `nb` field is u16). Longer
/// equal-receiver runs are split into several groups by the encoder.
pub const GROUP_MAX_EVENTS: usize = u16::MAX as usize;

/// A piggyback wire-codec failure: a value that does not fit its wire
/// field on encode, or a buffer that ends mid-field on decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbCodecError {
    /// A determinant field does not fit its wire representation.
    Overflow {
        /// Which wire field overflowed ("receiver", "sender", "clock", ...).
        field: &'static str,
        /// The offending value, widened.
        value: u64,
        /// Bits the wire format affords that field.
        wire_bits: u32,
    },
    /// The buffer ended in the middle of a wire field.
    Truncated {
        /// Which wire field was being decoded.
        field: &'static str,
        /// Bytes the field needed.
        need: usize,
        /// Bytes the buffer had left.
        have: usize,
    },
}

impl PbCodecError {
    /// The wire field the error is about, whichever side it hit.
    pub fn field(&self) -> &'static str {
        match self {
            PbCodecError::Overflow { field, .. } => field,
            PbCodecError::Truncated { field, .. } => field,
        }
    }
}

impl fmt::Display for PbCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbCodecError::Overflow {
                field,
                value,
                wire_bits,
            } => write!(
                f,
                "piggyback codec: {field} = {value} exceeds the u{wire_bits} wire field"
            ),
            PbCodecError::Truncated { field, need, have } => write!(
                f,
                "piggyback codec: buffer truncated decoding {field} \
                 (needed {need} bytes, {have} left)"
            ),
        }
    }
}

impl std::error::Error for PbCodecError {}

pub(crate) fn wire_u16(field: &'static str, v: u64) -> Result<u16, PbCodecError> {
    u16::try_from(v).map_err(|_| PbCodecError::Overflow {
        field,
        value: v,
        wire_bits: 16,
    })
}

pub(crate) fn wire_u32(field: &'static str, v: u64) -> Result<u32, PbCodecError> {
    u32::try_from(v).map_err(|_| PbCodecError::Overflow {
        field,
        value: v,
        wire_bits: 32,
    })
}

/// Structured piggyback attached to a message by a causal protocol.
/// Travels structured through the simulated wire; `wire_len_*` gives the
/// exact length the codec would produce.
#[derive(Debug, Clone, Default)]
pub struct PbBody {
    /// The sender's reception clock at emission (the antecedence edge for
    /// the reception event this message will create at the destination).
    pub sender_clock: RClock,
    /// Determinants, in emission order (LogOn's partial order matters).
    pub dets: Vec<Determinant>,
}

/// The selectable piggyback wire format of a causal suite.
///
/// The simulation charges each message the exact encoded length of the
/// suite's format, so the choice shows up directly in the piggyback-share
/// figures. The historical formats are kept byte-identical as baselines;
/// `Compact` is the scaling format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbFormat {
    /// One `rid` per event (LogOn's order-preserving layout).
    Flat,
    /// Events factored by receiver rank, `{rid, nb, events}` groups
    /// (Vcausal/Manetho's layout).
    Factored,
    /// Varint/delta layout: maximal equal-receiver runs headed by
    /// `uvarint(rid), uvarint(nb)`, each event encoded as
    /// `uvarint(zigzag(Δclock)), uvarint(sender), uvarint(zigzag(Δssn)),
    /// uvarint(zigzag(Δcause))` with the deltas taken against the
    /// previous event of the same run (starting from 0). Reception
    /// clocks and ssns of one creator are near-consecutive, so the
    /// typical event costs 4 bytes instead of the fixed formats' 14–16,
    /// and no field carries a u16/u32 value limit.
    Compact,
}

impl PbFormat {
    /// Stable lowercase name, the `VLOG_PB_FORMAT` vocabulary.
    pub fn label(&self) -> &'static str {
        match self {
            PbFormat::Flat => "flat",
            PbFormat::Factored => "factored",
            PbFormat::Compact => "compact",
        }
    }

    /// Inverse of [`PbFormat::label`].
    pub fn parse(name: &str) -> Option<PbFormat> {
        match name {
            "flat" => Some(PbFormat::Flat),
            "factored" => Some(PbFormat::Factored),
            "compact" => Some(PbFormat::Compact),
            _ => None,
        }
    }

    /// Resolves the `VLOG_PB_FORMAT` env knob with the workspace's
    /// warn-and-fallback contract: unset uses `default` silently, an
    /// unknown name falls back to `default` with a stderr warning.
    pub fn from_env_or(default: PbFormat) -> PbFormat {
        match std::env::var("VLOG_PB_FORMAT") {
            Err(_) => default,
            Ok(raw) => match PbFormat::parse(raw.trim()) {
                Some(f) => f,
                None => {
                    eprintln!(
                        "warning: ignoring VLOG_PB_FORMAT={raw:?} (unknown format; \
                         known: [\"flat\", \"factored\", \"compact\"]); \
                         falling back to {}",
                        default.label()
                    );
                    default
                }
            },
        }
    }

    /// Exact wire length of `dets` in this format.
    pub fn wire_len(&self, dets: &[Determinant]) -> u64 {
        match self {
            PbFormat::Flat => flat_len(dets),
            PbFormat::Factored => factored_len(dets),
            PbFormat::Compact => compact_len(dets),
        }
    }

    /// Encodes `dets` in this format (compact never fails — it has no
    /// wire limits — but shares the `Result` surface of the fixed-width
    /// encoders).
    pub fn encode(&self, dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
        match self {
            PbFormat::Flat => encode_flat(dets),
            PbFormat::Factored => encode_factored(dets),
            PbFormat::Compact => Ok(encode_compact(dets)),
        }
    }

    /// Decodes a buffer produced by [`PbFormat::encode`] of the same
    /// format.
    pub fn decode(&self, buf: Bytes) -> Result<Vec<Determinant>, PbCodecError> {
        match self {
            PbFormat::Flat => decode_flat(buf),
            PbFormat::Factored => decode_factored(buf),
            PbFormat::Compact => decode_compact(buf),
        }
    }
}

/// Exact wire length of the factored format for `dets` (grouped by
/// consecutive runs of equal receiver, which is how the encoder factors;
/// runs longer than [`GROUP_MAX_EVENTS`] cost one extra header per
/// split).
pub fn factored_len(dets: &[Determinant]) -> u64 {
    let mut groups = 0u64;
    let mut run = 0usize;
    let mut last: Option<Rank> = None;
    for d in dets {
        if last != Some(d.receiver) {
            groups += 1;
            run = 1;
            last = Some(d.receiver);
        } else {
            run += 1;
            if run > GROUP_MAX_EVENTS {
                groups += 1;
                run = 1;
            }
        }
    }
    groups * GROUP_HEADER_BYTES + dets.len() as u64 * EVENT_BODY_BYTES
}

/// Exact wire length of the flat format.
pub fn flat_len(dets: &[Determinant]) -> u64 {
    dets.len() as u64 * FLAT_EVENT_BYTES
}

/// Encodes the factored `{rid, nb, events}` format. Runs of equal
/// receiver share one group header; the encoder emits groups in input
/// order, preserving the caller's (creator, clock) sorting.
pub fn encode_factored(dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
    let mut out = BytesMut::with_capacity(factored_len(dets) as usize);
    let mut i = 0;
    while i < dets.len() {
        let rid = dets[i].receiver;
        let mut j = i;
        while j < dets.len() && dets[j].receiver == rid && j - i < GROUP_MAX_EVENTS {
            j += 1;
        }
        codec::put_u16(&mut out, wire_u16("receiver", rid as u64)?);
        codec::put_u16(&mut out, (j - i) as u16);
        for d in &dets[i..j] {
            d.encode_body(&mut out)?;
        }
        i = j;
    }
    Ok(out.freeze())
}

/// Decodes the factored format.
pub fn decode_factored(mut buf: Bytes) -> Result<Vec<Determinant>, PbCodecError> {
    let mut dets = Vec::new();
    while !buf.is_empty() {
        let rid = codec::get_u16(&mut buf, "receiver")? as Rank;
        let nb = codec::get_u16(&mut buf, "nb")? as usize;
        for _ in 0..nb {
            dets.push(Determinant::decode_body(rid, &mut buf)?);
        }
    }
    Ok(dets)
}

/// Encodes the flat (LogOn) format: order-preserving, one rid per event.
pub fn encode_flat(dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
    let mut out = BytesMut::with_capacity(flat_len(dets) as usize);
    for d in dets {
        codec::put_u16(&mut out, wire_u16("receiver", d.receiver as u64)?);
        d.encode_body(&mut out)?;
    }
    Ok(out.freeze())
}

/// Decodes the flat format, preserving order.
pub fn decode_flat(mut buf: Bytes) -> Result<Vec<Determinant>, PbCodecError> {
    let mut dets = Vec::new();
    while !buf.is_empty() {
        let rid = codec::get_u16(&mut buf, "receiver")? as Rank;
        dets.push(Determinant::decode_body(rid, &mut buf)?);
    }
    Ok(dets)
}

/// The per-run delta state of the compact codec. Every field starts at
/// zero at each run header, so runs decode independently.
#[derive(Default, Clone, Copy)]
struct CompactRunState {
    clock: u64,
    ssn: u64,
    cause: u64,
}

impl CompactRunState {
    /// The four varints of one event against this state, as
    /// (Δclock-zigzagged, sender, Δssn-zigzagged, Δcause-zigzagged);
    /// advances the state.
    fn deltas(&mut self, d: &Determinant) -> [u64; 4] {
        let dz = |prev: u64, cur: u64| codec::zigzag((cur as i64).wrapping_sub(prev as i64));
        let out = [
            dz(self.clock, d.clock),
            d.sender as u64,
            dz(self.ssn, d.ssn),
            dz(self.cause, d.cause),
        ];
        self.clock = d.clock;
        self.ssn = d.ssn;
        self.cause = d.cause;
        out
    }
}

/// Exact wire length of the compact format (mirrors [`encode_compact`]
/// varint for varint).
pub fn compact_len(dets: &[Determinant]) -> u64 {
    let mut len = 0u64;
    let mut i = 0;
    while i < dets.len() {
        let rid = dets[i].receiver;
        let mut j = i;
        while j < dets.len() && dets[j].receiver == rid {
            j += 1;
        }
        len += codec::uvarint_len(rid as u64) + codec::uvarint_len((j - i) as u64);
        let mut st = CompactRunState::default();
        for d in &dets[i..j] {
            for v in st.deltas(d) {
                len += codec::uvarint_len(v);
            }
        }
        i = j;
    }
    len
}

/// Encodes the compact varint/delta format (see [`PbFormat::Compact`]).
/// Infallible: varints carry any u64, so there are no wire limits to
/// overflow.
pub fn encode_compact(dets: &[Determinant]) -> Bytes {
    let mut enc = PbEncoder::new();
    enc.encode_compact(dets)
        .expect("compact encode is infallible")
}

/// Decodes the compact format, preserving order.
pub fn decode_compact(mut buf: Bytes) -> Result<Vec<Determinant>, PbCodecError> {
    let mut dets = Vec::new();
    while !buf.is_empty() {
        let rid = codec::get_uvarint(&mut buf, "receiver")? as Rank;
        let nb = codec::get_uvarint(&mut buf, "nb")? as usize;
        let mut st = CompactRunState::default();
        for _ in 0..nb {
            let undz = |prev: u64, z: u64| prev.wrapping_add(codec::unzigzag(z) as u64);
            let clock = undz(st.clock, codec::get_uvarint(&mut buf, "clock")?);
            let sender = codec::get_uvarint(&mut buf, "sender")? as Rank;
            let ssn = undz(st.ssn, codec::get_uvarint(&mut buf, "ssn")?);
            let cause = undz(st.cause, codec::get_uvarint(&mut buf, "cause")?);
            st.clock = clock;
            st.ssn = ssn;
            st.cause = cause;
            dets.push(Determinant {
                receiver: rid,
                clock,
                sender,
                ssn,
                cause,
            });
        }
    }
    Ok(dets)
}

/// Exact wire length of [`encode_watermarks`] for `wm`.
pub fn watermarks_len(wm: &[RClock]) -> u64 {
    let mut len = codec::uvarint_len(wm.len() as u64);
    let mut prev = 0u64;
    let mut i = 0;
    while i < wm.len() {
        let mut j = i;
        while j < wm.len() && wm[j] == wm[i] {
            j += 1;
        }
        len += codec::uvarint_len((j - i) as u64);
        len += codec::uvarint_len(codec::zigzag((wm[i] as i64).wrapping_sub(prev as i64)));
        prev = wm[i];
        i = j;
    }
    len
}

/// Encodes a per-rank watermark vector run-length + delta style:
/// `uvarint(n)`, then `(uvarint(run_len), uvarint(zigzag(Δvalue)))` per
/// maximal run of equal values. Stability vectors are long and mostly
/// flat (many ranks share a watermark), so this is a handful of bytes
/// where the raw vector is `8n`.
pub fn encode_watermarks(wm: &[RClock]) -> Bytes {
    let mut out = BytesMut::with_capacity(watermarks_len(wm) as usize);
    codec::put_uvarint(&mut out, wm.len() as u64);
    let mut prev = 0u64;
    let mut i = 0;
    while i < wm.len() {
        let mut j = i;
        while j < wm.len() && wm[j] == wm[i] {
            j += 1;
        }
        codec::put_uvarint(&mut out, (j - i) as u64);
        codec::put_uvarint(
            &mut out,
            codec::zigzag((wm[i] as i64).wrapping_sub(prev as i64)),
        );
        prev = wm[i];
        i = j;
    }
    out.freeze()
}

/// Decodes an [`encode_watermarks`] vector. Runs that overshoot the
/// declared length are an overflow of the `wm_run` field.
pub fn decode_watermarks(mut buf: Bytes) -> Result<Vec<RClock>, PbCodecError> {
    let n = codec::get_uvarint(&mut buf, "wm_len")? as usize;
    let mut wm = Vec::with_capacity(n);
    let mut prev = 0u64;
    while wm.len() < n {
        let run = codec::get_uvarint(&mut buf, "wm_run")? as usize;
        if run == 0 || run > n - wm.len() {
            return Err(PbCodecError::Overflow {
                field: "wm_run",
                value: run as u64,
                wire_bits: 64,
            });
        }
        let z = codec::get_uvarint(&mut buf, "wm_delta")?;
        let v = prev.wrapping_add(codec::unzigzag(z) as u64);
        wm.extend(std::iter::repeat(v).take(run));
        prev = v;
    }
    Ok(wm)
}

/// One validation sweep over every wire field, in encode order
/// (receiver, clock, sender, ssn, cause per event). Reports the same
/// first error as the incremental encoders, which check the receiver at
/// each group header / flat prefix and then the body fields in this
/// order.
fn validate(dets: &[Determinant]) -> Result<(), PbCodecError> {
    for d in dets {
        wire_u16("receiver", d.receiver as u64)?;
        wire_u32("clock", d.clock)?;
        wire_u16("sender", d.sender as u64)?;
        wire_u32("ssn", d.ssn)?;
        wire_u32("cause", d.cause)?;
    }
    Ok(())
}

/// The 14-byte event body as a stack array (clock u32, sender u16,
/// ssn u32, cause u32 — all little endian). Callers must have validated
/// the fields; the `as` casts here cannot wrap after [`validate`].
#[inline]
fn body_bytes(d: &Determinant) -> [u8; EVENT_BODY_BYTES as usize] {
    let mut b = [0u8; EVENT_BODY_BYTES as usize];
    b[0..4].copy_from_slice(&(d.clock as u32).to_le_bytes());
    b[4..6].copy_from_slice(&(d.sender as u16).to_le_bytes());
    b[6..10].copy_from_slice(&(d.ssn as u32).to_le_bytes());
    b[10..14].copy_from_slice(&(d.cause as u32).to_le_bytes());
    b
}

/// Reusable batched encoder for every piggyback format.
///
/// Produces byte-identical output to [`encode_factored`] /
/// [`encode_flat`] / [`encode_compact`] (golden-tested) but restructures
/// the work for the per-ship hot path:
///
/// * field validation is hoisted into one up-front sweep, so the
///   group/event loops carry no `Result` plumbing;
/// * each fixed-width event body is assembled in a fixed stack array and
///   appended with a single `extend_from_slice` instead of four checked
///   per-field writes;
/// * the accumulation buffer is owned by the encoder and reused across
///   calls, so steady-state encoding performs exactly one allocation
///   (the final shared [`Bytes`]) regardless of piggyback size.
#[derive(Debug, Default)]
pub struct PbEncoder {
    scratch: Vec<u8>,
}

/// Appends one LEB128 varint to a plain byte vector (the scratch-buffer
/// twin of [`codec::put_uvarint`]).
#[inline]
fn push_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Writes one LEB128 varint into a fixed event staging buffer at
/// offset `n`, returning the new offset. The buffer is sized so four
/// maximal 10-byte varints fit exactly (4 × 10 = 40), which keeps the
/// bounds check a compare against a constant.
#[inline]
fn stage_uvarint(buf: &mut [u8; 40], mut n: usize, mut v: u64) -> usize {
    while v >= 0x80 {
        buf[n] = (v as u8 & 0x7f) | 0x80;
        v >>= 7;
        n += 1;
    }
    buf[n] = v as u8;
    n + 1
}

impl PbEncoder {
    pub fn new() -> PbEncoder {
        PbEncoder::default()
    }

    /// Batched factored `{rid, nb, events}` encode. Same bytes and same
    /// error reporting as [`encode_factored`].
    pub fn encode_factored(&mut self, dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
        validate(dets)?;
        self.scratch.clear();
        self.scratch.reserve(factored_len(dets) as usize);
        let mut i = 0;
        while i < dets.len() {
            let rid = dets[i].receiver;
            let mut j = i;
            while j < dets.len() && dets[j].receiver == rid && j - i < GROUP_MAX_EVENTS {
                j += 1;
            }
            self.scratch.extend_from_slice(&(rid as u16).to_le_bytes());
            self.scratch
                .extend_from_slice(&((j - i) as u16).to_le_bytes());
            for d in &dets[i..j] {
                self.scratch.extend_from_slice(&body_bytes(d));
            }
            i = j;
        }
        Ok(Bytes::copy_from_slice(&self.scratch))
    }

    /// Batched flat (LogOn) encode. Same bytes and same error reporting
    /// as [`encode_flat`].
    pub fn encode_flat(&mut self, dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
        validate(dets)?;
        self.scratch.clear();
        self.scratch.reserve(flat_len(dets) as usize);
        for d in dets {
            let mut e = [0u8; FLAT_EVENT_BYTES as usize];
            e[0..2].copy_from_slice(&(d.receiver as u16).to_le_bytes());
            e[2..].copy_from_slice(&body_bytes(d));
            self.scratch.extend_from_slice(&e);
        }
        Ok(Bytes::copy_from_slice(&self.scratch))
    }

    /// Batched compact encode. Same bytes as [`encode_compact`];
    /// infallible like it, but keeps the shared `Result` surface.
    ///
    /// Each event's four varints are staged in a fixed stack buffer and
    /// flushed with a single `extend_from_slice`, so the per-wire-byte
    /// cost is one store rather than one capacity-checked `push` —
    /// this is what keeps compact encode competitive with the
    /// fixed-width formats on the send hot path.
    pub fn encode_compact(&mut self, dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
        self.scratch.clear();
        let mut i = 0;
        while i < dets.len() {
            let rid = dets[i].receiver;
            let mut j = i;
            while j < dets.len() && dets[j].receiver == rid {
                j += 1;
            }
            push_uvarint(&mut self.scratch, rid as u64);
            push_uvarint(&mut self.scratch, (j - i) as u64);
            let mut st = CompactRunState::default();
            for d in &dets[i..j] {
                let vs = st.deltas(d);
                if (vs[0] | vs[1] | vs[2] | vs[3]) < 0x80 {
                    // Steady-state clustered piggyback: all four varints
                    // are single-byte, so emit them as one fixed-size
                    // store — the same branch-free shape as the flat
                    // encoder's per-event copy.
                    self.scratch.extend_from_slice(&[
                        vs[0] as u8,
                        vs[1] as u8,
                        vs[2] as u8,
                        vs[3] as u8,
                    ]);
                } else {
                    let mut ev = [0u8; 40];
                    let mut n = 0;
                    for v in vs {
                        n = stage_uvarint(&mut ev, n, v);
                    }
                    self.scratch.extend_from_slice(&ev[..n]);
                }
            }
            i = j;
        }
        Ok(Bytes::copy_from_slice(&self.scratch))
    }

    /// Batched encode in the given format.
    pub fn encode(
        &mut self,
        format: PbFormat,
        dets: &[Determinant],
    ) -> Result<Bytes, PbCodecError> {
        match format {
            PbFormat::Flat => self.encode_flat(dets),
            PbFormat::Factored => self.encode_factored(dets),
            PbFormat::Compact => self.encode_compact(dets),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(receiver: Rank, clock: RClock, sender: Rank) -> Determinant {
        Determinant {
            receiver,
            clock,
            sender,
            ssn: clock * 10,
            cause: clock.saturating_sub(1),
        }
    }

    #[test]
    fn factored_roundtrip_and_length() {
        let dets = vec![det(0, 1, 1), det(0, 2, 2), det(1, 1, 0), det(2, 5, 0)];
        let enc = encode_factored(&dets).unwrap();
        assert_eq!(enc.len() as u64, factored_len(&dets));
        assert_eq!(
            factored_len(&dets),
            3 * GROUP_HEADER_BYTES + 4 * EVENT_BODY_BYTES
        );
        assert_eq!(decode_factored(enc).unwrap(), dets);
    }

    #[test]
    fn flat_roundtrip_preserves_order() {
        // Deliberately interleaved receivers: flat keeps the order, which
        // is what LogOn's partial-order decode relies on.
        let dets = vec![det(2, 9, 0), det(0, 1, 1), det(2, 8, 1), det(1, 3, 2)];
        let enc = encode_flat(&dets).unwrap();
        assert_eq!(enc.len() as u64, flat_len(&dets));
        assert_eq!(decode_flat(enc).unwrap(), dets);
    }

    #[test]
    fn compact_roundtrip_length_and_order() {
        // Interleaved receivers, non-monotone clocks inside a run, and
        // ssn/cause jumps in both directions: every delta sign shows up.
        let dets = vec![
            det(2, 9, 0),
            det(2, 8, 1),
            det(0, 1, 1),
            det(0, 5, 3),
            det(0, 2, 0),
            det(1, 3, 2),
        ];
        let enc = encode_compact(&dets);
        assert_eq!(enc.len() as u64, compact_len(&dets));
        assert_eq!(decode_compact(enc).unwrap(), dets);
        // Empty input is zero bytes like the other formats.
        assert_eq!(compact_len(&[]), 0);
        assert!(encode_compact(&[]).is_empty());
        assert_eq!(decode_compact(Bytes::new()).unwrap(), Vec::new());
    }

    #[test]
    fn compact_carries_values_beyond_the_fixed_wire_limits() {
        // The historical formats reject these; compact has no limits.
        let dets = vec![
            det(u16::MAX as Rank + 7, u32::MAX as u64 + 5, 3),
            Determinant {
                receiver: u16::MAX as Rank + 7,
                clock: u64::MAX,
                sender: u16::MAX as Rank + 1,
                ssn: u64::MAX,
                cause: 0,
            },
        ];
        assert!(encode_factored(&dets).is_err());
        assert!(encode_flat(&dets).is_err());
        let enc = encode_compact(&dets);
        assert_eq!(enc.len() as u64, compact_len(&dets));
        assert_eq!(decode_compact(enc).unwrap(), dets);
    }

    #[test]
    fn compact_beats_flat_at_the_acceptance_shape() {
        // The micro-bench shape at 256 determinants (4 receivers, sorted
        // by (receiver, clock)): the acceptance criterion is >= 2x fewer
        // wire bytes than flat. Consecutive clocks/ssns per run delta to
        // single-byte varints, so compact lands near 4 B/event.
        let mut dets: Vec<Determinant> = (0..256usize)
            .map(|i| Determinant {
                receiver: i % 4,
                clock: (i / 4 + 1) as u64,
                sender: (i + 1) % 4,
                ssn: i as u64,
                cause: (i / 4) as u64,
            })
            .collect();
        dets.sort_by_key(|d| (d.receiver, d.clock));
        let compact = compact_len(&dets);
        assert!(
            2 * compact <= flat_len(&dets),
            "compact {compact} B vs flat {} B: less than 2x win",
            flat_len(&dets)
        );
        assert!(
            2 * compact <= factored_len(&dets),
            "compact {compact} B vs factored {} B: less than 2x win",
            factored_len(&dets)
        );
        assert_eq!(decode_compact(encode_compact(&dets)).unwrap(), dets);
    }

    #[test]
    fn truncated_buffers_are_errors_not_panics() {
        let dets = vec![det(0, 1, 1), det(0, 2, 2), det(1, 1, 0)];
        let fac = encode_factored(&dets).unwrap();
        assert!(decode_factored(fac.slice(..fac.len() - 3)).is_err());
        assert_eq!(
            decode_factored(fac.slice(..3)).unwrap_err().field(),
            "nb",
            "a clipped group header names the field it died in"
        );
        let flat = encode_flat(&dets).unwrap();
        assert!(decode_flat(flat.slice(..flat.len() - 1)).is_err());
        let comp = encode_compact(&dets);
        assert!(decode_compact(comp.slice(..comp.len() - 1)).is_err());
    }

    #[test]
    fn watermark_vectors_roundtrip_and_compress_flat_runs() {
        let cases: Vec<Vec<RClock>> = vec![
            vec![],
            vec![0],
            vec![7; 32],
            vec![5, 5, 5, 0, 0, 9, 9, 9, 9, 8],
            (0..100).collect(),
        ];
        for wm in &cases {
            let enc = encode_watermarks(wm);
            assert_eq!(enc.len() as u64, watermarks_len(wm), "{wm:?}");
            assert_eq!(&decode_watermarks(enc).unwrap(), wm, "{wm:?}");
        }
        // A 32-rank all-equal vector is 3 bytes, not 256.
        assert_eq!(watermarks_len(&vec![7; 32]), 3);
        // Truncation and a lying run length are both checked errors.
        let enc = encode_watermarks(&[5, 5, 9]);
        assert!(decode_watermarks(enc.slice(..enc.len() - 1)).is_err());
        let mut lying = BytesMut::new();
        codec::put_uvarint(&mut lying, 2); // n = 2
        codec::put_uvarint(&mut lying, 3); // run of 3 > n
        codec::put_uvarint(&mut lying, 0);
        assert!(matches!(
            decode_watermarks(lying.freeze()),
            Err(PbCodecError::Overflow {
                field: "wm_run",
                ..
            })
        ));
    }

    #[test]
    fn format_labels_and_dispatch_agree_with_the_free_functions() {
        for f in [PbFormat::Flat, PbFormat::Factored, PbFormat::Compact] {
            assert_eq!(PbFormat::parse(f.label()), Some(f));
        }
        assert_eq!(PbFormat::parse("gzip"), None);
        let dets = vec![det(0, 1, 1), det(0, 2, 2), det(1, 1, 0)];
        for f in [PbFormat::Flat, PbFormat::Factored, PbFormat::Compact] {
            let enc = f.encode(&dets).unwrap();
            assert_eq!(enc.len() as u64, f.wire_len(&dets), "{}", f.label());
            assert_eq!(f.decode(enc).unwrap(), dets, "{}", f.label());
        }
        assert!(compact_len(&dets) < factored_len(&dets).min(flat_len(&dets)));
    }

    #[test]
    fn flat_is_bigger_per_event_once_factoring_helps() {
        // Two events of one receiver break even; three or more win.
        let two = vec![det(0, 1, 1), det(0, 2, 1)];
        assert!(factored_len(&two) <= flat_len(&two));
        let three = vec![det(0, 1, 1), det(0, 2, 1), det(0, 3, 1)];
        assert!(factored_len(&three) < flat_len(&three));
        // One event: factored pays a header for a single event and loses
        // (the paper's "LU on four nodes" case where nothing factors).
        let single = vec![det(0, 1, 1)];
        assert!(factored_len(&single) > flat_len(&single));
    }

    #[test]
    fn empty_piggyback_is_zero_bytes() {
        assert_eq!(factored_len(&[]), 0);
        assert_eq!(flat_len(&[]), 0);
        assert!(encode_factored(&[]).unwrap().is_empty());
        assert!(encode_flat(&[]).unwrap().is_empty());
    }

    #[test]
    fn rank_at_the_u16_boundary_roundtrips() {
        let dets = vec![det(u16::MAX as Rank, 3, u16::MAX as Rank)];
        let enc = encode_factored(&dets).unwrap();
        assert_eq!(decode_factored(enc).unwrap(), dets);
        let enc = encode_flat(&dets).unwrap();
        assert_eq!(decode_flat(enc).unwrap(), dets);
    }

    #[test]
    fn rank_beyond_the_u16_boundary_is_an_error_not_a_wrap() {
        // Regression: `as u16` used to silently encode rank 65 536 as
        // rank 0, corrupting the determinant stream for large clusters.
        let oversized = vec![det(u16::MAX as Rank + 1, 3, 0)];
        let err = encode_factored(&oversized).unwrap_err();
        assert_eq!(
            err,
            PbCodecError::Overflow {
                field: "receiver",
                value: u16::MAX as u64 + 1,
                wire_bits: 16,
            }
        );
        assert!(encode_flat(&oversized).is_err());
        // Same for the sender field inside the shared event body.
        let bad_sender = vec![det(0, 3, u16::MAX as Rank + 1)];
        assert_eq!(encode_factored(&bad_sender).unwrap_err().field(), "sender");
        assert_eq!(encode_flat(&bad_sender).unwrap_err().field(), "sender");
        // And for the u32 body fields.
        let bad_clock = vec![Determinant {
            clock: u32::MAX as u64 + 1,
            ..det(0, 1, 1)
        }];
        assert_eq!(encode_flat(&bad_clock).unwrap_err().field(), "clock");
        let err = encode_flat(&bad_clock).unwrap_err();
        assert!(err.to_string().contains("clock"), "{err}");
    }

    #[test]
    fn batched_encoder_is_byte_identical_to_the_incremental_one() {
        // Golden equality over every interesting shape: empty, single
        // event, factoring-friendly runs, interleaved receivers,
        // boundary values, and a run long enough to split groups.
        let shapes: Vec<Vec<Determinant>> = vec![
            vec![],
            vec![det(0, 1, 1)],
            vec![det(0, 1, 1), det(0, 2, 2), det(1, 1, 0), det(2, 5, 0)],
            vec![det(2, 9, 0), det(0, 1, 1), det(2, 8, 1), det(1, 3, 2)],
            vec![det(u16::MAX as Rank, 3, u16::MAX as Rank)],
            (0..GROUP_MAX_EVENTS + 3)
                .map(|i| det(7, i as u64 + 1, 1))
                .collect(),
        ];
        let mut enc = PbEncoder::new();
        for dets in &shapes {
            let golden_f = encode_factored(dets).unwrap();
            let batched_f = enc.encode_factored(dets).unwrap();
            assert_eq!(
                &batched_f[..],
                &golden_f[..],
                "factored, {} dets",
                dets.len()
            );
            let golden_l = encode_flat(dets).unwrap();
            let batched_l = enc.encode_flat(dets).unwrap();
            assert_eq!(&batched_l[..], &golden_l[..], "flat, {} dets", dets.len());
            let golden_c = encode_compact(dets);
            let batched_c = enc.encode_compact(dets).unwrap();
            assert_eq!(
                &batched_c[..],
                &golden_c[..],
                "compact, {} dets",
                dets.len()
            );
        }
        // Scratch reuse across calls must not leak bytes from a larger
        // earlier encode into a smaller later one (exercised above by
        // iterating big-after-small and small-after-big shapes).
        let small = vec![det(1, 2, 3)];
        assert_eq!(
            &enc.encode_flat(&small).unwrap()[..],
            &encode_flat(&small).unwrap()[..]
        );
        assert_eq!(
            &enc.encode(PbFormat::Compact, &small).unwrap()[..],
            &encode_compact(&small)[..]
        );
    }

    #[test]
    fn batched_encoder_reports_the_same_errors() {
        let mut enc = PbEncoder::new();
        let cases: Vec<(Vec<Determinant>, &str)> = vec![
            (vec![det(u16::MAX as Rank + 1, 3, 0)], "receiver"),
            (vec![det(0, 3, u16::MAX as Rank + 1)], "sender"),
            (
                vec![Determinant {
                    clock: u32::MAX as u64 + 1,
                    ..det(0, 1, 1)
                }],
                "clock",
            ),
            (
                vec![Determinant {
                    ssn: u32::MAX as u64 + 1,
                    ..det(0, 1, 1)
                }],
                "ssn",
            ),
        ];
        for (dets, field) in &cases {
            assert_eq!(encode_factored(dets).unwrap_err().field(), *field);
            assert_eq!(enc.encode_factored(dets).unwrap_err().field(), *field);
            assert_eq!(encode_flat(dets).unwrap_err().field(), *field);
            assert_eq!(enc.encode_flat(dets).unwrap_err().field(), *field);
        }
    }

    #[test]
    fn runs_longer_than_a_group_split_and_roundtrip() {
        // Regression: a run of exactly 65 536 equal-receiver events used
        // to encode `nb = 0`, silently dropping the group on decode. The
        // encoder now splits it into maximal groups.
        let n = GROUP_MAX_EVENTS + 3;
        let long: Vec<Determinant> = (0..n).map(|i| det(7, i as u64 + 1, 1)).collect();
        let expected_len = 2 * GROUP_HEADER_BYTES + n as u64 * EVENT_BODY_BYTES;
        assert_eq!(factored_len(&long), expected_len);
        let enc = encode_factored(&long).unwrap();
        assert_eq!(enc.len() as u64, expected_len);
        assert_eq!(decode_factored(enc).unwrap(), long);
        // A run of exactly the maximum stays a single group.
        let exact: Vec<Determinant> = (0..GROUP_MAX_EVENTS)
            .map(|i| det(7, i as u64 + 1, 1))
            .collect();
        assert_eq!(
            factored_len(&exact),
            GROUP_HEADER_BYTES + GROUP_MAX_EVENTS as u64 * EVENT_BODY_BYTES
        );
        assert_eq!(
            decode_factored(encode_factored(&exact).unwrap()).unwrap(),
            exact
        );
        // Compact has no group cap: one run header for the whole thing.
        let comp = encode_compact(&long);
        assert_eq!(comp.len() as u64, compact_len(&long));
        assert_eq!(decode_compact(comp).unwrap(), long);
    }
}
