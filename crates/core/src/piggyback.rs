//! The two piggyback wire formats (paper §III-C).
//!
//! *"In the implementation of Vcausal and Manetho protocols, in order to
//! reduce the piggybacked information size, the reception events are
//! factored by peer rank. These two implementations use the same
//! piggyback format: a list of `{rid, nb, sequence_of_events}` [...]
//! LogOn uses a partial order [...] it is not possible to factor events.
//! As a consequence, each event of the piggyback sequence contains the
//! receiver rank \[so\] for the same number of events to piggyback, the
//! actual size in bytes of data added to the message is higher for
//! LogOn."*
//!
//! Both codecs are implemented byte-for-byte: the simulation charges the
//! exact encoded length on the wire, the flat codec preserves the partial
//! order LogOn relies on, and Criterion micro-benches measure the real
//! encode/decode cost of both.
//!
//! # Wire limits
//!
//! The `rid` and `sender` fields are u16 on the wire and the per-group
//! event count `nb` is u16. Encoding used to truncate with `as u16`,
//! silently wrapping for ranks ≥ 65 536 — and a factored run of exactly
//! 65 536 equal-receiver events encoded `nb = 0`, making the decoder lose
//! the whole group. Conversions are now checked: out-of-range *values*
//! (rank, clock, ssn) are reported as [`PbCodecError`] instead of
//! corrupting the stream, while over-long runs — a shape limit, not a
//! value limit — are transparently split into several maximal groups,
//! which the decoder reassembles for free. Wire bytes are unchanged for
//! everything that was previously encodable correctly.

use std::fmt;

use bytes::{Bytes, BytesMut};
use vlog_vmpi::{RClock, Rank};

use crate::event::Determinant;

/// Per-group header of the factored format: rid (u16) + nb (u16).
pub const GROUP_HEADER_BYTES: u64 = 4;
/// Per-event body bytes (shared by both formats).
pub const EVENT_BODY_BYTES: u64 = Determinant::BODY_BYTES;
/// Per-event bytes of the flat (LogOn) format: rid (u16) + body.
pub const FLAT_EVENT_BYTES: u64 = 2 + EVENT_BODY_BYTES;
/// Maximum events per factored group (the `nb` field is u16). Longer
/// equal-receiver runs are split into several groups by the encoder.
pub const GROUP_MAX_EVENTS: usize = u16::MAX as usize;

/// A determinant field that does not fit its wire representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbCodecError {
    /// Which wire field overflowed ("receiver", "sender", "clock", ...).
    pub field: &'static str,
    /// The offending value, widened.
    pub value: u64,
    /// Bits the wire format affords that field.
    pub wire_bits: u32,
}

impl fmt::Display for PbCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "piggyback codec: {} = {} exceeds the u{} wire field",
            self.field, self.value, self.wire_bits
        )
    }
}

impl std::error::Error for PbCodecError {}

pub(crate) fn wire_u16(field: &'static str, v: u64) -> Result<u16, PbCodecError> {
    u16::try_from(v).map_err(|_| PbCodecError {
        field,
        value: v,
        wire_bits: 16,
    })
}

pub(crate) fn wire_u32(field: &'static str, v: u64) -> Result<u32, PbCodecError> {
    u32::try_from(v).map_err(|_| PbCodecError {
        field,
        value: v,
        wire_bits: 32,
    })
}

/// Structured piggyback attached to a message by a causal protocol.
/// Travels structured through the simulated wire; `wire_len_*` gives the
/// exact length the codec would produce.
#[derive(Debug, Clone, Default)]
pub struct PbBody {
    /// The sender's reception clock at emission (the antecedence edge for
    /// the reception event this message will create at the destination).
    pub sender_clock: RClock,
    /// Determinants, in emission order (LogOn's partial order matters).
    pub dets: Vec<Determinant>,
}

/// Exact wire length of the factored format for `dets` (grouped by
/// consecutive runs of equal receiver, which is how the encoder factors;
/// runs longer than [`GROUP_MAX_EVENTS`] cost one extra header per
/// split).
pub fn factored_len(dets: &[Determinant]) -> u64 {
    let mut groups = 0u64;
    let mut run = 0usize;
    let mut last: Option<Rank> = None;
    for d in dets {
        if last != Some(d.receiver) {
            groups += 1;
            run = 1;
            last = Some(d.receiver);
        } else {
            run += 1;
            if run > GROUP_MAX_EVENTS {
                groups += 1;
                run = 1;
            }
        }
    }
    groups * GROUP_HEADER_BYTES + dets.len() as u64 * EVENT_BODY_BYTES
}

/// Exact wire length of the flat format.
pub fn flat_len(dets: &[Determinant]) -> u64 {
    dets.len() as u64 * FLAT_EVENT_BYTES
}

/// Encodes the factored `{rid, nb, events}` format. Runs of equal
/// receiver share one group header; the encoder emits groups in input
/// order, preserving the caller's (creator, clock) sorting.
pub fn encode_factored(dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
    let mut out = BytesMut::with_capacity(factored_len(dets) as usize);
    let mut i = 0;
    while i < dets.len() {
        let rid = dets[i].receiver;
        let mut j = i;
        while j < dets.len() && dets[j].receiver == rid && j - i < GROUP_MAX_EVENTS {
            j += 1;
        }
        crate::codec::put_u16(&mut out, wire_u16("receiver", rid as u64)?);
        crate::codec::put_u16(&mut out, (j - i) as u16);
        for d in &dets[i..j] {
            d.encode_body(&mut out)?;
        }
        i = j;
    }
    Ok(out.freeze())
}

/// Decodes the factored format.
pub fn decode_factored(mut buf: Bytes) -> Vec<Determinant> {
    let mut dets = Vec::new();
    while !buf.is_empty() {
        let rid = crate::codec::get_u16(&mut buf) as Rank;
        let nb = crate::codec::get_u16(&mut buf) as usize;
        for _ in 0..nb {
            dets.push(Determinant::decode_body(rid, &mut buf));
        }
    }
    dets
}

/// Encodes the flat (LogOn) format: order-preserving, one rid per event.
pub fn encode_flat(dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
    let mut out = BytesMut::with_capacity(flat_len(dets) as usize);
    for d in dets {
        crate::codec::put_u16(&mut out, wire_u16("receiver", d.receiver as u64)?);
        d.encode_body(&mut out)?;
    }
    Ok(out.freeze())
}

/// Decodes the flat format, preserving order.
pub fn decode_flat(mut buf: Bytes) -> Vec<Determinant> {
    let mut dets = Vec::new();
    while !buf.is_empty() {
        let rid = crate::codec::get_u16(&mut buf) as Rank;
        dets.push(Determinant::decode_body(rid, &mut buf));
    }
    dets
}

/// One validation sweep over every wire field, in encode order
/// (receiver, clock, sender, ssn, cause per event). Reports the same
/// first error as the incremental encoders, which check the receiver at
/// each group header / flat prefix and then the body fields in this
/// order.
fn validate(dets: &[Determinant]) -> Result<(), PbCodecError> {
    for d in dets {
        wire_u16("receiver", d.receiver as u64)?;
        wire_u32("clock", d.clock)?;
        wire_u16("sender", d.sender as u64)?;
        wire_u32("ssn", d.ssn)?;
        wire_u32("cause", d.cause)?;
    }
    Ok(())
}

/// The 14-byte event body as a stack array (clock u32, sender u16,
/// ssn u32, cause u32 — all little endian). Callers must have validated
/// the fields; the `as` casts here cannot wrap after [`validate`].
#[inline]
fn body_bytes(d: &Determinant) -> [u8; EVENT_BODY_BYTES as usize] {
    let mut b = [0u8; EVENT_BODY_BYTES as usize];
    b[0..4].copy_from_slice(&(d.clock as u32).to_le_bytes());
    b[4..6].copy_from_slice(&(d.sender as u16).to_le_bytes());
    b[6..10].copy_from_slice(&(d.ssn as u32).to_le_bytes());
    b[10..14].copy_from_slice(&(d.cause as u32).to_le_bytes());
    b
}

/// Reusable batched encoder for both piggyback formats.
///
/// Produces byte-identical output to [`encode_factored`] /
/// [`encode_flat`] (golden-tested) but restructures the work for the
/// per-ship hot path:
///
/// * field validation is hoisted into one up-front sweep, so the
///   group/event loops carry no `Result` plumbing;
/// * each event body is assembled in a fixed stack array and appended
///   with a single `extend_from_slice` instead of four checked
///   per-field writes;
/// * the accumulation buffer is owned by the encoder and reused across
///   calls, so steady-state encoding performs exactly one allocation
///   (the final shared [`Bytes`]) regardless of piggyback size.
#[derive(Debug, Default)]
pub struct PbEncoder {
    scratch: Vec<u8>,
}

impl PbEncoder {
    pub fn new() -> PbEncoder {
        PbEncoder::default()
    }

    /// Batched factored `{rid, nb, events}` encode. Same bytes and same
    /// error reporting as [`encode_factored`].
    pub fn encode_factored(&mut self, dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
        validate(dets)?;
        self.scratch.clear();
        self.scratch.reserve(factored_len(dets) as usize);
        let mut i = 0;
        while i < dets.len() {
            let rid = dets[i].receiver;
            let mut j = i;
            while j < dets.len() && dets[j].receiver == rid && j - i < GROUP_MAX_EVENTS {
                j += 1;
            }
            self.scratch.extend_from_slice(&(rid as u16).to_le_bytes());
            self.scratch
                .extend_from_slice(&((j - i) as u16).to_le_bytes());
            for d in &dets[i..j] {
                self.scratch.extend_from_slice(&body_bytes(d));
            }
            i = j;
        }
        Ok(Bytes::copy_from_slice(&self.scratch))
    }

    /// Batched flat (LogOn) encode. Same bytes and same error reporting
    /// as [`encode_flat`].
    pub fn encode_flat(&mut self, dets: &[Determinant]) -> Result<Bytes, PbCodecError> {
        validate(dets)?;
        self.scratch.clear();
        self.scratch.reserve(flat_len(dets) as usize);
        for d in dets {
            let mut e = [0u8; FLAT_EVENT_BYTES as usize];
            e[0..2].copy_from_slice(&(d.receiver as u16).to_le_bytes());
            e[2..].copy_from_slice(&body_bytes(d));
            self.scratch.extend_from_slice(&e);
        }
        Ok(Bytes::copy_from_slice(&self.scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(receiver: Rank, clock: RClock, sender: Rank) -> Determinant {
        Determinant {
            receiver,
            clock,
            sender,
            ssn: clock * 10,
            cause: clock.saturating_sub(1),
        }
    }

    #[test]
    fn factored_roundtrip_and_length() {
        let dets = vec![det(0, 1, 1), det(0, 2, 2), det(1, 1, 0), det(2, 5, 0)];
        let enc = encode_factored(&dets).unwrap();
        assert_eq!(enc.len() as u64, factored_len(&dets));
        assert_eq!(
            factored_len(&dets),
            3 * GROUP_HEADER_BYTES + 4 * EVENT_BODY_BYTES
        );
        assert_eq!(decode_factored(enc), dets);
    }

    #[test]
    fn flat_roundtrip_preserves_order() {
        // Deliberately interleaved receivers: flat keeps the order, which
        // is what LogOn's partial-order decode relies on.
        let dets = vec![det(2, 9, 0), det(0, 1, 1), det(2, 8, 1), det(1, 3, 2)];
        let enc = encode_flat(&dets).unwrap();
        assert_eq!(enc.len() as u64, flat_len(&dets));
        assert_eq!(decode_flat(enc), dets);
    }

    #[test]
    fn flat_is_bigger_per_event_once_factoring_helps() {
        // Two events of one receiver break even; three or more win.
        let two = vec![det(0, 1, 1), det(0, 2, 1)];
        assert!(factored_len(&two) <= flat_len(&two));
        let three = vec![det(0, 1, 1), det(0, 2, 1), det(0, 3, 1)];
        assert!(factored_len(&three) < flat_len(&three));
        // One event: factored pays a header for a single event and loses
        // (the paper's "LU on four nodes" case where nothing factors).
        let single = vec![det(0, 1, 1)];
        assert!(factored_len(&single) > flat_len(&single));
    }

    #[test]
    fn empty_piggyback_is_zero_bytes() {
        assert_eq!(factored_len(&[]), 0);
        assert_eq!(flat_len(&[]), 0);
        assert!(encode_factored(&[]).unwrap().is_empty());
        assert!(encode_flat(&[]).unwrap().is_empty());
    }

    #[test]
    fn rank_at_the_u16_boundary_roundtrips() {
        let dets = vec![det(u16::MAX as Rank, 3, u16::MAX as Rank)];
        let enc = encode_factored(&dets).unwrap();
        assert_eq!(decode_factored(enc), dets);
        let enc = encode_flat(&dets).unwrap();
        assert_eq!(decode_flat(enc), dets);
    }

    #[test]
    fn rank_beyond_the_u16_boundary_is_an_error_not_a_wrap() {
        // Regression: `as u16` used to silently encode rank 65 536 as
        // rank 0, corrupting the determinant stream for large clusters.
        let oversized = vec![det(u16::MAX as Rank + 1, 3, 0)];
        let err = encode_factored(&oversized).unwrap_err();
        assert_eq!(err.field, "receiver");
        assert_eq!(err.value, u16::MAX as u64 + 1);
        assert_eq!(err.wire_bits, 16);
        assert!(encode_flat(&oversized).is_err());
        // Same for the sender field inside the shared event body.
        let bad_sender = vec![det(0, 3, u16::MAX as Rank + 1)];
        assert_eq!(encode_factored(&bad_sender).unwrap_err().field, "sender");
        assert_eq!(encode_flat(&bad_sender).unwrap_err().field, "sender");
        // And for the u32 body fields.
        let bad_clock = vec![Determinant {
            clock: u32::MAX as u64 + 1,
            ..det(0, 1, 1)
        }];
        assert_eq!(encode_flat(&bad_clock).unwrap_err().field, "clock");
        let err = encode_flat(&bad_clock).unwrap_err();
        assert!(err.to_string().contains("clock"), "{err}");
    }

    #[test]
    fn batched_encoder_is_byte_identical_to_the_incremental_one() {
        // Golden equality over every interesting shape: empty, single
        // event, factoring-friendly runs, interleaved receivers,
        // boundary values, and a run long enough to split groups.
        let shapes: Vec<Vec<Determinant>> = vec![
            vec![],
            vec![det(0, 1, 1)],
            vec![det(0, 1, 1), det(0, 2, 2), det(1, 1, 0), det(2, 5, 0)],
            vec![det(2, 9, 0), det(0, 1, 1), det(2, 8, 1), det(1, 3, 2)],
            vec![det(u16::MAX as Rank, 3, u16::MAX as Rank)],
            (0..GROUP_MAX_EVENTS + 3)
                .map(|i| det(7, i as u64 + 1, 1))
                .collect(),
        ];
        let mut enc = PbEncoder::new();
        for dets in &shapes {
            let golden_f = encode_factored(dets).unwrap();
            let batched_f = enc.encode_factored(dets).unwrap();
            assert_eq!(
                &batched_f[..],
                &golden_f[..],
                "factored, {} dets",
                dets.len()
            );
            let golden_l = encode_flat(dets).unwrap();
            let batched_l = enc.encode_flat(dets).unwrap();
            assert_eq!(&batched_l[..], &golden_l[..], "flat, {} dets", dets.len());
        }
        // Scratch reuse across calls must not leak bytes from a larger
        // earlier encode into a smaller later one (exercised above by
        // iterating big-after-small and small-after-big shapes).
        let small = vec![det(1, 2, 3)];
        assert_eq!(
            &enc.encode_flat(&small).unwrap()[..],
            &encode_flat(&small).unwrap()[..]
        );
    }

    #[test]
    fn batched_encoder_reports_the_same_errors() {
        let mut enc = PbEncoder::new();
        let cases: Vec<(Vec<Determinant>, &str)> = vec![
            (vec![det(u16::MAX as Rank + 1, 3, 0)], "receiver"),
            (vec![det(0, 3, u16::MAX as Rank + 1)], "sender"),
            (
                vec![Determinant {
                    clock: u32::MAX as u64 + 1,
                    ..det(0, 1, 1)
                }],
                "clock",
            ),
            (
                vec![Determinant {
                    ssn: u32::MAX as u64 + 1,
                    ..det(0, 1, 1)
                }],
                "ssn",
            ),
        ];
        for (dets, field) in &cases {
            assert_eq!(encode_factored(dets).unwrap_err().field, *field);
            assert_eq!(enc.encode_factored(dets).unwrap_err().field, *field);
            assert_eq!(encode_flat(dets).unwrap_err().field, *field);
            assert_eq!(enc.encode_flat(dets).unwrap_err().field, *field);
        }
    }

    #[test]
    fn runs_longer_than_a_group_split_and_roundtrip() {
        // Regression: a run of exactly 65 536 equal-receiver events used
        // to encode `nb = 0`, silently dropping the group on decode. The
        // encoder now splits it into maximal groups.
        let n = GROUP_MAX_EVENTS + 3;
        let long: Vec<Determinant> = (0..n).map(|i| det(7, i as u64 + 1, 1)).collect();
        let expected_len = 2 * GROUP_HEADER_BYTES + n as u64 * EVENT_BODY_BYTES;
        assert_eq!(factored_len(&long), expected_len);
        let enc = encode_factored(&long).unwrap();
        assert_eq!(enc.len() as u64, expected_len);
        assert_eq!(decode_factored(enc), long);
        // A run of exactly the maximum stays a single group.
        let exact: Vec<Determinant> = (0..GROUP_MAX_EVENTS)
            .map(|i| det(7, i as u64 + 1, 1))
            .collect();
        assert_eq!(
            factored_len(&exact),
            GROUP_HEADER_BYTES + GROUP_MAX_EVENTS as u64 * EVENT_BODY_BYTES
        );
        assert_eq!(decode_factored(encode_factored(&exact).unwrap()), exact);
    }
}
