//! The two piggyback wire formats (paper §III-C).
//!
//! *"In the implementation of Vcausal and Manetho protocols, in order to
//! reduce the piggybacked information size, the reception events are
//! factored by peer rank. These two implementations use the same
//! piggyback format: a list of `{rid, nb, sequence_of_events}` [...]
//! LogOn uses a partial order [...] it is not possible to factor events.
//! As a consequence, each event of the piggyback sequence contains the
//! receiver rank [so] for the same number of events to piggyback, the
//! actual size in bytes of data added to the message is higher for
//! LogOn."*
//!
//! Both codecs are implemented byte-for-byte: the simulation charges the
//! exact encoded length on the wire, the flat codec preserves the partial
//! order LogOn relies on, and Criterion micro-benches measure the real
//! encode/decode cost of both.

use bytes::{Bytes, BytesMut};
use vlog_vmpi::{RClock, Rank};

use crate::event::Determinant;

/// Per-group header of the factored format: rid (u16) + nb (u16).
pub const GROUP_HEADER_BYTES: u64 = 4;
/// Per-event body bytes (shared by both formats).
pub const EVENT_BODY_BYTES: u64 = Determinant::BODY_BYTES;
/// Per-event bytes of the flat (LogOn) format: rid (u16) + body.
pub const FLAT_EVENT_BYTES: u64 = 2 + EVENT_BODY_BYTES;

/// Structured piggyback attached to a message by a causal protocol.
/// Travels structured through the simulated wire; `wire_len_*` gives the
/// exact length the codec would produce.
#[derive(Debug, Clone, Default)]
pub struct PbBody {
    /// The sender's reception clock at emission (the antecedence edge for
    /// the reception event this message will create at the destination).
    pub sender_clock: RClock,
    /// Determinants, in emission order (LogOn's partial order matters).
    pub dets: Vec<Determinant>,
}

/// Exact wire length of the factored format for `dets` (grouped by
/// consecutive runs of equal receiver, which is how the encoder factors).
pub fn factored_len(dets: &[Determinant]) -> u64 {
    let mut groups = 0u64;
    let mut last: Option<Rank> = None;
    for d in dets {
        if last != Some(d.receiver) {
            groups += 1;
            last = Some(d.receiver);
        }
    }
    groups * GROUP_HEADER_BYTES + dets.len() as u64 * EVENT_BODY_BYTES
}

/// Exact wire length of the flat format.
pub fn flat_len(dets: &[Determinant]) -> u64 {
    dets.len() as u64 * FLAT_EVENT_BYTES
}

/// Encodes the factored `{rid, nb, events}` format. Runs of equal
/// receiver share one group header; the encoder emits groups in input
/// order, preserving the caller's (creator, clock) sorting.
pub fn encode_factored(dets: &[Determinant]) -> Bytes {
    let mut out = BytesMut::with_capacity(factored_len(dets) as usize);
    let mut i = 0;
    while i < dets.len() {
        let rid = dets[i].receiver;
        let mut j = i;
        while j < dets.len() && dets[j].receiver == rid {
            j += 1;
        }
        crate::codec::put_u16(&mut out, rid as u16);
        crate::codec::put_u16(&mut out, (j - i) as u16);
        for d in &dets[i..j] {
            d.encode_body(&mut out);
        }
        i = j;
    }
    out.freeze()
}

/// Decodes the factored format.
pub fn decode_factored(mut buf: Bytes) -> Vec<Determinant> {
    let mut dets = Vec::new();
    while !buf.is_empty() {
        let rid = crate::codec::get_u16(&mut buf) as Rank;
        let nb = crate::codec::get_u16(&mut buf) as usize;
        for _ in 0..nb {
            dets.push(Determinant::decode_body(rid, &mut buf));
        }
    }
    dets
}

/// Encodes the flat (LogOn) format: order-preserving, one rid per event.
pub fn encode_flat(dets: &[Determinant]) -> Bytes {
    let mut out = BytesMut::with_capacity(flat_len(dets) as usize);
    for d in dets {
        crate::codec::put_u16(&mut out, d.receiver as u16);
        d.encode_body(&mut out);
    }
    out.freeze()
}

/// Decodes the flat format, preserving order.
pub fn decode_flat(mut buf: Bytes) -> Vec<Determinant> {
    let mut dets = Vec::new();
    while !buf.is_empty() {
        let rid = crate::codec::get_u16(&mut buf) as Rank;
        dets.push(Determinant::decode_body(rid, &mut buf));
    }
    dets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(receiver: Rank, clock: RClock, sender: Rank) -> Determinant {
        Determinant {
            receiver,
            clock,
            sender,
            ssn: clock * 10,
            cause: clock.saturating_sub(1),
        }
    }

    #[test]
    fn factored_roundtrip_and_length() {
        let dets = vec![det(0, 1, 1), det(0, 2, 2), det(1, 1, 0), det(2, 5, 0)];
        let enc = encode_factored(&dets);
        assert_eq!(enc.len() as u64, factored_len(&dets));
        assert_eq!(
            factored_len(&dets),
            3 * GROUP_HEADER_BYTES + 4 * EVENT_BODY_BYTES
        );
        assert_eq!(decode_factored(enc), dets);
    }

    #[test]
    fn flat_roundtrip_preserves_order() {
        // Deliberately interleaved receivers: flat keeps the order, which
        // is what LogOn's partial-order decode relies on.
        let dets = vec![det(2, 9, 0), det(0, 1, 1), det(2, 8, 1), det(1, 3, 2)];
        let enc = encode_flat(&dets);
        assert_eq!(enc.len() as u64, flat_len(&dets));
        assert_eq!(decode_flat(enc), dets);
    }

    #[test]
    fn flat_is_bigger_per_event_once_factoring_helps() {
        // Two events of one receiver break even; three or more win.
        let two = vec![det(0, 1, 1), det(0, 2, 1)];
        assert!(factored_len(&two) <= flat_len(&two));
        let three = vec![det(0, 1, 1), det(0, 2, 1), det(0, 3, 1)];
        assert!(factored_len(&three) < flat_len(&three));
        // One event: factored pays a header for a single event and loses
        // (the paper's "LU on four nodes" case where nothing factors).
        let single = vec![det(0, 1, 1)];
        assert!(factored_len(&single) > flat_len(&single));
    }

    #[test]
    fn empty_piggyback_is_zero_bytes() {
        assert_eq!(factored_len(&[]), 0);
        assert_eq!(flat_len(&[]), 0);
        assert!(encode_factored(&[]).is_empty());
        assert!(encode_flat(&[]).is_empty());
    }
}
