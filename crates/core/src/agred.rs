//! Antecedence-graph piggyback reductions: Manetho and LogOn.
//!
//! Both maintain the [`AGraph`] and guarantee no event is ever sent twice
//! to the same peer; they differ in how the border of the piggyback is
//! computed and in what the receiver pays (paper §III-B.2):
//!
//! * **Manetho** *"first searches for the last events P_r knows. To find
//!   this bound, the graph is crossed from the last known reception of
//!   P_r."* The send-side traversal covers the receiver's causal past
//!   (large when the receiver is well-informed); on receive it must
//!   *"first add the new piggybacked events, before generating new edges
//!   of the graph"* — a two-pass, more expensive integration.
//!
//! * **LogOn** *"explores the antecedence graph in a reverse order,
//!   starting from the last reception event of the sender P_s, until
//!   reaching events from the receiver"* and emits the piggyback in a
//!   partial order (ancestors first), which lets the receiver integrate
//!   in a single crossing — at the price of send-side reordering work and
//!   a fatter per-event wire format (no factoring).
//!
//! Both reductions compute the same *set* (everything retained that is
//! neither in the receiver's causal past, nor its own creation, nor
//! already sent on this channel); the paper's cost asymmetries are
//! charged through the [`Work`] counters with technique-specific
//! constants.

use vlog_vmpi::{RClock, Rank};

use crate::event::Determinant;
use crate::graph::AGraph;
use crate::reduction::{Reduction, Technique, Work};

#[derive(Clone)]
pub struct GraphRed {
    kind: Technique,
    n: usize,
    graph: AGraph,
    /// `known[peer][creator]`: clock up to which `peer` provably holds
    /// `creator`'s events (sent-to or received-from knowledge).
    known: Vec<Vec<RClock>>,
}

impl GraphRed {
    pub fn new(n: usize, kind: Technique) -> Self {
        assert!(matches!(kind, Technique::Manetho | Technique::LogOn));
        GraphRed {
            kind,
            n,
            graph: AGraph::new(n),
            known: vec![vec![0; n]; n],
        }
    }

    pub fn graph(&self) -> &AGraph {
        &self.graph
    }

    /// The per-creator bound of what `dst` already knows: its own events,
    /// the causal past of its last event we know of, our sent cache and
    /// global stability. The traversal is incremental: it never re-walks
    /// the region already covered by the sent cache (what Manetho's
    /// per-peer bookkeeping buys).
    fn receiver_bound(&self, dst: Rank) -> (Vec<RClock>, u64) {
        // The floor on dst's own range is the dst-head at the previous
        // build on this channel (`known[dst][dst]`): older dst events
        // were walked then and their pasts are below the cache bound
        // anyway. Everything newer — including a first-ever send, where
        // the floor is zero — is walked to discover the receiver's past.
        let floor: Vec<RClock> = (0..self.n)
            .map(|c| self.known[dst][c].max(self.graph.stable(c)))
            .collect();
        let (mut bound, visits) = self
            .graph
            .causal_past_from(&[(dst, self.graph.head(dst))], &floor);
        bound[dst] = RClock::MAX;
        (bound, visits)
    }

    fn collect_above(&self, bound: &[RClock]) -> Vec<Determinant> {
        let mut out = Vec::new();
        for c in 0..self.n {
            if bound[c] == RClock::MAX {
                continue;
            }
            out.extend(self.graph.above(c, bound[c]).copied());
        }
        out
    }

    /// Emits `set` in a valid partial order: no element is in the causal
    /// past of a *later* element (ancestors first). Kahn-style repeated
    /// passes over per-creator ascending queues.
    fn logon_order(&self, mut set: Vec<Determinant>, bound: &[RClock]) -> Vec<Determinant> {
        set.sort_by_key(|d| (d.receiver, d.clock));
        // Per-creator cursors into the sorted set.
        let mut queues: Vec<Vec<Determinant>> = vec![Vec::new(); self.n];
        for d in set {
            queues[d.receiver].push(d);
        }
        let mut cursor = vec![0usize; self.n];
        let mut emitted_up_to: Vec<RClock> = bound
            .iter()
            .map(|&b| if b == RClock::MAX { 0 } else { b })
            .collect();
        let total: usize = queues.iter().map(|q| q.len()).sum();
        let mut out = Vec::with_capacity(total);
        while out.len() < total {
            let mut progressed = false;
            for c in 0..self.n {
                while cursor[c] < queues[c].len() {
                    let d = queues[c][cursor[c]];
                    let cause_ok = match d.cause_id() {
                        None => true,
                        Some(id) => {
                            id.creator == d.receiver // program-order handled per queue
                                || id.clock <= emitted_up_to[id.creator]
                                || id.clock <= self.graph.stable(id.creator)
                                || bound[id.creator] == RClock::MAX
                                || id.clock <= bound[id.creator]
                        }
                    };
                    if !cause_ok {
                        break;
                    }
                    emitted_up_to[c] = d.clock;
                    out.push(d);
                    cursor[c] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                // A cause refers to an event we never held (it was pruned
                // before we learned of it): flush remaining in creator
                // order — still a valid order for everything we can know.
                for c in 0..self.n {
                    out.extend(queues[c][cursor[c]..].iter().copied());
                    cursor[c] = queues[c].len();
                }
            }
        }
        out
    }

    fn note_peer_knowledge(&mut self, from: Rank, sender_clock: RClock, dets: &[Determinant]) {
        for det in dets {
            let k = &mut self.known[from][det.receiver];
            *k = (*k).max(det.clock);
        }
        let k = &mut self.known[from][from];
        *k = (*k).max(sender_clock);
    }
}

impl Reduction for GraphRed {
    fn technique(&self) -> Technique {
        self.kind
    }

    fn add_local(&mut self, det: Determinant) -> Work {
        let added = self.graph.insert(det);
        Work::inserts(added as u64)
    }

    fn integrate(&mut self, from: Rank, sender_clock: RClock, dets: &[Determinant]) -> Work {
        let mut inserts = 0;
        for det in dets {
            if self.graph.insert(*det) {
                inserts += 1;
            }
        }
        self.note_peer_knowledge(from, sender_clock, dets);
        // Manetho pays a second pass generating edges after insertion;
        // LogOn's partial order lets it link in the same crossing.
        let visits = match self.kind {
            Technique::Manetho => dets.len() as u64,
            _ => 0,
        };
        Work { visits, inserts }
    }

    fn absorb(&mut self, dets: &[Determinant]) {
        for det in dets {
            self.graph.insert(*det);
        }
    }

    fn build(&mut self, dst: Rank, my_clock: RClock) -> (Vec<Determinant>, Work) {
        let (bound, past_visits) = self.receiver_bound(dst);
        let out = self.collect_above(&bound);
        let visits = match self.kind {
            // Manetho crosses the receiver's past from its last known
            // reception: the traversal itself is the dominant cost.
            Technique::Manetho => past_visits + out.len() as u64,
            // LogOn explores backwards from the sender's own last event,
            // touching only the region it will emit.
            _ => out.len() as u64 + 1,
        };
        let out = match self.kind {
            Technique::LogOn => self.logon_order(out, &bound),
            _ => out, // already (creator, clock) ascending: maximal factoring
        };
        // Everything we hold is now known to dst.
        for c in 0..self.n {
            let head = self.graph.head(c);
            let k = &mut self.known[dst][c];
            *k = (*k).max(head);
        }
        let _ = my_clock;
        (out, Work::visits(visits))
    }

    fn apply_stable(&mut self, stable: &[RClock]) {
        self.graph.apply_stable(stable);
    }

    fn note_peer_stable(&mut self, peer: Rank, stable: &[RClock]) {
        // A peer's reported stability is exactly peer knowledge: it holds
        // (or can re-fetch from the EL) every determinant at or below the
        // vector, so it folds into the per-channel `known` floor. The
        // traversal in `receiver_bound` starts above that floor, making
        // GC notices also *cheapen* fresh-channel sends.
        for c in 0..self.n {
            let k = &mut self.known[peer][c];
            *k = (*k).max(stable[c]);
        }
    }

    fn retained(&self) -> Vec<Determinant> {
        self.graph.retained()
    }

    fn retained_count(&self) -> usize {
        self.graph.len()
    }

    fn clone_box(&self) -> Box<dyn Reduction> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::make_reduction;

    /// Drives one message at the reduction level: `from` builds its
    /// piggyback for `to`, `to` integrates it and creates the reception
    /// event. Returns the piggyback that travelled.
    fn exchange(
        reds: &mut [Box<dyn Reduction>],
        clocks: &mut [RClock],
        from: Rank,
        to: Rank,
    ) -> Vec<Determinant> {
        let (pb, _) = reds[from].build(to, clocks[from]);
        let sender_clock = clocks[from];
        reds[to].integrate(from, sender_clock, &pb);
        clocks[to] += 1;
        let det = Determinant {
            receiver: to,
            clock: clocks[to],
            sender: from,
            ssn: 0,
            cause: sender_clock,
        };
        reds[to].add_local(det);
        pb
    }

    /// The paper's Figure 3 scenario: P3 has never exchanged anything
    /// with P2, yet the antecedence-graph methods know P2 holds a–e and
    /// piggyback only f–j, while Vcausal piggybacks all ten events.
    fn figure3(kind: Technique) -> (Vec<Determinant>, usize) {
        let mut reds: Vec<Box<dyn Reduction>> = (0..4).map(|_| make_reduction(kind, 4)).collect();
        let mut clocks = vec![0; 4];
        exchange(&mut reds, &mut clocks, 1, 0); // a = (P0, 1)
        exchange(&mut reds, &mut clocks, 0, 1); // b = (P1, 1), cause a
        exchange(&mut reds, &mut clocks, 1, 2); // c = (P2, 1), cause b
        exchange(&mut reds, &mut clocks, 1, 2); // d = (P2, 2), cause b
        exchange(&mut reds, &mut clocks, 1, 2); // e = (P2, 3), cause b
        exchange(&mut reds, &mut clocks, 2, 1); // f = (P1, 2), cause e
        exchange(&mut reds, &mut clocks, 1, 3); // g = (P3, 1), cause f
        exchange(&mut reds, &mut clocks, 0, 3); // h = (P3, 2), cause a
        exchange(&mut reds, &mut clocks, 1, 3); // i = (P3, 3), cause f
        exchange(&mut reds, &mut clocks, 0, 3); // j = (P3, 4), cause a

        // The dotted message: P3 -> P2.
        let (pb, _) = reds[3].build(2, clocks[3]);
        (pb, reds[3].retained_count())
    }

    #[test]
    fn figure3_manetho_sends_only_f_to_j() {
        let (pb, retained) = figure3(Technique::Manetho);
        assert_eq!(retained, 10, "P3 should know all ten events");
        // f..j = (P1,2), (P3,1..4): five events, none created by P2, none
        // in the past of P2's last event e.
        assert_eq!(pb.len(), 5, "piggyback should be f..j, got {pb:?}");
        assert!(pb.iter().all(|d| d.receiver != 2));
        assert!(
            pb.iter().any(|d| d.receiver == 1 && d.clock == 2),
            "f missing"
        );
        assert_eq!(pb.iter().filter(|d| d.receiver == 3).count(), 4);
    }

    #[test]
    fn figure3_logon_sends_same_set_in_partial_order() {
        let (pb, _) = figure3(Technique::LogOn);
        assert_eq!(pb.len(), 5);
        // Partial order: no element may be in the causal past of a later
        // element. Program order per creator is the observable proxy:
        // clocks per creator must be ascending.
        for c in 0..4 {
            let clocks: Vec<RClock> = pb
                .iter()
                .filter(|d| d.receiver == c)
                .map(|d| d.clock)
                .collect();
            let mut sorted = clocks.clone();
            sorted.sort_unstable();
            assert_eq!(clocks, sorted, "creator {c} out of order");
        }
        // f = (P1,2) is in the past of g = (P3,1), so f must come first.
        let pos_f = pb.iter().position(|d| d.receiver == 1 && d.clock == 2);
        let pos_g = pb.iter().position(|d| d.receiver == 3 && d.clock == 1);
        assert!(
            pos_f.unwrap() < pos_g.unwrap(),
            "ancestor emitted after descendant"
        );
    }

    #[test]
    fn figure3_vcausal_sends_everything() {
        let mut reds: Vec<Box<dyn Reduction>> = (0..4)
            .map(|_| make_reduction(Technique::Vcausal, 4))
            .collect();
        let mut clocks = vec![0; 4];
        for (from, to) in [
            (1, 0),
            (0, 1),
            (1, 2),
            (1, 2),
            (1, 2),
            (2, 1),
            (1, 3),
            (0, 3),
            (1, 3),
            (0, 3),
        ] {
            exchange(&mut reds, &mut clocks, from, to);
        }
        let (pb, _) = reds[3].build(2, clocks[3]);
        // P3 knows all 10 events and has never talked to P2: all 10 go.
        assert_eq!(pb.len(), 10, "Vcausal must send all events: {pb:?}");
        // Including P2's own events back to it (the paper's point).
        assert!(pb.iter().any(|d| d.receiver == 2));
    }

    #[test]
    fn nothing_is_ever_piggybacked_twice_per_channel() {
        for kind in [Technique::Manetho, Technique::LogOn] {
            let (pb, _) = figure3(kind);
            assert_eq!(pb.len(), 5);
            // Re-run the final build: second piggyback must be empty.
            let mut reds: Vec<Box<dyn Reduction>> =
                (0..4).map(|_| make_reduction(kind, 4)).collect();
            let mut clocks = vec![0; 4];
            exchange(&mut reds, &mut clocks, 0, 1);
            exchange(&mut reds, &mut clocks, 1, 0);
            let (first, _) = reds[0].build(1, clocks[0]);
            let (second, _) = reds[0].build(1, clocks[0]);
            assert!(first.len() <= 2);
            assert!(second.is_empty(), "{kind:?} resent events");
        }
    }

    #[test]
    fn stability_shrinks_the_graph_and_piggybacks() {
        let mut reds: Vec<Box<dyn Reduction>> = (0..4)
            .map(|_| make_reduction(Technique::Manetho, 4))
            .collect();
        let mut clocks = vec![0; 4];
        for _ in 0..3 {
            exchange(&mut reds, &mut clocks, 0, 1);
            exchange(&mut reds, &mut clocks, 1, 0);
        }
        let before = reds[0].retained_count();
        assert!(before >= 6);
        // The EL acknowledged everything up to clock 2 for both creators.
        reds[0].apply_stable(&[2, 2, 0, 0]);
        assert!(reds[0].retained_count() < before);
        let (pb, _) = reds[0].build(3, clocks[0]);
        assert!(pb.iter().all(|d| d.clock > 2));
    }

    #[test]
    fn peer_stability_raises_the_channel_bound() {
        for kind in [Technique::Manetho, Technique::LogOn] {
            let mut reds: Vec<Box<dyn Reduction>> =
                (0..4).map(|_| make_reduction(kind, 4)).collect();
            let mut clocks = vec![0; 4];
            for (from, to) in [(1, 0), (0, 1), (1, 2), (1, 2), (1, 2), (2, 1)] {
                exchange(&mut reds, &mut clocks, from, to);
            }
            // Rank 3 learns everything rank 1 knows.
            exchange(&mut reds, &mut clocks, 1, 3);
            // Rank 2's GC notice tells rank 3 that P1's and P2's events
            // up to these clocks are EL-stable at rank 2's checkpoint.
            reds[3].note_peer_stable(2, &[1, 2, 3, 0]);
            let (pb, _) = reds[3].build(2, clocks[3]);
            assert!(
                pb.iter().all(|d| d.clock > [1, 2, 3, 0][d.receiver]),
                "{kind:?} piggybacked below the peer-stable floor: {pb:?}"
            );
            // The local store is untouched: peer stability is not global.
            assert!(reds[3].retained_count() > 0);
        }
    }

    #[test]
    fn manetho_pays_a_traversal_on_fresh_channels() {
        // The Figure 3 send (P3 -> P2, never exchanged before, but P2's
        // events are known transitively): Manetho crosses P2's causal
        // past (a..e) on top of emitting f..j; LogOn only touches what it
        // emits.
        let visits_of = |kind: Technique| {
            let mut reds: Vec<Box<dyn Reduction>> =
                (0..4).map(|_| make_reduction(kind, 4)).collect();
            let mut clocks = vec![0; 4];
            for (from, to) in [
                (1, 0),
                (0, 1),
                (1, 2),
                (1, 2),
                (1, 2),
                (2, 1),
                (1, 3),
                (0, 3),
                (1, 3),
                (0, 3),
            ] {
                exchange(&mut reds, &mut clocks, from, to);
            }
            let (out, w) = reds[3].build(2, clocks[3]);
            (out.len(), w.visits)
        };
        let (m_out, m_visits) = visits_of(Technique::Manetho);
        let (l_out, l_visits) = visits_of(Technique::LogOn);
        assert_eq!(m_out, l_out, "both graph methods compute the same set");
        assert!(
            m_visits > l_visits,
            "manetho fresh-channel visits {m_visits} should exceed logon {l_visits}"
        );
    }

    #[test]
    fn incremental_traversal_is_cheap_on_warm_channels() {
        // Repeated sends on the same channel must not re-walk the whole
        // graph (Manetho's per-peer bookkeeping).
        let mut reds: Vec<Box<dyn Reduction>> = (0..2)
            .map(|_| make_reduction(Technique::Manetho, 2))
            .collect();
        let mut clocks = vec![0; 2];
        for _ in 0..50 {
            exchange(&mut reds, &mut clocks, 0, 1);
            exchange(&mut reds, &mut clocks, 1, 0);
        }
        let (_, w) = reds[0].build(1, clocks[0]);
        assert!(
            w.visits < 20,
            "warm-channel traversal should be O(new), got {} visits",
            w.visits
        );
    }
}
