//! Reception events and their determinants.
//!
//! Message-logging protocols assume piecewise-deterministic execution: the
//! only non-deterministic events are receptions (paper §II). Each
//! reception at a process is assigned a *reception clock* and described by
//! a **determinant**: enough information to replay the same reception at
//! the same point of a re-execution. For antecedence-graph protocols the
//! determinant also carries the causality edge (the sender's last event
//! before the emission).

use crate::codec; // byte-level encode/decode helpers
use bytes::{Bytes, BytesMut};
use vlog_vmpi::{RClock, Rank, Ssn};

/// Identifier of a reception event: its creator and reception clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    /// The receiver that created the event.
    pub creator: Rank,
    /// Position of the reception in the creator's event sequence (1-based;
    /// 0 means "no event yet").
    pub clock: RClock,
}

/// A reception-event determinant.
///
/// `(receiver, clock)` identifies the event; `(sender, ssn)` identifies
/// the received message; `cause` is the sender's reception clock at
/// emission time, which is the antecedence edge used by Manetho and LogOn
/// (0 when the sender had received nothing yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Determinant {
    pub receiver: Rank,
    pub clock: RClock,
    pub sender: Rank,
    pub ssn: Ssn,
    pub cause: RClock,
}

impl Determinant {
    pub fn id(&self) -> EventId {
        EventId {
            creator: self.receiver,
            clock: self.clock,
        }
    }

    /// The antecedence edge target, if any.
    pub fn cause_id(&self) -> Option<EventId> {
        (self.cause > 0).then_some(EventId {
            creator: self.sender,
            clock: self.cause,
        })
    }

    /// Wire encoding of the per-event body shared by both piggyback
    /// formats: clock (u32), sender (u16), ssn (u32), cause (u32).
    pub const BODY_BYTES: u64 = 14;

    /// Checked: a field beyond its wire width is reported as a
    /// [`PbCodecError`](crate::piggyback::PbCodecError) instead of being
    /// silently truncated (`as u16`/`as u32` wrapped before).
    pub(crate) fn encode_body(
        &self,
        out: &mut BytesMut,
    ) -> Result<(), crate::piggyback::PbCodecError> {
        use crate::piggyback::{wire_u16, wire_u32};
        codec::put_u32(out, wire_u32("clock", self.clock)?);
        codec::put_u16(out, wire_u16("sender", self.sender as u64)?);
        codec::put_u32(out, wire_u32("ssn", self.ssn)?);
        codec::put_u32(out, wire_u32("cause", self.cause)?);
        Ok(())
    }

    /// Checked like the encode side: a buffer ending mid-body is a
    /// [`PbCodecError`](crate::piggyback::PbCodecError), not a panic.
    pub(crate) fn decode_body(
        receiver: Rank,
        buf: &mut Bytes,
    ) -> Result<Determinant, crate::piggyback::PbCodecError> {
        let clock = codec::get_u32(buf, "clock")? as RClock;
        let sender = codec::get_u16(buf, "sender")? as Rank;
        let ssn = codec::get_u32(buf, "ssn")? as Ssn;
        let cause = codec::get_u32(buf, "cause")? as RClock;
        Ok(Determinant {
            receiver,
            clock,
            sender,
            ssn,
            cause,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_id_is_none_at_clock_zero() {
        let d = Determinant {
            receiver: 1,
            clock: 5,
            sender: 2,
            ssn: 9,
            cause: 0,
        };
        assert!(d.cause_id().is_none());
        let d2 = Determinant { cause: 3, ..d };
        assert_eq!(
            d2.cause_id(),
            Some(EventId {
                creator: 2,
                clock: 3
            })
        );
    }

    #[test]
    fn body_roundtrip() {
        let d = Determinant {
            receiver: 7,
            clock: 123_456,
            sender: 3,
            ssn: 42,
            cause: 99,
        };
        let mut out = BytesMut::new();
        d.encode_body(&mut out).unwrap();
        assert_eq!(out.len() as u64, Determinant::BODY_BYTES);
        let mut buf = out.freeze();
        let back = Determinant::decode_body(7, &mut buf).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn truncated_body_is_an_error_not_a_panic() {
        let d = Determinant {
            receiver: 7,
            clock: 123_456,
            sender: 3,
            ssn: 42,
            cause: 99,
        };
        let mut out = BytesMut::new();
        d.encode_body(&mut out).unwrap();
        let mut short = out.freeze().slice(..8);
        assert_eq!(
            Determinant::decode_body(7, &mut short).unwrap_err().field(),
            "ssn"
        );
    }

    #[test]
    fn event_ids_order_by_creator_then_clock() {
        let a = EventId {
            creator: 0,
            clock: 9,
        };
        let b = EventId {
            creator: 1,
            clock: 1,
        };
        assert!(a < b);
    }
}
