//! The causal message logging V-protocol (paper §III).
//!
//! One implementation hosts all three piggyback-reduction techniques
//! behind [`Reduction`], with or without the Event Logger, exactly like
//! the paper's shared `Vcausal` V-protocol hosts the Manetho and LogOn
//! piggyback methods (Figure 4).
//!
//! Fault-free path: every reception creates a determinant which is added
//! to the causality store and (with an EL) shipped asynchronously to the
//! Event Logger; every emission piggybacks the determinants the
//! destination may miss; EL acknowledgements garbage-collect stable
//! determinants everywhere.
//!
//! Recovery (paper §III-A): the restarted process restores its last
//! checkpoint image, then *"collects from the EL and from every other
//! alive node all the causality information and conforms its execution to
//! this information until it reaches the same state as preceding the
//! crash"*. Payloads are re-obtained from the senders' volatile logs and
//! deliveries are replayed in determinant order; messages that arrive
//! meanwhile are buffered and re-accepted afterwards.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use vlog_sim::{profiler, SimDuration, SimTime};
use vlog_vmpi::{
    AppMsg, Ctx, ElReshard, Payload, PiggybackBlob, ProtoBlob, ProtoPhase, RClock, Rank,
    RankStatCell, RecvGate, SchedulerCmd, SendGate, SharedRankStats, Ssn, Tag, VProtocol,
};

use crate::costs::CausalCosts;
use crate::el::{el_batch_bytes, ElBatcher, ElMsg, ElReply};
use crate::event::Determinant;
use crate::piggyback::{watermarks_len, PbBody, PbFormat};
use crate::reduction::{make_reduction, Reduction, Technique};
use crate::sender_log::SenderLog;

/// Control messages between causal protocol instances.
pub enum CausalCtl {
    /// Recovery request: send me your causality knowledge and re-send
    /// your logged payloads for me from my channel watermarks.
    /// `recovery_id` names the victim's restart incarnation so retried
    /// reclaims of the *same* recovery don't trigger duplicate payload
    /// re-sends, while a later crash (new id) resets the dedupe.
    Reclaim {
        victim: Rank,
        from_clock: RClock,
        watermarks: Vec<Ssn>,
        recovery_id: u64,
    },
    /// Causality knowledge response.
    ReclaimResp { from: Rank, dets: Vec<Determinant> },
    /// Checkpoint-commit notice: my image covers receptions below these
    /// per-sender sequence numbers — prune your sender logs. `stable` is
    /// the sender's EL-stability vector at commit time: determinants at
    /// or below it are safely logged, so peers may prune them from
    /// piggybacks *on this channel* (send-side pruning).
    GcNotice {
        from: Rank,
        received: Vec<Ssn>,
        stable: Vec<RClock>,
    },
}

/// Protocol section of a checkpoint image.
pub struct CausalBlob {
    red: Box<dyn Reduction>,
    slog: SenderLog,
    rclock: RClock,
    stable: Vec<RClock>,
}

impl CausalBlob {
    fn wire_bytes(&self, n: usize) -> u64 {
        Determinant::BODY_BYTES * self.red.retained_count() as u64
            + self.slog.payload_bytes()
            + 16 * self.slog.len() as u64
            + 16 * n as u64
    }
}

/// A message buffered while recovering.
struct SupplyMsg {
    tag: Tag,
    payload: Payload,
    piggyback: PiggybackBlob,
    replayed: bool,
}

/// Recovery bookkeeping.
struct Recovery {
    started: SimTime,
    /// Reception clock covered by the restored image.
    wm: RClock,
    /// Determinants to replay, keyed by clock.
    collected: BTreeMap<RClock, Determinant>,
    /// Buffered message arrivals keyed by (sender, ssn).
    supply: BTreeMap<(Rank, Ssn), SupplyMsg>,
    /// Next clock to replay.
    next: RClock,
    /// Peers that answered the reclaim.
    resp_from: BTreeSet<Rank>,
    /// The Event Logger answered.
    resp_el: bool,
    /// Still waiting for responses.
    collecting: bool,
    /// Highest collected clock (0 before collection completes).
    max_clock: RClock,
}

/// Retry period for unanswered recovery requests (peers may themselves be
/// down and restart later).
const RECLAIM_RETRY: SimDuration = SimDuration::from_millis(200);
const TIMER_RECLAIM: u64 = 1;

/// The causal message logging protocol for one rank.
pub struct CausalProtocol {
    technique: Technique,
    /// Piggyback wire format (sizes only — determinants travel in
    /// structured form inside the simulation; see `piggyback`).
    format: PbFormat,
    el: bool,
    rank: Rank,
    n: usize,
    costs: CausalCosts,
    /// Lock-free stats delta; flushed into the shared handle when the
    /// incarnation drops (crash or end-of-run).
    stats: RankStatCell,

    red: Box<dyn Reduction>,
    slog: SenderLog,
    /// Reception clock: the last event created here.
    rclock: RClock,
    /// EL stability watermarks (all ranks).
    stable: Vec<RClock>,

    /// Scheduler asked for a checkpoint.
    ckpt_due: bool,
    /// Receive watermarks captured per assembled image version. GC
    /// notices must carry the watermarks of the *committed* version:
    /// with slow image transfers several checkpoints overlap in flight,
    /// and pruning with a newer version's watermarks would delete logged
    /// payloads a victim restored from the older image still needs.
    ckpt_expected: BTreeMap<u64, Vec<Ssn>>,

    rec: Option<Recovery>,
    /// Wheel handle of the armed reclaim retry timer, cancelled as soon
    /// as collection completes instead of left to fire as a stale no-op.
    reclaim_timer: Option<vlog_sim::TimerHandle>,
    /// Ack-clocked record batcher on the ship-to-EL path.
    batcher: ElBatcher,
    /// Monotone count of record batches put on the wire — the causality
    /// log's batch sequence numbers (acks arrive one per batch, in
    /// order, so the oldest outstanding seq pairs with each ack).
    batches_sent: u64,
    /// Outstanding batch seqs, oldest first (≤1 entry in steady state).
    el_outstanding: std::collections::VecDeque<u64>,
}

impl CausalProtocol {
    pub fn new(
        technique: Technique,
        format: PbFormat,
        el: bool,
        rank: Rank,
        n: usize,
        costs: CausalCosts,
        stats: SharedRankStats,
    ) -> Self {
        CausalProtocol {
            technique,
            format,
            el,
            rank,
            n,
            costs,
            stats: RankStatCell::new(stats),
            red: make_reduction(technique, n),
            slog: SenderLog::new(n),
            rclock: 0,
            stable: vec![0; n],
            ckpt_due: false,
            ckpt_expected: BTreeMap::new(),
            rec: None,
            reclaim_timer: None,
            batcher: ElBatcher::new(),
            batches_sent: 0,
            el_outstanding: std::collections::VecDeque::new(),
        }
    }

    fn el_actor(&self, ctx: &Ctx<'_>) -> Option<vlog_sim::ActorId> {
        if self.el {
            // With distributed Event Loggers, each rank logs to its
            // assigned shard (round-robin; see `el_multi`). Routed
            // through the epoch-cached topology view: zero locks on the
            // per-reception ship path.
            ctx.core.topo_view().el_for(self.rank).map(|(a, _)| a)
        } else {
            None
        }
    }

    fn ship_to_el(&mut self, ctx: &mut Ctx<'_>, det: Determinant) {
        if self.el_actor(ctx).is_none() {
            return;
        }
        crate::el::record_el_outstanding(ctx.sim, det.clock, self.stable[self.rank]);
        // Ack-clocked batching: ship immediately on an idle line,
        // coalesce behind the in-flight batch otherwise (the ack flushes
        // it). The phase boundary marks a *wire* shipment, so armed
        // phase faults keep firing on actual record traffic.
        if let Some(batch) = self.batcher.offer(det) {
            self.send_batch(ctx, batch);
            ctx.phase_boundary(ProtoPhase::DeterminantShipped);
        }
    }

    fn send_batch(&mut self, ctx: &mut Ctx<'_>, batch: Vec<Determinant>) {
        if let Some(el) = self.el_actor(ctx) {
            self.batches_sent += 1;
            let seq = self.batches_sent;
            self.el_outstanding.push_back(seq);
            vlog_sim::event!("det-batch-shipped" { rank = self.rank, seq = seq });
            vlog_sim::causality::expect(
                vlog_sim::ckey!("det-batch-acked", rank = self.rank, seq = seq),
                vlog_sim::ckey!("det-batch-shipped", rank = self.rank, seq = seq),
                self.rank as u64,
            );
            let me = ctx.core.actor();
            ctx.core.control_to_actor(
                ctx.sim,
                el,
                el_batch_bytes(batch.len()),
                Box::new(ElMsg::Record {
                    from: self.rank,
                    dets: batch,
                    reply_to: me,
                }),
            );
        }
    }

    /// An Event Logger shard died and the topology republished its
    /// rank→shard map. Re-route to the (possibly new) shard and hand
    /// over every determinant of this rank not yet acknowledged stable:
    /// the batcher's shipped-but-unacked and coalescing records plus the
    /// retained causality store above the stable watermark. Keyed by
    /// clock so the two sources dedupe; offered in clock order so the
    /// new shard sees a monotone sequence.
    fn handle_reshard(&mut self, ctx: &mut Ctx<'_>, _reshard: ElReshard) {
        if self.el_actor(ctx).is_none() {
            return;
        }
        // The dead shard will never acknowledge the in-flight batches:
        // their ack expectations are moot, not dangling — the records
        // are re-offered to the replacement shard below under fresh
        // batch seqs.
        for seq in self.el_outstanding.drain(..) {
            vlog_sim::causality::cancel(vlog_sim::ckey!(
                "det-batch-acked",
                rank = self.rank,
                seq = seq
            ));
        }
        let mut handoff: BTreeMap<RClock, Determinant> = BTreeMap::new();
        for det in self.batcher.take_unacked() {
            handoff.insert(det.clock, det);
        }
        for det in self.red.retained() {
            if det.receiver == self.rank && det.clock > self.stable[self.rank] {
                handoff.insert(det.clock, det);
            }
        }
        for (_, det) in handoff {
            if let Some(batch) = self.batcher.offer(det) {
                self.send_batch(ctx, batch);
            }
        }
    }

    fn integrate_cost(&self, dets: usize, inserts: u64, visits: u64) -> SimDuration {
        let c = &self.costs;
        let ns = match self.technique {
            Technique::Vcausal => c.integrate_event_ns * dets as u64,
            Technique::Manetho => c.graph_insert_ns * inserts + c.graph_visit_ns * visits,
            Technique::LogOn => c.logon_insert_ns * inserts + c.graph_visit_ns * visits,
        };
        SimDuration::from_nanos(ns)
    }

    fn build_cost(&self, emitted: usize, visits: u64) -> SimDuration {
        let c = &self.costs;
        let ns = match self.technique {
            Technique::Vcausal => c.serialize_event_ns * emitted as u64 + c.graph_visit_ns * visits,
            Technique::Manetho => c.serialize_event_ns * emitted as u64 + c.graph_visit_ns * visits,
            Technique::LogOn => {
                (c.serialize_event_ns + c.logon_reorder_ns) * emitted as u64
                    + c.graph_visit_ns * visits
            }
        };
        SimDuration::from_nanos(ns + self.mem_penalty_ns())
    }

    /// Cache-pressure penalty of the causality store, growing with the
    /// number of retained determinants (see `CausalCosts`).
    fn mem_penalty_ns(&self) -> u64 {
        let retained = self.red.retained_count() as u64;
        let k = match self.technique {
            Technique::Vcausal => self.costs.mem_ns_log2_seq,
            _ => self.costs.mem_ns_log2_graph,
        };
        k * (64 - (retained + 1).leading_zeros() as u64)
    }

    fn apply_stable_vec(&mut self, stable: &[RClock]) {
        for c in 0..self.n {
            self.stable[c] = self.stable[c].max(stable[c]);
        }
        self.red.apply_stable(&self.stable);
        // Monotone watermark assignment; the merge law is `max`, so the
        // end-of-run flush reproduces the last (highest) value exactly.
        self.stats.local().el_acked_events = self.stable[self.rank];
    }

    // ---- recovery ----------------------------------------------------

    fn send_reclaims(&mut self, ctx: &mut Ctx<'_>) {
        let wm = self.rec.as_ref().map_or(0, |r| r.wm);
        // The restart instant names this incarnation: a second crash
        // starts later, so its id differs and resets the peers' dedupe.
        let recovery_id = self.rec.as_ref().map_or(0, |r| r.started.as_nanos());
        let watermarks = ctx.core.expected_watermarks();
        let already: BTreeSet<Rank> = self
            .rec
            .as_ref()
            .map(|r| r.resp_from.clone())
            .unwrap_or_default();
        for peer in 0..self.n {
            if peer == self.rank || already.contains(&peer) {
                continue;
            }
            vlog_sim::causality::expect(
                vlog_sim::ckey!("reclaim-resp", victim = self.rank, from = peer),
                vlog_sim::ckey!("recovery-started", rank = self.rank),
                self.rank as u64,
            );
            ctx.core.control_to_rank(
                ctx.sim,
                peer,
                32 + 8 * self.n as u64,
                Box::new(CausalCtl::Reclaim {
                    victim: self.rank,
                    from_clock: wm,
                    watermarks: watermarks.clone(),
                    recovery_id,
                }),
            );
        }
        let need_el = self.el && !self.rec.as_ref().is_some_and(|r| r.resp_el);
        if need_el {
            vlog_sim::causality::expect(
                vlog_sim::ckey!("el-query-resp", victim = self.rank),
                vlog_sim::ckey!("recovery-started", rank = self.rank),
                self.rank as u64,
            );
            if let Some(el) = self.el_actor(ctx) {
                let me = ctx.core.actor();
                ctx.core.control_to_actor(
                    ctx.sim,
                    el,
                    16,
                    Box::new(ElMsg::Query {
                        victim: self.rank,
                        from: wm,
                        reply_to: me,
                    }),
                );
            }
        }
    }

    fn collection_complete(&self) -> bool {
        let Some(rec) = &self.rec else { return false };
        rec.resp_from.len() == self.n - 1 && (!self.el || rec.resp_el)
    }

    fn maybe_finish_collection(&mut self, ctx: &mut Ctx<'_>) {
        if !self.collection_complete() {
            return;
        }
        // Collection is done: the retry timer has nothing left to retry.
        if let Some(h) = self.reclaim_timer.take() {
            ctx.core.cancel_proto_timer(ctx.sim, h);
        }
        let now = ctx.sim.now();
        let rec = self.rec.as_mut().unwrap();
        if rec.collecting {
            rec.collecting = false;
            rec.max_clock = rec.collected.keys().next_back().copied().unwrap_or(rec.wm);
            let dt = now.saturating_since(rec.started);
            self.stats.local().recovery_collect.push(dt);
        }
        self.try_replay(ctx);
    }

    fn try_replay(&mut self, ctx: &mut Ctx<'_>) {
        enum Step {
            Done,
            Wait,
            Deliver(Determinant, SupplyMsg),
        }
        loop {
            let step = {
                let Some(rec) = self.rec.as_mut() else { return };
                if rec.collecting {
                    return;
                }
                match rec.collected.get(&rec.next).copied() {
                    // No determinant at `next`: either replay is complete
                    // or a gap means the tail was lost consistently with
                    // the rest of the system — both end the replay.
                    None => {
                        if rec.next > rec.max_clock {
                            Step::Done
                        } else {
                            vlog_sim::causality::expect(
                                vlog_sim::ckey!("det-replay", rank = self.rank, clock = rec.next),
                                vlog_sim::ckey!("recovery-started", rank = self.rank),
                                self.rank as u64,
                            );
                            Step::Wait
                        }
                    }
                    Some(det) => match rec.supply.remove(&(det.sender, det.ssn)) {
                        Some(supply) => {
                            rec.next += 1;
                            Step::Deliver(det, supply)
                        }
                        None => {
                            // Stalled on the payload re-send: the next
                            // determinant is known but its message has
                            // not been re-supplied by the sender's log.
                            vlog_sim::causality::expect(
                                vlog_sim::ckey!(
                                    "replay-supply",
                                    rank = self.rank,
                                    sender = det.sender,
                                    ssn = det.ssn
                                ),
                                vlog_sim::ckey!("det-replay", rank = self.rank, clock = det.clock),
                                self.rank as u64,
                            );
                            Step::Wait // wait for the payload re-send
                        }
                    },
                }
            };
            match step {
                Step::Done => {
                    self.finish_replay(ctx);
                    return;
                }
                Step::Wait => return,
                Step::Deliver(det, supply) => {
                    vlog_sim::event!("replay-consumed" { rank = self.rank, clock = det.clock }
                    caused_by "replay-supply" {
                        rank = self.rank,
                        sender = det.sender,
                        ssn = det.ssn
                    });
                    self.rclock = det.clock;
                    if self.el && det.clock > self.stable[self.rank] {
                        self.ship_to_el(ctx, det);
                    }
                    ctx.core.inject_deliver(
                        det.sender,
                        supply.tag,
                        supply.payload,
                        SimDuration::from_nanos(self.costs.event_create_ns),
                    );
                }
            }
        }
    }

    fn finish_replay(&mut self, ctx: &mut Ctx<'_>) {
        let rec = self.rec.take().unwrap();
        ctx.core.set_recovered(ctx.sim);
        // Re-accept buffered live messages in channel order.
        for ((src, ssn), m) in rec.supply {
            ctx.core.reaccept(AppMsg {
                src,
                dst: self.rank,
                tag: m.tag,
                ssn,
                payload: m.payload,
                piggyback: m.piggyback,
                replayed: m.replayed,
            });
        }
    }

    fn handle_ctl(&mut self, ctx: &mut Ctx<'_>, ctl: CausalCtl) {
        match ctl {
            CausalCtl::Reclaim {
                victim,
                from_clock,
                watermarks,
                recovery_id,
            } => {
                // Causality knowledge: everything retained (with an EL the
                // store is small — that is the entire point of the paper).
                let dets = self.red.retained();
                let bytes = 8 + (Determinant::BODY_BYTES + 2) * dets.len() as u64;
                let cost =
                    SimDuration::from_nanos(self.costs.serialize_event_ns * dets.len() as u64);
                ctx.sim.charge_cpu(ctx.core.node(), cost);
                ctx.core.control_to_rank(
                    ctx.sim,
                    victim,
                    bytes,
                    Box::new(CausalCtl::ReclaimResp {
                        from: self.rank,
                        dets,
                    }),
                );
                // Payload re-sends from the sender-based log. A retried
                // reclaim of the same incarnation resumes past what was
                // already shipped instead of re-sending everything.
                let from_ssn = self
                    .slog
                    .replay_start(victim, recovery_id, watermarks[self.rank]);
                let entries: Vec<(Ssn, Tag, Payload)> = self
                    .slog
                    .entries_from(victim, from_ssn)
                    .map(|(ssn, e)| (ssn, e.tag, e.payload.clone()))
                    .collect();
                let next = entries.last().map_or(from_ssn, |(ssn, _, _)| ssn + 1);
                self.slog.note_shipped(victim, recovery_id, next);
                for (ssn, tag, payload) in entries {
                    ctx.core.transmit_replay(ctx.sim, victim, tag, ssn, payload);
                }
                let _ = from_clock;
            }
            CausalCtl::ReclaimResp { from, dets } => {
                vlog_sim::event!("reclaim-resp" { victim = self.rank, from = from });
                self.red.absorb(&dets);
                if let Some(rec) = self.rec.as_mut() {
                    for d in &dets {
                        if d.receiver == self.rank && d.clock > rec.wm {
                            rec.collected.insert(d.clock, *d);
                            vlog_sim::event!("det-replay" { rank = self.rank, clock = d.clock }
                                caused_by "reclaim-resp" { victim = self.rank, from = from });
                        }
                    }
                    rec.resp_from.insert(from);
                    self.maybe_finish_collection(ctx);
                }
            }
            CausalCtl::GcNotice {
                from,
                received,
                stable,
            } => {
                vlog_sim::causality::consume(
                    vlog_sim::ckey!("gc-notice", from = from, to = self.rank),
                    vlog_sim::ckey!("gc-handle", rank = self.rank),
                );
                self.slog.prune_below(from, received[self.rank]);
                // Send-side pruning: `from` vouches these clocks are
                // EL-stable, so piggybacks *to it* can skip them. Peer
                // knowledge only — global stability still comes solely
                // from EL acknowledgements.
                self.red.note_peer_stable(from, &stable);
            }
        }
    }

    fn handle_el_reply(&mut self, ctx: &mut Ctx<'_>, reply: ElReply) {
        match reply {
            ElReply::Ack { stable } => {
                ctx.sim.charge_cpu(
                    ctx.core.node(),
                    SimDuration::from_nanos(self.costs.el_ack_ns),
                );
                // One ack per record batch, in order: pair it with the
                // oldest outstanding seq.
                if let Some(seq) = self.el_outstanding.pop_front() {
                    vlog_sim::event!("det-batch-acked" { rank = self.rank, seq = seq }
                        caused_by "det-batch-shipped" { rank = self.rank, seq = seq });
                }
                self.apply_stable_vec(&stable);
                // The ack clocks the batcher: flush whatever coalesced
                // behind the just-acknowledged batch.
                if let Some(batch) = self.batcher.acked() {
                    self.send_batch(ctx, batch);
                }
                ctx.phase_boundary(ProtoPhase::AckReceived);
            }
            ElReply::QueryResp { dets, stable } => {
                vlog_sim::event!("el-query-resp" { victim = self.rank });
                self.apply_stable_vec(&stable);
                if let Some(rec) = self.rec.as_mut() {
                    for d in &dets {
                        debug_assert_eq!(d.receiver, self.rank);
                        if d.clock > rec.wm {
                            rec.collected.insert(d.clock, *d);
                            vlog_sim::event!("det-replay" { rank = self.rank, clock = d.clock }
                                caused_by "el-query-resp" { victim = self.rank });
                        }
                    }
                    rec.resp_el = true;
                    self.maybe_finish_collection(ctx);
                }
            }
        }
    }
}

impl VProtocol for CausalProtocol {
    fn name(&self) -> String {
        format!(
            "{}{}",
            self.technique.label(),
            if self.el { "+EL" } else { "" }
        )
    }

    fn on_send_accept(
        &mut self,
        _ctx: &mut Ctx<'_>,
        dst: Rank,
        tag: Tag,
        ssn: Ssn,
        payload: &Payload,
    ) -> SendGate {
        let inserted = self.slog.insert(dst, ssn, tag, payload);
        let cost = if inserted {
            self.costs.sender_log_cost(payload.len())
        } else {
            SimDuration::ZERO
        };
        SendGate::Go { cost }
    }

    fn on_transmit(
        &mut self,
        _ctx: &mut Ctx<'_>,
        dst: Rank,
        _ssn: Ssn,
    ) -> (PiggybackBlob, SimDuration) {
        let _codec = profiler::scope(profiler::Phase::Codec);
        let (dets, work) = self.red.build(dst, self.rclock);
        let bytes = self.format.wire_len(&dets);
        let cost = self.build_cost(dets.len(), work.visits);
        self.stats.local().pb_events_sent += dets.len() as u64;
        let body = PbBody {
            sender_clock: self.rclock,
            dets,
        };
        (
            PiggybackBlob {
                body: Some(Box::new(body)),
                bytes,
            },
            cost,
        )
    }

    fn on_app_msg(&mut self, ctx: &mut Ctx<'_>, msg: &mut AppMsg) -> RecvGate {
        if self.rec.is_some() {
            // Buffer everything while recovering: replay supply or
            // post-replay live traffic; sorted out when collection ends.
            vlog_sim::event!("replay-supply" {
                rank = self.rank,
                sender = msg.src,
                ssn = msg.ssn
            });
            let key = (msg.src, msg.ssn);
            let supply = SupplyMsg {
                tag: msg.tag,
                payload: std::mem::take(&mut msg.payload),
                piggyback: std::mem::replace(&mut msg.piggyback, PiggybackBlob::empty()),
                replayed: msg.replayed,
            };
            let rec = self.rec.as_mut().unwrap();
            rec.supply.entry(key).or_insert(supply);
            self.try_replay(ctx);
            return RecvGate::Consume;
        }
        // Normal path: create the reception event.
        let body = msg
            .piggyback
            .body
            .take()
            .and_then(|b| b.downcast::<PbBody>().ok());
        let (sender_clock, dets) = match body {
            Some(b) => (b.sender_clock, b.dets),
            None => (0, Vec::new()),
        };
        self.rclock += 1;
        let det = Determinant {
            receiver: self.rank,
            clock: self.rclock,
            sender: msg.src,
            ssn: msg.ssn,
            cause: sender_clock,
        };
        let w_add = self.red.add_local(det);
        let w_int = self.red.integrate(msg.src, sender_clock, &dets);
        self.ship_to_el(ctx, det);
        // The Figure 8 "receive" metric is the piggyback-management part
        // only: integrating the piggybacked determinants into the store.
        let pb_part = SimDuration::from_nanos(self.mem_penalty_ns())
            + self.integrate_cost(dets.len(), w_int.inserts + w_add.inserts, w_int.visits);
        self.stats.local().pb_recv_time += pb_part;
        let mut cost = SimDuration::from_nanos(self.costs.event_create_ns) + pb_part;
        if self.el {
            cost += SimDuration::from_nanos(self.costs.el_ship_ns);
        }
        RecvGate::Deliver { cost }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, body: Box<dyn std::any::Any + Send>) {
        let body = match body.downcast::<ElReply>() {
            Ok(r) => {
                self.handle_el_reply(ctx, *r);
                return;
            }
            Err(b) => b,
        };
        let body = match body.downcast::<CausalCtl>() {
            Ok(c) => {
                self.handle_ctl(ctx, *c);
                return;
            }
            Err(b) => b,
        };
        let body = match body.downcast::<ElReshard>() {
            Ok(r) => {
                self.handle_reshard(ctx, *r);
                return;
            }
            Err(b) => b,
        };
        if let Ok(cmd) = body.downcast::<SchedulerCmd>() {
            if matches!(*cmd, SchedulerCmd::TakeCheckpoint) {
                self.ckpt_due = true;
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_RECLAIM && self.rec.as_ref().is_some_and(|r| r.collecting) {
            self.send_reclaims(ctx);
            self.reclaim_timer = Some(ctx.core.set_proto_timer(
                ctx.sim,
                RECLAIM_RETRY,
                TIMER_RECLAIM,
            ));
        }
    }

    fn checkpoint_due(&mut self, _ctx: &mut Ctx<'_>) -> bool {
        std::mem::take(&mut self.ckpt_due)
    }

    fn on_image_assembled(&mut self, ctx: &mut Ctx<'_>, version: u64) {
        self.ckpt_expected
            .insert(version, ctx.core.expected_watermarks());
        ctx.core.request_ship();
    }

    fn checkpoint_blob(&mut self, _ctx: &mut Ctx<'_>) -> ProtoBlob {
        let blob = CausalBlob {
            red: self.red.clone_box(),
            slog: self.slog.clone(),
            rclock: self.rclock,
            stable: self.stable.clone(),
        };
        let bytes = blob.wire_bytes(self.n);
        ProtoBlob {
            body: Some(Arc::new(blob)),
            bytes,
        }
    }

    fn on_checkpoint_committed(&mut self, ctx: &mut Ctx<'_>, version: u64) {
        // Prune with exactly the committed version's watermarks; newer
        // in-flight images may never complete before a crash.
        let Some(received) = self.ckpt_expected.remove(&version) else {
            return;
        };
        self.ckpt_expected.retain(|v, _| *v > version);
        // The stability vector rides along RLE-compressed (it is mostly
        // long flat runs), so the notice grows by a few bytes, not 8*n.
        let wire = 8 + 8 * self.n as u64 + watermarks_len(&self.stable);
        for peer in 0..self.n {
            if peer != self.rank {
                vlog_sim::event!("gc-notice" { from = self.rank, to = peer });
                ctx.core.control_to_rank(
                    ctx.sim,
                    peer,
                    wire,
                    Box::new(CausalCtl::GcNotice {
                        from: self.rank,
                        received: received.clone(),
                        stable: self.stable.clone(),
                    }),
                );
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>, blob: Option<ProtoBlob>) {
        let wm = match blob.and_then(|b| b.body) {
            Some(body) => match body.downcast::<CausalBlob>() {
                Ok(b) => {
                    self.red = b.red.clone_box();
                    self.slog = b.slog.clone();
                    self.rclock = b.rclock;
                    self.stable = b.stable.clone();
                    b.rclock
                }
                Err(_) => 0,
            },
            None => 0,
        };
        vlog_sim::event!("recovery-started" { rank = self.rank }
            caused_by "image-fetched" { rank = self.rank });
        self.rec = Some(Recovery {
            started: ctx.sim.now(),
            wm,
            collected: BTreeMap::new(),
            supply: BTreeMap::new(),
            next: wm + 1,
            resp_from: BTreeSet::new(),
            resp_el: false,
            collecting: true,
            max_clock: 0,
        });
        if self.n == 1 && !self.el {
            // Nothing to collect.
            let rec = self.rec.as_mut().unwrap();
            rec.collecting = false;
            self.stats.local().recovery_collect.push(SimDuration::ZERO);
            self.finish_replay(ctx);
            return;
        }
        self.send_reclaims(ctx);
        self.reclaim_timer = Some(
            ctx.core
                .set_proto_timer(ctx.sim, RECLAIM_RETRY, TIMER_RECLAIM),
        );
        if self.n == 1 {
            self.maybe_finish_collection(ctx);
        }
    }
}
