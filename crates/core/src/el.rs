//! The Event Logger (paper §IV-B.4).
//!
//! *"The Event Logger is a component specific to the message logging
//! protocols we developed. It acts as a reliable storage for all
//! causality events of an execution. Every process sends asynchronously
//! each reception event to the Event Logger. Then the Event Logger sends
//! back an acknowledgment, notifying about the last event stored for each
//! process. The Event Logger is a single thread server based on a select
//! loop to handle non blocking asynchronous communications."*
//!
//! The server below is exactly that: a single actor on a stable node
//! whose CPU and NIC are ordinary simulated resources — under high event
//! rates (LU class A on 16 nodes) it saturates, and the paper's observed
//! "acknowledgements arrive too late to trim piggybacks" behaviour
//! emerges from the model rather than being scripted.

use vlog_sim::{Actor, ActorId, Delivery, NodeId, Sim, SimDuration, WireSize};
use vlog_vmpi::{DaemonMsg, RClock, Rank};

use crate::event::Determinant;

/// Wire size of one event record (determinant body + rank + framing).
pub const EL_RECORD_BYTES: u64 = 20;

/// Wire size of a record batch carrying `k` determinants (batch framing
/// plus the records themselves).
pub fn el_batch_bytes(k: usize) -> u64 {
    8 + EL_RECORD_BYTES * k as u64
}

/// Wire size of an acknowledgement for `n` ranks (stable clock vector).
pub fn el_ack_bytes(n: usize) -> u64 {
    8 + 4 * n as u64
}

/// Wire size of a query response carrying `k` determinants.
pub fn el_resp_bytes(k: usize, n: usize) -> u64 {
    8 + Determinant::BODY_BYTES * k as u64 + 2 * k as u64 + 4 * n as u64
}

/// Messages understood by the Event Logger.
pub enum ElMsg {
    /// Asynchronous batch of event records from a daemon (clock order;
    /// one coalesced acknowledgement covers the whole batch).
    Record {
        from: Rank,
        dets: Vec<Determinant>,
        reply_to: ActorId,
    },
    /// Recovery query: all stored events of `victim` with clock > `from`.
    Query {
        victim: Rank,
        from: RClock,
        reply_to: ActorId,
    },
}

/// Messages the Event Logger sends back (wrapped in `DaemonMsg::Proto`).
pub enum ElReply {
    /// Acknowledgement carrying the stable-clock vector.
    Ack { stable: Vec<RClock> },
    /// Recovery response: the victim's replay determinants plus the
    /// stable vector (so the victim can resynchronize its GC state).
    QueryResp {
        dets: Vec<Determinant>,
        stable: Vec<RClock>,
    },
}

/// Per-record service cost of the single-threaded select-loop server
/// (shared with the distributed shards in [`el_multi`](crate::el_multi)
/// so the queue-depth gauge in [`record_el_saturation`] always divides
/// by the same cost the servers charge).
pub(crate) const EL_SERVICE_NS: u64 = 2_300;
/// Per-determinant cost of building a recovery response.
const EL_RESP_NS_PER_DET: u64 = 120;

/// Per-shard peak-queue-depth counter keys; shards beyond the table fold
/// into the last slot (`el_count` in practice stays small). The single
/// Event Logger is shard 0.
const SHARD_QUEUE_KEYS: [&str; 8] = [
    "el_peak_queue_s0",
    "el_peak_queue_s1",
    "el_peak_queue_s2",
    "el_peak_queue_s3",
    "el_peak_queue_s4",
    "el_peak_queue_s5",
    "el_peak_queue_s6",
    "el_peak_queue_s7",
];

/// The per-shard peak-queue-depth counter key of shard `index`.
pub fn shard_queue_key(index: usize) -> &'static str {
    SHARD_QUEUE_KEYS[index.min(SHARD_QUEUE_KEYS.len() - 1)]
}

/// Per-shard peak ack-latency counter keys (nanoseconds), parallel to
/// [`shard_queue_key`].
const SHARD_ACK_KEYS: [&str; 8] = [
    "el_ack_peak_s0_ns",
    "el_ack_peak_s1_ns",
    "el_ack_peak_s2_ns",
    "el_ack_peak_s3_ns",
    "el_ack_peak_s4_ns",
    "el_ack_peak_s5_ns",
    "el_ack_peak_s6_ns",
    "el_ack_peak_s7_ns",
];

/// The per-shard peak ack-latency counter key of shard `index`.
pub fn shard_ack_key(index: usize) -> &'static str {
    SHARD_ACK_KEYS[index.min(SHARD_ACK_KEYS.len() - 1)]
}

/// Records the server-side saturation gauges for one stored (or
/// duplicate) batch of `batch_len` event records on EL shard `index`:
/// the CPU queue depth the batch saw at arrival (its own service time
/// subtracted out) and its arrival-to-ack-send latency. Shared by the
/// single [`EventLogger`] and the distributed shards in
/// [`el_multi`](crate::el_multi). The complementary *creator*-side
/// gauge — the un-acked event window that decides whether acks arrive
/// in time to trim piggybacks — is recorded by the protocols at ship
/// time (see [`record_el_outstanding`]).
pub(crate) fn record_el_saturation(
    sim: &mut Sim,
    index: usize,
    ack_latency: SimDuration,
    batch_len: usize,
) {
    let depth = (ack_latency.as_nanos() / EL_SERVICE_NS).saturating_sub(batch_len as u64);
    let stats = sim.stats_mut();
    stats.set_max("el_peak_queue", depth);
    stats.set_max(shard_queue_key(index), depth);
    stats.add_time("el_ack_latency", ack_latency);
    stats.bump("el_ack_samples");
    stats.set_max("el_ack_latency_peak_ns", ack_latency.as_nanos());
    stats.set_max(shard_ack_key(index), ack_latency.as_nanos());
}

/// Records the creator-side saturation gauge when a protocol ships the
/// event with clock `shipped` while its last EL-acknowledged own clock
/// is `acked`: the gap is the number of its events still outstanding at
/// the Event Logger (shipped but not yet acknowledged). Under EL
/// saturation this window grows — the paper's "acknowledgements arrive
/// too late to trim piggybacks" behaviour, made measurable.
pub fn record_el_outstanding(sim: &mut Sim, shipped: RClock, acked: RClock) {
    sim.stats_mut()
        .set_max("el_peak_outstanding", shipped.saturating_sub(acked));
}

/// Ack-clocked record batcher used by the logging protocols on their
/// ship-to-EL path (the shape arXiv:1905.03184 identifies as the main
/// logger-cost lever: coalesce records, coalesce acks).
///
/// Fully deterministic — no timers. The first determinant after an idle
/// period ships immediately; while that batch's acknowledgement is in
/// flight, subsequent determinants coalesce into one pending batch that
/// flushes the moment the ack arrives. The Event Logger sends exactly
/// one acknowledgement per batch, so under saturation the record *and*
/// ack message counts collapse together.
///
/// Invariant: at most one batch is in flight at a time, and `pending`
/// only accumulates while a batch is in flight.
#[derive(Debug, Default)]
pub struct ElBatcher {
    /// The batch shipped and not yet acknowledged.
    in_flight: Vec<Determinant>,
    /// Records coalescing behind the in-flight batch.
    pending: Vec<Determinant>,
}

impl ElBatcher {
    pub fn new() -> Self {
        ElBatcher::default()
    }

    /// Offers one determinant. Returns the batch to put on the wire now
    /// (always just this determinant, when the line is idle), or `None`
    /// when it coalesced behind the in-flight batch.
    pub fn offer(&mut self, det: Determinant) -> Option<Vec<Determinant>> {
        self.pending.push(det);
        if self.in_flight.is_empty() {
            self.flush()
        } else {
            None
        }
    }

    /// The in-flight batch was acknowledged. Returns the coalesced next
    /// batch to put on the wire, if any records queued up meanwhile.
    pub fn acked(&mut self) -> Option<Vec<Determinant>> {
        self.in_flight.clear();
        if self.pending.is_empty() {
            None
        } else {
            self.flush()
        }
    }

    /// Everything shipped-but-unacknowledged plus everything still
    /// coalescing, in offer order — the records a re-shard handoff must
    /// re-route to the new shard. Leaves the batcher idle.
    pub fn take_unacked(&mut self) -> Vec<Determinant> {
        let mut all = std::mem::take(&mut self.in_flight);
        all.append(&mut self.pending);
        all
    }

    /// Number of offered-but-unacknowledged records.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len() + self.pending.len()
    }

    fn flush(&mut self) -> Option<Vec<Determinant>> {
        self.in_flight = std::mem::take(&mut self.pending);
        Some(self.in_flight.clone())
    }
}

/// The Event Logger server actor.
pub struct EventLogger {
    node: NodeId,
    n: usize,
    /// Stored determinants per creator, in clock order.
    stored: Vec<Vec<Determinant>>,
    /// Highest contiguous stored clock per creator.
    stable: Vec<RClock>,
}

impl EventLogger {
    pub fn new(node: NodeId, n: usize) -> Self {
        EventLogger {
            node,
            n,
            stored: vec![Vec::new(); n],
            stable: vec![0; n],
        }
    }

    /// Installs the Event Logger on a stable node.
    pub fn install(sim: &mut Sim, node: NodeId, n: usize) -> ActorId {
        sim.add_actor(node, Box::new(EventLogger::new(node, n)))
    }
}

impl Actor for EventLogger {
    fn on_deliver(&mut self, sim: &mut Sim, _me: ActorId, msg: Delivery) {
        let Ok(el_msg) = msg.body.downcast::<ElMsg>() else {
            return;
        };
        match *el_msg {
            ElMsg::Record {
                from,
                dets,
                reply_to,
            } => {
                let batch_len = dets.len();
                sim.stats_mut().bump("el_batches");
                for det in dets {
                    debug_assert_eq!(det.receiver, from);
                    let seq = &mut self.stored[from];
                    // Records arrive in clock order per creator (FIFO
                    // channel); replay re-ships may duplicate.
                    let is_new = seq.last().is_none_or(|last| last.clock < det.clock);
                    if is_new {
                        seq.push(det);
                        self.stable[from] = det.clock;
                        sim.stats_mut().bump("el_records");
                    } else {
                        sim.stats_mut().bump("el_duplicate_records");
                    }
                }
                let arrived = sim.now();
                let end = sim.charge_cpu(
                    self.node,
                    SimDuration::from_nanos(EL_SERVICE_NS * batch_len.max(1) as u64),
                );
                record_el_saturation(sim, 0, end.saturating_since(arrived), batch_len);
                let stable = self.stable.clone();
                let node = self.node;
                let n = self.n;
                sim.schedule_at(
                    end,
                    vlog_sim::Event::closure(move |sim| {
                        let body = Box::new(DaemonMsg::Proto(Box::new(ElReply::Ack { stable })));
                        let size = WireSize::control(el_ack_bytes(n));
                        if sim.actor_node(reply_to) == node {
                            sim.local_send(
                                node,
                                reply_to,
                                size,
                                body,
                                SimDuration::from_micros(15),
                            );
                        } else {
                            sim.net_send(node, reply_to, size, body);
                        }
                    }),
                );
            }
            ElMsg::Query {
                victim,
                from,
                reply_to,
            } => {
                let dets: Vec<Determinant> = self.stored[victim]
                    .iter()
                    .filter(|d| d.clock > from)
                    .copied()
                    .collect();
                let cost =
                    SimDuration::from_nanos(EL_SERVICE_NS + EL_RESP_NS_PER_DET * dets.len() as u64);
                let end = sim.charge_cpu(self.node, cost);
                let bytes = el_resp_bytes(dets.len(), self.n);
                let stable = self.stable.clone();
                let node = self.node;
                sim.stats_mut().bump("el_queries");
                sim.schedule_at(
                    end,
                    vlog_sim::Event::closure(move |sim| {
                        let body = Box::new(DaemonMsg::Proto(Box::new(ElReply::QueryResp {
                            dets,
                            stable,
                        })));
                        vlog_vmpi::daemon::stream_control(sim, node, reply_to, bytes, body);
                    }),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    struct Probe {
        acks: Arc<Mutex<Vec<Vec<RClock>>>>,
        resps: Arc<Mutex<Vec<(usize, Vec<RClock>)>>>,
    }

    impl Actor for Probe {
        fn on_deliver(&mut self, _sim: &mut Sim, _me: ActorId, msg: Delivery) {
            let Ok(dm) = msg.body.downcast::<DaemonMsg>() else {
                return;
            };
            let DaemonMsg::Proto(p) = *dm else { return };
            match *p.downcast::<ElReply>().unwrap() {
                ElReply::Ack { stable } => self.acks.lock().unwrap().push(stable),
                ElReply::QueryResp { dets, stable } => {
                    self.resps.lock().unwrap().push((dets.len(), stable))
                }
            }
        }
    }

    fn det(creator: Rank, clock: RClock) -> Determinant {
        Determinant {
            receiver: creator,
            clock,
            sender: 0,
            ssn: clock,
            cause: 0,
        }
    }

    fn setup() -> (
        Sim,
        ActorId,
        ActorId,
        Arc<Mutex<Vec<Vec<RClock>>>>,
        Arc<Mutex<Vec<(usize, Vec<RClock>)>>>,
    ) {
        let mut sim = Sim::new(9);
        let el_node = sim.add_node();
        let client_node = sim.add_node();
        let el = EventLogger::install(&mut sim, el_node, 3);
        let acks = Arc::new(Mutex::new(Vec::new()));
        let resps = Arc::new(Mutex::new(Vec::new()));
        let probe = sim.add_actor(
            client_node,
            Box::new(Probe {
                acks: acks.clone(),
                resps: resps.clone(),
            }),
        );
        (sim, el, probe, acks, resps)
    }

    #[test]
    fn records_are_acked_with_stable_vector() {
        let (mut sim, el, probe, acks, _) = setup();
        for clock in 1..=3 {
            sim.net_send(
                1,
                el,
                WireSize::control(EL_RECORD_BYTES),
                Box::new(ElMsg::Record {
                    from: 1,
                    dets: vec![det(1, clock)],
                    reply_to: probe,
                }),
            );
        }
        sim.run();
        let acks = acks.lock().unwrap();
        assert_eq!(acks.len(), 3);
        assert_eq!(acks.last().unwrap(), &vec![0, 3, 0]);
        assert_eq!(sim.stats().get("el_records"), 3);
    }

    #[test]
    fn duplicate_records_are_detected() {
        let (mut sim, el, probe, acks, _) = setup();
        for _ in 0..2 {
            sim.net_send(
                1,
                el,
                WireSize::control(EL_RECORD_BYTES),
                Box::new(ElMsg::Record {
                    from: 2,
                    dets: vec![det(2, 1)],
                    reply_to: probe,
                }),
            );
        }
        sim.run();
        assert_eq!(sim.stats().get("el_records"), 1);
        assert_eq!(sim.stats().get("el_duplicate_records"), 1);
        assert_eq!(acks.lock().unwrap().len(), 2); // both still acknowledged
    }

    #[test]
    fn query_returns_suffix_after_watermark() {
        let (mut sim, el, probe, _, resps) = setup();
        for clock in 1..=5 {
            sim.net_send(
                1,
                el,
                WireSize::control(EL_RECORD_BYTES),
                Box::new(ElMsg::Record {
                    from: 0,
                    dets: vec![det(0, clock)],
                    reply_to: probe,
                }),
            );
        }
        sim.after(SimDuration::from_millis(10), move |sim| {
            sim.net_send(
                1,
                el,
                WireSize::control(16),
                Box::new(ElMsg::Query {
                    victim: 0,
                    from: 2,
                    reply_to: probe,
                }),
            );
        });
        sim.run();
        let resps = resps.lock().unwrap();
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].0, 3); // clocks 3, 4, 5
        assert_eq!(resps[0].1, vec![5, 0, 0]);
    }

    #[test]
    fn saturation_gauges_track_a_busy_server() {
        let mut sim = Sim::new(9);
        let el_node = sim.add_node();
        let client_node = sim.add_node();
        let el = EventLogger::install(&mut sim, el_node, 3);
        let acks = Arc::new(Mutex::new(Vec::new()));
        let probe = sim.add_actor(
            client_node,
            Box::new(Probe {
                acks: acks.clone(),
                resps: Arc::new(Mutex::new(Vec::new())),
            }),
        );
        // Occupy the EL's CPU the way a long recovery query does; the
        // record arriving meanwhile must wait behind the backlog, and
        // the gauges must see both the queue and the inflated latency.
        sim.charge_cpu(el_node, SimDuration::from_micros(200));
        sim.net_send(
            client_node,
            el,
            WireSize::control(EL_RECORD_BYTES),
            Box::new(ElMsg::Record {
                from: 1,
                dets: vec![det(1, 1)],
                reply_to: probe,
            }),
        );
        sim.run();
        assert_eq!(acks.lock().unwrap().len(), 1);
        let stats = sim.stats();
        // >100 µs of backlog at 2.3 µs per record is a deep queue.
        assert!(
            stats.get("el_peak_queue") >= 10,
            "record never queued: peak depth {}",
            stats.get("el_peak_queue")
        );
        assert_eq!(stats.get("el_peak_queue"), stats.get(shard_queue_key(0)));
        assert!(stats.get_time("el_ack_latency") > SimDuration::from_micros(100));
        assert!(stats.get("el_ack_latency_peak_ns") >= 100_000);
    }

    #[test]
    fn outstanding_gauge_tracks_the_unacked_window() {
        let mut sim = Sim::new(5);
        record_el_outstanding(&mut sim, 10, 7);
        record_el_outstanding(&mut sim, 12, 11);
        assert_eq!(sim.stats().get("el_peak_outstanding"), 3);
        // A creator that is fully acknowledged contributes zero.
        record_el_outstanding(&mut sim, 4, 4);
        assert_eq!(sim.stats().get("el_peak_outstanding"), 3);
    }

    #[test]
    fn shard_queue_keys_are_stable_and_fold() {
        assert_eq!(shard_queue_key(0), "el_peak_queue_s0");
        assert_eq!(shard_queue_key(7), "el_peak_queue_s7");
        assert_eq!(shard_queue_key(99), "el_peak_queue_s7");
        assert_eq!(shard_ack_key(0), "el_ack_peak_s0_ns");
        assert_eq!(shard_ack_key(99), "el_ack_peak_s7_ns");
    }

    #[test]
    fn wire_sizes_scale_with_ranks_and_events() {
        assert_eq!(el_ack_bytes(16), 8 + 64);
        assert_eq!(el_batch_bytes(1), 8 + EL_RECORD_BYTES);
        assert_eq!(el_batch_bytes(5), 8 + 5 * EL_RECORD_BYTES);
        assert!(el_resp_bytes(100, 16) > el_resp_bytes(10, 16));
        assert!(el_resp_bytes(0, 32) > 0);
    }

    #[test]
    fn batcher_ships_immediately_on_an_idle_line() {
        let mut b = ElBatcher::new();
        assert_eq!(b.offer(det(0, 1)), Some(vec![det(0, 1)]));
        assert_eq!(b.outstanding(), 1);
        // Nothing coalesced: the ack flushes nothing.
        assert_eq!(b.acked(), None);
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn batcher_coalesces_behind_the_in_flight_batch() {
        let mut b = ElBatcher::new();
        assert!(b.offer(det(0, 1)).is_some());
        // While the first record's ack is pending, later records coalesce.
        assert_eq!(b.offer(det(0, 2)), None);
        assert_eq!(b.offer(det(0, 3)), None);
        assert_eq!(b.outstanding(), 3);
        // The ack clocks out the coalesced batch in one flush.
        assert_eq!(b.acked(), Some(vec![det(0, 2), det(0, 3)]));
        assert_eq!(b.outstanding(), 2);
        assert_eq!(b.acked(), None);
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn batcher_handoff_drains_everything_unacked() {
        let mut b = ElBatcher::new();
        assert!(b.offer(det(0, 1)).is_some());
        assert_eq!(b.offer(det(0, 2)), None);
        assert_eq!(b.take_unacked(), vec![det(0, 1), det(0, 2)]);
        assert_eq!(b.outstanding(), 0);
        // After the handoff the line is idle again: next offer ships.
        assert!(b.offer(det(0, 3)).is_some());
        // A stale ack (from the dead shard) with records in flight only
        // rotates the accounting — no record is lost or duplicated.
        assert_eq!(b.acked(), None);
    }

    #[test]
    fn batched_records_get_one_coalesced_ack() {
        let (mut sim, el, probe, acks, _) = setup();
        sim.net_send(
            1,
            el,
            WireSize::control(el_batch_bytes(3)),
            Box::new(ElMsg::Record {
                from: 1,
                dets: vec![det(1, 1), det(1, 2), det(1, 3)],
                reply_to: probe,
            }),
        );
        sim.run();
        let acks = acks.lock().unwrap();
        assert_eq!(acks.len(), 1, "a batch is acknowledged exactly once");
        assert_eq!(acks[0], vec![0, 3, 0]);
        assert_eq!(sim.stats().get("el_records"), 3);
        assert_eq!(sim.stats().get("el_batches"), 1);
        assert_eq!(sim.stats().get("el_ack_samples"), 1);
    }
}
