//! The antecedence graph (paper §III-B.2).
//!
//! *"This graph extends the reception sequences structure of Vcausal with
//! a relation between events of different processes. Two events e_P1 of
//! process P1 and e_P2 of process P2 are linked if and only if e_P2
//! denotes a reception of a message m sent by P1 and e_P1 is the last non
//! deterministic event preceding the emission of m."*
//!
//! Vertices are reception events keyed `(creator, clock)`; each vertex
//! has an implicit program-order edge to `(creator, clock-1)` and an
//! explicit *cause* edge to the sender's last event before the emission.
//! Stable vertices (acknowledged by the Event Logger) are pruned — the
//! paper notes the graphs "lose some vertices and incident edges" when
//! the EL acknowledges.

use std::collections::BTreeMap;

use vlog_vmpi::{RClock, Rank};

use crate::event::Determinant;

/// One process's view of the antecedence graph.
#[derive(Clone)]
pub struct AGraph {
    n: usize,
    /// Unstable vertices per creator, keyed by clock.
    verts: Vec<BTreeMap<RClock, Determinant>>,
    /// Highest clock ever seen per creator (survives pruning).
    heads: Vec<RClock>,
    /// Stability watermarks (vertices at or below are pruned).
    stable: Vec<RClock>,
}

impl AGraph {
    pub fn new(n: usize) -> Self {
        AGraph {
            n,
            verts: vec![BTreeMap::new(); n],
            heads: vec![0; n],
            stable: vec![0; n],
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Highest known clock of `creator` (its last event we know of).
    pub fn head(&self, creator: Rank) -> RClock {
        self.heads[creator]
    }

    pub fn stable(&self, creator: Rank) -> RClock {
        self.stable[creator]
    }

    /// Inserts a vertex; returns false when it was already present or
    /// already stable.
    pub fn insert(&mut self, det: Determinant) -> bool {
        let c = det.receiver;
        self.heads[c] = self.heads[c].max(det.clock);
        if det.clock <= self.stable[c] {
            return false;
        }
        self.verts[c].insert(det.clock, det).is_none()
    }

    /// Number of retained (unstable) vertices.
    pub fn len(&self) -> usize {
        self.verts.iter().map(|m| m.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies stability watermarks, pruning covered vertices.
    pub fn apply_stable(&mut self, stable: &[RClock]) {
        for c in 0..self.n {
            if stable[c] > self.stable[c] {
                self.stable[c] = stable[c];
                self.verts[c] = self.verts[c].split_off(&(stable[c] + 1));
            }
        }
    }

    /// All retained determinants, ordered by (creator, clock).
    pub fn retained(&self) -> Vec<Determinant> {
        self.verts
            .iter()
            .flat_map(|m| m.values().copied())
            .collect()
    }

    /// Computes the causal past of `roots` as per-creator prefixes:
    /// `past[c]` is the highest clock of `c` reachable backwards from the
    /// roots. Pruned (stable) vertices terminate the search — they are
    /// globally known. Returns the prefix vector and the number of
    /// vertices visited (the traversal cost the paper charges Manetho and
    /// LogOn for).
    pub fn causal_past(&self, roots: &[(Rank, RClock)]) -> (Vec<RClock>, u64) {
        self.causal_past_from(roots, &vec![0; self.n])
    }

    /// [`AGraph::causal_past`] with a per-creator floor: regions at or
    /// below `floor[c]` are treated as already covered and not walked.
    /// Manetho's incremental border computation passes its per-channel
    /// sent-cache here, so repeated sends to the same peer only traverse
    /// the events that are new since the previous send.
    pub fn causal_past_from(
        &self,
        roots: &[(Rank, RClock)],
        floor: &[RClock],
    ) -> (Vec<RClock>, u64) {
        let mut past = floor.to_vec();
        let mut visits = 0u64;
        let mut stack: Vec<(Rank, RClock)> = roots.to_vec();
        while let Some((c, k)) = stack.pop() {
            let k = k.min(self.heads[c]);
            if k <= past[c] {
                continue;
            }
            let lo = past[c].max(self.stable[c]);
            past[c] = k;
            if lo >= k {
                continue; // the whole range is stable: globally known
            }
            // Walk the newly covered range following cause edges. The
            // program-order chain below `lo` is already covered (or
            // stable).
            for (_, det) in self.verts[c].range(lo + 1..=k) {
                visits += 1;
                if let Some(cause) = det.cause_id() {
                    stack.push((cause.creator, cause.clock));
                }
            }
        }
        (past, visits)
    }

    /// Retained determinants of `creator` with clock strictly above `lo`,
    /// ascending.
    pub fn above(&self, creator: Rank, lo: RClock) -> impl Iterator<Item = &Determinant> + '_ {
        self.verts[creator].range(lo + 1..).map(|(_, d)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(receiver: Rank, clock: RClock, sender: Rank, cause: RClock) -> Determinant {
        Determinant {
            receiver,
            clock,
            sender,
            ssn: clock,
            cause,
        }
    }

    /// A diamond: P0's event 1 causes P1's 1 and P2's 1; both cause P3's
    /// 1 and 2.
    fn diamond() -> AGraph {
        let mut g = AGraph::new(4);
        g.insert(det(0, 1, 3, 0));
        g.insert(det(1, 1, 0, 1));
        g.insert(det(2, 1, 0, 1));
        g.insert(det(3, 1, 1, 1));
        g.insert(det(3, 2, 2, 1));
        g
    }

    #[test]
    fn causal_past_follows_cause_and_program_order() {
        let g = diamond();
        let (past, visits) = g.causal_past(&[(3, 2)]);
        assert_eq!(past, vec![1, 1, 1, 2]);
        assert_eq!(visits, 5);
        // Past of P3's first event does not include P2's event.
        let (past1, _) = g.causal_past(&[(3, 1)]);
        assert_eq!(past1, vec![1, 1, 0, 1]);
    }

    #[test]
    fn stable_vertices_are_pruned_and_terminate_traversal() {
        let mut g = diamond();
        g.apply_stable(&[1, 1, 0, 0]);
        assert_eq!(g.len(), 3);
        // Traversal still works; stable prefixes are silently covered.
        let (past, visits) = g.causal_past(&[(3, 2)]);
        assert_eq!(past[3], 2);
        assert_eq!(past[2], 1);
        assert!(visits <= 3);
        // Re-inserting a stable determinant is refused.
        assert!(!g.insert(det(0, 1, 3, 0)));
        // Heads survive pruning.
        assert_eq!(g.head(0), 1);
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = AGraph::new(2);
        assert!(g.insert(det(0, 1, 1, 0)));
        assert!(!g.insert(det(0, 1, 1, 0)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn above_iterates_ascending_suffix() {
        let mut g = AGraph::new(1);
        for k in 1..=5 {
            g.insert(det(0, k, 0, 0));
        }
        let clocks: Vec<RClock> = g.above(0, 2).map(|d| d.clock).collect();
        assert_eq!(clocks, vec![3, 4, 5]);
    }

    #[test]
    fn retained_is_sorted_by_creator_then_clock() {
        let g = diamond();
        let r = g.retained();
        let mut sorted = r.clone();
        sorted.sort_by_key(|d| (d.receiver, d.clock));
        assert_eq!(r, sorted);
        assert_eq!(r.len(), 5);
    }
}
