//! Regression test for checkpoint/replay atomicity: a rank killed while
//! peers have run ahead must replay the exact message sequence it
//! consumed before the crash (this once failed with receptions skipped
//! when a checkpoint landed between message acceptance and delivery).

use std::sync::{Arc, Mutex};

use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{app, run_cluster, ClusterConfig, FaultPlan, Payload, RecvSelector};

fn token(rank: usize, it: u64) -> Vec<u8> {
    vec![rank as u8, (it & 0xff) as u8, (it >> 8) as u8]
}

#[test]
fn replayed_sequence_is_exact() {
    for technique in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
        for el in [true, false] {
            let mismatches: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
            let m2 = mismatches.clone();
            let iters = 80u64;
            let prog = app(move |mpi| {
                let mismatches = m2.clone();
                async move {
                    let n = mpi.size();
                    let me = mpi.rank();
                    let right = (me + 1) % n;
                    let left = (me + n - 1) % n;
                    let start = match mpi.restored() {
                        Some(bytes) => u64::from_le_bytes(bytes[..8].try_into().unwrap()),
                        None => 0,
                    };
                    for it in start..iters {
                        mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                            .await;
                        let m = mpi
                            .sendrecv(
                                right,
                                0,
                                Payload::new(token(me, it)),
                                RecvSelector::of(left, 0),
                            )
                            .await;
                        if m.payload.data.to_vec() != token(left, it) {
                            mismatches
                                .lock()
                                .unwrap()
                                .push(format!("rank {me} it {it}: {:?}", m.payload.data));
                        }
                    }
                }
            });
            let mut c = ClusterConfig::new(3);
            c.detect_delay = SimDuration::from_millis(10);
            c.event_limit = Some(20_000_000);
            let suite = Arc::new(
                CausalSuite::new(technique, el).with_checkpoints(SimDuration::from_millis(4)),
            );
            let faults = FaultPlan::kill_at(SimDuration::from_millis(10), 0);
            let report = run_cluster(&c, suite, prog, &faults);
            assert!(report.completed, "{technique:?} el={el}: incomplete");
            assert!(
                mismatches.lock().unwrap().is_empty(),
                "{technique:?} el={el}: replay diverged: {:?}",
                mismatches.lock().unwrap()
            );
        }
    }
}
