//! End-to-end protocol tests on the simulated cluster: fault-free
//! correctness of all protocol configurations, checkpointing, crash
//! recovery with replay validation, and global rollback.

use std::sync::Arc;

use vlog_core::{CausalSuite, CoordinatedSuite, PessimisticSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{
    app, run_cluster, AppSpec, ClusterConfig, FaultPlan, Payload, RecvSelector, Suite,
};

/// Deterministic per-(rank, iteration) message content.
fn token(rank: usize, it: u64) -> Vec<u8> {
    let mut v = vec![rank as u8, (it & 0xff) as u8, (it >> 8) as u8];
    v.push((rank as u64 * 31 + it * 7) as u8);
    v
}

/// Ring exchange with application-level checkpoints and in-program
/// validation: every receive asserts the exact bytes the left neighbour
/// must have sent for that iteration, which catches any replay or
/// rollback inconsistency.
fn ring_program(iters: u64) -> AppSpec {
    app(move |mpi| async move {
        let n = mpi.size();
        let me = mpi.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let start = match mpi.restored() {
            Some(bytes) => u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            None => 0,
        };
        for it in start..iters {
            mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                .await;
            let m = mpi
                .sendrecv(
                    right,
                    0,
                    Payload::new(token(me, it)),
                    RecvSelector::of(left, 0),
                )
                .await;
            assert_eq!(
                m.payload.data.to_vec(),
                token(left, it),
                "rank {me} iteration {it}: wrong replayed content"
            );
        }
    })
}

fn cfg(n: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(n);
    c.event_limit = Some(20_000_000);
    c
}

fn all_causal_suites() -> Vec<Arc<dyn Suite>> {
    let mut suites: Vec<Arc<dyn Suite>> = Vec::new();
    for technique in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
        for el in [true, false] {
            suites.push(Arc::new(CausalSuite::new(technique, el)));
        }
    }
    suites
}

#[test]
fn all_causal_configs_run_fault_free() {
    for suite in all_causal_suites() {
        let name = suite.name();
        let report = run_cluster(&cfg(4), suite, ring_program(20), &FaultPlan::none());
        assert!(report.completed, "{name} did not complete");
        // Causality was piggybacked...
        assert!(
            report.stats.bytes.piggyback > 0,
            "{name}: no piggyback recorded"
        );
        // ... and events were counted.
        let events: u64 = report.rank_stats.iter().map(|s| s.pb_events_sent).sum();
        assert!(events > 0, "{name}: no events piggybacked");
    }
}

#[test]
fn event_logger_shrinks_piggyback_volume() {
    for technique in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
        let run = |el: bool| {
            run_cluster(
                &cfg(4),
                Arc::new(CausalSuite::new(technique, el)),
                ring_program(60),
                &FaultPlan::none(),
            )
        };
        let with_el = run(true);
        let without = run(false);
        assert!(with_el.completed && without.completed);
        assert!(
            with_el.stats.bytes.piggyback < without.stats.bytes.piggyback,
            "{technique:?}: EL should reduce piggyback bytes ({} vs {})",
            with_el.stats.bytes.piggyback,
            without.stats.bytes.piggyback
        );
    }
}

#[test]
fn scheduled_checkpoints_are_taken_and_committed() {
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(5)),
    );
    let report = run_cluster(&cfg(3), suite, ring_program(120), &FaultPlan::none());
    assert!(report.completed);
    let total: u64 = report.rank_stats.iter().map(|s| s.checkpoints).sum();
    assert!(total >= 3, "expected checkpoints, got {total}");
}

fn recovery_case(suite: Arc<dyn Suite>, n: usize, iters: u64, kill_ms: u64) {
    let name = suite.name();
    let mut c = cfg(n);
    c.detect_delay = SimDuration::from_millis(10);
    let faults = FaultPlan::kill_at(SimDuration::from_millis(kill_ms), 0);
    let report = run_cluster(&c, suite, ring_program(iters), &faults);
    assert!(report.completed, "{name}: run with fault did not complete");
    assert_eq!(report.stats.get("node_crashes") >= 1, true);
    // The victim recovered (or everyone rolled back).
    let recoveries: usize = report
        .rank_stats
        .iter()
        .map(|s| s.recovery_total.len())
        .sum();
    assert!(recoveries >= 1, "{name}: no recovery recorded");
}

#[test]
fn causal_with_el_recovers_from_a_crash() {
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(4)),
    );
    recovery_case(suite, 3, 80, 8);
}

#[test]
fn causal_without_el_recovers_from_peers() {
    let suite = Arc::new(
        CausalSuite::new(Technique::Manetho, false).with_checkpoints(SimDuration::from_millis(4)),
    );
    recovery_case(suite, 3, 80, 8);
}

#[test]
fn logon_with_el_recovers_from_a_crash() {
    let suite = Arc::new(
        CausalSuite::new(Technique::LogOn, true).with_checkpoints(SimDuration::from_millis(4)),
    );
    recovery_case(suite, 4, 60, 7);
}

#[test]
fn recovery_without_any_checkpoint_replays_from_scratch() {
    // No checkpoint scheduler: the victim restarts from the beginning and
    // replays its entire history.
    let suite = Arc::new(CausalSuite::new(Technique::Vcausal, true));
    recovery_case(suite, 3, 40, 5);
}

#[test]
fn pessimistic_recovers_from_a_crash() {
    let suite = Arc::new(PessimisticSuite::new().with_checkpoints(SimDuration::from_millis(4)));
    recovery_case(suite, 3, 60, 8);
}

#[test]
fn coordinated_rolls_everyone_back() {
    let suite = Arc::new(CoordinatedSuite::new(SimDuration::from_millis(5)));
    let mut c = cfg(3);
    c.detect_delay = SimDuration::from_millis(10);
    let faults = FaultPlan::kill_at(SimDuration::from_millis(12), 1);
    let report = run_cluster(&c, suite, ring_program(250), &faults);
    assert!(report.completed, "coordinated run did not complete");
    assert!(
        report.stats.get("global_rollbacks") >= 1,
        "no rollback happened (fault too late?)"
    );
}

#[test]
fn two_sequential_faults_are_survived() {
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(4)),
    );
    let mut c = cfg(3);
    c.detect_delay = SimDuration::from_millis(10);
    let faults = FaultPlan {
        faults: vec![
            (SimDuration::from_millis(6), 0),
            (SimDuration::from_millis(25), 2),
        ],
        ..FaultPlan::default()
    };
    let report = run_cluster(&c, suite, ring_program(250), &faults);
    assert!(report.completed, "second fault broke the run");
    let recoveries: usize = report
        .rank_stats
        .iter()
        .map(|s| s.recovery_total.len())
        .sum();
    assert!(recoveries >= 2);
}

#[test]
fn recovery_collect_metric_is_recorded() {
    // Figure 10's metric: time to recover the events to replay.
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(4)),
    );
    let mut c = cfg(3);
    c.detect_delay = SimDuration::from_millis(10);
    let faults = FaultPlan::kill_at(SimDuration::from_millis(10), 0);
    let report = run_cluster(&c, suite, ring_program(80), &faults);
    assert!(report.completed);
    let collects = &report.rank_stats[0].recovery_collect;
    assert_eq!(collects.len(), 1, "one collection phase expected");
    assert!(collects[0].as_nanos() > 0);
}

#[test]
fn faulted_runs_are_deterministic() {
    let run = || {
        let suite = Arc::new(
            CausalSuite::new(Technique::Manetho, true)
                .with_checkpoints(SimDuration::from_millis(4)),
        );
        let mut c = cfg(3);
        c.detect_delay = SimDuration::from_millis(10);
        let faults = FaultPlan::kill_at(SimDuration::from_millis(9), 1);
        run_cluster(&c, suite, ring_program(60), &faults)
    };
    let a = run();
    let b = run();
    assert!(a.completed && b.completed);
    assert_eq!(a.makespan.as_nanos(), b.makespan.as_nanos());
    assert_eq!(a.stats.messages, b.stats.messages);
    assert_eq!(a.stats.bytes.piggyback, b.stats.bytes.piggyback);
}
