//! Focused behavioural tests of protocol machinery that the big
//! end-to-end suites exercise only incidentally: pessimistic send
//! blocking, sender-log garbage collection via checkpoint notices,
//! EL-driven piggyback suppression, and coordinated marker bookkeeping.

use std::sync::Arc;

use vlog_core::{CausalSuite, CoordinatedSuite, PessimisticSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{app, run_cluster, ClusterConfig, FaultPlan, Payload, RecvSelector, Suite};

fn pingpong(reps: u32) -> vlog_vmpi::AppSpec {
    app(move |mpi| async move {
        if mpi.rank() == 0 {
            for _ in 0..reps {
                mpi.send(1, 0, Payload::synthetic(1)).await;
                mpi.recv(RecvSelector::of(1, 0)).await;
            }
        } else {
            for _ in 0..reps {
                mpi.recv(RecvSelector::of(0, 0)).await;
                mpi.send(0, 0, Payload::synthetic(1)).await;
            }
        }
    })
}

#[test]
fn pessimistic_blocks_sends_until_events_are_stable() {
    // The defining property of pessimistic logging: an outgoing message
    // waits for the EL acknowledgement of every preceding reception, so
    // ping-pong latency must exceed the causal protocol's by roughly the
    // EL round trip on every hop.
    let run = |suite: Arc<dyn Suite>| {
        let report = run_cluster(
            &ClusterConfig::new(2),
            suite,
            pingpong(100),
            &FaultPlan::none(),
        );
        assert!(report.completed);
        report.makespan
    };
    let causal = run(Arc::new(CausalSuite::new(Technique::Vcausal, true)));
    let pess = run(Arc::new(PessimisticSuite::new()));
    let per_roundtrip_extra_us = (pess.as_micros_f64() - causal.as_micros_f64()) / 100.0;
    assert!(
        per_roundtrip_extra_us > 50.0,
        "pessimistic must pay the EL wait on the critical path \
         (extra {per_roundtrip_extra_us:.1}us/roundtrip)"
    );
    assert!(
        per_roundtrip_extra_us < 600.0,
        "pessimistic overhead implausibly large ({per_roundtrip_extra_us:.1}us/roundtrip)"
    );
}

#[test]
fn el_acknowledgements_suppress_piggybacks_over_time() {
    // Slow, spaced-out exchanges: with an EL every event is stable long
    // before the next send, so late piggybacks are empty; without one,
    // traffic keeps carrying events.
    let spaced = || {
        app(move |mpi| async move {
            let peer = 1 - mpi.rank();
            for i in 0..30u32 {
                if mpi.rank() == 0 {
                    mpi.send(peer, 0, Payload::synthetic(1)).await;
                    mpi.recv(RecvSelector::of(peer, 0)).await;
                } else {
                    mpi.recv(RecvSelector::of(peer, 0)).await;
                    mpi.send(peer, 0, Payload::synthetic(1)).await;
                }
                let _ = i;
                mpi.elapse(SimDuration::from_millis(2)).await;
            }
        })
    };
    let run = |el: bool| {
        let report = run_cluster(
            &ClusterConfig::new(2),
            Arc::new(CausalSuite::new(Technique::Vcausal, el)),
            spaced(),
            &FaultPlan::none(),
        );
        assert!(report.completed);
        let empty: u64 = report.rank_stats.iter().map(|s| s.empty_pb_msgs).sum();
        let msgs: u64 = report.rank_stats.iter().map(|s| s.app_msgs_sent).sum();
        (empty, msgs)
    };
    let (empty_el, msgs) = run(true);
    let (empty_none, _) = run(false);
    // Exactly half: the reply rides ~150us behind its reception event
    // (never acknowledged in time) while the spaced-out next ping is
    // always clean — reproducing the paper's §V-C census of 2397 empty
    // out of 4999 messages.
    assert!(
        empty_el >= msgs / 2,
        "with 2ms gaps the EL should clear about half the piggybacks \
         ({empty_el}/{msgs} empty)"
    );
    // Only the very first message of the run (no receptions yet) may be
    // empty without an EL.
    assert!(
        empty_none <= 1,
        "without an EL every message after the first carries events"
    );
}

#[test]
fn checkpoint_commit_prunes_peer_sender_logs() {
    // After a rank commits a checkpoint, its peers drop logged payloads
    // the image covers; observable as bounded recovery traffic. Here we
    // simply assert the GC notices flow and the run completes with
    // checkpoints on all ranks.
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(3)),
    );
    let report = run_cluster(
        &ClusterConfig::new(3),
        suite,
        app(move |mpi| async move {
            let n = mpi.size();
            let right = (mpi.rank() + 1) % n;
            let left = (mpi.rank() + n - 1) % n;
            for it in 0..60u64 {
                mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                    .await;
                mpi.sendrecv(right, 0, Payload::synthetic(100), RecvSelector::of(left, 0))
                    .await;
            }
        }),
        &FaultPlan::none(),
    );
    assert!(report.completed);
    let ckpts: u64 = report.rank_stats.iter().map(|s| s.checkpoints).sum();
    assert!(ckpts >= 3, "expected all ranks to checkpoint, got {ckpts}");
}

#[test]
fn coordinated_snapshot_completes_with_in_flight_traffic() {
    // Streams of messages cross the snapshot line; every rank must still
    // close all channels and commit the same snapshot id.
    let suite = Arc::new(CoordinatedSuite::new(SimDuration::from_millis(4)));
    let report = run_cluster(
        &ClusterConfig::new(4),
        suite,
        app(move |mpi| async move {
            let n = mpi.size();
            let me = mpi.rank();
            for it in 0..80u64 {
                mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                    .await;
                // All-to-all-ish chatter so channels are busy at markers.
                for offset in 1..n {
                    let dst = (me + offset) % n;
                    let src = (me + n - offset) % n;
                    mpi.sendrecv(dst, 7, Payload::synthetic(64), RecvSelector::of(src, 7))
                        .await;
                }
            }
        }),
        &FaultPlan::none(),
    );
    assert!(report.completed);
    let ckpts: u64 = report.rank_stats.iter().map(|s| s.checkpoints).sum();
    assert!(ckpts >= 4, "coordinated snapshots never committed: {ckpts}");
}

#[test]
fn coordinated_survives_fault_landing_during_a_snapshot() {
    let suite = Arc::new(CoordinatedSuite::new(SimDuration::from_millis(4)));
    let mut cfg = ClusterConfig::new(3);
    cfg.detect_delay = SimDuration::from_millis(8);
    cfg.event_limit = Some(50_000_000);
    // 4ms period + kill at 5ms: the rollback races the snapshot commits.
    let faults = FaultPlan::kill_at(SimDuration::from_millis(5), 2);
    let report = run_cluster(
        &cfg,
        suite,
        app(move |mpi| async move {
            let n = mpi.size();
            let right = (mpi.rank() + 1) % n;
            let left = (mpi.rank() + n - 1) % n;
            let start = match mpi.restored() {
                Some(b) => u64::from_le_bytes(b[..8].try_into().unwrap()),
                None => 0,
            };
            for it in start..120 {
                mpi.checkpoint_point(Payload::new(it.to_le_bytes().to_vec()))
                    .await;
                let m = mpi
                    .sendrecv(
                        right,
                        0,
                        Payload::new(vec![(it & 0xff) as u8]),
                        RecvSelector::of(left, 0),
                    )
                    .await;
                assert_eq!(
                    m.payload.data[0],
                    (it & 0xff) as u8,
                    "rollback broke lockstep"
                );
            }
        }),
        &faults,
    );
    assert!(report.completed, "fault during snapshot wedged the job");
    assert!(report.stats.get("global_rollbacks") >= 1);
}
