use std::sync::Arc;
use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{app, run_cluster, ClusterConfig, FaultPlan, Payload, RecvSelector};

#[test]
fn dbg() {
    let prog = app(move |mpi| async move {
        let n = mpi.size();
        let me = mpi.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        for it in 0..40u64 {
            let mut state = Payload::new(it.to_le_bytes().to_vec());
            state.pad = 6 << 20;
            mpi.checkpoint_point(state).await;
            let m = mpi
                .sendrecv(
                    right,
                    0,
                    Payload::new(vec![(it & 0xff) as u8]),
                    RecvSelector::of(left, 0),
                )
                .await;
            if m.payload.data[0] != (it & 0xff) as u8 {
                eprintln!("MISMATCH rank {me} it {it} got {}", m.payload.data[0]);
            }
            mpi.elapse(SimDuration::from_millis(5)).await;
        }
    });
    let mut cfg = ClusterConfig::new(3);
    cfg.event_limit = Some(10_000_000);
    cfg.time_limit = Some(SimDuration::from_secs(60));
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(150)),
    );
    let report = run_cluster(&cfg, suite, prog, &FaultPlan::none());
    eprintln!("completed={}", report.completed);
}
