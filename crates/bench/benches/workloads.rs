//! Workload-registry sweep: every registered workload configuration
//! under every protocol-suite configuration, fault-free, sharded over
//! worker threads via `run_many`.
//!
//! Prints one table per workload family (makespan, Mflop/s where
//! defined, piggyback share, piggyback management time, message count
//! and the largest message-size bucket) and writes the whole grid to
//! `BENCH_workloads.json` — one `family/label/suite` entry per run, one
//! group per registered family — for CI trend tracking.
//!
//! Scale control: `VLOG_SCALE=quick` sweeps the smoke registry;
//! default/full sweep the default registry.

use std::sync::Arc;

use criterion::{json_escape, out_dir};
use vlog_bench::{banner, default_threads, fmt3, run_many, Scale, SuiteKind, Table};
use vlog_sim::SimDuration;
use vlog_vmpi::{ClusterConfig, FaultPlan};
use vlog_workloads::{registry, run_workload, RegistryScale, Workload, WorkloadRun, FAMILIES};

fn write_report(rows: &[(String, WorkloadRun)]) {
    let mut json = String::new();
    json.push_str("{\n  \"target\": \"workloads\",\n  \"results\": [\n");
    for (i, (name, run)) in rows.iter().enumerate() {
        let (pb_send, pb_recv) = run.pb_times();
        let extras: Vec<String> = run
            .extra
            .iter()
            .map(|(k, v)| format!("\"{}\": {:.3}", json_escape(k), v))
            .collect();
        let extras = if extras.is_empty() {
            String::new()
        } else {
            format!(", {}", extras.join(", "))
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"completed\": {}, \"makespan_s\": {:.6}, \
             \"mflops\": {:.3}, \"pb_percent\": {:.4}, \"pb_send_us\": {:.1}, \
             \"pb_recv_us\": {:.1}, \"messages\": {}, \"total_bytes\": {}, \
             \"max_msg_bucket\": {}{}}}{}\n",
            json_escape(name),
            run.report.completed,
            run.report.makespan.as_secs_f64(),
            run.mflops(),
            run.piggyback_percent(),
            pb_send.as_micros_f64(),
            pb_recv.as_micros_f64(),
            run.report.stats.messages,
            run.report.stats.total_bytes(),
            run.msg_histogram().max_bucket_bytes(),
            extras,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = out_dir().join("BENCH_workloads.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nbench report: {}", path.display()),
        Err(e) => eprintln!("bench report: failed to write {}: {e}", path.display()),
    }
}

fn main() {
    let reg_scale = match Scale::from_env() {
        Scale::Quick => RegistryScale::Smoke,
        _ => RegistryScale::Default,
    };
    let workloads = registry(reg_scale);
    let suites = SuiteKind::all_eight();
    banner(
        "Workload-registry sweep — every workload x every suite",
        &format!(
            "{} workloads x {} suites, fault-free, checkpoints every 25 ms",
            workloads.len(),
            suites.len()
        ),
    );

    let jobs: Vec<(Arc<dyn Workload>, SuiteKind)> = workloads
        .iter()
        .flat_map(|w| suites.iter().map(move |&k| (w.clone(), k)))
        .collect();
    let runs = run_many(jobs, default_threads(), |(w, kind)| {
        let mut cfg = ClusterConfig::new(w.np());
        cfg.event_limit = Some(2_000_000_000);
        let run = run_workload(
            w.as_ref(),
            &cfg,
            kind.build(SimDuration::from_millis(25)),
            &FaultPlan::none(),
        );
        assert!(
            run.report.completed,
            "{} under {} did not complete",
            run.label,
            kind.label()
        );
        let name = format!("{}/{}/{}", run.family, run.label, kind.label());
        (name, run)
    });

    // One table per family, rows = (workload, suite) cells.
    for family in FAMILIES {
        let rows: Vec<&(String, WorkloadRun)> =
            runs.iter().filter(|(_, r)| r.family == family).collect();
        if rows.is_empty() {
            continue;
        }
        banner(&format!("family: {family}"), "");
        let mut table = Table::new(&[
            "workload", "suite", "makespan", "Mflop/s", "pb %", "pb send", "pb recv", "msgs",
            "max msg",
        ]);
        for (_, run) in rows {
            let (pb_send, pb_recv) = run.pb_times();
            let mflops = run.mflops();
            table.row(vec![
                run.label.clone(),
                run.report.suite.clone(),
                format!("{}", run.report.makespan),
                if mflops > 0.0 {
                    fmt3(mflops)
                } else {
                    "-".into()
                },
                format!("{:.2}", run.piggyback_percent()),
                format!("{pb_send}"),
                format!("{pb_recv}"),
                run.report.stats.messages.to_string(),
                format!("{}B", run.msg_histogram().max_bucket_bytes()),
            ]);
        }
        table.print();
    }

    write_report(&runs);
}
