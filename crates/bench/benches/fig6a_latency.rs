//! Figure 6(a): 1-byte NetPIPE latency (µs) across the software stacks.
//!
//! Paper values on Fast Ethernet:
//!   P4 99.56 | Vdummy 134.84 | EL: Vcausal 156.92, Manetho 156.80,
//!   LogOn 155.83 | no EL: Vcausal 165.17, Manetho 173.15, LogOn 172.80.
//!
//! Also checks the §V-C claim that with an EL roughly half of the
//! ping-pong messages carry no piggyback at all (2397 of 4999 in the
//! paper), while without an EL every message carries one event.

use vlog_bench::{banner, fmt3, run_netpipe, Scale, Stack, Table};
use vlog_core::Technique;
use vlog_vmpi::FaultPlan;
use vlog_workloads::netpipe;

fn main() {
    let scale = Scale::from_env();
    let reps = scale.reps(1.0);
    banner(
        "Figure 6(a) — NetPIPE 1-byte latency (us)",
        "paper: P4 99.56 | Vdummy 134.84 | EL ~156-157 | no-EL 165-173",
    );
    let mut table = Table::new(&["stack", "latency (us)", "paper (us)"]);
    let paper: &[(Stack, f64)] = &[
        (Stack::Raw, f64::NAN),
        (Stack::P4, 99.56),
        (Stack::Vdummy, 134.84),
        (
            Stack::Causal {
                technique: Technique::Vcausal,
                el: true,
            },
            156.92,
        ),
        (
            Stack::Causal {
                technique: Technique::Manetho,
                el: true,
            },
            156.80,
        ),
        (
            Stack::Causal {
                technique: Technique::LogOn,
                el: true,
            },
            155.83,
        ),
        (
            Stack::Causal {
                technique: Technique::Vcausal,
                el: false,
            },
            165.17,
        ),
        (
            Stack::Causal {
                technique: Technique::Manetho,
                el: false,
            },
            173.15,
        ),
        (
            Stack::Causal {
                technique: Technique::LogOn,
                el: false,
            },
            172.80,
        ),
    ];
    for (stack, paper_us) in paper {
        let points = run_netpipe(*stack, 1, reps);
        let lat = points[0].latency_us;
        table.row(vec![
            stack.label(),
            fmt3(lat),
            if paper_us.is_nan() {
                "-".into()
            } else {
                fmt3(*paper_us)
            },
        ]);
    }
    table.print();

    // Piggyback census (paper §V-C: with an EL, 2397 of 4999 ping-pong
    // messages carried no piggyback — an EL-ack vs send-turnaround race
    // their testbed sometimes won. Our deterministic model always loses
    // that race on strict ping-pong (ack RTT ≈ 117us > turnaround ≈
    // 45us), so every message carries exactly the one newest event; the
    // EL's latency benefit — the actual Figure 6(a) metric — comes from
    // keeping the stores small. Documented in EXPERIMENTS.md.)
    banner(
        "Fig 6(a) companion — piggyback census of the 1-byte ping-pong",
        "events/msg stays at ~1 for both; no-EL pays growing-store costs instead",
    );
    let mut t2 = Table::new(&[
        "stack",
        "app msgs",
        "events piggybacked",
        "empty pb",
        "retained growth",
    ]);
    for el in [true, false] {
        let stack = Stack::Causal {
            technique: Technique::Vcausal,
            el,
        };
        let (prog, _) = netpipe::program(1, reps);
        let cfg = stack.cluster(2);
        let report = vlog_vmpi::run_cluster(&cfg, stack.suite(), prog, &FaultPlan::none());
        assert!(report.completed);
        let msgs: u64 = report.rank_stats.iter().map(|s| s.app_msgs_sent).sum();
        let events: u64 = report.rank_stats.iter().map(|s| s.pb_events_sent).sum();
        let empty: u64 = report.rank_stats.iter().map(|s| s.empty_pb_msgs).sum();
        let acked: u64 = report.rank_stats.iter().map(|s| s.el_acked_events).sum();
        t2.row(vec![
            stack.label(),
            msgs.to_string(),
            events.to_string(),
            empty.to_string(),
            if el {
                format!("bounded (acked {acked})")
            } else {
                "unbounded".into()
            },
        ]);
    }
    t2.print();
}
