//! Scaled-regime sweep: the `Large` workload registry (multi-server
//! bursty, large seeded halo graphs, the deep-tiling FFT ladder, NAS
//! and NetPIPE at the paper's upper rank counts) under every protocol
//! suite, each cell run twice — fault-free and with a *hub failure*
//! (the workload's most load-bearing rank killed mid-run).
//!
//! Emits the two committed artifacts: `BENCH_regimes.json` (the full
//! grid) and `REPORT.md` (the figure-style cross-regime comparison).
//! Unlike the other benches this target ignores `VLOG_SCALE`: the
//! artifacts are committed, `scripts/verify.sh` regenerates them and
//! requires a byte-identical result, so there is exactly one scale.

use std::sync::Arc;

use criterion::out_dir;
use vlog_bench::{
    banner, default_threads, fmt3, render_markdown, run_many, write_json, RegimeRow, SuiteKind,
    Table,
};
use vlog_sim::SimDuration;
use vlog_vmpi::{ClusterConfig, FaultPlan};
use vlog_workloads::runner::faults;
use vlog_workloads::{registry, run_workload, RegistryScale, Workload, WorkloadRun, FAMILIES};

/// When the hub dies. Every Large entry runs well past this point under
/// every suite, so the fault always lands mid-run.
const HUB_FAULT_AT: SimDuration = SimDuration::from_millis(5);

/// Crash-detection delay: short enough that recovery, not detection,
/// dominates the faulted makespan (the conformance suite uses the same
/// value).
const DETECT_DELAY: SimDuration = SimDuration::from_millis(8);

/// Checkpoint cadence offered to every suite.
const CKPT_EVERY: SimDuration = SimDuration::from_millis(6);

fn cluster_for(w: &dyn Workload) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(w.np());
    cfg.detect_delay = DETECT_DELAY;
    cfg.event_limit = Some(2_000_000_000);
    cfg
}

fn run_cell(w: &Arc<dyn Workload>, kind: SuiteKind) -> RegimeRow {
    let cfg = cluster_for(w.as_ref());
    let free = run_workload(w.as_ref(), &cfg, kind.build(CKPT_EVERY), &FaultPlan::none());
    assert!(
        free.report.completed,
        "{} under {} did not complete fault-free",
        free.label,
        kind.label()
    );
    let plan = faults::hub_failure(w.as_ref(), HUB_FAULT_AT);
    let faulted = run_workload(w.as_ref(), &cfg, kind.build(CKPT_EVERY), &plan);
    assert!(
        faulted.report.completed,
        "{} under {} did not recover from the hub failure",
        faulted.label,
        kind.label()
    );
    row_from_runs(w.as_ref(), kind, &free, &faulted)
}

fn row_from_runs(
    w: &dyn Workload,
    kind: SuiteKind,
    free: &WorkloadRun,
    faulted: &WorkloadRun,
) -> RegimeRow {
    let (pb_send, pb_recv) = free.pb_times();
    let el = match kind {
        SuiteKind::Causal { el, .. } => el,
        SuiteKind::Pessimistic => true,
        SuiteKind::Coordinated => false,
    };
    RegimeRow {
        family: free.family.to_string(),
        label: free.label.clone(),
        suite: kind.label(),
        np: w.np() as u64,
        causal: kind.is_causal(),
        el,
        completed: free.report.completed && faulted.report.completed,
        makespan_s: free.report.makespan.as_secs_f64(),
        faulted_makespan_s: faulted.report.makespan.as_secs_f64(),
        hub_rank: w.hub_rank() as u64,
        pb_percent: free.piggyback_percent(),
        pb_send_us: pb_send.as_micros_f64(),
        pb_recv_us: pb_recv.as_micros_f64(),
        messages: free.report.stats.messages,
        total_bytes: free.report.stats.total_bytes(),
        max_msg_bucket: free.msg_histogram().max_bucket_bytes(),
        el_peak_queue: free.report.el_peak_queue_depth(),
        el_peak_queue_faulted: faulted.report.el_peak_queue_depth(),
        el_peak_outstanding: free.report.el_peak_outstanding(),
        el_ack_mean_us: free.report.el_ack_latency_mean().as_micros_f64(),
        el_records: free.report.el_acked_records(),
    }
}

fn main() {
    let workloads = registry(RegistryScale::Large);
    let suites = SuiteKind::all_eight();
    banner(
        "Scaled-regime sweep — Large registry x every suite x {free, hub failure}",
        &format!(
            "{} workloads x {} suites x 2 fault modes; hub dies at {HUB_FAULT_AT}",
            workloads.len(),
            suites.len()
        ),
    );

    let jobs: Vec<(Arc<dyn Workload>, SuiteKind)> = workloads
        .iter()
        .flat_map(|w| suites.iter().map(move |&k| (w.clone(), k)))
        .collect();
    let rows = run_many(jobs, default_threads(), |(w, kind)| run_cell(&w, kind));

    // Stdout summary: one table per family mirroring REPORT.md's core
    // columns.
    for family in FAMILIES {
        let fam_rows: Vec<&RegimeRow> = rows.iter().filter(|r| r.family == family).collect();
        if fam_rows.is_empty() {
            continue;
        }
        banner(&format!("family: {family}"), "");
        let mut table = Table::new(&[
            "workload", "suite", "free", "faulted", "pb %", "EL q", "EL out", "ack µs",
        ]);
        for r in fam_rows {
            table.row(vec![
                r.label.clone(),
                r.suite.clone(),
                format!("{:.2}ms", r.makespan_s * 1e3),
                format!("{:.2}ms", r.faulted_makespan_s * 1e3),
                format!("{:.2}", r.pb_percent),
                r.el_peak_queue.to_string(),
                r.el_peak_outstanding.to_string(),
                fmt3(r.el_ack_mean_us),
            ]);
        }
        table.print();
    }

    let json = write_json(&rows);
    let json_path = out_dir().join("BENCH_regimes.json");
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nbench report: {}", json_path.display()),
        Err(e) => eprintln!("bench report: failed to write {}: {e}", json_path.display()),
    }

    let md = render_markdown(&rows);
    let md_path = out_dir().join("REPORT.md");
    match std::fs::write(&md_path, &md) {
        Ok(()) => println!("regime report: {}", md_path.display()),
        Err(e) => eprintln!("regime report: failed to write {}: {e}", md_path.display()),
    }
}
