//! Scaled-regime sweep: the `Large` workload registry (multi-server
//! bursty, large seeded halo graphs, the deep-tiling FFT ladder, NAS
//! and NetPIPE at the paper's upper rank counts) under every protocol
//! suite, each cell run twice — fault-free and with a *hub failure*
//! (the workload's most load-bearing rank killed mid-run).
//!
//! Emits the two committed artifacts: `BENCH_regimes.json` (the full
//! grid) and `REPORT.md` (the figure-style cross-regime comparison).
//! Unlike the other benches this target ignores `VLOG_SCALE`: the
//! artifacts are committed, `scripts/verify.sh` regenerates them and
//! requires a byte-identical result, so there is exactly one scale.

use std::sync::Arc;

use criterion::out_dir;
use vlog_bench::{
    banner, default_threads, fmt3, render_markdown, run_many, write_json, RegimeRow, SuiteKind,
    Table,
};
use vlog_core::{CausalSuite, PbFormat, Technique};
use vlog_sim::{NetProfile, SimDuration};
use vlog_vmpi::{ClusterConfig, FaultPlan};
use vlog_workloads::runner::faults;
use vlog_workloads::{
    net_axes, registry, run_workload, NetAxis, RegistryScale, Workload, WorkloadRun, FAMILIES,
};

/// When the hub dies. Every Large entry runs well past this point under
/// every suite, so the fault always lands mid-run.
const HUB_FAULT_AT: SimDuration = SimDuration::from_millis(5);

/// Crash-detection delay: short enough that recovery, not detection,
/// dominates the faulted makespan (the conformance suite uses the same
/// value).
const DETECT_DELAY: SimDuration = SimDuration::from_millis(8);

/// Checkpoint cadence offered to every suite.
const CKPT_EVERY: SimDuration = SimDuration::from_millis(6);

/// When the EL-scaling sweep kills one EL shard. Matches the hub-fault
/// time so the two fault modes stress the same phase of the run.
const EL_FAULT_AT: SimDuration = SimDuration::from_millis(5);

/// Stable-clock gossip period of the distributed EL shards.
const EL_GOSSIP: SimDuration = SimDuration::from_millis(20);

fn cluster_for(w: &dyn Workload, profile: NetProfile) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(w.np());
    cfg.detect_delay = DETECT_DELAY;
    cfg.event_limit = Some(2_000_000_000);
    cfg.net = profile;
    cfg
}

fn run_cell(w: &Arc<dyn Workload>, kind: SuiteKind) -> RegimeRow {
    let cfg = cluster_for(w.as_ref(), NetProfile::fast_ethernet_2005());
    let free = run_workload(w.as_ref(), &cfg, kind.build(CKPT_EVERY), &FaultPlan::none());
    assert!(
        free.report.completed,
        "{} under {} did not complete fault-free",
        free.label,
        kind.label()
    );
    let plan = faults::hub_failure(w.as_ref(), HUB_FAULT_AT);
    let faulted = run_workload(w.as_ref(), &cfg, kind.build(CKPT_EVERY), &plan);
    assert!(
        faulted.report.completed,
        "{} under {} did not recover from the hub failure",
        faulted.label,
        kind.label()
    );
    let el = match kind {
        SuiteKind::Causal { el, .. } => el,
        SuiteKind::Pessimistic => true,
        SuiteKind::Coordinated => false,
    };
    let axis = NetAxis {
        profile: NetProfile::fast_ethernet_2005(),
        el_count: if el { 1 } else { 0 },
    };
    row_from_runs(
        w.as_ref(),
        kind.label(),
        kind.is_causal(),
        el,
        &axis,
        &free,
        &faulted,
    )
}

/// One cell of the EL-scaling sweep: the saturation-probe workload under
/// Vcausal+EL on the given fabric × shard-count axis, fault-free plus
/// (when there is a shard to spare) an EL-failure rerun in which shard 0
/// is crashed mid-run and its ranks re-shard onto the survivors. Here
/// `faulted_makespan_s` records that EL-failure rerun, not a hub
/// failure.
fn run_scaling_cell(w: &Arc<dyn Workload>, axis: &NetAxis) -> RegimeRow {
    let kind = SuiteKind::Causal {
        technique: Technique::Vcausal,
        el: true,
    };
    let suite = || {
        Arc::new(
            CausalSuite::new(Technique::Vcausal, true)
                .with_checkpoints(CKPT_EVERY)
                .with_distributed_el(axis.el_count, EL_GOSSIP),
        )
    };
    let cfg = cluster_for(w.as_ref(), axis.profile.clone());
    let free = run_workload(w.as_ref(), &cfg, suite(), &FaultPlan::none());
    assert!(
        free.report.completed,
        "{} on {} did not complete fault-free",
        free.label,
        axis.label()
    );
    let faulted = if axis.el_count >= 2 {
        let run = run_workload(
            w.as_ref(),
            &cfg,
            suite(),
            &FaultPlan::kill_el_at(EL_FAULT_AT, 0),
        );
        assert!(
            run.report.completed,
            "{} on {} did not survive the EL-shard failure",
            run.label,
            axis.label()
        );
        assert!(
            run.report.el_reshards() >= 1,
            "{} on {}: EL failure injected but no re-shard happened",
            run.label,
            axis.label()
        );
        run
    } else {
        run_workload(w.as_ref(), &cfg, suite(), &FaultPlan::none())
    };
    row_from_runs(w.as_ref(), kind.label(), true, true, axis, &free, &faulted)
}

fn row_from_runs(
    w: &dyn Workload,
    suite: String,
    causal: bool,
    el: bool,
    axis: &NetAxis,
    free: &WorkloadRun,
    faulted: &WorkloadRun,
) -> RegimeRow {
    let (pb_send, pb_recv) = free.pb_times();
    let gauges = free.report.el_shard_gauges(axis.el_count);
    let el_shard_queues = gauges
        .iter()
        .map(|(q, _)| q.to_string())
        .collect::<Vec<_>>()
        .join("/");
    let el_ack_peak_us = gauges
        .iter()
        .map(|(_, ack)| ack.as_micros_f64())
        .fold(0.0, f64::max);
    RegimeRow {
        family: free.family.to_string(),
        label: free.label.clone(),
        suite,
        np: w.np() as u64,
        causal,
        el,
        completed: free.report.completed && faulted.report.completed,
        makespan_s: free.report.makespan.as_secs_f64(),
        faulted_makespan_s: faulted.report.makespan.as_secs_f64(),
        hub_rank: w.hub_rank() as u64,
        pb_percent: free.piggyback_percent(),
        pb_send_us: pb_send.as_micros_f64(),
        pb_recv_us: pb_recv.as_micros_f64(),
        messages: free.report.stats.messages,
        total_bytes: free.report.stats.total_bytes(),
        max_msg_bucket: free.msg_histogram().max_bucket_bytes(),
        el_peak_queue: free.report.el_peak_queue_depth(),
        el_peak_queue_faulted: faulted.report.el_peak_queue_depth(),
        el_peak_outstanding: free.report.el_peak_outstanding(),
        el_ack_mean_us: free.report.el_ack_latency_mean().as_micros_f64(),
        el_records: free.report.el_acked_records(),
        profile: axis.profile.name.to_string(),
        el_count: axis.el_count as u64,
        el_shard_queues,
        el_ack_peak_us,
        pb_bytes_per_msg: if free.report.stats.messages == 0 {
            0.0
        } else {
            free.report.stats.bytes.piggyback as f64 / free.report.stats.messages as f64
        },
        pb_bytes_total: free.report.stats.bytes.piggyback,
    }
}

/// One cell of the compact-piggyback scale sweep (REPORT.md table 7):
/// the given bursty ladder entry under Vcausal+EL with the compact wire
/// format. `el_fault == false` runs the paper-baseline axis (classic
/// single EL) and reruns it with a hub failure; `el_fault == true` runs
/// a two-shard EL axis and reruns it with shard 0 crashed mid-run.
fn run_compact_cell(w: &Arc<dyn Workload>, el_fault: bool) -> RegimeRow {
    let el_count = if el_fault { 2 } else { 1 };
    let suite = || {
        let s = CausalSuite::new(Technique::Vcausal, true)
            .with_checkpoints(CKPT_EVERY)
            .with_pb_format(PbFormat::Compact);
        Arc::new(if el_fault {
            s.with_distributed_el(2, EL_GOSSIP)
        } else {
            s
        })
    };
    let axis = NetAxis {
        profile: NetProfile::fast_ethernet_2005(),
        el_count,
    };
    let cfg = cluster_for(w.as_ref(), axis.profile.clone());
    let free = run_workload(w.as_ref(), &cfg, suite(), &FaultPlan::none());
    assert!(
        free.report.completed,
        "{} under the compact suite (el{el_count}) did not complete fault-free",
        free.label
    );
    let plan = if el_fault {
        FaultPlan::kill_el_at(EL_FAULT_AT, 0)
    } else {
        faults::hub_failure(w.as_ref(), HUB_FAULT_AT)
    };
    let faulted = run_workload(w.as_ref(), &cfg, suite(), &plan);
    assert!(
        faulted.report.completed,
        "{} under the compact suite (el{el_count}) did not recover",
        faulted.label
    );
    if el_fault {
        assert!(
            faulted.report.el_reshards() >= 1,
            "{}: EL failure injected but no re-shard happened",
            faulted.label
        );
    }
    row_from_runs(
        w.as_ref(),
        "Vcausal (EL, compact)".to_string(),
        true,
        true,
        &axis,
        &free,
        &faulted,
    )
}

fn main() {
    let workloads = registry(RegistryScale::Large);
    let suites = SuiteKind::all_eight();
    banner(
        "Scaled-regime sweep — Large registry x every suite x {free, hub failure}",
        &format!(
            "{} workloads x {} suites x 2 fault modes; hub dies at {HUB_FAULT_AT}",
            workloads.len(),
            suites.len()
        ),
    );

    let jobs: Vec<(Arc<dyn Workload>, SuiteKind)> = workloads
        .iter()
        .flat_map(|w| suites.iter().map(move |&k| (w.clone(), k)))
        .collect();
    let mut rows = run_many(jobs, default_threads(), |(w, kind)| run_cell(&w, kind));

    // EL-scaling sweep: the saturation probe (deepest FFT tiling) under
    // Vcausal+EL across every off-baseline fabric × shard-count axis.
    // The baseline axis is skipped — the main grid above already holds
    // that cell, and it doubles as table 6's first row.
    let probe = workloads
        .iter()
        .find(|w| w.family() == "fft" && w.label().ends_with(".t32"))
        .expect("Large registry always has the deep-tiling FFT entry")
        .clone();
    let axes: Vec<NetAxis> = net_axes(RegistryScale::Large)
        .into_iter()
        .filter(|a| !(a.profile.name == "fast-ethernet-2005" && a.el_count <= 1))
        .collect();
    banner(
        "EL-scaling sweep — saturation probe x every net axis x {free, EL failure}",
        &format!(
            "{} on {} fabrics; EL shard 0 dies at {EL_FAULT_AT} where shards allow",
            probe.label(),
            axes.len()
        ),
    );
    let scaling_jobs: Vec<(Arc<dyn Workload>, NetAxis)> =
        axes.into_iter().map(|a| (probe.clone(), a)).collect();
    rows.extend(run_many(scaling_jobs, default_threads(), |(w, axis)| {
        run_scaling_cell(&w, &axis)
    }));

    // Compact-piggyback scale sweep (table 7): the bursty service from
    // 21 physical clients up the Huge aggregation ladder to 100k+
    // modeled clients, under Vcausal+EL with the compact wire format.
    // Each ladder entry runs two legs: the baseline axis (free + hub
    // failure) and an el2 axis (free + EL-shard failure).
    let ladder: Vec<Arc<dyn Workload>> = registry(RegistryScale::Huge)
        .into_iter()
        .filter(|w| {
            w.family() == "bursty" && (w.label() == "21c.3s.x3" || w.label().contains(".agg"))
        })
        .collect();
    assert!(
        ladder.len() >= 4,
        "Huge registry is missing the aggregation ladder"
    );
    banner(
        "Compact-piggyback scale sweep — aggregation ladder x {free, hub failure, EL failure}",
        &format!(
            "{} bursty entries x 2 axes; compact wire format, send-side pruning",
            ladder.len()
        ),
    );
    let compact_jobs: Vec<(Arc<dyn Workload>, bool)> = ladder
        .iter()
        .flat_map(|w| [false, true].map(|el_fault| (w.clone(), el_fault)))
        .collect();
    let compact_rows = run_many(compact_jobs, default_threads(), |(w, el_fault)| {
        run_compact_cell(&w, el_fault)
    });
    // The table-7 claim, enforced at generation time, per axis leg:
    // piggyback bytes per message must stay flat as the modeled
    // population climbs the ladder. Two gates. (1) Across the
    // aggregated entries — each a 10x population jump over an identical
    // physical schedule — consecutive steps must agree within 10%:
    // aggregation jitters per-request compute, which moves checkpoint
    // boundaries and with them how much piggyback the stability pruning
    // trims, but an O(clients) regression would blow through the band
    // by orders of magnitude. (2) Every entry, aggregated or not, must
    // stay within 1.5x of the leg's 21-physical-client baseline — the
    // 21 -> 100k+ boundedness claim itself (the baseline cell's
    // pruning timing differs from the aggregated cells', so it gets
    // the looser band).
    for el_count in [1u64, 2] {
        let leg: Vec<&RegimeRow> = compact_rows
            .iter()
            .filter(|r| r.el_count == el_count)
            .collect();
        let agg: Vec<&&RegimeRow> = leg.iter().filter(|r| r.label.contains(".agg")).collect();
        for pair in agg.windows(2) {
            assert!(
                pair[1].pb_bytes_per_msg <= pair[0].pb_bytes_per_msg * 1.10,
                "pb bytes/msg grew up the ladder (el{el_count}): {} ({:.3}) -> {} ({:.3})",
                pair[0].label,
                pair[0].pb_bytes_per_msg,
                pair[1].label,
                pair[1].pb_bytes_per_msg
            );
        }
        let baseline = leg
            .first()
            .expect("compact leg has the 21-client baseline entry");
        for r in &leg {
            assert!(
                r.pb_bytes_per_msg <= baseline.pb_bytes_per_msg * 1.5,
                "pb bytes/msg unbounded vs the physical baseline (el{el_count}): \
                 {} ({:.3}) vs {} ({:.3})",
                r.label,
                r.pb_bytes_per_msg,
                baseline.label,
                baseline.pb_bytes_per_msg
            );
        }
    }
    rows.extend(compact_rows);

    // Stdout summary: one table per family mirroring REPORT.md's core
    // columns.
    for family in FAMILIES {
        let fam_rows: Vec<&RegimeRow> = rows.iter().filter(|r| r.family == family).collect();
        if fam_rows.is_empty() {
            continue;
        }
        banner(&format!("family: {family}"), "");
        let mut table = Table::new(&[
            "workload", "suite", "free", "faulted", "pb %", "EL q", "EL out", "ack µs",
        ]);
        for r in fam_rows {
            table.row(vec![
                r.label.clone(),
                r.suite.clone(),
                format!("{:.2}ms", r.makespan_s * 1e3),
                format!("{:.2}ms", r.faulted_makespan_s * 1e3),
                format!("{:.2}", r.pb_percent),
                r.el_peak_queue.to_string(),
                r.el_peak_outstanding.to_string(),
                fmt3(r.el_ack_mean_us),
            ]);
        }
        table.print();
    }

    let json = write_json(&rows);
    let json_path = out_dir().join("BENCH_regimes.json");
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nbench report: {}", json_path.display()),
        Err(e) => eprintln!("bench report: failed to write {}: {e}", json_path.display()),
    }

    let md = render_markdown(&rows);
    let md_path = out_dir().join("REPORT.md");
    match std::fs::write(&md_path, &md) {
        Ok(()) => println!("regime report: {}", md_path.display()),
        Err(e) => eprintln!("regime report: failed to write {}: {e}", md_path.display()),
    }
}
