//! Figure 7: amount of piggybacked data exchanged during BT, CG and LU
//! class A, as a percentage of the total exchanged data, for the three
//! reduction techniques with and without the Event Logger.
//!
//! Paper shape: without the EL the share grows steeply with rank count
//! (LU/16: Vcausal 50.3%, LogOn 39.8%, Manetho 13.1%); with the EL it
//! collapses (CG/16: ~0.5% instead of 4-12%); Vcausal always piggybacks
//! the most; LogOn carries more bytes than Manetho (no factoring).

use vlog_bench::{banner, default_threads, fmt3, run_many, Scale, Stack, Table};
use vlog_core::Technique;
use vlog_vmpi::FaultPlan;
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

fn techniques() -> [Technique; 3] {
    [Technique::Vcausal, Technique::Manetho, Technique::LogOn]
}

fn main() {
    let scale = Scale::from_env();
    let cases: &[(NasBench, &[usize], f64)] = &[
        (NasBench::BT, &[4, 9, 16][..], 0.10),
        (NasBench::CG, &[2, 4, 8, 16][..], 1.0),
        (NasBench::LU, &[2, 4, 8, 16][..], 0.03),
    ];
    for (bench, nps, frac) in cases {
        let frac = scale.fraction(*frac);
        banner(
            &format!(
                "Figure 7 — piggybacked data in % of total exchanged, {} class A",
                bench.label()
            ),
            &format!("iteration fraction {frac} (VLOG_SCALE=full for published counts)"),
        );
        let mut table = Table::new(&[
            "np",
            "Vcausal EL",
            "Manetho EL",
            "LogOn EL",
            "Vcausal noEL",
            "Manetho noEL",
            "LogOn noEL",
        ]);
        // Row-major job grid (np × el × technique), sharded across
        // worker threads with deterministic result ordering.
        let jobs: Vec<(usize, bool, Technique)> = nps
            .iter()
            .flat_map(|&np| {
                [true, false]
                    .into_iter()
                    .flat_map(move |el| techniques().into_iter().map(move |t| (np, el, t)))
            })
            .collect();
        let cells = run_many(jobs, default_threads(), |(np, el, technique)| {
            let stack = Stack::Causal { technique, el };
            let nas = NasConfig::new(*bench, Class::A, np).fraction(frac);
            let mut cfg = stack.cluster(np);
            cfg.event_limit = Some(2_000_000_000);
            let run = run_workload(&nas, &cfg, stack.suite(), &FaultPlan::none());
            assert!(run.report.completed, "{} np={np}", stack.label());
            run.report.piggyback_percent()
        });
        let mut cells = cells.into_iter();
        for &np in nps.iter() {
            let mut row = vec![np.to_string()];
            for _ in 0..6 {
                row.push(fmt3(cells.next().unwrap()));
            }
            table.row(row);
        }
        table.print();
    }
}
