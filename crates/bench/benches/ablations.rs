//! Ablations beyond the paper — design-choice probes the text motivates
//! but never quantifies:
//!
//! 1. **EL placement** (paper §III-A: the EL "can be run on the same node
//!    [as the checkpoint server] if the number of stable components in a
//!    system is restricted to 1 [... at the cost of] sharing the
//!    bandwidth"): dedicated stable node vs sharing the checkpoint
//!    server's node.
//! 2. **Checkpoint period** sensitivity of recovery time (how stale the
//!    image is bounds the replay).
//! 3. **Eager/rendezvous threshold** effect on the NetPIPE curve.

use std::sync::Arc;

use vlog_bench::{banner, fmt3, Scale, Stack, Table};
use vlog_core::{CausalSuite, EventLogger, Technique};
use vlog_sim::{NodeId, Sim, SimDuration};
use vlog_vmpi::{
    CkptScheduler, ClusterConfig, FaultPlan, RecoveryStyle, SharedRankStats, Suite, Topology,
    VProtocol,
};
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

/// CausalSuite variant that co-locates the Event Logger with the
/// checkpoint server on one stable node (stable_nodes[1]).
struct SharedNodeSuite {
    inner: CausalSuite,
}

impl Suite for SharedNodeSuite {
    fn name(&self) -> String {
        format!("{} (EL on ckpt node)", self.inner.name())
    }

    fn install(&self, sim: &mut Sim, topo: &Topology, stable_nodes: &[NodeId]) {
        // One stable machine for everything.
        let el = EventLogger::install(sim, stable_nodes[1], topo.n_ranks());
        topo.set_el(el, stable_nodes[1]);
        CkptScheduler::install(sim, stable_nodes[1], topo.clone(), self.inner.scheduler);
    }

    fn make_protocol(
        &self,
        rank: usize,
        topo: &Topology,
        stats: SharedRankStats,
    ) -> Box<dyn VProtocol> {
        self.inner.make_protocol(rank, topo, stats)
    }

    fn recovery_style(&self) -> RecoveryStyle {
        RecoveryStyle::SingleRank
    }
}

fn main() {
    let scale = Scale::from_env();

    // ---- 1. EL placement -------------------------------------------
    banner(
        "Ablation 1 — Event Logger on a dedicated node vs on the checkpoint server's node",
        "LU class A (high event rate): sharing the stable node costs piggyback growth",
    );
    let frac = scale.fraction(0.03);
    let mut t1 = Table::new(&[
        "np",
        "dedicated: pb%",
        "shared: pb%",
        "dedicated: Mflops",
        "shared: Mflops",
    ]);
    for np in [4usize, 8, 16] {
        let nas = NasConfig::new(NasBench::LU, Class::A, np).fraction(frac);
        let mut cfg = ClusterConfig::new(np);
        cfg.event_limit = Some(2_000_000_000);
        // Checkpoints on, so image traffic and EL traffic contend for the
        // shared stable node's link (the paper's §III-A concern).
        let period = vlog_sim::SimDuration::from_secs(1);
        let dedicated = run_workload(
            &nas,
            &cfg,
            Arc::new(CausalSuite::new(Technique::Vcausal, true).with_checkpoints(period)),
            &FaultPlan::none(),
        );
        let shared = run_workload(
            &nas,
            &cfg,
            Arc::new(SharedNodeSuite {
                inner: CausalSuite::new(Technique::Vcausal, true).with_checkpoints(period),
            }),
            &FaultPlan::none(),
        );
        assert!(dedicated.report.completed && shared.report.completed);
        t1.row(vec![
            np.to_string(),
            fmt3(dedicated.report.piggyback_percent()),
            fmt3(shared.report.piggyback_percent()),
            fmt3(dedicated.mflops()),
            fmt3(shared.mflops()),
        ]);
    }
    t1.print();

    // ---- 2. Checkpoint period vs recovery time ----------------------
    banner(
        "Ablation 2 — checkpoint period vs recovery duration (CG A / 8, Vcausal+EL)",
        "longer periods mean longer replays after a fault",
    );
    let mut t2 = Table::new(&["ckpt period (s)", "recovery total (ms)", "collect (ms)"]);
    for period_s in [0.2f64, 0.5, 1.0, 2.0] {
        let nas = NasConfig::new(NasBench::CG, Class::A, 8).fraction(scale.fraction(1.0));
        let mut cfg = ClusterConfig::new(8);
        cfg.event_limit = Some(2_000_000_000);
        cfg.detect_delay = SimDuration::from_millis(50);
        let suite = Arc::new(
            CausalSuite::new(Technique::Vcausal, true)
                .with_checkpoints(SimDuration::from_secs_f64(period_s)),
        );
        let probe = run_workload(&nas, &cfg, suite.clone(), &FaultPlan::none());
        assert!(probe.report.completed);
        let half = probe.report.makespan.mul_f64(0.5);
        let run = run_workload(&nas, &cfg, suite, &FaultPlan::kill_at(half, 0));
        assert!(run.report.completed);
        let st = &run.report.rank_stats[0];
        t2.row(vec![
            fmt3(period_s),
            fmt3(st.recovery_total.first().map_or(0.0, |d| d.as_millis_f64())),
            fmt3(
                st.recovery_collect
                    .first()
                    .map_or(0.0, |d| d.as_millis_f64()),
            ),
        ]);
    }
    t2.print();

    // ---- 3. Eager/rendezvous threshold -------------------------------
    banner(
        "Ablation 3 — eager/rendezvous threshold on the NetPIPE curve (Vdummy)",
        "the rendezvous round trip dents mid-size bandwidth",
    );
    let mut t3 = Table::new(&["bytes", "eager@128K Mbit/s", "eager@16K Mbit/s"]);
    let run_with_threshold = |threshold: u64| {
        let (prog, results) = vlog_workloads::netpipe::program(1 << 20, scale.reps(0.25));
        let mut cfg = Stack::Vdummy.cluster(2);
        cfg.profile.eager_threshold = threshold;
        let report = vlog_vmpi::run_cluster(&cfg, Stack::Vdummy.suite(), prog, &FaultPlan::none());
        assert!(report.completed);
        results.sorted()
    };
    let big = run_with_threshold(128 << 10);
    let small = run_with_threshold(16 << 10);
    for (a, b) in big.iter().zip(&small) {
        if a.bytes >= 4096 {
            t3.row(vec![a.bytes.to_string(), fmt3(a.mbps), fmt3(b.mbps)]);
        }
    }
    t3.print();

    // ---- 4. Distributed Event Loggers (the paper's future work) ------
    banner(
        "Ablation 4 — distributing the Event Logger over k shards (paper's conclusion)",
        "LU class A / 16 ranks: shards split the record/ack load; gossip keeps GC global",
    );
    let mut t4 = Table::new(&["EL shards", "pb %", "Mflops", "gossip msgs"]);
    for k in [1usize, 2, 4] {
        let mut suite = CausalSuite::new(Technique::Vcausal, true);
        if k > 1 {
            suite = suite.with_distributed_el(k, SimDuration::from_millis(2));
        }
        let nas = NasConfig::new(NasBench::LU, Class::A, 16).fraction(scale.fraction(0.03));
        let mut cfg = ClusterConfig::new(16);
        cfg.event_limit = Some(2_000_000_000);
        let run = run_workload(&nas, &cfg, Arc::new(suite), &FaultPlan::none());
        assert!(run.report.completed);
        t4.row(vec![
            k.to_string(),
            fmt3(run.report.piggyback_percent()),
            fmt3(run.mflops()),
            run.report.stats.get("el_gossip_msgs").to_string(),
        ]);
    }
    t4.print();
}
