//! Figure 3: the antecedence-graph worked example.
//!
//! A four-process execution builds ten events a–j; P3 then sends the
//! dotted message to P2. The paper: *"In Vcausal protocol, as P3 has
//! never received, neither sent anything to P2, it will send all events
//! to P2. In Manetho and LogOn, using the antecedence graph, P3 can
//! compute the events P2 already knows. So events from a to e are not
//! piggybacked while events from f to j are."*
//!
//! This harness replays that execution on the real reduction structures
//! and prints what each technique piggybacks, plus the byte cost under
//! each wire format.

use vlog_bench::{banner, Table};
use vlog_core::{make_reduction, Determinant, Reduction, Technique};
use vlog_vmpi::{RClock, Rank};

struct World {
    reds: Vec<Box<dyn Reduction>>,
    clocks: Vec<RClock>,
    names: Vec<(Rank, RClock, char)>,
}

impl World {
    fn new(t: Technique) -> World {
        World {
            reds: (0..4).map(|_| make_reduction(t, 4)).collect(),
            clocks: vec![0; 4],
            names: Vec::new(),
        }
    }

    fn msg(&mut self, from: Rank, to: Rank, name: char) {
        let (pb, _) = self.reds[from].build(to, self.clocks[from]);
        let sender_clock = self.clocks[from];
        self.reds[to].integrate(from, sender_clock, &pb);
        self.clocks[to] += 1;
        let det = Determinant {
            receiver: to,
            clock: self.clocks[to],
            sender: from,
            ssn: 0,
            cause: sender_clock,
        };
        self.reds[to].add_local(det);
        self.names.push((to, self.clocks[to], name));
    }

    fn name_of(&self, d: &Determinant) -> char {
        self.names
            .iter()
            .find(|(r, c, _)| *r == d.receiver && *c == d.clock)
            .map(|(_, _, n)| *n)
            .unwrap_or('?')
    }
}

fn run(t: Technique) -> (String, usize, u64) {
    let mut w = World::new(t);
    // The Figure 3 execution (see DESIGN.md F3): events a..j.
    w.msg(1, 0, 'a');
    w.msg(0, 1, 'b');
    w.msg(1, 2, 'c');
    w.msg(1, 2, 'd');
    w.msg(1, 2, 'e');
    w.msg(2, 1, 'f');
    w.msg(1, 3, 'g');
    w.msg(0, 3, 'h');
    w.msg(1, 3, 'i');
    w.msg(0, 3, 'j');
    // The dotted message: P3 -> P2.
    let (pb, _) = w.reds[3].build(2, w.clocks[3]);
    let mut labels: Vec<char> = pb.iter().map(|d| w.name_of(d)).collect();
    labels.sort_unstable();
    let bytes = t.wire_len(&pb);
    (labels.iter().collect(), pb.len(), bytes)
}

fn main() {
    banner(
        "Figure 3 — piggyback of the dotted P3 -> P2 message",
        "paper: Vcausal sends all of a..j; Manetho and LogOn only f..j",
    );
    let mut table = Table::new(&["technique", "events piggybacked", "count", "wire bytes"]);
    for t in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
        let (labels, count, bytes) = run(t);
        table.row(vec![
            t.label().to_string(),
            labels,
            count.to_string(),
            bytes.to_string(),
        ]);
    }
    table.print();
    // Sanity: the harness doubles as a test.
    assert_eq!(run(Technique::Vcausal).1, 10);
    assert_eq!(run(Technique::Manetho).1, 5);
    assert_eq!(run(Technique::LogOn).1, 5);
    println!("\nOK: matches the paper's Figure 3 prediction.");
}
