//! Figure 9: NAS benchmark performance (total Megaflops) for MPICH-P4,
//! MPICH-Vdummy and the six causal configurations.
//!
//! Paper shape: Vdummy tracks (sometimes beats) P4 thanks to full-duplex
//! links; causal protocols with the EL stay close to Vdummy; without the
//! EL the gap widens, dramatically so for the high message-rate LU/16
//! (LogOn suffering the most) — and the Event Logger benefit exceeds the
//! difference between the two antecedence-graph techniques.

use vlog_bench::{banner, default_threads, fmt3, run_many, Scale, Stack, Table};
use vlog_vmpi::FaultPlan;
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

fn main() {
    let scale = Scale::from_env();
    let cases: &[(NasBench, Class, &[usize], f64)] = &[
        (NasBench::CG, Class::A, &[2, 4, 8, 16][..], 1.0),
        (NasBench::CG, Class::B, &[2, 4, 8, 16][..], 0.2),
        (NasBench::MG, Class::A, &[2, 4, 8, 16][..], 1.0),
        (NasBench::BT, Class::A, &[4, 9, 16][..], 0.10),
        (NasBench::BT, Class::B, &[4, 9, 16][..], 0.05),
        (NasBench::SP, Class::A, &[4, 9, 16][..], 0.08),
        (NasBench::LU, Class::A, &[2, 4, 8, 16][..], 0.03),
        (NasBench::FT, Class::A, &[2, 4, 8, 16][..], 1.0),
    ];
    let stacks = Stack::fig9_eight();
    for (bench, class, nps, frac) in cases {
        let frac = scale.fraction(*frac);
        banner(
            &format!(
                "Figure 9 — {} class {:?}, total Megaflops (higher is better)",
                bench.label(),
                class
            ),
            &format!("iteration fraction {frac}"),
        );
        let mut headers: Vec<String> = vec!["np".into()];
        headers.extend(stacks.iter().map(|s| s.label()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);
        // One independent cluster run per (np, stack) cell, sharded
        // across worker threads; results come back in job order.
        let jobs: Vec<(usize, Stack)> = nps
            .iter()
            .flat_map(|&np| stacks.iter().map(move |s| (np, *s)))
            .collect();
        let cells = run_many(jobs, default_threads(), |(np, stack)| {
            let nas = NasConfig::new(*bench, *class, np).fraction(frac);
            let mut cfg = stack.cluster(np);
            cfg.event_limit = Some(2_000_000_000);
            let run = run_workload(&nas, &cfg, stack.suite(), &FaultPlan::none());
            assert!(
                run.report.completed,
                "{} {} np={np}",
                bench.label(),
                stack.label()
            );
            run.mflops()
        });
        let mut cells = cells.into_iter();
        for &np in nps.iter() {
            let mut row = vec![np.to_string()];
            for _ in &stacks {
                row.push(fmt3(cells.next().unwrap()));
            }
            table.row(row);
        }
        table.print();
    }
}
