//! Figure 8: time spent managing piggyback information on BT, CG, LU and
//! FT class A — (a) cumulative seconds split into send-side (serialize)
//! and receive-side (integrate) work, and (b) the same as a percentage of
//! total execution time.
//!
//! Paper shape: Vcausal's serialization is far cheaper than the graph
//! methods; LogOn pays more on send (reordering), Manetho more on
//! receive (edge generation); without the EL everything inflates —
//! up to 41.5% of execution time for LogOn on LU/16.

use vlog_bench::{banner, default_threads, fmt3, run_many, Scale, Stack, Table};
use vlog_core::Technique;
use vlog_vmpi::FaultPlan;
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

struct Cell {
    send_s: f64,
    recv_s: f64,
    pct_of_exec: f64,
}

fn main() {
    let scale = Scale::from_env();
    let cases: &[(NasBench, &[usize], f64)] = &[
        (NasBench::BT, &[4, 9, 16][..], 0.10),
        (NasBench::CG, &[2, 4, 8, 16][..], 1.0),
        (NasBench::LU, &[2, 4, 8, 16][..], 0.03),
        (NasBench::FT, &[2, 4, 8, 16][..], 1.0),
    ];
    let configs: Vec<(Technique, bool)> = [true, false]
        .into_iter()
        .flat_map(|el| {
            [Technique::Vcausal, Technique::Manetho, Technique::LogOn]
                .into_iter()
                .map(move |t| (t, el))
        })
        .collect();
    for (bench, nps, frac) in cases {
        let frac = scale.fraction(*frac);
        banner(
            &format!(
                "Figure 8(a) — piggyback management time (s), {} class A",
                bench.label()
            ),
            &format!("cumulative over ranks, 'send+recv (send/recv)'; iteration fraction {frac}"),
        );
        let mut ta = Table::new(&[
            "np",
            "Vcausal EL",
            "Manetho EL",
            "LogOn EL",
            "Vcausal noEL",
            "Manetho noEL",
            "LogOn noEL",
        ]);
        let mut tb = Table::new(&[
            "np",
            "Vcausal EL",
            "Manetho EL",
            "LogOn EL",
            "Vcausal noEL",
            "Manetho noEL",
            "LogOn noEL",
        ]);
        // Independent (np, technique, el) runs, sharded across threads.
        let jobs: Vec<(usize, Technique, bool)> = nps
            .iter()
            .flat_map(|&np| configs.iter().map(move |&(t, el)| (np, t, el)))
            .collect();
        let cells = run_many(jobs, default_threads(), |(np, technique, el)| {
            let stack = Stack::Causal { technique, el };
            let nas = NasConfig::new(*bench, Class::A, np).fraction(frac);
            let mut cfg = stack.cluster(np);
            cfg.event_limit = Some(2_000_000_000);
            let run = run_workload(&nas, &cfg, stack.suite(), &FaultPlan::none());
            assert!(run.report.completed, "{} np={np}", stack.label());
            let (send, recv) = run.report.pb_times();
            Cell {
                send_s: send.as_secs_f64(),
                recv_s: recv.as_secs_f64(),
                pct_of_exec: 100.0 * (send.as_secs_f64() + recv.as_secs_f64())
                    / (np as f64 * run.report.makespan.as_secs_f64()),
            }
        });
        let mut cells = cells.into_iter();
        for &np in nps.iter() {
            let mut row_a = vec![np.to_string()];
            let mut row_b = vec![np.to_string()];
            for _ in &configs {
                let cell = cells.next().unwrap();
                row_a.push(format!(
                    "{} ({}/{})",
                    fmt3(cell.send_s + cell.recv_s),
                    fmt3(cell.send_s),
                    fmt3(cell.recv_s)
                ));
                row_b.push(format!("{}%", fmt3(cell.pct_of_exec)));
            }
            ta.row(row_a);
            tb.row(row_b);
        }
        ta.print();
        println!();
        println!(
            "Figure 8(b) — causality computation in % of total execution time, {} class A",
            bench.label()
        );
        tb.print();
    }
}
