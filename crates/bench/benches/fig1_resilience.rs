//! Figure 1: fault resilience — execution slowdown of NAS BT on 25 nodes
//! as the fault frequency increases, for coordinated checkpointing
//! (Chandy-Lamport), pessimistic message logging (sender-based + EL) and
//! causal message logging (sender-based + EL).
//!
//! Paper shape: all protocols degrade with fault frequency; coordinated
//! checkpointing hits a vertical asymptote (no progress) at a much lower
//! frequency than the message-logging protocols because *every* fault
//! rolls *all* ranks back to the last global snapshot and restreams every
//! image from the checkpoint server, while message logging restarts only
//! the victim.

use std::sync::Arc;

use vlog_bench::{banner, default_threads, fmt3, run_many, Scale, Table};
use vlog_core::{CausalSuite, CoordinatedSuite, PessimisticSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{ClusterConfig, Suite};
use vlog_workloads::{run_workload, runner::faults, Class, NasBench, NasConfig};

const NP: usize = 25;

fn suite(kind: &str, ckpt: SimDuration) -> Arc<dyn Suite> {
    match kind {
        "coordinated" => Arc::new(CoordinatedSuite::new(ckpt)),
        "pessimistic" => Arc::new(PessimisticSuite::new().with_checkpoints(ckpt)),
        "causal" => Arc::new(CausalSuite::new(Technique::Vcausal, true).with_checkpoints(ckpt)),
        _ => unreachable!(),
    }
}

fn main() {
    let scale = Scale::from_env();
    // Run long enough that several faults land: a few virtual minutes.
    let frac = match scale {
        vlog_bench::Scale::Quick => 0.3,
        vlog_bench::Scale::Default => 3.0,
        vlog_bench::Scale::Full => 6.0,
    };
    let ckpt = SimDuration::from_secs(30);
    // Quick runs are only ~10s of virtual time, so faults must come much
    // faster than the paper's axis to land at all.
    let freqs: &[f64] = match scale {
        Scale::Quick => &[0.0, 6.0, 12.0],
        _ => &[0.0, 1.0 / 6.0, 1.0 / 3.0, 2.0 / 3.0, 1.0, 1.5, 2.0],
    };
    banner(
        "Figure 1 — slowdown (% of fault-free time) vs faults per minute, BT A / 25 ranks",
        "paper shape: coordinated hits the wall first; causal degrades most gracefully",
    );
    let protocols = ["coordinated", "pessimistic", "causal"];
    // Fault-free baselines per protocol (independent runs, sharded).
    let nas = NasConfig::new(NasBench::BT, Class::A, NP).fraction(frac);
    let base: Vec<SimDuration> = run_many(protocols.to_vec(), default_threads(), |kind| {
        let mut cfg = ClusterConfig::new(NP);
        cfg.event_limit = Some(4_000_000_000);
        cfg.detect_delay = SimDuration::from_millis(250);
        let run = run_workload(&nas, &cfg, suite(kind, ckpt), &vlog_vmpi::FaultPlan::none());
        assert!(run.report.completed, "{kind} baseline incomplete");
        run.report.makespan
    });
    let mut table = Table::new(&["faults/min", "Coordinated", "Pessimistic+EL", "Causal+EL"]);
    let mut curves: Vec<(String, Vec<(f64, f64)>)> = protocols
        .iter()
        .map(|k| (k.to_string(), Vec::new()))
        .collect();
    // The full (frequency × protocol) grid is one sweep of independent
    // runs; the 8x time budget for each comes from the baseline phase.
    let jobs: Vec<(f64, usize)> = freqs
        .iter()
        .flat_map(|&f| (0..protocols.len()).map(move |i| (f, i)))
        .collect();
    let base_ref = &base;
    let outcomes = run_many(jobs, default_threads(), move |(f, i)| {
        if f == 0.0 {
            return Some(100.0);
        }
        let kind = protocols[i];
        let mut cfg = ClusterConfig::new(NP);
        cfg.event_limit = Some(4_000_000_000);
        cfg.detect_delay = SimDuration::from_millis(250);
        // Give the run a generous budget: if it cannot finish within
        // 8x the fault-free time, the protocol makes no progress at
        // this frequency (the paper's vertical slope).
        cfg.time_limit = Some(base_ref[i].mul_f64(8.0));
        let horizon = base_ref[i].mul_f64(8.0);
        let plan = faults::periodic_per_minute(f, NP, horizon);
        let run = run_workload(&nas, &cfg, suite(kind, ckpt), &plan);
        run.report
            .completed
            .then(|| 100.0 * run.report.makespan.as_secs_f64() / base_ref[i].as_secs_f64())
    });
    let mut outcomes = outcomes.into_iter();
    for &f in freqs {
        let mut row = vec![fmt3(f)];
        for (i, _) in protocols.iter().enumerate() {
            match outcomes.next().unwrap() {
                Some(pct) => {
                    row.push(format!("{}%", fmt3(pct)));
                    curves[i].1.push((f, pct));
                }
                None => {
                    row.push("no progress".into());
                    curves[i].1.push((f, 800.0)); // off-the-chart wall marker
                }
            }
        }
        table.row(row);
    }
    table.print();
    println!();
    println!(
        "baselines: coordinated {}, pessimistic {}, causal {} (virtual)",
        base[0], base[1], base[2]
    );
    println!();
    vlog_bench::AsciiChart::default().render(
        "Figure 1 — slowdown (%) vs faults per minute (800 = no progress)",
        &curves,
    );
}
