//! Figure 10: time (ms) to recover all the events to replay when
//! restarting rank 0 halfway through BT A, CG B and LU A runs, with and
//! without the Event Logger (Vcausal protocol).
//!
//! Paper shape: with the EL, recovery takes ~10-17% of the no-EL time on
//! BT and stays nearly flat with rank count (one bulk transfer from the
//! EL plus n-1 small reclaim responses); without the EL every alive rank
//! ships its whole causality knowledge — time inflates ~10× from 2 to 16
//! ranks (CG B: 80.75 ms → 832 ms, a 930% increase).

use std::sync::Arc;

use vlog_bench::{banner, fmt3, Scale, Table};
use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{FaultPlan, Suite};
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

/// Runs one recovery experiment; returns the event-collection time in ms.
fn recover_ms(bench: NasBench, class: Class, np: usize, frac: f64, el: bool) -> f64 {
    let nas = NasConfig::new(bench, class, np).fraction(frac);
    let mut cfg = vlog_vmpi::ClusterConfig::new(np);
    cfg.event_limit = Some(2_000_000_000);
    cfg.detect_delay = SimDuration::from_millis(50);
    // Probe the pure application span without checkpoint traffic (with
    // checkpoints, the reported makespan includes the image-drain tail on
    // the checkpoint server's link, long after the applications ended).
    let mut probe_nas = nas.clone();
    probe_nas.checkpoints = false;
    let probe = run_workload(
        &probe_nas,
        &cfg,
        Arc::new(CausalSuite::new(Technique::Vcausal, el)),
        &FaultPlan::none(),
    );
    assert!(probe.report.completed);
    let t_app = probe.report.makespan;
    // One to two checkpoints before the kill; the victim dies mid-run
    // ("process of rank zero is killed at the middle of its correct
    // execution time", §V-E).
    let suite: Arc<dyn Suite> =
        Arc::new(CausalSuite::new(Technique::Vcausal, el).with_checkpoints(t_app.mul_f64(0.3)));
    let kill = t_app.mul_f64(0.55);
    let run = run_workload(&nas, &cfg, suite, &FaultPlan::kill_at(kill, 0));
    assert!(
        run.report.completed,
        "{} np={np} el={el}: faulted run incomplete",
        bench.label()
    );
    let collects = &run.report.rank_stats[0].recovery_collect;
    assert!(
        !collects.is_empty(),
        "{} np={np} el={el}: no recovery recorded",
        bench.label()
    );
    collects[0].as_millis_f64()
}

fn main() {
    let scale = Scale::from_env();
    let cases: &[(NasBench, Class, &[usize], f64, &str)] = &[
        (
            NasBench::BT,
            Class::A,
            &[4, 9, 16, 25][..],
            0.10,
            "paper: EL 9.6/16.6/21.2/32.4 ms | no-EL 32.5/97.3/183.5/330.9 ms",
        ),
        (
            NasBench::CG,
            Class::B,
            &[2, 4, 8, 16][..],
            0.15,
            "paper: EL 78.7/81.7/93.3/92.8 ms | no-EL 80.8/118.6/510.9/832.2 ms",
        ),
        (
            NasBench::LU,
            Class::A,
            &[2, 4, 8, 16][..],
            0.03,
            "paper: EL 37.6/76.8/58.6/42.6 ms | no-EL 42.5/219.1/360.2/505.5 ms",
        ),
    ];
    for (bench, class, nps, frac, note) in cases {
        let frac = scale.fraction(*frac);
        banner(
            &format!(
                "Figure 10 — ms to recover all events to replay, {} class {:?} (Vcausal)",
                bench.label(),
                class
            ),
            note,
        );
        let mut table = Table::new(&["np", "with EL (ms)", "without EL (ms)", "EL/no-EL"]);
        for &np in nps.iter() {
            let with_el = recover_ms(*bench, *class, np, frac, true);
            let without = recover_ms(*bench, *class, np, frac, false);
            table.row(vec![
                np.to_string(),
                fmt3(with_el),
                fmt3(without),
                format!("{}%", fmt3(100.0 * with_el / without)),
            ]);
        }
        table.print();
    }
}
