//! Figure 6(b): NetPIPE ping-pong bandwidth (Mbit/s) vs message size,
//! 1 B … 8 MB, across the software stacks.
//!
//! Paper shape: RAW TCP tops out near 90 Mbit/s; MPICH-P4 slightly below;
//! MPICH-Vdummy below P4 (pipe copies); the causal protocols track
//! Vdummy closely (sender-based copy costs), EL or not — in a ping-pong
//! the piggyback is one event regardless.

use vlog_bench::{banner, fmt3, run_netpipe, Scale, Stack, Table};
use vlog_core::Technique;

fn main() {
    let scale = Scale::from_env();
    let reps = scale.reps(0.25);
    let max = match scale {
        Scale::Quick => 1 << 20,
        _ => 8 << 20,
    };
    let stacks = [
        Stack::Raw,
        Stack::P4,
        Stack::Vdummy,
        Stack::Causal {
            technique: Technique::Vcausal,
            el: true,
        },
        Stack::Causal {
            technique: Technique::Manetho,
            el: true,
        },
        Stack::Causal {
            technique: Technique::LogOn,
            el: true,
        },
        Stack::Causal {
            technique: Technique::Manetho,
            el: false,
        },
        Stack::Causal {
            technique: Technique::LogOn,
            el: false,
        },
    ];
    banner(
        "Figure 6(b) — NetPIPE bandwidth (Mbit/s) vs message size",
        "paper shape: RAW ~90 peak > P4 > Vdummy >= causal variants",
    );
    let mut sweeps = Vec::new();
    for stack in &stacks {
        sweeps.push(run_netpipe(*stack, max, reps));
    }
    let mut headers: Vec<String> = vec!["bytes".into()];
    headers.extend(stacks.iter().map(|s| s.label()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for (i, point) in sweeps[0].iter().enumerate() {
        let mut row = vec![point.bytes.to_string()];
        for sweep in &sweeps {
            row.push(fmt3(sweep[i].mbps));
        }
        table.row(row);
    }
    table.print();

    println!();
    let mut t2 = Table::new(&["stack", "peak Mbit/s"]);
    for (stack, sweep) in stacks.iter().zip(&sweeps) {
        let peak = sweep.iter().map(|p| p.mbps).fold(0.0, f64::max);
        t2.row(vec![stack.label(), fmt3(peak)]);
    }
    t2.print();

    // The paper's figure, rendered: bandwidth vs message size (log x).
    println!();
    let series: Vec<(String, Vec<(f64, f64)>)> = stacks
        .iter()
        .zip(&sweeps)
        .map(|(s, sweep)| {
            (
                s.label(),
                sweep.iter().map(|p| (p.bytes as f64, p.mbps)).collect(),
            )
        })
        .collect();
    vlog_bench::AsciiChart {
        log_x: true,
        ..vlog_bench::AsciiChart::default()
    }
    .render(
        "Figure 6(b) — Mbit/s vs message size (log2 x-axis)",
        &series,
    );
}
