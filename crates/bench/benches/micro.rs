//! Criterion micro-benchmarks: the real (wall-clock) cost of the
//! protocol hot paths, complementing the calibrated virtual-time cost
//! model with measured Rust numbers.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use vlog_core::{
    decode_factored, decode_flat, encode_factored, encode_flat, make_reduction, AGraph,
    Determinant, SenderLog, Technique,
};
use vlog_vmpi::Payload;

fn dets(n: usize, receivers: usize) -> Vec<Determinant> {
    (0..n)
        .map(|i| Determinant {
            receiver: i % receivers,
            clock: (i / receivers + 1) as u64,
            sender: (i + 1) % receivers,
            ssn: i as u64,
            cause: (i / receivers) as u64,
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("piggyback_codecs");
    for &n in &[1usize, 16, 256] {
        let mut input = dets(n, 4);
        input.sort_by_key(|d| (d.receiver, d.clock));
        g.bench_with_input(BenchmarkId::new("encode_factored", n), &input, |b, d| {
            b.iter(|| encode_factored(d))
        });
        g.bench_with_input(BenchmarkId::new("encode_flat", n), &input, |b, d| {
            b.iter(|| encode_flat(d))
        });
        let enc_f = encode_factored(&input);
        let enc_l = encode_flat(&input);
        g.bench_with_input(BenchmarkId::new("decode_factored", n), &enc_f, |b, d| {
            b.iter(|| decode_factored(d.clone()))
        });
        g.bench_with_input(BenchmarkId::new("decode_flat", n), &enc_l, |b, d| {
            b.iter(|| decode_flat(d.clone()))
        });
    }
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("antecedence_graph");
    for &n in &[100usize, 1_000, 10_000] {
        // Build a chain-with-crosslinks graph of n events over 8 ranks.
        let build = || {
            let mut graph = AGraph::new(8);
            for d in dets(n, 8) {
                graph.insert(d);
            }
            graph
        };
        g.bench_with_input(BenchmarkId::new("insert_n", n), &n, |b, &n| {
            b.iter_batched(
                || dets(n, 8),
                |ds| {
                    let mut graph = AGraph::new(8);
                    for d in ds {
                        graph.insert(d);
                    }
                    graph
                },
                BatchSize::SmallInput,
            )
        });
        let graph = build();
        g.bench_with_input(BenchmarkId::new("causal_past", n), &graph, |b, graph| {
            b.iter(|| graph.causal_past(&[(0, graph.head(0))]))
        });
    }
    g.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_build");
    for t in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
        for &n in &[100usize, 2_000] {
            g.bench_with_input(
                BenchmarkId::new(format!("{}_build", t.label()), n),
                &n,
                |b, &n| {
                    b.iter_batched(
                        || {
                            let mut red = make_reduction(t, 8);
                            red.absorb(&dets(n, 8));
                            red
                        },
                        |mut red| red.build(3, (n / 8) as u64),
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    g.finish();
}

fn bench_sender_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("sender_log");
    g.bench_function("insert_1k", |b| {
        b.iter_batched(
            || SenderLog::new(8),
            |mut log| {
                for ssn in 0..1_000u64 {
                    log.insert((ssn % 7) as usize, ssn, 0, &Payload::synthetic(256));
                }
                log
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("prune_half_of_1k", |b| {
        b.iter_batched(
            || {
                let mut log = SenderLog::new(8);
                for ssn in 0..1_000u64 {
                    log.insert(1, ssn, 0, &Payload::synthetic(256));
                }
                log
            },
            |mut log| {
                log.prune_below(1, 500);
                log
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codecs,
    bench_graph,
    bench_reductions,
    bench_sender_log
);
criterion_main!(benches);
