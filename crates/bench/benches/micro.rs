//! Criterion micro-benchmarks: the real (wall-clock) cost of the
//! protocol hot paths, complementing the calibrated virtual-time cost
//! model with measured Rust numbers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use vlog_core::{
    decode_factored, decode_flat, encode_factored, encode_flat, make_reduction, AGraph,
    Determinant, ElBatcher, PbEncoder, SenderLog, Technique,
};
use vlog_sim::{profiler, EventCalendar, SimDuration, SimTime};
use vlog_vmpi::{Payload, PayloadArena, RankStatCell, RankStats};

fn dets(n: usize, receivers: usize) -> Vec<Determinant> {
    (0..n)
        .map(|i| Determinant {
            receiver: i % receivers,
            clock: (i / receivers + 1) as u64,
            sender: (i + 1) % receivers,
            ssn: i as u64,
            cause: (i / receivers) as u64,
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("piggyback_codecs");
    for &n in &[1usize, 16, 256] {
        let mut input = dets(n, 4);
        input.sort_by_key(|d| (d.receiver, d.clock));
        g.bench_with_input(BenchmarkId::new("encode_factored", n), &input, |b, d| {
            b.iter(|| encode_factored(d).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("encode_flat", n), &input, |b, d| {
            b.iter(|| encode_flat(d).unwrap())
        });
        let mut enc = PbEncoder::new();
        g.bench_with_input(
            BenchmarkId::new("encode_factored_batched", n),
            &input,
            |b, d| b.iter(|| enc.encode_factored(d).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("encode_flat_batched", n),
            &input,
            |b, d| b.iter(|| enc.encode_flat(d).unwrap()),
        );
        let enc_f = encode_factored(&input).unwrap();
        let enc_l = encode_flat(&input).unwrap();
        g.bench_with_input(BenchmarkId::new("decode_factored", n), &enc_f, |b, d| {
            b.iter(|| decode_factored(d.clone()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("decode_flat", n), &enc_l, |b, d| {
            b.iter(|| decode_flat(d.clone()).unwrap())
        });
    }
    g.finish();
}

/// The compact wire format against the fixed-width codecs it must beat:
/// encode (one-shot and batched through `PbEncoder`) and decode at the
/// same determinant counts as `piggyback_codecs`. `scripts/verify.sh`
/// gates on this group being present in `BENCH_micro.json`.
fn bench_pb_compact(c: &mut Criterion) {
    use vlog_core::{compact_len, decode_compact, encode_compact, flat_len};
    let mut g = c.benchmark_group("pb_compact");
    for &n in &[1usize, 16, 256] {
        let mut input = dets(n, 4);
        input.sort_by_key(|d| (d.receiver, d.clock));
        // The wire-size claim this format exists for, pinned where the
        // throughput is measured: >= 2x smaller than flat at 256.
        if n == 256 {
            assert!(
                compact_len(&input) * 2 <= flat_len(&input),
                "compact lost its 2x wire margin at n=256"
            );
        }
        g.bench_with_input(BenchmarkId::new("encode_compact", n), &input, |b, d| {
            b.iter(|| encode_compact(d))
        });
        let mut enc = PbEncoder::new();
        g.bench_with_input(
            BenchmarkId::new("encode_compact_batched", n),
            &input,
            |b, d| b.iter(|| enc.encode_compact(d).unwrap()),
        );
        let wire = encode_compact(&input);
        g.bench_with_input(BenchmarkId::new("decode_compact", n), &wire, |b, d| {
            b.iter(|| decode_compact(d.clone()).unwrap())
        });
    }
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("antecedence_graph");
    for &n in &[100usize, 1_000, 10_000] {
        // Build a chain-with-crosslinks graph of n events over 8 ranks.
        let build = || {
            let mut graph = AGraph::new(8);
            for d in dets(n, 8) {
                graph.insert(d);
            }
            graph
        };
        g.bench_with_input(BenchmarkId::new("insert_n", n), &n, |b, &n| {
            b.iter_batched(
                || dets(n, 8),
                |ds| {
                    let mut graph = AGraph::new(8);
                    for d in ds {
                        graph.insert(d);
                    }
                    graph
                },
                BatchSize::SmallInput,
            )
        });
        let graph = build();
        g.bench_with_input(BenchmarkId::new("causal_past", n), &graph, |b, graph| {
            b.iter(|| graph.causal_past(&[(0, graph.head(0))]))
        });
    }
    g.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_build");
    for t in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
        for &n in &[100usize, 2_000] {
            g.bench_with_input(
                BenchmarkId::new(format!("{}_build", t.label()), n),
                &n,
                |b, &n| {
                    b.iter_batched(
                        || {
                            let mut red = make_reduction(t, 8);
                            red.absorb(&dets(n, 8));
                            red
                        },
                        |mut red| red.build(3, (n / 8) as u64),
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    g.finish();
}

fn bench_sender_log(c: &mut Criterion) {
    let mut g = c.benchmark_group("sender_log");
    g.bench_function("insert_1k", |b| {
        b.iter_batched(
            || SenderLog::new(8),
            |mut log| {
                for ssn in 0..1_000u64 {
                    log.insert((ssn % 7) as usize, ssn, 0, &Payload::synthetic(256));
                }
                log
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("prune_half_of_1k", |b| {
        b.iter_batched(
            || {
                let mut log = SenderLog::new(8);
                for ssn in 0..1_000u64 {
                    log.insert(1, ssn, 0, &Payload::synthetic(256));
                }
                log
            },
            |mut log| {
                log.prune_below(1, 500);
                log
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Deterministic delay stream shaped like the simulator's: mostly
/// near-future (pipe/NIC/loopback scale), a few timers far out.
fn delays(n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let r = (i as u64).wrapping_mul(2_654_435_761) % 1_000;
            match r % 16 {
                0..=9 => 1 + r * 17,            // sub-microsecond kernel hops
                10..=13 => 10_000 + r * 911,    // NIC / service latencies
                14 => 1_000_000 + r * 7_001,    // millisecond timers
                _ => 100_000_000 + r * 900_011, // checkpoint-period scale
            }
        })
        .collect()
}

/// The event-calendar group: the run loop's schedule+dispatch hot path,
/// arena/wheel calendar vs the old global-binary-heap baseline, plus the
/// cancellation path only the calendar supports in O(1).
fn bench_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_calendar");
    for &n in &[1_024usize, 16_384] {
        let ds = delays(n);
        // Bulk: schedule everything, then drain — a cluster boot or a
        // burst of staged events.
        g.bench_with_input(BenchmarkId::new("heap_schedule_drain", n), &ds, |b, ds| {
            b.iter(|| {
                let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
                for (i, d) in ds.iter().enumerate() {
                    heap.push(Reverse((*d, i as u64, i as u64)));
                }
                let mut acc = 0u64;
                while let Some(Reverse((_, _, p))) = heap.pop() {
                    acc = acc.wrapping_add(p);
                }
                acc
            })
        });
        g.bench_with_input(
            BenchmarkId::new("calendar_schedule_drain", n),
            &ds,
            |b, ds| {
                b.iter(|| {
                    let mut cal: EventCalendar<u64> = EventCalendar::new();
                    for (i, d) in ds.iter().enumerate() {
                        cal.schedule(SimTime::from_nanos(*d), i as u64);
                    }
                    let mut acc = 0u64;
                    while let Some((_, _, _, p)) = cal.pop() {
                        acc = acc.wrapping_add(p.unwrap());
                    }
                    acc
                })
            },
        );
        // Churn: steady-state run loop — every dispatched event schedules
        // a successor, queue depth stays at `n`.
        g.bench_with_input(BenchmarkId::new("heap_churn", n), &ds, |b, ds| {
            b.iter(|| {
                let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
                let mut seq = 0u64;
                for (i, d) in ds.iter().enumerate() {
                    heap.push(Reverse((*d, seq, i as u64)));
                    seq += 1;
                }
                let mut acc = 0u64;
                for d in ds {
                    let Reverse((now, _, p)) = heap.pop().unwrap();
                    acc = acc.wrapping_add(p);
                    heap.push(Reverse((now + d, seq, p)));
                    seq += 1;
                }
                acc
            })
        });
        g.bench_with_input(BenchmarkId::new("calendar_churn", n), &ds, |b, ds| {
            b.iter(|| {
                let mut cal: EventCalendar<u64> = EventCalendar::new();
                for (i, d) in ds.iter().enumerate() {
                    cal.schedule(SimTime::from_nanos(*d), i as u64);
                }
                let mut acc = 0u64;
                for d in ds {
                    let (now, _, _, p) = cal.pop().unwrap();
                    let p = p.unwrap();
                    acc = acc.wrapping_add(p);
                    cal.schedule(now + SimDuration::from_nanos(*d), p);
                }
                acc
            })
        });
        // Cancel: arm-and-disarm, the timer-wheel specialty (the heap
        // baseline had no cancellation — stale entries reached dispatch).
        g.bench_with_input(BenchmarkId::new("calendar_cancel", n), &ds, |b, ds| {
            b.iter(|| {
                let mut cal: EventCalendar<u64> = EventCalendar::new();
                let keys: Vec<_> = ds
                    .iter()
                    .enumerate()
                    .map(|(i, d)| cal.schedule(SimTime::from_nanos(*d), i as u64))
                    .collect();
                let mut hits = 0usize;
                for k in keys {
                    hits += cal.cancel(k).is_some() as usize;
                }
                assert!(cal.pop().is_none());
                hits
            })
        });
    }
    g.finish();
}

/// The statistics paths of the raw-speed pass: the old per-update
/// `Arc<Mutex<RankStats>>` locking vs the sharded `RankStatCell` (local
/// lock-free bumps, one lock per flush). The cell variant includes its
/// end-of-run flush, so the comparison is end-to-end fair.
fn bench_sharded_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_stats");
    g.bench_function("locked_bump_1k", |b| {
        let shared = Arc::new(Mutex::new(RankStats::default()));
        b.iter(|| {
            for i in 0..1_000u64 {
                let mut st = shared.lock().unwrap();
                st.pb_events_sent += 1;
                st.pb_bytes_sent += i;
            }
        })
    });
    g.bench_function("cell_bump_1k_plus_flush", |b| {
        let shared = Arc::new(Mutex::new(RankStats::default()));
        b.iter(|| {
            let mut cell = RankStatCell::new(shared.clone());
            for i in 0..1_000u64 {
                let st = cell.local();
                st.pb_events_sent += 1;
                st.pb_bytes_sent += i;
            }
            cell.flush();
        })
    });
    g.finish();
}

/// Payload construction: a fresh `Vec` + `Arc` per message body vs the
/// interning `PayloadArena` (the cursor bodies workloads actually
/// build: 8 distinct values cycling across 64 sends).
fn bench_payload_arena(c: &mut Criterion) {
    let mut g = c.benchmark_group("payload_arena");
    g.bench_function("fresh_alloc_64", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..64u64 {
                total += Payload::new((i % 8).to_le_bytes().to_vec()).len();
            }
            total
        })
    });
    g.bench_function("arena_interned_64", |b| {
        let mut arena = PayloadArena::new();
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..64u64 {
                total += arena.payload(&(i % 8).to_le_bytes(), 0).len();
            }
            total
        })
    });
    g.finish();
}

/// Cost of the kernel's self-profiling scopes: the disabled guard (one
/// relaxed atomic load, what every production run pays per phase) and
/// the enabled guard (two `Instant` reads plus a thread-local bump).
fn bench_profiler_scope(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiler_scope");
    g.bench_function("disabled", |b| {
        profiler::set_enabled(false);
        b.iter(|| profiler::scope(profiler::Phase::Dispatch))
    });
    g.bench_function("enabled", |b| {
        profiler::set_enabled(true);
        b.iter(|| profiler::scope(profiler::Phase::Dispatch));
        profiler::set_enabled(false);
    });
    g.finish();
}

/// The ack-clocked EL batcher on the determinant-shipping hot path: the
/// offer/ack cycle at increasing coalescing depth (how many dets pile up
/// behind the in-flight batch before the ack flushes them), and the
/// reshard handoff drain.
fn bench_el_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("el_batching");
    for &depth in &[1usize, 16, 256] {
        let input = dets(depth, 4);
        g.bench_with_input(
            BenchmarkId::new("offer_ack_cycle", depth),
            &input,
            |b, d| {
                b.iter_batched(
                    ElBatcher::new,
                    |mut batcher| {
                        // First offer ships immediately; the rest
                        // coalesce until the ack releases them.
                        let first = batcher.offer(d[0]);
                        for det in &d[1..] {
                            let _ = batcher.offer(*det);
                        }
                        (first, batcher.acked())
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("reshard_handoff", depth),
            &input,
            |b, d| {
                b.iter_batched(
                    || {
                        let mut batcher = ElBatcher::new();
                        for det in d {
                            let _ = batcher.offer(*det);
                        }
                        batcher
                    },
                    |mut batcher| batcher.take_unacked(),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_codecs,
    bench_pb_compact,
    bench_graph,
    bench_reductions,
    bench_sender_log,
    bench_calendar,
    bench_sharded_stats,
    bench_payload_arena,
    bench_profiler_scope,
    bench_el_batching
);
criterion_main!(benches);
