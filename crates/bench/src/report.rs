//! The scaled-regime report: `BENCH_regimes.json` and `REPORT.md`.
//!
//! The `regimes` bench target sweeps the
//! [`Large` registry](vlog_workloads::RegistryScale) — multi-server
//! bursty, large seeded halo graphs, the deep-tiling FFT ladder, NAS and
//! NetPIPE at the paper's upper rank counts — across every protocol
//! suite, twice per cell: fault-free and under a *hub failure* (the
//! workload's most load-bearing rank killed mid-run). Each cell becomes
//! one [`RegimeRow`]; this module turns the rows into the two committed
//! artifacts:
//!
//! * [`write_json`] — the machine-readable grid (`BENCH_regimes.json`),
//!   parseable back with [`parse_json`] (golden-tested round trip);
//! * [`render_markdown`] — the figure-style cross-regime comparison
//!   (`REPORT.md`): piggyback share, piggyback management time, Event
//!   Logger saturation and hub-failure recovery, one table per metric,
//!   with prose tying each to what the paper predicts.
//!
//! Everything here is deterministic: rows arrive in sweep-job order, the
//! renderer derives its orderings from first occurrence, and neither
//! artifact embeds a timestamp — so `scripts/verify.sh` can regenerate
//! both and require them byte-identical to the committed copies.

use std::fmt::Write as _;

use criterion::json_escape;

/// One `(workload, suite)` cell of the scaled-regime sweep: the shared
/// workload metrics of the fault-free run plus the makespan of the
/// hub-failure rerun of the same configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeRow {
    /// Workload family slug (`"nas"`, `"netpipe"`, `"bursty"`, `"halo"`,
    /// `"fft"`).
    pub family: String,
    /// Workload label including its distinguishing parameters.
    pub label: String,
    /// Protocol-suite label ([`crate::SuiteKind::label`]).
    pub suite: String,
    /// Rank count of the configuration.
    pub np: u64,
    /// True for the causal-logging suites (the ones moving piggyback).
    pub causal: bool,
    /// True when the suite runs an Event Logger (causal EL-on and
    /// pessimistic).
    pub el: bool,
    /// True when both runs of the cell completed. The `regimes` bench
    /// asserts completion before emitting a row, so in a committed
    /// `BENCH_regimes.json` this is invariantly `true` — the field
    /// exists so partial grids from other producers stay representable.
    pub completed: bool,
    /// Fault-free virtual makespan, seconds.
    pub makespan_s: f64,
    /// Virtual makespan of the hub-failure rerun, seconds.
    pub faulted_makespan_s: f64,
    /// The rank the hub-failure plan killed ([`vlog_workloads::Workload::hub_rank`]).
    pub hub_rank: u64,
    /// Piggybacked bytes as % of all exchanged bytes (fault-free run).
    pub pb_percent: f64,
    /// Summed piggyback send-side management time, µs (fault-free run).
    pub pb_send_us: f64,
    /// Summed piggyback receive-side management time, µs (fault-free
    /// run).
    pub pb_recv_us: f64,
    /// Network messages delivered in the fault-free run.
    pub messages: u64,
    /// Total bytes exchanged in the fault-free run.
    pub total_bytes: u64,
    /// Upper bound (bytes) of the largest non-empty message-size bucket.
    pub max_msg_bucket: u64,
    /// Peak CPU-queue depth any record saw at an EL shard (fault-free
    /// run; 0 without an EL).
    pub el_peak_queue: u64,
    /// Peak EL CPU-queue depth of the hub-failure rerun — recovery
    /// queries (response cost grows with the determinant count) collide
    /// with live records, so this is where the select-loop server
    /// actually queues.
    pub el_peak_queue_faulted: u64,
    /// Peak shipped-but-unacknowledged event window of any rank
    /// (fault-free run; 0 without an EL).
    pub el_peak_outstanding: u64,
    /// Mean arrival-to-ack-send latency at the EL, µs (fault-free run).
    pub el_ack_mean_us: f64,
    /// Event records the EL processed in the fault-free run.
    pub el_records: u64,
    /// Network-fabric profile the cluster was built on
    /// ([`vlog_sim::NetProfile::name`]).
    pub profile: String,
    /// Event-Logger shard count (1 = the classic single EL; 0 for
    /// EL-less suites).
    pub el_count: u64,
    /// Per-shard peak CPU-queue depths, slash-joined in shard order
    /// (`"3/0/1/0"`); empty when no EL ran.
    pub el_shard_queues: String,
    /// Worst per-shard peak arrival-to-ack latency, µs (fault-free run).
    pub el_ack_peak_us: f64,
    /// Mean piggyback bytes per delivered message (fault-free run) —
    /// the table-7 metric: under the compact format with send-side
    /// pruning this must stay flat as the modeled client population
    /// grows.
    pub pb_bytes_per_msg: f64,
    /// Total piggybacked bytes of the fault-free run.
    pub pb_bytes_total: u64,
}

impl RegimeRow {
    /// The name identifying this cell in the JSON grid:
    /// `family/label/suite`, with the `@profile/elK` net axis appended
    /// for cells off the paper-baseline fabric so the EL-scaling sweep
    /// rows stay unique alongside the main grid.
    pub fn name(&self) -> String {
        let base = format!("{}/{}/{}", self.family, self.label, self.suite);
        if self.is_baseline_axis() {
            base
        } else {
            format!("{base}@{}/el{}", self.profile, self.el_count)
        }
    }

    /// True when this cell ran on the paper's baseline fabric
    /// (FastEthernet-2005, at most the single classic EL) — the axis
    /// the cross-regime tables pivot on.
    pub fn is_baseline_axis(&self) -> bool {
        self.profile == "fast-ethernet-2005" && self.el_count <= 1
    }

    /// Recovery overhead of the hub failure: extra makespan relative to
    /// the fault-free run, in percent (0 when the fault-free makespan is
    /// degenerate).
    pub fn recovery_overhead_percent(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            0.0
        } else {
            100.0 * (self.faulted_makespan_s - self.makespan_s) / self.makespan_s
        }
    }
}

/// Serializes the rows to the `BENCH_regimes.json` document (the same
/// `{"target": ..., "results": [...]}` shape every other bench report
/// uses).
pub fn write_json(rows: &[RegimeRow]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"target\": \"regimes\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"family\": \"{}\", \"label\": \"{}\", \
             \"suite\": \"{}\", \"np\": {}, \"causal\": {}, \"el\": {}, \
             \"completed\": {}, \"makespan_s\": {:.6}, \
             \"faulted_makespan_s\": {:.6}, \"hub_rank\": {}, \
             \"pb_percent\": {:.4}, \"pb_send_us\": {:.1}, \
             \"pb_recv_us\": {:.1}, \"messages\": {}, \"total_bytes\": {}, \
             \"max_msg_bucket\": {}, \"el_peak_queue\": {}, \
             \"el_peak_queue_faulted\": {}, \
             \"el_peak_outstanding\": {}, \"el_ack_mean_us\": {:.3}, \
             \"el_records\": {}, \"profile\": \"{}\", \"el_count\": {}, \
             \"el_shard_queues\": \"{}\", \"el_ack_peak_us\": {:.3}, \
             \"pb_bytes_per_msg\": {:.3}, \"pb_bytes_total\": {}}}{}\n",
            json_escape(&r.name()),
            json_escape(&r.family),
            json_escape(&r.label),
            json_escape(&r.suite),
            r.np,
            r.causal,
            r.el,
            r.completed,
            r.makespan_s,
            r.faulted_makespan_s,
            r.hub_rank,
            r.pb_percent,
            r.pb_send_us,
            r.pb_recv_us,
            r.messages,
            r.total_bytes,
            r.max_msg_bucket,
            r.el_peak_queue,
            r.el_peak_queue_faulted,
            r.el_peak_outstanding,
            r.el_ack_mean_us,
            r.el_records,
            json_escape(&r.profile),
            r.el_count,
            json_escape(&r.el_shard_queues),
            r.el_ack_peak_us,
            r.pb_bytes_per_msg,
            r.pb_bytes_total,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    json
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the document `write_json` emits.
// ---------------------------------------------------------------------

/// One scalar field value of a flat results object.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
}

impl JsonValue {
    pub(crate) fn as_str(&self, key: &str) -> Result<&str, String> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }

    pub(crate) fn as_f64(&self, key: &str) -> Result<f64, String> {
        match self {
            JsonValue::Num(x) => Ok(*x),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    fn as_u64(&self, key: &str) -> Result<u64, String> {
        let x = self.as_f64(key)?;
        Ok(x as u64)
    }

    fn as_bool(&self, key: &str) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("field {key:?} is not a bool: {other:?}")),
        }
    }
}

/// Character-level cursor over the JSON text.
pub(crate) struct Scanner<'a> {
    pub(crate) src: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Scanner<'a> {
    pub(crate) fn new(src: &'a str) -> Self {
        Scanner {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    pub(crate) fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    pub(crate) fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                other.map(|c| c as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.src.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self
                        .src
                        .get(self.pos + 1)
                        .ok_or("unterminated escape sequence")?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos + 2..self.pos + 6)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape \\{}", *other as char)),
                    }
                    self.pos += 2;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest =
                        std::str::from_utf8(&self.src[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.src[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') if self.src[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonValue::Bool(false))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while self.src.get(self.pos).is_some_and(|&b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                raw.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number {raw:?}: {e}"))
            }
            other => Err(format!(
                "unsupported JSON value starting with {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    /// One flat `{"key": scalar, ...}` object.
    pub(crate) fn flat_object(&mut self) -> Result<Vec<(String, JsonValue)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Parses a `BENCH_regimes.json` document (the exact flat shape
/// [`write_json`] emits) back into rows. Unknown fields are ignored so
/// the format can grow; missing fields are an error.
pub fn parse_json(src: &str) -> Result<Vec<RegimeRow>, String> {
    let start = src
        .find("\"results\"")
        .ok_or("document has no \"results\" field")?;
    let mut sc = Scanner::new(src);
    sc.pos = start + "\"results\"".len();
    sc.expect(b':')?;
    sc.expect(b'[')?;
    let mut rows = Vec::new();
    if sc.peek() == Some(b']') {
        return Ok(rows);
    }
    loop {
        let fields = sc.flat_object()?;
        rows.push(row_from_fields(&fields)?);
        match sc.peek() {
            Some(b',') => sc.pos += 1,
            Some(b']') => return Ok(rows),
            other => {
                return Err(format!(
                    "expected ',' or ']' after result object, found {:?}",
                    other.map(|c| c as char)
                ))
            }
        }
    }
}

fn row_from_fields(fields: &[(String, JsonValue)]) -> Result<RegimeRow, String> {
    let get = |key: &str| -> Result<&JsonValue, String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("result object is missing field {key:?}"))
    };
    Ok(RegimeRow {
        family: get("family")?.as_str("family")?.to_string(),
        label: get("label")?.as_str("label")?.to_string(),
        suite: get("suite")?.as_str("suite")?.to_string(),
        np: get("np")?.as_u64("np")?,
        causal: get("causal")?.as_bool("causal")?,
        el: get("el")?.as_bool("el")?,
        completed: get("completed")?.as_bool("completed")?,
        makespan_s: get("makespan_s")?.as_f64("makespan_s")?,
        faulted_makespan_s: get("faulted_makespan_s")?.as_f64("faulted_makespan_s")?,
        hub_rank: get("hub_rank")?.as_u64("hub_rank")?,
        pb_percent: get("pb_percent")?.as_f64("pb_percent")?,
        pb_send_us: get("pb_send_us")?.as_f64("pb_send_us")?,
        pb_recv_us: get("pb_recv_us")?.as_f64("pb_recv_us")?,
        messages: get("messages")?.as_u64("messages")?,
        total_bytes: get("total_bytes")?.as_u64("total_bytes")?,
        max_msg_bucket: get("max_msg_bucket")?.as_u64("max_msg_bucket")?,
        el_peak_queue: get("el_peak_queue")?.as_u64("el_peak_queue")?,
        el_peak_queue_faulted: get("el_peak_queue_faulted")?.as_u64("el_peak_queue_faulted")?,
        el_peak_outstanding: get("el_peak_outstanding")?.as_u64("el_peak_outstanding")?,
        el_ack_mean_us: get("el_ack_mean_us")?.as_f64("el_ack_mean_us")?,
        el_records: get("el_records")?.as_u64("el_records")?,
        profile: get("profile")?.as_str("profile")?.to_string(),
        el_count: get("el_count")?.as_u64("el_count")?,
        el_shard_queues: get("el_shard_queues")?
            .as_str("el_shard_queues")?
            .to_string(),
        el_ack_peak_us: get("el_ack_peak_us")?.as_f64("el_ack_peak_us")?,
        pb_bytes_per_msg: get("pb_bytes_per_msg")?.as_f64("pb_bytes_per_msg")?,
        pb_bytes_total: get("pb_bytes_total")?.as_u64("pb_bytes_total")?,
    })
}

// ---------------------------------------------------------------------
// Markdown rendering
// ---------------------------------------------------------------------

/// A GitHub-markdown table: first column left-aligned, the rest
/// right-aligned.
fn md_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let seps: Vec<&str> = (0..headers.len())
        .map(|i| if i == 0 { ":--" } else { "--:" })
        .collect();
    let _ = writeln!(out, "| {} |", seps.join(" | "));
    for row in rows {
        debug_assert_eq!(row.len(), headers.len());
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// First-occurrence order of `key` over the rows (the sweep emits rows
/// in registry x suite order, so this reconstructs both orderings
/// without the renderer knowing either enumeration).
fn distinct<F: Fn(&RegimeRow) -> String>(rows: &[RegimeRow], key: F) -> Vec<String> {
    let mut seen = Vec::new();
    for r in rows {
        let k = key(r);
        if !seen.contains(&k) {
            seen.push(k);
        }
    }
    seen
}

fn workload_name(r: &RegimeRow) -> String {
    format!("{}/{}", r.family, r.label)
}

fn find<'a>(rows: &'a [RegimeRow], workload: &str, suite: &str) -> Option<&'a RegimeRow> {
    rows.iter()
        .find(|r| workload_name(r) == workload && r.suite == suite)
}

fn fmt_ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Renders `REPORT.md` from the rows of one scaled-regime sweep: one
/// figure-style table per metric, each followed by the prose comparing
/// what the paper predicts with what the simulation shows.
pub fn render_markdown(all_rows: &[RegimeRow]) -> String {
    // Tables 1-5 pivot on the paper-baseline fabric; the off-baseline
    // net axes of the EL-scaling sweep get their own table 6, and the
    // compact-format aggregated-scale cells their own table 7.
    let baseline: Vec<RegimeRow> = all_rows
        .iter()
        .filter(|r| r.is_baseline_axis() && !r.suite.contains("compact"))
        .cloned()
        .collect();
    let rows: &[RegimeRow] = &baseline;
    let workloads = distinct(rows, workload_name);
    let suites = distinct(rows, |r| r.suite.clone());
    let causal_suites: Vec<String> = suites
        .iter()
        .filter(|s| rows.iter().any(|r| &r.suite == *s && r.causal))
        .cloned()
        .collect();
    let mut out = String::new();

    let _ = writeln!(
        out,
        "# Scaled-regime report\n\n\
         *Generated by `cargo bench --bench regimes` from the same sweep\n\
         that writes `BENCH_regimes.json` — regenerate with\n\
         `scripts/verify.sh` (which also asserts this file is current).\n\
         Do not edit by hand.*\n\n\
         Every workload of the `Large` registry (multi-server bursty,\n\
         large seeded halo graphs, the deep-tiling FFT ladder, NAS and\n\
         NetPIPE at the paper's upper rank counts) runs under every\n\
         protocol suite twice: fault-free, and with a **hub failure** —\n\
         the workload's most load-bearing rank (highest-degree halo\n\
         rank, busiest bursty server) killed mid-run. All times are\n\
         virtual (simulated) time.\n"
    );

    // ---- Table 1: piggyback share --------------------------------------
    let _ = writeln!(out, "## 1. Piggyback share across traffic shapes\n");
    let _ = writeln!(
        out,
        "Piggybacked causality bytes as a percentage of all exchanged\n\
         bytes (the paper's Figure 7 metric), fault-free runs, causal\n\
         suites only — the other suites move no piggyback.\n"
    );
    let mut headers = vec!["workload (np)".to_string()];
    headers.extend(causal_suites.iter().cloned());
    let mut body = Vec::new();
    for w in &workloads {
        let mut row = Vec::new();
        let np = rows
            .iter()
            .find(|r| workload_name(r) == *w)
            .map(|r| r.np)
            .unwrap_or(0);
        row.push(format!("{w} ({np})"));
        for s in &causal_suites {
            row.push(match find(rows, w, s) {
                Some(r) => format!("{:.2}", r.pb_percent),
                None => "-".into(),
            });
        }
        body.push(row);
    }
    out.push_str(&md_table(&headers, &body));
    let _ = writeln!(
        out,
        "\nThe paper predicts piggyback share is a property of the\n\
         *traffic shape*, not of the application: many small messages\n\
         mean proportionally more causality per wire byte. The sweep\n\
         reproduces that spread — the FFT ladder shows it within one\n\
         application: the monolithic transpose (`.t1`) amortizes its\n\
         piggyback to almost nothing, while the same grid at 32 tiles\n\
         multiplies the message count and pushes the share up by an\n\
         order of magnitude. The Event Logger columns sit below their\n\
         no-EL twins on every row: acknowledgements let senders trim\n\
         determinants that are safely logged, exactly the effect the\n\
         paper attributes to the EL.\n"
    );

    // ---- Table 2: piggyback management time ----------------------------
    let _ = writeln!(out, "## 2. Piggyback management time (send / receive)\n");
    let _ = writeln!(
        out,
        "Summed per-rank time spent building and integrating piggyback\n\
         (the Figure 8 metric), in µs as `send/recv`, fault-free runs.\n"
    );
    let mut body = Vec::new();
    for w in &workloads {
        let mut row = vec![w.clone()];
        for s in &causal_suites {
            row.push(match find(rows, w, s) {
                Some(r) => format!("{:.0}/{:.0}", r.pb_send_us, r.pb_recv_us),
                None => "-".into(),
            });
        }
        body.push(row);
    }
    let mut headers = vec!["workload".to_string()];
    headers.extend(causal_suites.iter().cloned());
    out.push_str(&md_table(&headers, &body));
    let _ = writeln!(
        out,
        "\nManagement time tracks determinant *count*, not byte volume:\n\
         the message-storm regimes (CG, deep FFT tiling, the bursty\n\
         service) pay the most, and the EL cuts the bill wherever its\n\
         acks arrive fast enough to keep the causality store small. The\n\
         paper's observation that the reduction technique matters more\n\
         than the raw message rate shows up as the spread between the\n\
         three techniques within one row.\n"
    );

    // ---- Table 3: EL saturation ----------------------------------------
    let _ = writeln!(out, "## 3. Event Logger saturation\n");
    let _ = writeln!(
        out,
        "Gauges from the EL-carrying suites, fault-free runs: peak CPU\n\
         queue depth at any EL shard, peak shipped-but-unacked event\n\
         window of any rank, mean arrival-to-ack latency, and records\n\
         processed. The FFT tiling ladder (`16r.t1` → `16r.t32`) is the\n\
         saturation probe: same grid, same flops, ever more (ever\n\
         smaller) messages.\n"
    );
    let headers: Vec<String> = [
        "workload / EL suite",
        "peak queue",
        "peak queue (hub fault)",
        "peak outstanding",
        "mean ack µs",
        "records",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut body = Vec::new();
    for w in &workloads {
        for s in &suites {
            if let Some(r) = find(rows, w, s) {
                if r.el && r.el_records > 0 {
                    body.push(vec![
                        format!("{w} — {s}"),
                        r.el_peak_queue.to_string(),
                        r.el_peak_queue_faulted.to_string(),
                        r.el_peak_outstanding.to_string(),
                        format!("{:.1}", r.el_ack_mean_us),
                        r.el_records.to_string(),
                    ]);
                }
            }
        }
    }
    out.push_str(&md_table(&headers, &body));
    let _ = writeln!(
        out,
        "\nThe paper's conclusion warns that one Event Logger becomes a\n\
         bottleneck as the process count grows. The gauges make the\n\
         mechanism visible: down the FFT ladder the record count\n\
         multiplies while payloads shrink, so the single-threaded\n\
         select-loop server falls behind — the un-acked window (peak\n\
         outstanding) widens, and with it the piggyback that can no\n\
         longer be trimmed before sends. Where the mean ack latency\n\
         stays flat but outstanding grows, the bottleneck is the\n\
         *round-trip*, not the server CPU — the regime the paper's\n\
         distributed-EL future work (implemented in `el_multi`)\n\
         addresses. Fault-free, the CPU queue stays near zero by\n\
         construction: the EL's 100 Mb/s receive link paces records\n\
         further apart than the per-record service time. The *hub\n\
         fault* column is where real queueing appears — a recovery\n\
         query's response cost grows with the stored determinant\n\
         count, and records arriving while it is being served wait\n\
         behind it.\n"
    );

    // ---- Table 4: hub-failure recovery ---------------------------------
    let _ = writeln!(out, "## 4. Recovery from a hub failure\n");
    let _ = writeln!(
        out,
        "Virtual makespan in ms: fault-free vs the same run with the\n\
         workload's hub killed mid-run (`faulted`, with the overhead in\n\
         percent). The hub is the highest-degree rank of a halo graph,\n\
         the busiest server of a bursty service, rank 0 elsewhere.\n"
    );
    let headers: Vec<String> = [
        "workload (hub)",
        "suite",
        "free ms",
        "faulted ms",
        "overhead",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut body = Vec::new();
    for w in &workloads {
        for s in &suites {
            if let Some(r) = find(rows, w, s) {
                body.push(vec![
                    format!("{w} (r{})", r.hub_rank),
                    s.clone(),
                    fmt_ms(r.makespan_s),
                    fmt_ms(r.faulted_makespan_s),
                    format!("{:+.0}%", r.recovery_overhead_percent()),
                ]);
            }
        }
    }
    out.push_str(&md_table(&headers, &body));
    let _ = writeln!(
        out,
        "\nKilling the hub is the worst single fault these topologies\n\
         admit: every partner of the victim holds causal state about it,\n\
         so recovery gathers determinants and replayed payloads from the\n\
         widest possible survivor set. The causal suites restart only\n\
         the victim (the paper's Figure 10 scenario) and their overhead\n\
         tracks how much causality the EL had already made stable;\n\
         coordinated checkpointing pays its global-rollback cost\n\
         everywhere, which is why its faulted column grows with rank\n\
         count rather than with hub degree.\n"
    );

    // ---- Table 5: traffic shapes ---------------------------------------
    let _ = writeln!(out, "## 5. Traffic shapes at a glance\n");
    let _ = writeln!(
        out,
        "Fault-free message counts under the first causal EL suite, as\n\
         a shape fingerprint of each regime. Message-size buckets are\n\
         power-of-two ranges: a `max bucket` of `65536` means the\n\
         largest messages fell in `32769..=65536` bytes (the same\n\
         ranges `MsgHistogram`'s debug output prints).\n"
    );
    let headers: Vec<String> = ["workload", "np", "messages", "total MB", "max bucket B"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let reference_suite = causal_suites.first().cloned().unwrap_or_default();
    let mut body = Vec::new();
    for w in &workloads {
        if let Some(r) = find(rows, w, &reference_suite) {
            body.push(vec![
                w.clone(),
                r.np.to_string(),
                r.messages.to_string(),
                format!("{:.1}", r.total_bytes as f64 / 1e6),
                r.max_msg_bucket.to_string(),
            ]);
        }
    }
    out.push_str(&md_table(&headers, &body));
    let _ = writeln!(
        out,
        "\nFive families, five shapes: NAS kernels alternate compute and\n\
         structured exchanges, NetPIPE is a two-rank ping-pong ladder,\n\
         the bursty service is client-server fan-in with wildcard\n\
         receives, the halo exchange concentrates edges on hub ranks,\n\
         and the FFT ladder converts one shape into another as tiling\n\
         deepens. The protocols never see the application — only this\n\
         traffic — which is why the regime, not the benchmark name,\n\
         predicts every number above.\n"
    );

    // ---- Table 6: EL scaling across fabrics ----------------------------
    let scaling: Vec<&RegimeRow> = {
        let axes_per_cell = |r: &RegimeRow| {
            all_rows
                .iter()
                .filter(|o| workload_name(o) == workload_name(r) && o.suite == r.suite)
                .count()
        };
        all_rows
            .iter()
            .filter(|r| r.el && !r.suite.contains("compact") && axes_per_cell(r) > 1)
            .collect()
    };
    if !scaling.is_empty() {
        let _ = writeln!(out, "## 6. Event Logger scaling across network fabrics\n");
        let _ = writeln!(
            out,
            "The saturation probe (the deepest FFT tiling under the first\n\
             causal EL suite) rerun across every fabric × EL-shard axis of\n\
             the registry. `shard queues` is the peak CPU-queue depth per\n\
             shard, slash-joined in shard order; `EL-fail ms` is the same\n\
             run with one EL shard crashed mid-run and its ranks\n\
             re-sharded onto the survivors (only defined for `el >= 2`).\n"
        );
        let headers: Vec<String> = [
            "fabric / EL shards",
            "free ms",
            "EL-fail ms",
            "shard queues",
            "ack peak µs",
            "ack mean µs",
            "records",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut body = Vec::new();
        for r in &scaling {
            body.push(vec![
                format!("{}/el{}", r.profile, r.el_count),
                fmt_ms(r.makespan_s),
                if r.el_count >= 2 {
                    fmt_ms(r.faulted_makespan_s)
                } else {
                    "-".into()
                },
                if r.el_shard_queues.is_empty() {
                    "-".into()
                } else {
                    r.el_shard_queues.clone()
                },
                format!("{:.1}", r.el_ack_peak_us),
                format!("{:.1}", r.el_ack_mean_us),
                r.el_records.to_string(),
            ]);
        }
        out.push_str(&md_table(&headers, &body));
        let _ = writeln!(
            out,
            "\nThis is the experiment the paper could not run: its testbed\n\
             was fixed at Fast Ethernet, where the 100 Mb/s ingress link\n\
             paces records further apart than the EL's per-record service\n\
             time — the ack *round-trip*, not the EL CPU, bounds the\n\
             un-acked window. On the gigabit fabrics the pacing vanishes:\n\
             records arrive faster than one EL core can log them, the\n\
             per-shard CPU queues above go from zero to double digits,\n\
             and the bottleneck the paper's conclusion predicts for\n\
             larger clusters appears at 16 ranks. Sharding the EL\n\
             (`el4`) splits the arrival stream and drains the queues\n\
             back down — the distributed-EL future work, quantified.\n\
             Losing a shard mid-run costs one detection delay plus the\n\
             re-shard handoff (unacked batches re-shipped to the\n\
             survivor shards), visible as the `EL-fail` column tracking\n\
             the fault-free makespan within a few percent.\n"
        );
    }

    // ---- Table 7: compact piggyback at aggregated client scale ---------
    let compact: Vec<RegimeRow> = all_rows
        .iter()
        .filter(|r| r.suite.contains("compact"))
        .cloned()
        .collect();
    if !compact.is_empty() {
        let _ = writeln!(out, "## 7. Compact piggyback at aggregated client scale\n");
        let _ = writeln!(
            out,
            "The million-client question: does per-message causality\n\
             metadata stay bounded as the client population grows? The\n\
             bursty service reruns under the compact piggyback wire\n\
             format (varint + delta + run-length, with send-side\n\
             pruning below the receiver's known-stable watermark),\n\
             aggregating ever more modeled clients onto the same 24\n\
             physical ranks — the physical message schedule is identical\n\
             across the ladder, only the modeled population changes.\n\
             `pb B/msg` is mean piggyback bytes per delivered message\n\
             (fault-free); `hub-fail ms` kills the busiest server\n\
             mid-run; `EL-fail ms` crashes one of two EL shards.\n"
        );
        let headers: Vec<String> = [
            "modeled clients",
            "np",
            "messages",
            "pb B/msg",
            "pb total KB",
            "pb %",
            "free ms",
            "hub-fail ms",
            "EL-fail ms",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let labels = distinct(&compact, |r| r.label.clone());
        let mut body = Vec::new();
        for label in &labels {
            let base = compact
                .iter()
                .find(|r| &r.label == label && r.is_baseline_axis());
            let elx = compact
                .iter()
                .find(|r| &r.label == label && r.el_count >= 2);
            let Some(r) = base.or(elx) else { continue };
            let clients: String = label.chars().take_while(char::is_ascii_digit).collect();
            body.push(vec![
                if clients.is_empty() {
                    label.clone()
                } else {
                    clients
                },
                r.np.to_string(),
                r.messages.to_string(),
                format!("{:.1}", r.pb_bytes_per_msg),
                format!("{:.1}", r.pb_bytes_total as f64 / 1e3),
                format!("{:.2}", r.pb_percent),
                fmt_ms(r.makespan_s),
                match base {
                    Some(b) => fmt_ms(b.faulted_makespan_s),
                    None => "-".into(),
                },
                match elx {
                    Some(e) => fmt_ms(e.faulted_makespan_s),
                    None => "-".into(),
                },
            ]);
        }
        out.push_str(&md_table(&headers, &body));
        let _ = writeln!(
            out,
            "\nThe `pb B/msg` column is the result: flat within a few\n\
             percent down the ladder even as the modeled population\n\
             multiplies by thousands, through both failure legs (the\n\
             generator asserts a 10% flatness band per step — each step\n\
             is a 10x population jump, so an O(clients) cost would blow\n\
             through it by orders of magnitude).\n\
             Causality metadata scales with the *physical* communication\n\
             graph — the determinants a rank must carry — not with the\n\
             modeled client count, and the compact format plus\n\
             stability pruning keeps the constant small. This is the\n\
             regime the paper's conclusion reaches toward: causal\n\
             logging priced for clusters far beyond the testbed.\n"
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<RegimeRow> {
        vec![
            RegimeRow {
                family: "halo".into(),
                label: "24r.x5".into(),
                suite: "Vcausal (EL)".into(),
                np: 24,
                causal: true,
                el: true,
                completed: true,
                makespan_s: 0.012345,
                faulted_makespan_s: 0.023456,
                hub_rank: 1,
                pb_percent: 4.56,
                pb_send_us: 120.0,
                pb_recv_us: 80.0,
                messages: 1234,
                total_bytes: 5_000_000,
                max_msg_bucket: 32768,
                el_peak_queue: 3,
                el_peak_queue_faulted: 9,
                el_peak_outstanding: 17,
                el_ack_mean_us: 95.5,
                el_records: 900,
                profile: "fast-ethernet-2005".into(),
                el_count: 1,
                el_shard_queues: "3".into(),
                el_ack_peak_us: 110.0,
                pb_bytes_per_msg: 12.5,
                pb_bytes_total: 15_425,
            },
            RegimeRow {
                family: "halo".into(),
                label: "24r.x5".into(),
                suite: "Vcausal (no EL)".into(),
                np: 24,
                causal: true,
                el: false,
                completed: true,
                makespan_s: 0.013,
                faulted_makespan_s: 0.025,
                hub_rank: 1,
                pb_percent: 9.87,
                pb_send_us: 200.0,
                pb_recv_us: 150.0,
                messages: 1200,
                total_bytes: 5_100_000,
                max_msg_bucket: 32768,
                el_peak_queue: 0,
                el_peak_queue_faulted: 0,
                el_peak_outstanding: 0,
                el_ack_mean_us: 0.0,
                el_records: 0,
                profile: "fast-ethernet-2005".into(),
                el_count: 0,
                el_shard_queues: String::new(),
                el_ack_peak_us: 0.0,
                pb_bytes_per_msg: 42.0,
                pb_bytes_total: 50_400,
            },
        ]
    }

    /// The EL cell of `sample_rows` rerun on an off-baseline net axis,
    /// as the EL-scaling sweep emits it.
    fn scaling_row() -> RegimeRow {
        let mut r = sample_rows().remove(0);
        r.profile = "gigabit".into();
        r.el_count = 4;
        r.el_shard_queues = "12/9/11/10".into();
        r.el_ack_peak_us = 310.0;
        r.makespan_s = 0.011;
        r.faulted_makespan_s = 0.0115;
        r
    }

    #[test]
    fn json_round_trips() {
        let rows = sample_rows();
        let json = write_json(&rows);
        let back = parse_json(&json).expect("parse back");
        assert_eq!(rows, back);
    }

    #[test]
    fn parser_rejects_missing_fields() {
        let json = r#"{"target": "regimes", "results": [{"name": "x"}]}"#;
        let err = parse_json(json).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn parser_handles_empty_results() {
        let json = "{\n  \"target\": \"regimes\",\n  \"results\": [\n  ]\n}\n";
        assert_eq!(parse_json(json).unwrap(), Vec::new());
    }

    #[test]
    fn parser_unescapes_strings() {
        let mut rows = sample_rows();
        rows[0].label = "odd \"label\"\\n".into();
        let back = parse_json(&write_json(&rows)).unwrap();
        assert_eq!(back[0].label, rows[0].label);
    }

    #[test]
    fn recovery_overhead_guards_degenerate_makespans() {
        let mut r = sample_rows().remove(0);
        assert!((r.recovery_overhead_percent() - 90.0).abs() < 1.0);
        r.makespan_s = 0.0;
        assert_eq!(r.recovery_overhead_percent(), 0.0);
    }

    /// Golden render: the exact markdown emitted for a fixed
    /// `BENCH_regimes.json` fixture. Guards both the pivot logic and
    /// the determinism contract (`verify.sh` diffs the committed
    /// REPORT.md against a regeneration, so any nondeterminism here
    /// would break CI).
    #[test]
    fn renders_the_golden_markdown_tables() {
        let rows = parse_json(&write_json(&sample_rows())).unwrap();
        let md = render_markdown(&rows);
        let expected_t1 = "\
| workload (np) | Vcausal (EL) | Vcausal (no EL) |
| :-- | --: | --: |
| halo/24r.x5 (24) | 4.56 | 9.87 |
";
        assert!(md.contains(expected_t1), "piggyback table drifted:\n{md}");
        let expected_el = "\
| workload / EL suite | peak queue | peak queue (hub fault) | peak outstanding | mean ack µs | records |
| :-- | --: | --: | --: | --: | --: |
| halo/24r.x5 — Vcausal (EL) | 3 | 9 | 17 | 95.5 | 900 |
";
        assert!(md.contains(expected_el), "EL table drifted:\n{md}");
        let expected_rec = "\
| halo/24r.x5 (r1) | Vcausal (EL) | 12.35 | 23.46 | +90% |
| halo/24r.x5 (r1) | Vcausal (no EL) | 13.00 | 25.00 | +92% |
";
        assert!(md.contains(expected_rec), "recovery table drifted:\n{md}");
        // Rendering twice is byte-identical (no hidden state, no time).
        assert_eq!(md, render_markdown(&rows));
        // No scaling rows -> no table 6; no compact rows -> no table 7.
        assert!(!md.contains("## 6."), "table 6 without scaling rows:\n{md}");
        assert!(!md.contains("## 7."), "table 7 without compact rows:\n{md}");
    }

    /// Rows of the aggregated-bursty compact sweep, as the `regimes`
    /// bench emits them: one baseline-axis cell (free + hub fault) and
    /// one el2 off-baseline cell (free + EL-shard fault) per ladder
    /// entry.
    fn compact_rows() -> Vec<RegimeRow> {
        let mut base = sample_rows().remove(0);
        base.family = "bursty".into();
        base.label = "1008c.3s.x3.agg48".into();
        base.suite = "MPICH-Vcausal (Vcausal, EL, compact)".into();
        base.pb_bytes_per_msg = 9.2;
        base.pb_bytes_total = 11_353;
        let mut elx = base.clone();
        elx.el_count = 2;
        elx.el_shard_queues = "2/1".into();
        elx.faulted_makespan_s = 0.024;
        vec![base, elx]
    }

    #[test]
    fn compact_rows_render_table_7() {
        let mut rows = sample_rows();
        rows.extend(compact_rows());
        let back = parse_json(&write_json(&rows)).unwrap();
        assert_eq!(rows, back, "pb columns must round-trip");

        let md = render_markdown(&rows);
        let expected_t7 = "\
| modeled clients | np | messages | pb B/msg | pb total KB | pb % | free ms | hub-fail ms | EL-fail ms |
| :-- | --: | --: | --: | --: | --: | --: | --: | --: |
| 1008 | 24 | 1234 | 9.2 | 11.4 | 4.56 | 12.35 | 23.46 | 24.00 |
";
        assert!(md.contains(expected_t7), "table 7 drifted:\n{md}");
        // Compact cells live only in table 7: tables 1-5 must not grow
        // a compact suite column, and the el1/el2 axis pair must not
        // leak into table 6's scaling pivot.
        let expected_t1 = "\
| workload (np) | Vcausal (EL) | Vcausal (no EL) |
| :-- | --: | --: |
| halo/24r.x5 (24) | 4.56 | 9.87 |
";
        assert!(
            md.contains(expected_t1),
            "compact leaked into table 1:\n{md}"
        );
        assert!(
            !md.contains("## 6."),
            "compact axis pair leaked into table 6:\n{md}"
        );
        assert_eq!(md, render_markdown(&rows));
    }

    #[test]
    fn off_baseline_rows_get_axis_suffixed_names_and_table_6() {
        let mut rows = sample_rows();
        rows.push(scaling_row());
        assert_eq!(rows[0].name(), "halo/24r.x5/Vcausal (EL)");
        assert_eq!(
            rows[2].name(),
            "halo/24r.x5/Vcausal (EL)@gigabit/el4",
            "off-baseline cells must stay unique in the JSON grid"
        );
        let back = parse_json(&write_json(&rows)).unwrap();
        assert_eq!(rows, back, "new columns must round-trip");

        let md = render_markdown(&rows);
        // Tables 1-5 pivot on the baseline axis only: the piggyback
        // table still has exactly one halo row.
        let expected_t1 = "\
| workload (np) | Vcausal (EL) | Vcausal (no EL) |
| :-- | --: | --: |
| halo/24r.x5 (24) | 4.56 | 9.87 |
";
        assert!(md.contains(expected_t1), "baseline pivot drifted:\n{md}");
        // Both axes of the EL cell land in table 6, shard gauges intact.
        let expected_t6 = "\
| fabric / EL shards | free ms | EL-fail ms | shard queues | ack peak µs | ack mean µs | records |
| :-- | --: | --: | --: | --: | --: | --: |
| fast-ethernet-2005/el1 | 12.35 | - | 3 | 110.0 | 95.5 | 900 |
| gigabit/el4 | 11.00 | 11.50 | 12/9/11/10 | 310.0 | 95.5 | 900 |
";
        assert!(md.contains(expected_t6), "EL-scaling table drifted:\n{md}");
        assert_eq!(md, render_markdown(&rows));
    }
}
