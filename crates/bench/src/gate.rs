//! The throughput-regression gate over committed `BENCH_*.json` files.
//!
//! `scripts/verify.sh` regenerates the `micro` bench report every run
//! and compares it against the copy committed at `HEAD` with the
//! `bench_gate` binary built from this module. The comparison converts
//! each benchmark's mean ns/iteration into operations per second and
//! takes the **geometric mean of the per-benchmark speedups** over the
//! name intersection of the two reports — robust to benchmarks being
//! added or removed, and to the very different magnitudes the groups
//! span (sub-nanosecond profiler scopes vs multi-microsecond graph
//! walks).
//!
//! Smoke runs use tiny measurement windows (`VLOG_BENCH_MS=5`), so the
//! default tolerance is deliberately loose; `VLOG_GATE_TOLERANCE`
//! (percent) tightens or loosens it. The gate always prints its
//! one-line ops/sec delta; it only *fails* when the geomean regresses
//! beyond the tolerance.

use crate::report::{JsonValue, Scanner};

/// One benchmark of a `BENCH_*.json` report, reduced to what the gate
/// compares.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark id (`group/name/parameter`).
    pub name: String,
    /// Mean ns per iteration.
    pub mean_ns: f64,
}

/// Parses the `{"target": ..., "results": [...]}` document every bench
/// target emits, keeping each result's `name` and `mean_ns`. Entries
/// without a positive `mean_ns` (e.g. rows from non-Criterion reports
/// like `BENCH_regimes.json`) are an error: the gate only compares
/// timing reports.
pub fn parse_bench_json(src: &str) -> Result<Vec<BenchEntry>, String> {
    let start = src
        .find("\"results\"")
        .ok_or("document has no \"results\" field")?;
    let mut sc = Scanner::new(src);
    sc.pos = start + "\"results\"".len();
    sc.expect(b':')?;
    sc.expect(b'[')?;
    let mut entries = Vec::new();
    if sc.peek() == Some(b']') {
        return Ok(entries);
    }
    loop {
        let fields = sc.flat_object()?;
        let get = |key: &str| -> Result<&JsonValue, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("result object is missing field {key:?}"))
        };
        let name = get("name")?.as_str("name")?.to_string();
        let mean_ns = get("mean_ns")?.as_f64("mean_ns")?;
        if !(mean_ns > 0.0) {
            return Err(format!(
                "benchmark {name:?} has non-positive mean_ns {mean_ns}"
            ));
        }
        entries.push(BenchEntry { name, mean_ns });
        match sc.peek() {
            Some(b',') => sc.pos += 1,
            Some(b']') => return Ok(entries),
            other => {
                return Err(format!(
                    "expected ',' or ']' after result object, found {:?}",
                    other.map(|c| c as char)
                ))
            }
        }
    }
}

/// Result of comparing a current bench report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Benchmarks present in both reports (the compared set).
    pub common: usize,
    /// Benchmarks only in the baseline (removed since).
    pub baseline_only: usize,
    /// Benchmarks only in the current report (added since).
    pub current_only: usize,
    /// Geometric mean over the common set of
    /// `baseline_mean_ns / current_mean_ns` — equivalently, the geomean
    /// ratio of current to baseline ops/sec. `> 1` means faster now.
    pub speedup: f64,
}

impl GateReport {
    /// Ops/sec delta in percent (`+25.0` = 25% faster than baseline).
    pub fn delta_percent(&self) -> f64 {
        (self.speedup - 1.0) * 100.0
    }

    /// Whether the gate passes at `tolerance_percent`: the geomean
    /// ops/sec may regress by at most that much. An empty common set
    /// passes (nothing to compare — the caller reports the counts).
    pub fn passes(&self, tolerance_percent: f64) -> bool {
        self.common == 0 || self.speedup >= 1.0 - tolerance_percent / 100.0
    }
}

/// Compares two parsed reports by benchmark name.
pub fn compare(baseline: &[BenchEntry], current: &[BenchEntry]) -> GateReport {
    let mut log_sum = 0.0f64;
    let mut common = 0usize;
    for cur in current {
        if let Some(base) = baseline.iter().find(|b| b.name == cur.name) {
            log_sum += (base.mean_ns / cur.mean_ns).ln();
            common += 1;
        }
    }
    let speedup = if common == 0 {
        1.0
    } else {
        (log_sum / common as f64).exp()
    };
    GateReport {
        common,
        baseline_only: baseline
            .iter()
            .filter(|b| !current.iter().any(|c| c.name == b.name))
            .count(),
        current_only: current.len() - common,
        speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, mean_ns: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            mean_ns,
        }
    }

    #[test]
    fn parses_a_criterion_report() {
        let json = r#"{
  "target": "micro",
  "results": [
    {"name": "a/1", "n": 10, "rejected": 0, "mean_ns": 25.50, "median_ns": 25.00, "stddev_ns": 1.00, "min_ns": 24.00, "max_ns": 28.00, "ci95_ns": 0.60},
    {"name": "b/2", "n": 10, "rejected": 1, "mean_ns": 100.00, "median_ns": 99.00, "stddev_ns": 2.00, "min_ns": 98.00, "max_ns": 105.00, "ci95_ns": 1.20}
  ]
}
"#;
        let entries = parse_bench_json(json).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a/1");
        assert!((entries[0].mean_ns - 25.5).abs() < 1e-9);
    }

    #[test]
    fn parser_rejects_non_timing_reports() {
        let json = r#"{"target": "x", "results": [{"name": "a", "makespan_s": 1.0}]}"#;
        assert!(parse_bench_json(json).unwrap_err().contains("mean_ns"));
        let json = r#"{"target": "x", "results": [{"name": "a", "mean_ns": 0.0}]}"#;
        assert!(parse_bench_json(json).unwrap_err().contains("non-positive"));
    }

    #[test]
    fn geomean_speedup_and_tolerance() {
        let base = vec![entry("a", 100.0), entry("b", 100.0), entry("gone", 10.0)];
        let cur = vec![entry("a", 50.0), entry("b", 200.0), entry("new", 10.0)];
        let g = compare(&base, &cur);
        // 2x faster on a, 2x slower on b: geomean exactly 1.
        assert_eq!(g.common, 2);
        assert_eq!(g.baseline_only, 1);
        assert_eq!(g.current_only, 1);
        assert!((g.speedup - 1.0).abs() < 1e-12);
        assert!(g.passes(0.0));

        // A uniform 30% ops/sec regression fails a 20% gate, passes 40%.
        let slow: Vec<BenchEntry> = base
            .iter()
            .map(|b| entry(&b.name, b.mean_ns / 0.7))
            .collect();
        let g = compare(&base, &slow);
        assert!((g.delta_percent() + 30.0).abs() < 1e-6);
        assert!(!g.passes(20.0));
        assert!(g.passes(40.0));
    }

    #[test]
    fn empty_intersection_passes_but_reports_counts() {
        let g = compare(&[entry("a", 1.0)], &[entry("b", 1.0)]);
        assert_eq!(g.common, 0);
        assert_eq!(g.speedup, 1.0);
        assert!(g.passes(0.0));
        assert_eq!(g.baseline_only, 1);
        assert_eq!(g.current_only, 1);
    }
}
