//! Throughput-regression gate: compares a current `BENCH_*.json`
//! against a committed baseline and fails on an ops/sec regression
//! beyond the tolerance.
//!
//! ```text
//! bench_gate <baseline.json> <current.json>
//! ```
//!
//! Always prints the one-line geomean ops/sec delta. Exits 1 when the
//! geomean regresses more than `VLOG_GATE_TOLERANCE` percent (default
//! 40 — `scripts/verify.sh` runs the micro benches with a 5 ms
//! measurement window, which is fast but noisy; nightly-quality runs
//! can tighten the gate by exporting a smaller tolerance).

use std::process::ExitCode;

use vlog_bench::gate;

/// Reads `VLOG_GATE_TOLERANCE` (percent), warning-and-defaulting on
/// malformed values the same way the simulator's env knobs do.
fn tolerance_percent() -> f64 {
    const DEFAULT: f64 = 40.0;
    match std::env::var("VLOG_GATE_TOLERANCE") {
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => v,
            _ => {
                eprintln!(
                    "bench_gate: ignoring malformed VLOG_GATE_TOLERANCE={raw:?} \
                     (want a non-negative percent), using {DEFAULT}"
                );
                DEFAULT
            }
        },
        Err(_) => DEFAULT,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, current_path] = &args[..] else {
        eprintln!("usage: bench_gate <baseline.json> <current.json>");
        return ExitCode::from(2);
    };
    let load = |path: &str| -> Result<Vec<gate::BenchEntry>, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        gate::parse_bench_json(&src).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let tolerance = tolerance_percent();
    let report = gate::compare(&baseline, &current);
    println!(
        "bench gate: ops/sec geomean {:+.1}% vs baseline ({} common, {} added, {} removed; \
         tolerance -{}%)",
        report.delta_percent(),
        report.common,
        report.current_only,
        report.baseline_only,
        tolerance,
    );
    if report.passes(tolerance) {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: FAIL — throughput regressed {:.1}% (beyond the {tolerance}% tolerance)",
            -report.delta_percent(),
        );
        ExitCode::FAILURE
    }
}
