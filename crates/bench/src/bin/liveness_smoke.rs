//! Hang-detector smoke gate for `scripts/verify.sh`.
//!
//! Two FT.S/8 runs with a rank killed mid-transpose, both with the
//! causality log exported and the sim-time watchdog armed:
//!
//! * the **buggy** leg re-introduces the PR-5 restart-window stall
//!   (`ClusterConfig::buggy_restart_window`) — the watchdog must end
//!   the run and the liveness report must carry a non-empty dangling
//!   set naming the stuck recovery edge;
//! * the **clean** leg runs the identical configuration minus the flag
//!   — it must recover, the watchdog must stay silent, and the report
//!   must be clean (the zero-false-positive half of the contract).
//!
//! Exits 1 with the offending liveness dump on any deviation.

use std::sync::Arc;

use vlog_core::{CausalSuite, Technique};
use vlog_sim::{causality, SimDuration};
use vlog_vmpi::{ClusterConfig, FaultPlan};
use vlog_workloads::{run_workload, Class, NasBench, NasConfig};

struct Leg {
    completed: bool,
    watchdog_fired: u64,
    live: causality::LivenessReport,
}

fn run_leg(buggy: bool) -> Leg {
    let w = NasConfig::new(NasBench::FT, Class::S, 8);
    let mut cfg = ClusterConfig::new(8);
    cfg.detect_delay = SimDuration::from_millis(8);
    cfg.export_liveness = true;
    // Clean recovery lands around 550ms of sim time; 2s of margin means
    // only a genuine stall reaches the watchdog.
    cfg.liveness_watchdog = Some(SimDuration::from_secs(2));
    cfg.buggy_restart_window = buggy;
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(6)),
    );
    let run = run_workload(
        &w,
        &cfg,
        suite,
        &FaultPlan::kill_at(SimDuration::from_millis(5), 1),
    );
    Leg {
        completed: run.report.completed,
        watchdog_fired: run.report.stats.get("liveness_watchdog_fired"),
        live: run
            .report
            .liveness
            .clone()
            .expect("export_liveness was set"),
    }
}

fn main() {
    let mut failures = Vec::new();

    let buggy = run_leg(true);
    eprint!("{}", causality::render("buggy restart-window", &buggy.live));
    if buggy.completed {
        failures.push("buggy leg completed — the seeded stall did not bite".to_string());
    }
    if buggy.watchdog_fired == 0 {
        failures.push("buggy leg ended without the watchdog firing".to_string());
    }
    if buggy.live.dangling.is_empty() {
        failures.push("buggy leg's dangling-cause dump is empty".to_string());
    }

    let clean = run_leg(false);
    eprint!("{}", causality::render("clean control", &clean.live));
    if !clean.completed {
        failures.push("clean leg did not recover".to_string());
    }
    if clean.watchdog_fired != 0 {
        failures.push("watchdog fired on the clean leg".to_string());
    }
    if !clean.live.is_clean() {
        failures.push("clean leg has liveness findings (false positives)".to_string());
    }
    if clean.live.produced_events == 0 {
        failures.push("clean leg recorded no causality events".to_string());
    }

    if failures.is_empty() {
        eprintln!("liveness_smoke: ok (buggy leg dangles, clean leg clean)");
        return;
    }
    for f in &failures {
        eprintln!("liveness_smoke: FAIL — {f}");
    }
    std::process::exit(1);
}
