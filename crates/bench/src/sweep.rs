//! Multi-threaded sweep driver.
//!
//! Every figure of the paper is a sweep over independent `(protocol,
//! cluster size, fault schedule, seed)` configurations. Since a
//! [`ClusterRun`](vlog_vmpi::ClusterRun) is a `Send` value, those runs
//! can be fanned out across OS threads: [`run_many`] executes one closure
//! per job on a small worker pool and returns the results **in job
//! order**, regardless of which worker finished first — so a sweep's
//! output (and anything derived from it, like a determinism fingerprint)
//! is byte-identical whether it ran on 1 thread or 16.
//!
//! Jobs are handed out through a shared atomic cursor (work stealing at
//! job granularity); each job itself remains a single-threaded,
//! deterministic simulation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why a `VLOG_THREADS` override was rejected. An alias of the shared
/// [`vlog_sim::env_knob::KnobError`]: every `VLOG_*` knob in the
/// workspace rejects (and warns about) the same two failure modes.
pub use vlog_sim::env_knob::KnobError as ThreadsOverrideError;

/// Parses a `VLOG_THREADS` override. Pure so both failure modes are unit
/// testable without touching the (process-global, race-prone)
/// environment. `0` is rejected because a zero-worker pool would leave
/// every job unclaimed forever.
pub fn parse_threads_override(raw: &str) -> Result<usize, ThreadsOverrideError> {
    vlog_sim::env_knob::parse_positive(raw).map(|n| n as usize)
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads to use for a sweep: `VLOG_THREADS` if set to
/// a positive integer, otherwise the machine's available parallelism (at
/// least 1). A malformed or zero override is *not* silently absorbed: it
/// falls back with a warning on stderr (the shared
/// [`vlog_sim::env_knob`] contract), so a typo'd CI variable shows up in
/// the logs instead of as a mysteriously sequential (or hung) sweep.
pub fn default_threads() -> usize {
    vlog_sim::env_knob::positive_usize_or_else("VLOG_THREADS", hardware_threads)
}

/// Runs `f` over every job on `threads` worker threads and returns the
/// results in job order.
///
/// `f` must be a pure function of its job: results are written into the
/// slot of the job they belong to, so the output vector is deterministic
/// for any thread count. A panic in any job propagates to the caller
/// after the remaining workers drain.
pub fn run_many<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Send + Sync,
{
    let n = jobs.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    // Job slots: workers take jobs by index through the shared cursor and
    // deposit results into the matching result slot.
    let jobs: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().expect("job taken twice");
                let r = f(job);
                *results[i].lock().unwrap() = Some(r);
            }));
        }
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker exited without depositing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_job_order_on_any_thread_count() {
        let jobs: Vec<u64> = (0..57).collect();
        let seq = run_many(jobs.clone(), 1, |j| j * j);
        for threads in [2, 3, 8] {
            let par = run_many(jobs.clone(), threads, |j| j * j);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_job_sweeps() {
        let none: Vec<u32> = run_many(Vec::<u32>::new(), 4, |j| j);
        assert!(none.is_empty());
        assert_eq!(run_many(vec![7u32], 4, |j| j + 1), vec![8]);
    }

    #[test]
    fn cluster_runs_shard_across_threads() {
        use vlog_vmpi::{app, ClusterConfig, FaultPlan, Payload, RecvSelector};
        let mk_report = |seed: u64| {
            let prog = app(|mpi| async move {
                let me = mpi.rank();
                let n = mpi.size();
                if me == 0 {
                    mpi.send_bytes(1, 0, vec![9u8]).await;
                } else {
                    let _ = mpi.recv(RecvSelector::of(0, 0)).await;
                    let _ = Payload::default();
                }
                let _ = n;
            });
            let mut cfg = ClusterConfig::new(2);
            cfg.seed = seed;
            vlog_vmpi::run_cluster(
                &cfg,
                std::sync::Arc::new(vlog_vmpi::VdummySuite),
                prog,
                &FaultPlan::none(),
            )
        };
        let seeds: Vec<u64> = (1..=6).collect();
        let seq: Vec<String> = run_many(seeds.clone(), 1, |s| format!("{:?}", mk_report(s).stats));
        let par: Vec<String> = run_many(seeds, 3, |s| format!("{:?}", mk_report(s).stats));
        assert_eq!(seq, par);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn zero_thread_override_is_rejected() {
        // Regression: VLOG_THREADS=0 must not configure a zero-worker
        // pool (which would leave every job unclaimed forever).
        assert_eq!(parse_threads_override("0"), Err(ThreadsOverrideError::Zero));
        assert_eq!(
            parse_threads_override(" 0 "),
            Err(ThreadsOverrideError::Zero)
        );
    }

    #[test]
    fn non_numeric_thread_override_is_rejected() {
        for raw in ["four", "", "4x", "-2", "1.5"] {
            assert_eq!(
                parse_threads_override(raw),
                Err(ThreadsOverrideError::NotANumber(raw.to_string())),
                "raw={raw:?}"
            );
        }
    }

    #[test]
    fn valid_thread_overrides_parse() {
        assert_eq!(parse_threads_override("1"), Ok(1));
        assert_eq!(parse_threads_override(" 16 "), Ok(16));
    }
}
