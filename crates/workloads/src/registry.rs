//! The workload registry: every benchmark configuration the harnesses
//! sweep, behind one enumeration.
//!
//! The registry is the single source of truth for "all workloads": the
//! `workloads` sweep bench runs every entry under every protocol suite,
//! and the determinism conformance suite proves each entry completes,
//! survives an injected fault and reports byte-identically across sweep
//! thread counts. Adding a workload family is: implement
//! [`Workload`], list configurations here, and every
//! downstream harness picks it up.

use std::sync::Arc;

use crate::bursty::BurstyConfig;
use crate::fft_pipe::FftPipeConfig;
use crate::halo::HaloConfig;
use crate::nas::{Class, NasBench, NasConfig};
use crate::netpipe::NetpipeConfig;
use crate::workload::Workload;

/// Every registered workload family, in registry order.
pub const FAMILIES: [&str; 5] = ["nas", "netpipe", "bursty", "halo", "fft"];

/// How big the enumerated configurations should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryScale {
    /// Small rank counts and short runs: CI conformance and smoke
    /// benches. Every family still appears.
    Smoke,
    /// The spread the `workloads` bench sweeps by default.
    Default,
    /// The scaled-regime spread of the `regimes` bench and `REPORT.md`:
    /// higher rank counts everywhere, the multi-server bursty service,
    /// larger seeded halo graphs, and the deep-tiling FFT ladder that
    /// saturates the Event Logger. Every entry also backs a hub-failure
    /// fault plan (see
    /// [`faults::hub_failure`](crate::runner::faults::hub_failure)).
    Large,
}

/// Enumerates every registered `(workload, np, params)` configuration
/// at the given scale. Every entry has checkpoints enabled so it can
/// survive fault injection, and its `np`/`valid_np` contract is
/// asserted here once for all consumers.
pub fn registry(scale: RegistryScale) -> Vec<Arc<dyn Workload>> {
    let mut v: Vec<Arc<dyn Workload>> = Vec::new();
    match scale {
        RegistryScale::Smoke => {
            v.push(Arc::new(NasConfig::new(NasBench::CG, Class::S, 4)));
            v.push(Arc::new(NasConfig::new(NasBench::FT, Class::S, 4)));
            v.push(Arc::new(
                NetpipeConfig::new(4 << 10, 0.05).with_checkpoints(),
            ));
            v.push(Arc::new(BurstyConfig::new(4, 6, 11)));
            v.push(Arc::new(HaloConfig::new(4, 6, 12)));
            v.push(Arc::new(FftPipeConfig::new(4, 3, 4)));
        }
        RegistryScale::Default => {
            for bench in [NasBench::CG, NasBench::MG, NasBench::FT, NasBench::LU] {
                v.push(Arc::new(NasConfig::new(bench, Class::S, 4)));
            }
            v.push(Arc::new(NasConfig::new(NasBench::BT, Class::S, 4)));
            v.push(Arc::new(NasConfig::new(NasBench::SP, Class::S, 4)));
            v.push(Arc::new(
                NetpipeConfig::new(64 << 10, 0.05).with_checkpoints(),
            ));
            v.push(Arc::new(BurstyConfig::new(4, 12, 11)));
            v.push(Arc::new(BurstyConfig::new(8, 8, 11)));
            v.push(Arc::new(HaloConfig::new(8, 8, 12)));
            v.push(Arc::new(HaloConfig::new(16, 4, 12)));
            // Tile sweep: monolithic FT-style vs deep pipelining.
            v.push(Arc::new(FftPipeConfig::new(8, 3, 1)));
            v.push(Arc::new(FftPipeConfig::new(8, 3, 8)));
        }
        RegistryScale::Large => {
            // NAS at 16 ranks: the paper's upper rank count.
            v.push(Arc::new(NasConfig::new(NasBench::CG, Class::S, 16)));
            v.push(Arc::new(NasConfig::new(NasBench::FT, Class::S, 16)));
            v.push(Arc::new(
                NetpipeConfig::new(64 << 10, 0.05).with_checkpoints(),
            ));
            // Multi-server bursty: clients hashed over server shards.
            v.push(Arc::new(BurstyConfig::new(16, 5, 11).with_servers(4)));
            v.push(Arc::new(BurstyConfig::new(24, 3, 11).with_servers(3)));
            // Larger seeded irregular graphs with pronounced hubs.
            v.push(Arc::new(HaloConfig::new(24, 5, 12)));
            v.push(Arc::new(HaloConfig::new(32, 4, 12)));
            // EL-saturation ladder: the same transpose at ever deeper
            // tiling — message count multiplies, payloads shrink, the
            // per-message determinant rate climbs.
            v.push(Arc::new(FftPipeConfig::new(16, 2, 1)));
            v.push(Arc::new(FftPipeConfig::new(16, 2, 8)));
            v.push(Arc::new(FftPipeConfig::new(16, 2, 32)));
        }
    }
    for w in &v {
        assert!(
            w.valid_np(w.np()),
            "registry entry {} mis-sized: np={} rejected by its own valid_np",
            w.label(),
            w.np()
        );
        assert!(
            w.hub_rank() < w.np(),
            "registry entry {} names hub rank {} outside its {} ranks",
            w.label(),
            w.hub_rank(),
            w.np()
        );
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_family_is_registered_at_every_scale() {
        for scale in [
            RegistryScale::Smoke,
            RegistryScale::Default,
            RegistryScale::Large,
        ] {
            let fams: BTreeSet<&str> = registry(scale).iter().map(|w| w.family()).collect();
            for f in FAMILIES {
                assert!(fams.contains(f), "family {f} missing at {scale:?}");
            }
        }
    }

    #[test]
    fn labels_are_unique_within_a_scale() {
        for scale in [
            RegistryScale::Smoke,
            RegistryScale::Default,
            RegistryScale::Large,
        ] {
            let entries = registry(scale);
            let labels: BTreeSet<String> = entries.iter().map(|w| w.label()).collect();
            assert_eq!(labels.len(), entries.len(), "duplicate label at {scale:?}");
        }
    }

    #[test]
    fn registered_workloads_have_sane_metadata() {
        for scale in [RegistryScale::Default, RegistryScale::Large] {
            for w in registry(scale) {
                assert!(w.np() >= 2, "{}", w.label());
                assert!(w.state_bytes() > 0, "{}", w.label());
                assert!(!w.label().is_empty());
                assert!(FAMILIES.contains(&w.family()));
                assert!(w.hub_rank() < w.np(), "{}", w.label());
            }
        }
    }

    #[test]
    fn large_scale_raises_the_rank_counts() {
        let large = registry(RegistryScale::Large);
        let max_np = large.iter().map(|w| w.np()).max().unwrap();
        assert!(max_np >= 32, "large registry tops out at {max_np} ranks");
        // The multi-server bursty shape and the deep-tiling ladder are
        // the whole point of the scale; make sure they stay registered.
        assert!(large
            .iter()
            .any(|w| w.label().contains('s') && w.family() == "bursty" && w.hub_rank() < w.np()));
        let fft_labels: Vec<String> = large
            .iter()
            .filter(|w| w.family() == "fft")
            .map(|w| w.label())
            .collect();
        assert!(
            fft_labels.iter().any(|l| l.ends_with(".t32")),
            "deep-tiling entry missing: {fft_labels:?}"
        );
    }
}
