//! The workload registry: every benchmark configuration the harnesses
//! sweep, behind one enumeration.
//!
//! The registry is the single source of truth for "all workloads": the
//! `workloads` sweep bench runs every entry under every protocol suite,
//! and the determinism conformance suite proves each entry completes,
//! survives an injected fault and reports byte-identically across sweep
//! thread counts. Adding a workload family is: implement
//! [`Workload`](crate::Workload), list configurations here, and every
//! downstream harness picks it up.

use std::sync::Arc;

use crate::bursty::BurstyConfig;
use crate::fft_pipe::FftPipeConfig;
use crate::halo::HaloConfig;
use crate::nas::{Class, NasBench, NasConfig};
use crate::netpipe::NetpipeConfig;
use crate::workload::Workload;

/// Every registered workload family, in registry order.
pub const FAMILIES: [&str; 5] = ["nas", "netpipe", "bursty", "halo", "fft"];

/// How big the enumerated configurations should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryScale {
    /// Small rank counts and short runs: CI conformance and smoke
    /// benches. Every family still appears.
    Smoke,
    /// The spread the `workloads` bench sweeps by default.
    Default,
}

/// Enumerates every registered `(workload, np, params)` configuration
/// at the given scale. Every entry has checkpoints enabled so it can
/// survive fault injection, and its `np`/`valid_np` contract is
/// asserted here once for all consumers.
pub fn registry(scale: RegistryScale) -> Vec<Arc<dyn Workload>> {
    let mut v: Vec<Arc<dyn Workload>> = Vec::new();
    match scale {
        RegistryScale::Smoke => {
            v.push(Arc::new(NasConfig::new(NasBench::CG, Class::S, 4)));
            v.push(Arc::new(NasConfig::new(NasBench::FT, Class::S, 4)));
            v.push(Arc::new(
                NetpipeConfig::new(4 << 10, 0.05).with_checkpoints(),
            ));
            v.push(Arc::new(BurstyConfig::new(4, 6, 11)));
            v.push(Arc::new(HaloConfig::new(4, 6, 12)));
            v.push(Arc::new(FftPipeConfig::new(4, 3, 4)));
        }
        RegistryScale::Default => {
            for bench in [NasBench::CG, NasBench::MG, NasBench::FT, NasBench::LU] {
                v.push(Arc::new(NasConfig::new(bench, Class::S, 4)));
            }
            v.push(Arc::new(NasConfig::new(NasBench::BT, Class::S, 4)));
            v.push(Arc::new(NasConfig::new(NasBench::SP, Class::S, 4)));
            v.push(Arc::new(
                NetpipeConfig::new(64 << 10, 0.05).with_checkpoints(),
            ));
            v.push(Arc::new(BurstyConfig::new(4, 12, 11)));
            v.push(Arc::new(BurstyConfig::new(8, 8, 11)));
            v.push(Arc::new(HaloConfig::new(8, 8, 12)));
            v.push(Arc::new(HaloConfig::new(16, 4, 12)));
            // Tile sweep: monolithic FT-style vs deep pipelining.
            v.push(Arc::new(FftPipeConfig::new(8, 3, 1)));
            v.push(Arc::new(FftPipeConfig::new(8, 3, 8)));
        }
    }
    for w in &v {
        assert!(
            w.valid_np(w.np()),
            "registry entry {} mis-sized: np={} rejected by its own valid_np",
            w.label(),
            w.np()
        );
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_family_is_registered_at_every_scale() {
        for scale in [RegistryScale::Smoke, RegistryScale::Default] {
            let fams: BTreeSet<&str> = registry(scale).iter().map(|w| w.family()).collect();
            for f in FAMILIES {
                assert!(fams.contains(f), "family {f} missing at {scale:?}");
            }
        }
    }

    #[test]
    fn labels_are_unique_within_a_scale() {
        for scale in [RegistryScale::Smoke, RegistryScale::Default] {
            let entries = registry(scale);
            let labels: BTreeSet<String> = entries.iter().map(|w| w.label()).collect();
            assert_eq!(labels.len(), entries.len(), "duplicate label at {scale:?}");
        }
    }

    #[test]
    fn registered_workloads_have_sane_metadata() {
        for w in registry(RegistryScale::Default) {
            assert!(w.np() >= 2, "{}", w.label());
            assert!(w.state_bytes() > 0, "{}", w.label());
            assert!(!w.label().is_empty());
            assert!(FAMILIES.contains(&w.family()));
        }
    }
}
