//! The workload registry: every benchmark configuration the harnesses
//! sweep, behind one enumeration.
//!
//! The registry is the single source of truth for "all workloads": the
//! `workloads` sweep bench runs every entry under every protocol suite,
//! and the determinism conformance suite proves each entry completes,
//! survives an injected fault and reports byte-identically across sweep
//! thread counts. Adding a workload family is: implement
//! [`Workload`], list configurations here, and every
//! downstream harness picks it up.

use std::sync::Arc;

use vlog_sim::NetProfile;

use crate::bursty::BurstyConfig;
use crate::fft_pipe::FftPipeConfig;
use crate::halo::HaloConfig;
use crate::nas::{Class, NasBench, NasConfig};
use crate::netpipe::NetpipeConfig;
use crate::workload::Workload;

/// Every registered workload family, in registry order.
pub const FAMILIES: [&str; 5] = ["nas", "netpipe", "bursty", "halo", "fft"];

/// How big the enumerated configurations should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryScale {
    /// Small rank counts and short runs: CI conformance and smoke
    /// benches. Every family still appears.
    Smoke,
    /// The spread the `workloads` bench sweeps by default.
    Default,
    /// The scaled-regime spread of the `regimes` bench and `REPORT.md`:
    /// higher rank counts everywhere, the multi-server bursty service,
    /// larger seeded halo graphs, and the deep-tiling FFT ladder that
    /// saturates the Event Logger. Every entry also backs a hub-failure
    /// fault plan (see
    /// [`faults::hub_failure`](crate::runner::faults::hub_failure)).
    Large,
    /// `Large` plus the aggregated-bursty ladder: the same physical
    /// cluster and message schedule modeling 1k, 10k and 100k clients
    /// behind the client ranks (see [`BurstyConfig::aggregated`]). The
    /// regime behind REPORT.md's piggyback-scaling table.
    Huge,
}

/// One point on the fabric/EL sweep grid: a named network profile
/// paired with an Event-Logger shard count. The regimes bench and the
/// determinism conformance suite run registry workloads across every
/// axis returned by [`net_axes`], so a new profile or shard count added
/// there is automatically benched, reported and determinism-checked.
#[derive(Debug, Clone)]
pub struct NetAxis {
    /// Network fabric the cluster is built on.
    pub profile: NetProfile,
    /// Event-Logger shard count (1 = the single classic EL).
    pub el_count: usize,
}

impl NetAxis {
    /// Stable label used in report columns and bench IDs, e.g.
    /// `"gigabit/el4"`.
    pub fn label(&self) -> String {
        format!("{}/el{}", self.profile.name, self.el_count)
    }
}

/// The fabric × EL-shard axes swept at the given scale.
///
/// The first entry is always the paper's baseline —
/// FastEthernet-2005 with a single EL — so sweeps that only want the
/// classic setup can take `net_axes(scale)[0]`. `Smoke` keeps CI cheap
/// with the baseline plus one distributed-EL point; `Large` adds the
/// gigabit fabrics where the EL's CPU, not the ack round-trip, becomes
/// the bottleneck.
pub fn net_axes(scale: RegistryScale) -> Vec<NetAxis> {
    let mut v = vec![NetAxis {
        profile: NetProfile::fast_ethernet_2005(),
        el_count: 1,
    }];
    match scale {
        RegistryScale::Smoke => {
            v.push(NetAxis {
                profile: NetProfile::gigabit(),
                el_count: 2,
            });
        }
        RegistryScale::Default | RegistryScale::Large | RegistryScale::Huge => {
            v.push(NetAxis {
                profile: NetProfile::fast_ethernet_2005(),
                el_count: 4,
            });
            v.push(NetAxis {
                profile: NetProfile::gigabit(),
                el_count: 1,
            });
            v.push(NetAxis {
                profile: NetProfile::gigabit(),
                el_count: 4,
            });
            v.push(NetAxis {
                profile: NetProfile::dual_gigabit(),
                el_count: 4,
            });
            v.push(NetAxis {
                profile: NetProfile::hetero_uplink(),
                el_count: 2,
            });
        }
    }
    v
}

/// Enumerates every registered `(workload, np, params)` configuration
/// at the given scale. Every entry has checkpoints enabled so it can
/// survive fault injection, and its `np`/`valid_np` contract is
/// asserted here once for all consumers.
pub fn registry(scale: RegistryScale) -> Vec<Arc<dyn Workload>> {
    let mut v: Vec<Arc<dyn Workload>> = Vec::new();
    match scale {
        RegistryScale::Smoke => {
            v.push(Arc::new(NasConfig::new(NasBench::CG, Class::S, 4)));
            v.push(Arc::new(NasConfig::new(NasBench::FT, Class::S, 4)));
            v.push(Arc::new(
                NetpipeConfig::new(4 << 10, 0.05).with_checkpoints(),
            ));
            v.push(Arc::new(BurstyConfig::new(4, 6, 11)));
            v.push(Arc::new(HaloConfig::new(4, 6, 12)));
            v.push(Arc::new(FftPipeConfig::new(4, 3, 4)));
        }
        RegistryScale::Default => {
            for bench in [NasBench::CG, NasBench::MG, NasBench::FT, NasBench::LU] {
                v.push(Arc::new(NasConfig::new(bench, Class::S, 4)));
            }
            v.push(Arc::new(NasConfig::new(NasBench::BT, Class::S, 4)));
            v.push(Arc::new(NasConfig::new(NasBench::SP, Class::S, 4)));
            v.push(Arc::new(
                NetpipeConfig::new(64 << 10, 0.05).with_checkpoints(),
            ));
            v.push(Arc::new(BurstyConfig::new(4, 12, 11)));
            v.push(Arc::new(BurstyConfig::new(8, 8, 11)));
            v.push(Arc::new(HaloConfig::new(8, 8, 12)));
            v.push(Arc::new(HaloConfig::new(16, 4, 12)));
            // Tile sweep: monolithic FT-style vs deep pipelining.
            v.push(Arc::new(FftPipeConfig::new(8, 3, 1)));
            v.push(Arc::new(FftPipeConfig::new(8, 3, 8)));
        }
        RegistryScale::Large | RegistryScale::Huge => {
            // NAS at 16 ranks: the paper's upper rank count.
            v.push(Arc::new(NasConfig::new(NasBench::CG, Class::S, 16)));
            v.push(Arc::new(NasConfig::new(NasBench::FT, Class::S, 16)));
            v.push(Arc::new(
                NetpipeConfig::new(64 << 10, 0.05).with_checkpoints(),
            ));
            // Multi-server bursty: clients hashed over server shards.
            v.push(Arc::new(BurstyConfig::new(16, 5, 11).with_servers(4)));
            v.push(Arc::new(BurstyConfig::new(24, 3, 11).with_servers(3)));
            // Larger seeded irregular graphs with pronounced hubs.
            v.push(Arc::new(HaloConfig::new(24, 5, 12)));
            v.push(Arc::new(HaloConfig::new(32, 4, 12)));
            // EL-saturation ladder: the same transpose at ever deeper
            // tiling — message count multiplies, payloads shrink, the
            // per-message determinant rate climbs.
            v.push(Arc::new(FftPipeConfig::new(16, 2, 1)));
            v.push(Arc::new(FftPipeConfig::new(16, 2, 8)));
            v.push(Arc::new(FftPipeConfig::new(16, 2, 32)));
            if scale == RegistryScale::Huge {
                // The aggregated-client ladder: identical 24-rank wire
                // schedule, modeled population climbing 1k -> 100k.
                for per_rank in [48, 480, 4800] {
                    v.push(Arc::new(
                        BurstyConfig::new(24, 3, 11)
                            .with_servers(3)
                            .aggregated(per_rank),
                    ));
                }
            }
        }
    }
    for w in &v {
        assert!(
            w.valid_np(w.np()),
            "registry entry {} mis-sized: np={} rejected by its own valid_np",
            w.label(),
            w.np()
        );
        assert!(
            w.hub_rank() < w.np(),
            "registry entry {} names hub rank {} outside its {} ranks",
            w.label(),
            w.hub_rank(),
            w.np()
        );
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_family_is_registered_at_every_scale() {
        for scale in [
            RegistryScale::Smoke,
            RegistryScale::Default,
            RegistryScale::Large,
            RegistryScale::Huge,
        ] {
            let fams: BTreeSet<&str> = registry(scale).iter().map(|w| w.family()).collect();
            for f in FAMILIES {
                assert!(fams.contains(f), "family {f} missing at {scale:?}");
            }
        }
    }

    #[test]
    fn labels_are_unique_within_a_scale() {
        for scale in [
            RegistryScale::Smoke,
            RegistryScale::Default,
            RegistryScale::Large,
            RegistryScale::Huge,
        ] {
            let entries = registry(scale);
            let labels: BTreeSet<String> = entries.iter().map(|w| w.label()).collect();
            assert_eq!(labels.len(), entries.len(), "duplicate label at {scale:?}");
        }
    }

    #[test]
    fn registered_workloads_have_sane_metadata() {
        for scale in [
            RegistryScale::Default,
            RegistryScale::Large,
            RegistryScale::Huge,
        ] {
            for w in registry(scale) {
                assert!(w.np() >= 2, "{}", w.label());
                assert!(w.state_bytes() > 0, "{}", w.label());
                assert!(!w.label().is_empty());
                assert!(FAMILIES.contains(&w.family()));
                assert!(w.hub_rank() < w.np(), "{}", w.label());
            }
        }
    }

    #[test]
    fn large_scale_raises_the_rank_counts() {
        let large = registry(RegistryScale::Large);
        let max_np = large.iter().map(|w| w.np()).max().unwrap();
        assert!(max_np >= 32, "large registry tops out at {max_np} ranks");
        // The multi-server bursty shape and the deep-tiling ladder are
        // the whole point of the scale; make sure they stay registered.
        assert!(large
            .iter()
            .any(|w| w.label().contains('s') && w.family() == "bursty" && w.hub_rank() < w.np()));
        let fft_labels: Vec<String> = large
            .iter()
            .filter(|w| w.family() == "fft")
            .map(|w| w.label())
            .collect();
        assert!(
            fft_labels.iter().any(|l| l.ends_with(".t32")),
            "deep-tiling entry missing: {fft_labels:?}"
        );
    }

    #[test]
    fn huge_scale_reaches_six_figure_modeled_populations() {
        let huge = registry(RegistryScale::Huge);
        let large = registry(RegistryScale::Large);
        // Huge strictly extends Large with the aggregated ladder.
        let large_labels: BTreeSet<String> = large.iter().map(|w| w.label()).collect();
        for w in &large {
            assert!(large_labels.contains(&w.label()));
        }
        let agg_labels: Vec<String> = huge
            .iter()
            .map(|w| w.label())
            .filter(|l| l.contains(".agg"))
            .collect();
        assert_eq!(
            agg_labels,
            vec![
                "1008c.3s.x3.agg48",
                "10080c.3s.x3.agg480",
                "100800c.3s.x3.agg4800"
            ],
            "aggregated ladder drifted"
        );
        assert_eq!(huge.len(), large.len() + agg_labels.len());
        // The whole ladder runs the same physical cluster size.
        assert!(huge
            .iter()
            .filter(|w| w.label().contains(".agg"))
            .all(|w| w.np() == 24));
    }

    #[test]
    fn net_axes_lead_with_the_paper_baseline_and_stay_unique() {
        for scale in [
            RegistryScale::Smoke,
            RegistryScale::Default,
            RegistryScale::Large,
            RegistryScale::Huge,
        ] {
            let axes = net_axes(scale);
            assert_eq!(axes[0].profile.name, "fast-ethernet-2005");
            assert_eq!(axes[0].el_count, 1, "baseline axis must be the classic EL");
            let labels: BTreeSet<String> = axes.iter().map(|a| a.label()).collect();
            assert_eq!(labels.len(), axes.len(), "duplicate net axis at {scale:?}");
            for a in &axes {
                assert!(a.el_count >= 1 && a.el_count <= 8, "{}", a.label());
                assert!(
                    NetProfile::by_name(a.profile.name).is_some(),
                    "{}",
                    a.label()
                );
            }
        }
        // Large must include a faster-than-baseline fabric so the EL
        // service time can become the bottleneck (acceptance criterion).
        assert!(net_axes(RegistryScale::Large)
            .iter()
            .any(|a| a.profile.name == "gigabit" && a.el_count == 1));
    }
}
