//! The workload abstraction every benchmark is an instance of.
//!
//! A [`Workload`] describes one runnable application configuration —
//! rank count, iteration/traffic parameters, checkpoint state size and
//! flop accounting — and builds its program on demand. The generic
//! [`run_workload`] runner executes any workload under any protocol
//! suite and extracts the shared metric set ([`WorkloadRun`]): virtual
//! makespan, Mflop/s where defined, piggyback share, piggyback
//! send/receive management time, and the message-count/size histogram.
//!
//! The point of the indirection is that nothing downstream — figure
//! harnesses, the determinism suite, the `workloads` sweep bench —
//! names a concrete benchmark: they iterate the
//! [registry](crate::registry()) and treat NAS, NetPIPE, the bursty
//! request/reply service, the irregular halo exchange and the pipelined
//! FFT transpose identically.

use std::sync::Arc;

use vlog_sim::{MsgHistogram, SimDuration};
use vlog_vmpi::{
    AppSpec, ClusterConfig, ClusterRun, FaultPlan, Mpi, Payload, PayloadArena, RunReport, Suite,
};

/// One runnable benchmark configuration.
///
/// Implementations are cheap, immutable descriptions: [`program`]
/// builds a fresh [`AppSpec`] per call, so one workload value can back
/// many runs (including the restart re-launches inside a single run).
///
/// [`program`]: Workload::program
pub trait Workload: Send + Sync {
    /// Family slug shared by every configuration of one benchmark kind
    /// (`"nas"`, `"netpipe"`, `"bursty"`, `"halo"`, `"fft"`). Grouping
    /// key of `BENCH_workloads.json`.
    fn family(&self) -> &'static str;

    /// Human-readable label including the distinguishing parameters,
    /// e.g. `"CG.A/8"` or `"bursty/4c x48"`.
    fn label(&self) -> String;

    /// Rank count this configuration runs on.
    fn np(&self) -> usize;

    /// Whether the family's geometry rules admit `np` ranks.
    fn valid_np(&self, np: usize) -> bool;

    /// Per-rank checkpoint state size (bytes).
    fn state_bytes(&self) -> u64;

    /// Total useful floating-point work the run represents. `0.0` means
    /// Mflop/s is not a meaningful metric (NetPIPE measures latency).
    fn total_flops(&self) -> f64;

    /// The rank whose failure stresses recovery hardest — the target of
    /// hub-failure fault plans (see
    /// [`faults::hub_failure`](crate::runner::faults::hub_failure)).
    ///
    /// Defaults to rank 0; families with a structurally load-bearing
    /// rank override it (the halo exchange returns its highest-degree
    /// rank, the bursty service its busiest server).
    fn hub_rank(&self) -> usize {
        0
    }

    /// Builds the runnable program (and, optionally, a post-run metric
    /// probe). Called once per cluster run, so any harness-side
    /// collector the program writes into is private to that run —
    /// one workload value can safely back many concurrent runs.
    fn program(&self) -> WorkloadProgram;
}

/// Post-run probe extracting workload-specific scalar metrics.
pub type MetricProbe = Box<dyn FnOnce(&RunReport) -> Vec<(&'static str, f64)> + Send>;

/// A built program plus an optional metric probe reading the collectors
/// the program's ranks write into (e.g. NetPIPE's measured points).
pub struct WorkloadProgram {
    /// The runnable per-rank program.
    pub spec: AppSpec,
    probe: Option<MetricProbe>,
}

impl WorkloadProgram {
    /// A program with no workload-specific metrics.
    pub fn plain(spec: AppSpec) -> Self {
        WorkloadProgram { spec, probe: None }
    }

    /// A program whose run is followed by `probe`.
    pub fn with_probe(spec: AppSpec, probe: MetricProbe) -> Self {
        WorkloadProgram {
            spec,
            probe: Some(probe),
        }
    }
}

impl From<AppSpec> for WorkloadProgram {
    fn from(spec: AppSpec) -> Self {
        WorkloadProgram::plain(spec)
    }
}

/// Result of one workload run: the cluster report plus the shared
/// metric set every harness consumes.
pub struct WorkloadRun {
    /// `Workload::family` of the workload that ran.
    pub family: &'static str,
    /// `Workload::label` of the workload that ran.
    pub label: String,
    /// The full cluster report (makespan, stats, per-rank protocol
    /// statistics, completion flag).
    pub report: RunReport,
    /// Flop accounting for the Mflop/s metric (0 when undefined).
    pub total_flops: f64,
    /// Workload-specific extras from the program's metric probe.
    pub extra: Vec<(&'static str, f64)>,
}

impl WorkloadRun {
    /// Total Mflop/s (Megaflops) of the run — the Figure 9 metric.
    ///
    /// Returns 0.0 when the workload defines no flop count or the run
    /// had zero virtual makespan: an empty run did zero useful work, it
    /// did not do infinite work (the unguarded division used to return
    /// inf, or NaN for 0/0).
    pub fn mflops(&self) -> f64 {
        let secs = self.report.makespan.as_secs_f64();
        if secs == 0.0 || self.total_flops == 0.0 {
            0.0
        } else {
            self.total_flops / secs / 1e6
        }
    }

    /// Piggybacked bytes as % of total exchanged bytes (Figure 7).
    pub fn piggyback_percent(&self) -> f64 {
        self.report.piggyback_percent()
    }

    /// Summed piggyback-management times, split (send, receive)
    /// (Figure 8).
    pub fn pb_times(&self) -> (SimDuration, SimDuration) {
        self.report.pb_times()
    }

    /// Message-count histogram over power-of-two wire-size buckets.
    pub fn msg_histogram(&self) -> &MsgHistogram {
        self.report.msg_histogram()
    }
}

/// Runs a workload under a protocol suite and extracts its metrics.
pub fn run_workload(
    workload: &dyn Workload,
    cluster: &ClusterConfig,
    suite: Arc<dyn Suite>,
    faults: &FaultPlan,
) -> WorkloadRun {
    assert_eq!(
        cluster.ranks,
        workload.np(),
        "cluster has {} ranks but workload {} wants {}",
        cluster.ranks,
        workload.label(),
        workload.np()
    );
    let WorkloadProgram { spec, probe } = workload.program();
    let report = ClusterRun::build(cluster, suite, spec, faults).run();
    let extra = probe.map(|p| p(&report)).unwrap_or_default();
    WorkloadRun {
        family: workload.family(),
        label: workload.label(),
        report,
        total_flops: workload.total_flops(),
        extra,
    }
}

/// Shared helper: the `u64` cursor a checkpointed incarnation restored,
/// or 0 on a fresh start. Every workload that checkpoints stores its
/// progress cursor (iteration, round, served count...) this way.
pub(crate) fn restored_u64(mpi: &Mpi) -> u64 {
    match mpi.restored() {
        Some(bytes) if bytes.len() >= 8 => u64::from_le_bytes(bytes[..8].try_into().unwrap()),
        _ => 0,
    }
}

/// Shared helper: a checkpoint payload carrying cursor `it`, padded to
/// the workload's per-rank state size.
///
/// Cursor bodies repeat heavily — every rank offers the same iteration
/// cursor, and replayed incarnations rebuild past cursors — so the body
/// bytes are interned in a per-worker [`PayloadArena`]: one allocation
/// per distinct cursor per worker thread, O(1) shared clones after that.
pub(crate) fn ckpt_payload(state_bytes: u64, it: u64) -> Payload {
    thread_local! {
        static ARENA: std::cell::RefCell<PayloadArena> =
            std::cell::RefCell::new(PayloadArena::new());
    }
    ARENA.with(|arena| {
        arena
            .borrow_mut()
            .payload(&it.to_le_bytes(), state_bytes.saturating_sub(8))
    })
}

/// Deterministic per-`(seed, a, b)` RNG seed (SplitMix64-style mixing;
/// the workloads derive one fresh RNG per (rank, round) so traffic
/// replayed after a restart is identical to the pre-crash incarnation).
pub(crate) fn mix_seed(seed: u64, a: u64, b: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlog_sim::Stats;

    fn dummy_run(makespan: SimDuration, flops: f64) -> WorkloadRun {
        WorkloadRun {
            family: "test",
            label: "test".into(),
            report: RunReport {
                suite: "none".into(),
                makespan,
                completed: true,
                stats: Stats::new(),
                rank_stats: Vec::new(),
                events: 0,
                liveness: None,
            },
            total_flops: flops,
            extra: Vec::new(),
        }
    }

    #[test]
    fn ckpt_payload_accounting_is_unchanged_by_the_arena() {
        // Wire accounting: the cursor body is 8 bytes, the pad tops the
        // payload up to the declared state size.
        assert_eq!(ckpt_payload(1 << 20, 3).len(), 1 << 20);
        assert_eq!(ckpt_payload(1 << 20, 3).data.len(), 8);
        // state_bytes below the cursor width never grows the payload
        // past the cursor itself (pad saturates at zero).
        assert_eq!(ckpt_payload(0, 3).len(), 8);
        assert_eq!(ckpt_payload(0, 3).pad, 0);
        // Repeated cursors share one interned backing (the zero-copy
        // path): same data pointer, not merely equal bytes.
        let a = ckpt_payload(4096, 42);
        let b = ckpt_payload(1 << 30, 42);
        assert_eq!(a.data.as_ptr(), b.data.as_ptr());
        // The restored-cursor round trip still decodes.
        assert_eq!(u64::from_le_bytes(a.data[..8].try_into().unwrap()), 42u64);
    }

    #[test]
    fn mflops_is_zero_not_nan_for_empty_runs() {
        // Regression: flops / 0s used to return inf (and NaN for the
        // doubly-degenerate 0 flops / 0 s case).
        let r = dummy_run(SimDuration::ZERO, 1e9);
        assert_eq!(r.mflops(), 0.0);
        let r = dummy_run(SimDuration::ZERO, 0.0);
        assert_eq!(r.mflops(), 0.0);
        let r = dummy_run(SimDuration::from_secs(2), 0.0);
        assert_eq!(r.mflops(), 0.0);
    }

    #[test]
    fn mflops_matches_the_figure9_formula() {
        let r = dummy_run(SimDuration::from_secs(2), 4e9);
        assert!((r.mflops() - 2000.0).abs() < 1e-9);
    }
}
