//! NAS Parallel Benchmark communication skeletons.
//!
//! The paper evaluates its protocols on NPB-2 (Bailey et al., NAS-95-020):
//! CG, MG, FT, LU, BT and SP. We reproduce each benchmark's
//! *communication skeleton*: the exact process grids, per-iteration
//! message patterns, message sizes derived from the class geometry, and
//! per-rank flop charges taken from the published operation counts. The
//! numerics themselves are not computed — protocol behaviour depends on
//! the event rate, message sizes and communication/computation ratio,
//! all of which the skeletons reproduce (see DESIGN.md §2 for the
//! substitution argument). The paper's own characterization (§V-A) is the
//! reference: *"CG presents heavy point-to-point latency driven
//! communications; BT presents large point-to-point messages, and
//! communications overlapped by computation; LU tests large number of
//! large \[sic\] messages communications, FT presents all-to-all
//! communication pattern."*
//!
//! Every skeleton:
//! * offers a checkpoint at each outer-iteration boundary with a state
//!   payload sized like the benchmark's per-rank memory footprint,
//! * fast-forwards to the checkpointed iteration on restart,
//! * supports *iteration scaling* (running a documented fraction of the
//!   full iteration count) so discrete-event runs stay tractable; flop
//!   accounting scales along.

mod bt;
mod cg;
mod ft;
mod lu;
mod mg;
mod sp;

use vlog_vmpi::{AppSpec, Mpi, Payload};

use crate::workload::{Workload, WorkloadProgram};

/// NPB problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Tiny (sanity tests only).
    S,
    /// The paper's measured class (Figures 7-9).
    A,
    /// The largest class the paper cites.
    B,
}

/// The benchmarks the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NasBench {
    /// Conjugate gradient: irregular sparse sendrecv pairs.
    CG,
    /// Multigrid: nearest-neighbor V-cycles over a 3D grid.
    MG,
    /// 3D FFT: global transposes (all-to-all).
    FT,
    /// LU factorization: fine-grained pipelined wavefronts.
    LU,
    /// Block tridiagonal solver on a square process grid.
    BT,
    /// Scalar pentadiagonal solver on a square process grid.
    SP,
}

impl NasBench {
    /// The kernel's canonical two-letter name.
    pub fn label(&self) -> &'static str {
        match self {
            NasBench::CG => "CG",
            NasBench::MG => "MG",
            NasBench::FT => "FT",
            NasBench::LU => "LU",
            NasBench::BT => "BT",
            NasBench::SP => "SP",
        }
    }

    /// Rank counts the benchmark supports (NPB-2 rules: powers of two,
    /// except BT/SP which need square counts).
    pub fn valid_np(&self, np: usize) -> bool {
        match self {
            NasBench::BT | NasBench::SP => {
                let d = (np as f64).sqrt().round() as usize;
                d * d == np
            }
            _ => np.is_power_of_two(),
        }
    }
}

/// One benchmark instance.
#[derive(Debug, Clone)]
pub struct NasConfig {
    /// Which NPB kernel to run.
    pub bench: NasBench,
    /// Problem class (grid size, iteration count, flop count).
    pub class: Class,
    /// Rank count (must satisfy the kernel's geometry rules).
    pub np: usize,
    /// Fraction of the full iteration count to execute (documented
    /// scaling; flops scale along). 1.0 = the published iteration count.
    pub iter_fraction: f64,
    /// Offer checkpoints at outer-iteration boundaries.
    pub checkpoints: bool,
}

impl NasConfig {
    /// A kernel instance at its default iteration fraction.
    /// Panics when `np` violates the kernel's geometry rules.
    pub fn new(bench: NasBench, class: Class, np: usize) -> Self {
        assert!(bench.valid_np(np), "{bench:?} cannot run on {np} ranks");
        NasConfig {
            bench,
            class,
            np,
            iter_fraction: default_fraction(bench),
            checkpoints: true,
        }
    }

    /// Runs the full published iteration count.
    pub fn full(mut self) -> Self {
        self.iter_fraction = 1.0;
        self
    }

    /// Sets the iteration fraction. Panics on NaN, zero or negative
    /// fractions — such a value used to be accepted silently and made
    /// the run "complete" after zero (or a nonsensical number of)
    /// iterations, which poisons every derived metric downstream.
    pub fn fraction(mut self, f: f64) -> Self {
        assert!(
            f.is_finite() && f > 0.0,
            "{:?} iteration fraction must be a positive finite number, got {f}",
            self.bench
        );
        self.iter_fraction = f;
        self
    }

    /// Outer iterations actually executed. Fractions above 1.0 repeat the
    /// benchmark (used by the Figure 1 endurance runs, which need several
    /// virtual minutes of execution); flop accounting scales along.
    pub fn iters(&self) -> u64 {
        let full = full_iters(self.bench, self.class);
        ((full as f64 * self.iter_fraction).round() as u64).max(1)
    }

    /// Total flops the executed portion represents (the Figure 9
    /// numerator).
    pub fn total_flops(&self) -> f64 {
        full_flops(self.bench, self.class) * self.iters() as f64
            / full_iters(self.bench, self.class) as f64
    }

    /// Per-rank, per-outer-iteration flop charge.
    pub fn flops_per_rank_iter(&self) -> f64 {
        full_flops(self.bench, self.class)
            / (full_iters(self.bench, self.class) as f64 * self.np as f64)
    }

    /// Per-rank checkpoint state size (bytes): the benchmark's memory
    /// footprint divided across ranks.
    pub fn state_bytes(&self) -> u64 {
        mem_bytes(self.bench, self.class) / self.np as u64
    }

    /// Builds the runnable program.
    pub fn program(&self) -> AppSpec {
        let cfg = self.clone();
        match self.bench {
            NasBench::CG => cg::program(cfg),
            NasBench::MG => mg::program(cfg),
            NasBench::FT => ft::program(cfg),
            NasBench::LU => lu::program(cfg),
            NasBench::BT => bt::program(cfg),
            NasBench::SP => sp::program(cfg),
        }
    }
}

impl Workload for NasConfig {
    fn family(&self) -> &'static str {
        "nas"
    }

    fn label(&self) -> String {
        format!("{}.{:?}/{}", self.bench.label(), self.class, self.np)
    }

    fn np(&self) -> usize {
        self.np
    }

    fn valid_np(&self, np: usize) -> bool {
        self.bench.valid_np(np)
    }

    fn state_bytes(&self) -> u64 {
        NasConfig::state_bytes(self)
    }

    fn total_flops(&self) -> f64 {
        NasConfig::total_flops(self)
    }

    fn program(&self) -> WorkloadProgram {
        NasConfig::program(self).into()
    }
}

/// Published outer-iteration counts (NPB-2).
pub fn full_iters(bench: NasBench, class: Class) -> u64 {
    match (bench, class) {
        (NasBench::CG, Class::S) => 3,
        (NasBench::CG, Class::A) => 15,
        (NasBench::CG, Class::B) => 75,
        (NasBench::MG, Class::S) => 2,
        (NasBench::MG, Class::A) => 4,
        (NasBench::MG, Class::B) => 20,
        (NasBench::FT, Class::S) => 2,
        (NasBench::FT, Class::A) => 6,
        (NasBench::FT, Class::B) => 20,
        (NasBench::LU, Class::S) => 10,
        (NasBench::LU, _) => 250,
        (NasBench::BT, Class::S) => 10,
        (NasBench::BT, _) => 200,
        (NasBench::SP, Class::S) => 10,
        (NasBench::SP, _) => 400,
    }
}

/// Approximate total operation counts (flops) of the full benchmark,
/// from the NPB reference outputs.
pub fn full_flops(bench: NasBench, class: Class) -> f64 {
    match (bench, class) {
        (NasBench::CG, Class::S) => 0.07e9,
        (NasBench::CG, Class::A) => 1.508e9,
        (NasBench::CG, Class::B) => 54.89e9,
        (NasBench::MG, Class::S) => 0.02e9,
        (NasBench::MG, Class::A) => 3.625e9,
        (NasBench::MG, Class::B) => 18.12e9,
        (NasBench::FT, Class::S) => 0.2e9,
        (NasBench::FT, Class::A) => 7.09e9,
        (NasBench::FT, Class::B) => 92.2e9,
        (NasBench::LU, Class::S) => 0.5e9,
        (NasBench::LU, Class::A) => 119.28e9,
        (NasBench::LU, Class::B) => 482.6e9,
        (NasBench::BT, Class::S) => 1.0e9,
        (NasBench::BT, Class::A) => 168.3e9,
        (NasBench::BT, Class::B) => 721.5e9,
        (NasBench::SP, Class::S) => 0.8e9,
        (NasBench::SP, Class::A) => 102.0e9,
        (NasBench::SP, Class::B) => 447.1e9,
    }
}

/// Approximate total resident memory of the benchmark (checkpoint image
/// sizing).
pub fn mem_bytes(bench: NasBench, class: Class) -> u64 {
    const MB: u64 = 1 << 20;
    match (bench, class) {
        (NasBench::CG, Class::S) => 4 * MB,
        (NasBench::CG, Class::A) => 60 * MB,
        (NasBench::CG, Class::B) => 400 * MB,
        (NasBench::MG, Class::S) => 8 * MB,
        (NasBench::MG, Class::A) => 450 * MB,
        (NasBench::MG, Class::B) => 450 * MB,
        (NasBench::FT, Class::S) => 8 * MB,
        (NasBench::FT, Class::A) => 320 * MB,
        (NasBench::FT, Class::B) => 1280 * MB,
        (NasBench::LU, Class::S) => 8 * MB,
        (NasBench::LU, Class::A) => 170 * MB,
        (NasBench::LU, Class::B) => 680 * MB,
        (NasBench::BT, Class::S) => 16 * MB,
        (NasBench::BT, Class::A) => 310 * MB,
        (NasBench::BT, Class::B) => 1240 * MB,
        (NasBench::SP, Class::S) => 12 * MB,
        (NasBench::SP, Class::A) => 250 * MB,
        (NasBench::SP, Class::B) => 1000 * MB,
    }
}

/// Grid extent per class for the structured-grid benchmarks.
pub fn grid_n(bench: NasBench, class: Class) -> u64 {
    match (bench, class) {
        (NasBench::LU | NasBench::BT | NasBench::SP, Class::S) => 12,
        (NasBench::LU | NasBench::BT, Class::A) => 64,
        (NasBench::SP, Class::A) => 64,
        (NasBench::LU | NasBench::BT, Class::B) => 102,
        (NasBench::SP, Class::B) => 102,
        (NasBench::MG, Class::S) => 32,
        (NasBench::MG, _) => 256,
        (NasBench::FT, Class::S) => 64,
        (NasBench::FT, Class::A) => 256,
        (NasBench::FT, Class::B) => 512,
        (NasBench::CG, Class::S) => 1400,
        (NasBench::CG, Class::A) => 14000,
        (NasBench::CG, Class::B) => 75000,
    }
}

/// Default iteration fraction keeping DES runs tractable; every figure
/// harness documents the fraction it uses and supports `--full`.
fn default_fraction(bench: NasBench) -> f64 {
    match bench {
        NasBench::CG => 1.0,  // 15 outer iterations are cheap
        NasBench::MG => 1.0,  // 4 iterations
        NasBench::FT => 1.0,  // 6 iterations
        NasBench::LU => 0.1,  // 25 of 250
        NasBench::BT => 0.15, // 30 of 200
        NasBench::SP => 0.1,  // 40 of 400
    }
}

/// Shared helper: read the restored iteration or 0.
pub(crate) fn restored_iter(mpi: &Mpi) -> u64 {
    crate::workload::restored_u64(mpi)
}

/// Shared helper: the checkpoint payload for iteration `it`.
pub(crate) fn state_payload(cfg: &NasConfig, it: u64) -> Payload {
    crate::workload::ckpt_payload(cfg.state_bytes(), it)
}

/// Integer log2 for power-of-two rank counts.
pub(crate) fn ilog2(n: usize) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

/// NPB-style near-square 2D factorization of a power-of-two `np`:
/// `(rows, cols)` with `cols >= rows`, both powers of two.
pub(crate) fn pow2_grid(np: usize) -> (usize, usize) {
    let k = ilog2(np);
    let rows = 1usize << (k / 2);
    let cols = np / rows;
    (rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_factor_correctly() {
        assert_eq!(pow2_grid(1), (1, 1));
        assert_eq!(pow2_grid(2), (1, 2));
        assert_eq!(pow2_grid(4), (2, 2));
        assert_eq!(pow2_grid(8), (2, 4));
        assert_eq!(pow2_grid(16), (4, 4));
    }

    #[test]
    fn np_validity_rules() {
        assert!(NasBench::BT.valid_np(9));
        assert!(NasBench::BT.valid_np(25));
        assert!(!NasBench::BT.valid_np(8));
        assert!(NasBench::CG.valid_np(8));
        assert!(!NasBench::CG.valid_np(6));
    }

    #[test]
    fn iteration_scaling_scales_flops() {
        let full = NasConfig::new(NasBench::LU, Class::A, 4).full();
        let tenth = NasConfig::new(NasBench::LU, Class::A, 4).fraction(0.1);
        assert_eq!(full.iters(), 250);
        assert_eq!(tenth.iters(), 25);
        let ratio = tenth.total_flops() / full.total_flops();
        assert!((ratio - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive finite number")]
    fn zero_fraction_is_rejected() {
        let _ = NasConfig::new(NasBench::CG, Class::S, 4).fraction(0.0);
    }

    #[test]
    #[should_panic(expected = "positive finite number")]
    fn negative_fraction_is_rejected() {
        let _ = NasConfig::new(NasBench::CG, Class::S, 4).fraction(-0.5);
    }

    #[test]
    #[should_panic(expected = "positive finite number")]
    fn nan_fraction_is_rejected() {
        let _ = NasConfig::new(NasBench::CG, Class::S, 4).fraction(f64::NAN);
    }

    #[test]
    fn workload_trait_mirrors_the_config() {
        use crate::workload::Workload;
        let cfg = NasConfig::new(NasBench::BT, Class::A, 9);
        assert_eq!(cfg.family(), "nas");
        assert_eq!(Workload::label(&cfg), "BT.A/9");
        assert_eq!(Workload::np(&cfg), 9);
        assert!(Workload::valid_np(&cfg, 16));
        assert!(!Workload::valid_np(&cfg, 8));
        assert_eq!(Workload::state_bytes(&cfg), cfg.state_bytes());
        assert!(Workload::total_flops(&cfg) > 0.0);
    }

    #[test]
    fn state_bytes_shrink_with_ranks() {
        let a = NasConfig::new(NasBench::BT, Class::A, 4).state_bytes();
        let b = NasConfig::new(NasBench::BT, Class::A, 16).state_bytes();
        assert_eq!(a, 4 * b);
        assert!(b > 10 << 20, "BT/16 rank state should be >10MB");
    }
}
