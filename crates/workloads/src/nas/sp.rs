//! SP — scalar-pentadiagonal solver.
//!
//! Same square-grid structure as BT but twice the iterations and thinner
//! per-face payloads (scalar rather than 5×5 block systems), giving a
//! higher message rate with smaller messages.

use vlog_vmpi::AppSpec;

use super::{bt::program_grid, NasBench, NasConfig};

const TAG_FACES: u32 = 40;
const TAG_XSOLVE: u32 = 41;
const TAG_YSOLVE: u32 = 42;

pub fn program(cfg: NasConfig) -> AppSpec {
    program_grid(cfg, NasBench::SP, 24, TAG_FACES, TAG_XSOLVE, TAG_YSOLVE)
}
