//! MG — multigrid V-cycles.
//!
//! NPB-2 MG performs V-cycles over a hierarchy of grids: boundary
//! exchanges shrink geometrically with each coarser level, producing a
//! characteristic mix of medium and tiny messages.

use vlog_vmpi::{app, AppSpec, Payload, RecvSelector};

use super::{grid_n, ilog2, restored_iter, state_payload, NasBench, NasConfig};

const TAG_MG: u32 = 50;

pub fn program(cfg: NasConfig) -> AppSpec {
    app(move |mpi| {
        let cfg = cfg.clone();
        async move {
            let np = mpi.size();
            let me = mpi.rank();
            let n = grid_n(NasBench::MG, cfg.class);
            let top = ilog2(n as usize);
            let dims = ilog2(np).min(3);
            // Geometric flop distribution: level l carries ~8^l work.
            let total_weight: f64 = (2..=top).map(|l| 8f64.powi(l as i32)).sum();
            let flops_iter = cfg.flops_per_rank_iter();
            let start = restored_iter(&mpi);
            for it in start..cfg.iters() {
                if cfg.checkpoints {
                    mpi.checkpoint_point(state_payload(&cfg, it)).await;
                }
                // Down the V (restriction) then back up (prolongation).
                let down = (2..=top).rev();
                let up = 2..=top;
                for l in down.chain(up) {
                    let face = (8u64 * (1 << l) * (1 << l) / np as u64).max(8);
                    for dim in 0..dims {
                        let partner = me ^ (1 << dim);
                        if partner < np {
                            mpi.sendrecv(
                                partner,
                                TAG_MG + dim,
                                Payload::synthetic(face),
                                RecvSelector::of(partner, TAG_MG + dim),
                            )
                            .await;
                        }
                    }
                    let w = 8f64.powi(l as i32) / total_weight / 2.0;
                    mpi.compute(flops_iter * w).await;
                }
            }
        }
    })
}
