//! LU — SSOR solver (paper: *"large number of messages"*; the benchmark
//! that stresses the Event Logger hardest).
//!
//! NPB-2 LU decomposes the `n³` grid over a 2D power-of-two processor
//! grid and, per SSOR iteration, performs two pipelined wavefront sweeps
//! over the `n` z-planes. Every plane exchanges one tiny 5-variable
//! boundary row/column with each downstream neighbour — thousands of
//! sub-kilobyte messages per iteration, which is exactly the regime where
//! piggyback management dominates (Figures 7 and 8).

use vlog_vmpi::{app, AppSpec, Payload, RecvSelector};

use super::{grid_n, pow2_grid, restored_iter, state_payload, NasBench, NasConfig};

const TAG_SWEEP_LO: u32 = 20;
const TAG_SWEEP_HI: u32 = 21;
const TAG_RHS: u32 = 22;

pub fn program(cfg: NasConfig) -> AppSpec {
    app(move |mpi| {
        let cfg = cfg.clone();
        async move {
            let np = mpi.size();
            let me = mpi.rank();
            let (px, py) = pow2_grid(np);
            let row = me / py;
            let col = me % py;
            let n = grid_n(NasBench::LU, cfg.class);
            let nz = n; // one wavefront step per z-plane

            // 5 variables × 8 bytes × local edge length.
            let plane_bytes = (40 * n / px as u64).max(40);
            let face_bytes = (40 * n * n / (px * py) as u64).max(40);
            let north = (row > 0).then(|| (row - 1) * py + col);
            let south = (row + 1 < px).then(|| (row + 1) * py + col);
            let west = (col > 0).then(|| row * py + col - 1);
            let east = (col + 1 < py).then(|| row * py + col + 1);
            // Sweeps dominate the flop count; boundary work is folded in.
            let flops_plane = cfg.flops_per_rank_iter() / (2.0 * nz as f64);
            let start = restored_iter(&mpi);
            for it in start..cfg.iters() {
                if cfg.checkpoints {
                    mpi.checkpoint_point(state_payload(&cfg, it)).await;
                }
                // Lower-triangular sweep: wavefront from the north-west.
                for _k in 0..nz {
                    if let Some(p) = north {
                        mpi.recv(RecvSelector::of(p, TAG_SWEEP_LO)).await;
                    }
                    if let Some(p) = west {
                        mpi.recv(RecvSelector::of(p, TAG_SWEEP_LO)).await;
                    }
                    mpi.compute(flops_plane).await;
                    if let Some(p) = south {
                        mpi.send(p, TAG_SWEEP_LO, Payload::synthetic(plane_bytes))
                            .await;
                    }
                    if let Some(p) = east {
                        mpi.send(p, TAG_SWEEP_LO, Payload::synthetic(plane_bytes))
                            .await;
                    }
                }
                // Upper-triangular sweep: wavefront from the south-east.
                for _k in 0..nz {
                    if let Some(p) = south {
                        mpi.recv(RecvSelector::of(p, TAG_SWEEP_HI)).await;
                    }
                    if let Some(p) = east {
                        mpi.recv(RecvSelector::of(p, TAG_SWEEP_HI)).await;
                    }
                    mpi.compute(flops_plane).await;
                    if let Some(p) = north {
                        mpi.send(p, TAG_SWEEP_HI, Payload::synthetic(plane_bytes))
                            .await;
                    }
                    if let Some(p) = west {
                        mpi.send(p, TAG_SWEEP_HI, Payload::synthetic(plane_bytes))
                            .await;
                    }
                }
                // RHS boundary exchange with all four neighbours.
                for p in [north, south, west, east].into_iter().flatten() {
                    mpi.sendrecv(
                        p,
                        TAG_RHS,
                        Payload::synthetic(face_bytes),
                        RecvSelector::of(p, TAG_RHS),
                    )
                    .await;
                }
            }
        }
    })
}
