//! CG — conjugate gradient (paper: *"heavy point-to-point latency driven
//! communications"*).
//!
//! NPB-2 CG arranges ranks in a `nprows × npcols` power-of-two grid and,
//! per CG iteration, performs a halving sum-reduction of the
//! matrix-vector product along the processor row, a transpose exchange of
//! the result vector, and two scalar reductions — all point-to-point.
//! Message sizes derive from the class vector length `n`.

use vlog_vmpi::{app, AppSpec, Payload, RecvSelector};

use super::{grid_n, ilog2, pow2_grid, restored_iter, state_payload, NasBench, NasConfig};

const TAG_REDUCE: u32 = 10;
const TAG_TRANSPOSE: u32 = 11;
const TAG_SCALAR: u32 = 12;

/// Inner CG iterations per outer (power-method) iteration in NPB-2.
const INNER: u64 = 26;

pub fn program(cfg: NasConfig) -> AppSpec {
    app(move |mpi| {
        let cfg = cfg.clone();
        async move {
            let np = mpi.size();
            let me = mpi.rank();
            let (nprows, npcols) = pow2_grid(np);
            let row = me / npcols;
            let col = me % npcols;
            let n = grid_n(NasBench::CG, cfg.class);
            let l2npcols = ilog2(npcols);
            // Transpose partner: swap grid coordinates (self-exchange
            // degenerates to a local copy, as in NPB).
            let transpose = (col % nprows) * npcols + (row + nprows * (col / nprows));
            let transpose_bytes = 8 * n / npcols as u64;
            let flops_inner = cfg.flops_per_rank_iter() / INNER as f64;
            let start = restored_iter(&mpi);
            for it in start..cfg.iters() {
                if cfg.checkpoints {
                    mpi.checkpoint_point(state_payload(&cfg, it)).await;
                }
                for _ in 0..INNER {
                    mpi.compute(flops_inner).await;
                    // Halving sum-reduction of the matvec along the row.
                    for s in 0..l2npcols {
                        let partner = row * npcols + (col ^ (1 << s));
                        let bytes = (8 * n / nprows as u64) >> (s + 1);
                        mpi.sendrecv(
                            partner,
                            TAG_REDUCE,
                            Payload::synthetic(bytes.max(8)),
                            RecvSelector::of(partner, TAG_REDUCE),
                        )
                        .await;
                    }
                    // Transpose exchange of the reduced vector.
                    if transpose != me {
                        mpi.sendrecv(
                            transpose,
                            TAG_TRANSPOSE,
                            Payload::synthetic(transpose_bytes),
                            RecvSelector::of(transpose, TAG_TRANSPOSE),
                        )
                        .await;
                    }
                    // Two scalar reductions (rho, then the residual norm).
                    for _ in 0..2 {
                        for s in 0..l2npcols {
                            let partner = row * npcols + (col ^ (1 << s));
                            mpi.sendrecv(
                                partner,
                                TAG_SCALAR,
                                Payload::synthetic(8),
                                RecvSelector::of(partner, TAG_SCALAR),
                            )
                            .await;
                        }
                    }
                }
            }
        }
    })
}
