//! BT — block-tridiagonal solver (paper: *"large point-to-point
//! messages, and communications overlapped by computation"*).
//!
//! NPB-2 BT runs on a square processor grid (4, 9, 16, 25 ranks) with a
//! multipartition decomposition. Per iteration it exchanges boundary
//! faces with the four torus neighbours (copy_faces) and performs
//! forward/backward substitution sweeps along x and y; all messages are
//! tens-of-kilobytes faces, largely overlapped with computation.

use vlog_vmpi::{app, AppSpec, Payload, RecvSelector};

use super::{grid_n, restored_iter, state_payload, NasBench, NasConfig};

const TAG_FACES: u32 = 30;
const TAG_XSOLVE: u32 = 31;
const TAG_YSOLVE: u32 = 32;

pub fn program(cfg: NasConfig) -> AppSpec {
    program_grid(cfg, NasBench::BT, 40, TAG_FACES, TAG_XSOLVE, TAG_YSOLVE)
}

/// Shared implementation for the square-grid solvers (BT and SP): they
/// differ in iteration count, flops and bytes-per-face factor.
pub(super) fn program_grid(
    cfg: NasConfig,
    bench: NasBench,
    face_factor: u64,
    tag_faces: u32,
    tag_x: u32,
    tag_y: u32,
) -> AppSpec {
    app(move |mpi| {
        let cfg = cfg.clone();
        async move {
            let np = mpi.size();
            let me = mpi.rank();
            let d = (np as f64).sqrt().round() as usize;
            let row = me / d;
            let col = me % d;
            let n = grid_n(bench, cfg.class);
            // face_factor ≈ variables × 8 bytes (5 × 8 = 40 for BT).
            let face = (face_factor * n * n / (d * d) as u64).max(64);
            let east = row * d + (col + 1) % d;
            let west = row * d + (col + d - 1) % d;
            let south = ((row + 1) % d) * d + col;
            let north = ((row + d - 1) % d) * d + col;
            // Computation split across the communication phases.
            let flops = cfg.flops_per_rank_iter();
            let start = restored_iter(&mpi);
            for it in start..cfg.iters() {
                if cfg.checkpoints {
                    mpi.checkpoint_point(state_payload(&cfg, it)).await;
                }
                // copy_faces: exchange with all four torus neighbours.
                // Shift pattern: send downstream, receive from upstream,
                // then the reverse — deadlock-free on any torus size.
                if np > 1 {
                    for (to, from) in [(east, west), (west, east), (south, north), (north, south)] {
                        mpi.sendrecv(
                            to,
                            tag_faces,
                            Payload::synthetic(face),
                            RecvSelector::of(from, tag_faces),
                        )
                        .await;
                    }
                }
                mpi.compute(flops * 0.4).await;
                // x_solve: forward then backward substitution along rows.
                if np > 1 {
                    for (to, from) in [(east, west), (west, east)] {
                        mpi.sendrecv(
                            to,
                            tag_x,
                            Payload::synthetic(face / 2),
                            RecvSelector::of(from, tag_x),
                        )
                        .await;
                    }
                }
                mpi.compute(flops * 0.25).await;
                // y_solve.
                if np > 1 {
                    for (to, from) in [(south, north), (north, south)] {
                        mpi.sendrecv(
                            to,
                            tag_y,
                            Payload::synthetic(face / 2),
                            RecvSelector::of(from, tag_y),
                        )
                        .await;
                    }
                }
                // z_solve is rank-local in this decomposition.
                mpi.compute(flops * 0.35).await;
            }
        }
    })
}
