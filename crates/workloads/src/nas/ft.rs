//! FT — 3D FFT (paper: *"all-to-all communication pattern"*).
//!
//! NPB-2 FT performs one global transpose per iteration: an all-to-all
//! moving the entire complex grid, by far the largest messages of the
//! suite (hundreds of kilobytes per pair on class A/16 — deep into
//! rendezvous territory). The paper singles FT out as the pattern where
//! Manetho's send-side graph traversal hurts and LogOn shines.

use vlog_vmpi::{app, AppSpec, Payload};

use super::{grid_n, restored_iter, state_payload, NasBench, NasConfig};

pub fn program(cfg: NasConfig) -> AppSpec {
    app(move |mpi| {
        let cfg = cfg.clone();
        async move {
            let np = mpi.size();
            let n = grid_n(NasBench::FT, cfg.class);
            // Class grids are n × n × n/2 complex (16-byte) points.
            let points = n * n * (n / 2);
            let pair_bytes = (16 * points / (np * np) as u64).max(64);
            let flops = cfg.flops_per_rank_iter();
            let start = restored_iter(&mpi);
            for it in start..cfg.iters() {
                if cfg.checkpoints {
                    mpi.checkpoint_point(state_payload(&cfg, it)).await;
                }
                // Local FFTs along the two resident dimensions.
                mpi.compute(flops * 0.6).await;
                // Global transpose.
                if np > 1 {
                    let outgoing = (0..np).map(|_| Payload::synthetic(pair_bytes)).collect();
                    mpi.alltoall(outgoing).await;
                }
                // FFT along the redistributed dimension + checksum.
                mpi.compute(flops * 0.4).await;
                mpi.allreduce_synth(16).await;
            }
        }
    })
}
