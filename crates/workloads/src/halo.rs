//! Irregular sparse halo exchange — seeded random neighbor graphs with
//! non-uniform degrees.
//!
//! The NAS skeletons all talk to structured neighbors (grid faces,
//! hypercube partners, transpose pairs). Real irregular applications —
//! unstructured meshes, graph analytics, sparse solvers — exchange halos
//! over a *sparse random* topology where a few hub ranks carry far more
//! edges than the rest. That shape stresses causal piggybacking
//! differently: hub ranks accumulate (and re-ship) causality for many
//! partners while leaf ranks see long quiet stretches, so piggyback
//! volume concentrates instead of spreading evenly.
//!
//! The graph is a pure function of `(np, seed)`: a connectivity ring
//! plus extra edges whose probability is biased toward low ranks
//! (preferential weights), with log-uniform per-edge halo sizes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vlog_vmpi::{app, Payload, RecvSelector};

use crate::workload::{ckpt_payload, mix_seed, restored_u64, Workload, WorkloadProgram};

const TAG_HALO: u32 = 80;

/// One irregular halo-exchange configuration.
#[derive(Debug, Clone)]
pub struct HaloConfig {
    /// Rank count (graph vertices).
    pub np: usize,
    /// Outer iterations (one halo exchange each).
    pub iters: u64,
    /// Probability scale for extra (non-ring) edges.
    pub extra_edge_prob: f64,
    /// Smallest per-edge halo payload, bytes.
    pub min_bytes: u64,
    /// Largest per-edge halo payload, bytes (log-uniform between the
    /// two).
    pub max_bytes: u64,
    /// Local relaxation work per rank per iteration, flops.
    pub flops_per_iter: f64,
    /// Per-rank checkpoint state bytes.
    pub state_bytes: u64,
    /// Topology seed.
    pub seed: u64,
    /// Offer checkpoints at iteration boundaries.
    pub checkpoints: bool,
}

impl HaloConfig {
    /// A halo exchange over the `(np, seed)` graph running `iters`
    /// iterations.
    pub fn new(np: usize, iters: u64, seed: u64) -> Self {
        assert!(np >= 2, "halo exchange needs >=2 ranks");
        assert!(iters >= 1, "halo exchange needs >=1 iteration");
        HaloConfig {
            np,
            iters,
            extra_edge_prob: 0.35,
            min_bytes: 64,
            max_bytes: 32 << 10,
            flops_per_iter: 4.0e6,
            state_bytes: 4 << 20,
            seed,
            checkpoints: true,
        }
    }

    /// The neighbor graph: `graph()[r]` is rank `r`'s sorted
    /// `(peer, halo_bytes)` list. Symmetric (both endpoints agree on the
    /// edge and its size), connected (ring backbone), degrees biased
    /// toward low ranks.
    pub fn graph(&self) -> Vec<Vec<(usize, u64)>> {
        let n = self.np;
        let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let add = |adj: &mut Vec<Vec<(usize, u64)>>, i: usize, j: usize, bytes: u64| {
            adj[i].push((j, bytes));
            adj[j].push((i, bytes));
        };
        for i in 0..n {
            for j in (i + 1)..n {
                let mut rng = SmallRng::seed_from_u64(mix_seed(self.seed, i as u64, j as u64));
                let ring = j == i + 1 || (i == 0 && j == n - 1);
                // Preferential weights: low ranks attract extra edges,
                // making them hubs with far higher degree.
                let w = |r: usize| 1.0 / (1.0 + r as f64).sqrt();
                let p = (self.extra_edge_prob * w(i) * w(j) * 2.0).min(0.95);
                if ring || rng.random_bool(p) {
                    let u: f64 = rng.random();
                    let ratio = self.max_bytes.max(self.min_bytes) as f64 / self.min_bytes as f64;
                    let bytes = (self.min_bytes as f64 * ratio.powf(u)) as u64;
                    add(&mut adj, i, j, bytes.clamp(self.min_bytes, self.max_bytes));
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    /// The hub: the rank with the highest degree (lowest rank wins
    /// ties). Killing it mid-run is the worst-case single fault for this
    /// topology — its many partners all hold causal state about it.
    pub fn hub(&self) -> usize {
        let g = self.graph();
        (0..self.np)
            .max_by_key(|&r| (g[r].len(), std::cmp::Reverse(r)))
            .unwrap_or(0)
    }

    /// `(edge count, max degree, min degree)` of the generated graph.
    pub fn degree_stats(&self) -> (usize, usize, usize) {
        let g = self.graph();
        let degrees: Vec<usize> = g.iter().map(|l| l.len()).collect();
        let edges = degrees.iter().sum::<usize>() / 2;
        (
            edges,
            degrees.iter().copied().max().unwrap_or(0),
            degrees.iter().copied().min().unwrap_or(0),
        )
    }
}

impl Workload for HaloConfig {
    fn family(&self) -> &'static str {
        "halo"
    }

    fn label(&self) -> String {
        format!("{}r.x{}", self.np, self.iters)
    }

    fn np(&self) -> usize {
        self.np
    }

    fn valid_np(&self, np: usize) -> bool {
        np >= 2
    }

    fn state_bytes(&self) -> u64 {
        self.state_bytes
    }

    fn total_flops(&self) -> f64 {
        self.np as f64 * self.iters as f64 * self.flops_per_iter
    }

    fn hub_rank(&self) -> usize {
        self.hub()
    }

    fn program(&self) -> WorkloadProgram {
        let cfg = self.clone();
        let spec = app(move |mpi| {
            let cfg = cfg.clone();
            async move {
                let me = mpi.rank();
                let neighbors = cfg.graph()[me].clone();
                let start = restored_u64(&mpi);
                for it in start..cfg.iters {
                    if cfg.checkpoints {
                        mpi.checkpoint_point(ckpt_payload(cfg.state_bytes, it))
                            .await;
                    }
                    // Post every outgoing halo first, then drain the
                    // incoming ones — safe regardless of eager or
                    // rendezvous transport.
                    let sends: Vec<_> = neighbors
                        .iter()
                        .map(|&(peer, bytes)| mpi.isend(peer, TAG_HALO, Payload::synthetic(bytes)))
                        .collect();
                    for &(peer, _) in &neighbors {
                        mpi.recv(RecvSelector::of(peer, TAG_HALO)).await;
                    }
                    for s in sends {
                        s.wait().await;
                    }
                    mpi.compute(cfg.flops_per_iter).await;
                    // Periodic global residual check.
                    if it % 4 == 3 {
                        mpi.allreduce_synth(8).await;
                    }
                }
            }
        });
        let (edges, max_deg, min_deg) = self.degree_stats();
        WorkloadProgram::with_probe(
            spec,
            Box::new(move |_| {
                vec![
                    ("edges", edges as f64),
                    ("max_degree", max_deg as f64),
                    ("min_degree", min_deg as f64),
                ]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_symmetric_connected_and_deterministic() {
        let cfg = HaloConfig::new(12, 4, 9);
        let g = cfg.graph();
        assert_eq!(g, HaloConfig::new(12, 4, 9).graph());
        for (i, list) in g.iter().enumerate() {
            for &(j, bytes) in list {
                assert_ne!(i, j, "no self loops");
                assert!(
                    g[j].iter().any(|&(k, b)| k == i && b == bytes),
                    "edge ({i},{j}) must be symmetric with equal size"
                );
                assert!(bytes >= cfg.min_bytes && bytes <= cfg.max_bytes);
            }
            // Ring backbone guarantees degree >= 2 (np > 2).
            assert!(list.len() >= 2, "rank {i} disconnected");
        }
    }

    #[test]
    fn degrees_are_nonuniform() {
        let (_edges, max_deg, min_deg) = HaloConfig::new(16, 4, 3).degree_stats();
        assert!(
            max_deg >= min_deg + 2,
            "hub construction should spread degrees: max={max_deg} min={min_deg}"
        );
    }

    #[test]
    fn hub_is_the_highest_degree_rank() {
        let cfg = HaloConfig::new(16, 4, 3);
        let g = cfg.graph();
        let hub = cfg.hub();
        assert!((0..16).all(|r| g[r].len() <= g[hub].len()));
        // Ties break toward the lowest rank.
        let first_max = (0..16).find(|&r| g[r].len() == g[hub].len()).unwrap();
        assert_eq!(hub, first_max);
        assert_eq!(Workload::hub_rank(&cfg), hub);
        // Preferential attachment pulls the hub toward the low ranks.
        assert!(hub < 8, "hub {hub} landed in the low-weight half");
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        assert_ne!(
            HaloConfig::new(12, 4, 1).graph(),
            HaloConfig::new(12, 4, 2).graph()
        );
    }
}
