//! Convenience runners tying workloads to protocol suites.

use std::sync::Arc;

use vlog_sim::SimDuration;
use vlog_vmpi::{run_cluster, ClusterConfig, FaultPlan, RunReport, Suite};

use crate::nas::NasConfig;

/// Result of one NAS run: the cluster report plus flop accounting.
pub struct NasRun {
    pub report: RunReport,
    pub total_flops: f64,
}

impl NasRun {
    /// Total Mflop/s (Megaflops) of the run — the Figure 9 metric.
    pub fn mflops(&self) -> f64 {
        self.total_flops / self.report.makespan.as_secs_f64() / 1e6
    }
}

/// Runs a NAS benchmark under a protocol suite.
pub fn run_nas(
    nas: &NasConfig,
    cluster: &ClusterConfig,
    suite: Arc<dyn Suite>,
    faults: &FaultPlan,
) -> NasRun {
    assert_eq!(cluster.ranks, nas.np, "rank count mismatch");
    let report = run_cluster(cluster, suite, nas.program(), faults);
    NasRun {
        report,
        total_flops: nas.total_flops(),
    }
}

/// Fault plan helpers on top of [`FaultPlan`].
pub mod faults {
    use super::*;

    /// Kill rank 0 halfway through an estimated makespan.
    pub fn kill_rank0_at(half_of: SimDuration) -> FaultPlan {
        FaultPlan::kill_at(half_of.mul_f64(0.5), 0)
    }

    /// Periodic faults at `per_minute` faults per virtual minute, cycling
    /// over `n` ranks, until `until`.
    pub fn periodic_per_minute(per_minute: f64, n: usize, until: SimDuration) -> FaultPlan {
        if per_minute <= 0.0 {
            return FaultPlan::none();
        }
        let period = SimDuration::from_secs_f64(60.0 / per_minute);
        FaultPlan::periodic(period, period, n, until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_fault_plan_spacing() {
        let plan = faults::periodic_per_minute(2.0, 4, SimDuration::from_secs(120));
        assert_eq!(plan.faults.len(), 3); // t = 30s, 60s, 90s
        assert_eq!(plan.faults[0].0.as_secs_f64(), 30.0);
        assert_eq!(plan.faults[0].1, 0);
        assert_eq!(plan.faults[1].1, 1);
        let none = faults::periodic_per_minute(0.0, 4, SimDuration::from_secs(60));
        assert!(none.faults.is_empty());
    }
}
