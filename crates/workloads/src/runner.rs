//! Fault-plan helpers shared by the workload harnesses.
//!
//! The workload runner itself is generic now — see
//! [`crate::workload::run_workload`]; this module keeps only the fault
//! schedule conveniences the figure harnesses share.

use vlog_sim::SimDuration;
use vlog_vmpi::FaultPlan;

/// Fault plan helpers on top of [`FaultPlan`].
pub mod faults {
    use super::*;

    /// Kill rank 0 halfway through an estimated makespan.
    pub fn kill_rank0_at(half_of: SimDuration) -> FaultPlan {
        FaultPlan::kill_at(half_of.mul_f64(0.5), 0)
    }

    /// Periodic faults at `per_minute` faults per virtual minute, cycling
    /// over `n` ranks, until `until`.
    pub fn periodic_per_minute(per_minute: f64, n: usize, until: SimDuration) -> FaultPlan {
        if per_minute <= 0.0 {
            return FaultPlan::none();
        }
        let period = SimDuration::from_secs_f64(60.0 / per_minute);
        FaultPlan::periodic(period, period, n, until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_fault_plan_spacing() {
        let plan = faults::periodic_per_minute(2.0, 4, SimDuration::from_secs(120));
        assert_eq!(plan.faults.len(), 3); // t = 30s, 60s, 90s
        assert_eq!(plan.faults[0].0.as_secs_f64(), 30.0);
        assert_eq!(plan.faults[0].1, 0);
        assert_eq!(plan.faults[1].1, 1);
        let none = faults::periodic_per_minute(0.0, 4, SimDuration::from_secs(60));
        assert!(none.faults.is_empty());
    }
}
