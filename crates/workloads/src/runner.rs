//! Fault-plan helpers shared by the workload harnesses.
//!
//! The workload runner itself is generic now — see
//! [`crate::workload::run_workload`]; this module keeps only the fault
//! schedule conveniences the figure harnesses share.

use vlog_sim::SimDuration;
use vlog_vmpi::FaultPlan;

/// Fault plan helpers on top of [`FaultPlan`].
pub mod faults {
    use super::*;
    use crate::workload::Workload;

    /// Kill rank 0 halfway through an estimated makespan.
    pub fn kill_rank0_at(half_of: SimDuration) -> FaultPlan {
        FaultPlan::kill_at(half_of.mul_f64(0.5), 0)
    }

    /// Hub failure: kills the workload's most load-bearing rank
    /// ([`Workload::hub_rank`]) at `t` — the highest-degree rank of a
    /// halo graph, the busiest server of a bursty service, rank 0
    /// elsewhere. The worst-case single fault for the topology: the
    /// victim's many partners all hold causal state about it, so
    /// recovery pulls determinants and replayed payloads from the widest
    /// possible set of survivors.
    pub fn hub_failure(workload: &dyn Workload, t: SimDuration) -> FaultPlan {
        FaultPlan::kill_at(t, workload.hub_rank())
    }

    /// Periodic faults at `per_minute` faults per virtual minute, cycling
    /// over `n` ranks, until `until`.
    pub fn periodic_per_minute(per_minute: f64, n: usize, until: SimDuration) -> FaultPlan {
        if per_minute <= 0.0 {
            return FaultPlan::none();
        }
        let period = SimDuration::from_secs_f64(60.0 / per_minute);
        FaultPlan::periodic(period, period, n, until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_failure_targets_the_workload_hub() {
        let halo = crate::HaloConfig::new(16, 4, 3);
        let plan = faults::hub_failure(&halo, SimDuration::from_millis(5));
        assert_eq!(plan.faults, vec![(SimDuration::from_millis(5), halo.hub())]);
        let bursty = crate::BurstyConfig::new(16, 4, 11).with_servers(4);
        let plan = faults::hub_failure(&bursty, SimDuration::from_millis(5));
        assert_eq!(plan.faults[0].1, bursty.busiest_server());
        assert!(plan.faults[0].1 < 4, "hub must be a server rank");
    }

    #[test]
    fn periodic_fault_plan_spacing() {
        let plan = faults::periodic_per_minute(2.0, 4, SimDuration::from_secs(120));
        assert_eq!(plan.faults.len(), 3); // t = 30s, 60s, 90s
        assert_eq!(plan.faults[0].0.as_secs_f64(), 30.0);
        assert_eq!(plan.faults[0].1, 0);
        assert_eq!(plan.faults[1].1, 1);
        let none = faults::periodic_per_minute(0.0, 4, SimDuration::from_secs(60));
        assert!(none.faults.is_empty());
    }
}
