//! # vlog-workloads — benchmarks driving the protocol evaluation
//!
//! * [`netpipe`] — the NetPIPE ping-pong micro-benchmark of Figure 6,
//! * [`nas`] — communication skeletons of the NAS Parallel Benchmarks
//!   (CG, MG, FT, LU, BT, SP) with published class geometry, iteration
//!   counts, operation counts and memory footprints,
//! * [`runner`] — glue running a workload under a protocol suite and
//!   extracting the paper's metrics (Megaflops, piggyback volume, ...).

pub mod nas;
pub mod netpipe;
pub mod runner;

pub use nas::{full_flops, full_iters, grid_n, mem_bytes, Class, NasBench, NasConfig};
pub use netpipe::{NetpipePoint, NetpipeResults};
pub use runner::{run_nas, NasRun};
