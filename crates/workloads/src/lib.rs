//! # vlog-workloads — benchmarks driving the protocol evaluation
//!
//! Every benchmark is an instance of one abstraction: the
//! [`Workload`] trait (label, geometry rules, flop/state accounting,
//! program construction) plus the [`registry()`] enumerating all
//! registered configurations. The generic [`run_workload`] runner
//! executes any workload under any protocol suite and extracts the
//! shared metrics as a [`WorkloadRun`].
//!
//! Families:
//!
//! * [`nas`] — communication skeletons of the NAS Parallel Benchmarks
//!   (CG, MG, FT, LU, BT, SP) with published class geometry, iteration
//!   counts, operation counts and memory footprints,
//! * [`netpipe`] — the NetPIPE ping-pong micro-benchmark of Figure 6,
//! * [`bursty`] — a bursty request/reply service (wildcard-receive
//!   server, deterministic-RNG burst arrivals),
//! * [`halo`] — irregular sparse halo exchange over seeded random
//!   neighbor graphs with non-uniform degrees,
//! * [`fft_pipe`] — a pipelined transpose/all-to-all FFT variant with
//!   configurable tile sizes,
//! * [`runner`] — fault-plan helpers shared by the figure harnesses.

#![deny(missing_docs)]

pub mod bursty;
pub mod fft_pipe;
pub mod halo;
pub mod nas;
pub mod netpipe;
pub mod registry;
pub mod runner;
pub mod workload;

pub use bursty::BurstyConfig;
pub use fft_pipe::FftPipeConfig;
pub use halo::HaloConfig;
pub use nas::{full_flops, full_iters, grid_n, mem_bytes, Class, NasBench, NasConfig};
pub use netpipe::{NetpipeConfig, NetpipePoint, NetpipePoints};
pub use registry::{net_axes, registry, NetAxis, RegistryScale, FAMILIES};
pub use workload::{run_workload, MetricProbe, Workload, WorkloadProgram, WorkloadRun};
