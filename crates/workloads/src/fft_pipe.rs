//! Pipelined transpose FFT variant — all-to-all traffic in configurable
//! tiles.
//!
//! NPB FT performs one monolithic global transpose per iteration: every
//! rank ships its whole slab to every other rank in one burst, then
//! computes. The pipelined variant splits the transpose into `tiles`
//! smaller all-to-alls and interleaves the per-tile FFT work between
//! them — the classic overlap transformation. For the logging protocols
//! the two extremes are very different regimes: one big all-to-all means
//! few, huge messages (piggyback amortized to nothing), while deep
//! tiling multiplies the message count by `tiles` and shrinks each
//! payload, pushing piggyback share and per-message management cost
//! back up. Sweeping the tile size maps that trade-off.

use vlog_vmpi::{app, Payload};

use crate::workload::{ckpt_payload, restored_u64, Workload, WorkloadProgram};

/// One pipelined-transpose configuration.
#[derive(Debug, Clone)]
pub struct FftPipeConfig {
    /// Rank count of the transpose.
    pub np: usize,
    /// Outer iterations (one full transpose each).
    pub iters: u64,
    /// Total complex-grid bytes redistributed per transpose (split
    /// evenly over rank pairs, then over tiles).
    pub grid_bytes: u64,
    /// Tiles the transpose is split into; 1 reproduces FT's monolithic
    /// all-to-all.
    pub tiles: u32,
    /// FFT work per rank per iteration, flops.
    pub flops_per_iter: f64,
    /// Per-rank checkpoint state bytes.
    pub state_bytes: u64,
    /// Offer checkpoints at iteration boundaries.
    pub checkpoints: bool,
}

impl FftPipeConfig {
    /// A pipelined transpose on `np` ranks, `iters` iterations, the
    /// global exchange split into `tiles` tiles.
    pub fn new(np: usize, iters: u64, tiles: u32) -> Self {
        assert!(np >= 2, "transpose needs >=2 ranks");
        assert!(iters >= 1, "transpose needs >=1 iteration");
        assert!(tiles >= 1, "transpose needs >=1 tile");
        FftPipeConfig {
            np,
            iters,
            grid_bytes: 8 << 20,
            tiles,
            flops_per_iter: 2.0e7,
            state_bytes: 8 << 20,
            checkpoints: true,
        }
    }

    /// Bytes each rank pair exchanges per tile.
    pub fn tile_pair_bytes(&self) -> u64 {
        let pair = (self.grid_bytes / (self.np * self.np) as u64).max(64);
        (pair / self.tiles as u64).max(16)
    }
}

impl Workload for FftPipeConfig {
    fn family(&self) -> &'static str {
        "fft"
    }

    fn label(&self) -> String {
        format!("{}r.t{}", self.np, self.tiles)
    }

    fn np(&self) -> usize {
        self.np
    }

    fn valid_np(&self, np: usize) -> bool {
        np >= 2
    }

    fn state_bytes(&self) -> u64 {
        self.state_bytes
    }

    fn total_flops(&self) -> f64 {
        self.np as f64 * self.iters as f64 * self.flops_per_iter
    }

    fn program(&self) -> WorkloadProgram {
        let cfg = self.clone();
        let spec = app(move |mpi| {
            let cfg = cfg.clone();
            async move {
                let np = mpi.size();
                let tile_bytes = cfg.tile_pair_bytes();
                let flops = cfg.flops_per_iter;
                let start = restored_u64(&mpi);
                for it in start..cfg.iters {
                    if cfg.checkpoints {
                        mpi.checkpoint_point(ckpt_payload(cfg.state_bytes, it))
                            .await;
                    }
                    // FFTs along the resident dimensions.
                    mpi.compute(flops * 0.4).await;
                    // Tiled global transpose: communication of tile t
                    // overlaps (alternates) with the tile-local FFT
                    // work, instead of FT's single monolithic burst.
                    for _tile in 0..cfg.tiles {
                        let outgoing = (0..np).map(|_| Payload::synthetic(tile_bytes)).collect();
                        mpi.alltoall(outgoing).await;
                        mpi.compute(flops * 0.6 / cfg.tiles as f64).await;
                    }
                    // Checksum reduction closing the iteration.
                    mpi.allreduce_synth(16).await;
                }
            }
        });
        let (tiles, tile_bytes) = (self.tiles, self.tile_pair_bytes());
        WorkloadProgram::with_probe(
            spec,
            Box::new(move |_| {
                vec![
                    ("tiles", tiles as f64),
                    ("tile_pair_bytes", tile_bytes as f64),
                ]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_divides_the_pair_payload() {
        let mono = FftPipeConfig::new(4, 2, 1);
        let tiled = FftPipeConfig::new(4, 2, 8);
        assert_eq!(mono.tile_pair_bytes(), 8 * tiled.tile_pair_bytes());
        // Total redistributed bytes are tile-count invariant.
        assert_eq!(
            mono.tile_pair_bytes() * 1,
            tiled.tile_pair_bytes() * tiled.tiles as u64
        );
    }

    #[test]
    fn tiny_tiles_never_collapse_to_zero() {
        let cfg = FftPipeConfig {
            grid_bytes: 1,
            ..FftPipeConfig::new(16, 1, 64)
        };
        assert!(cfg.tile_pair_bytes() >= 16);
    }

    #[test]
    #[should_panic(expected = ">=1 tile")]
    fn zero_tiles_is_rejected() {
        let _ = FftPipeConfig::new(4, 1, 0);
    }
}
