//! Bursty request/reply service — the "millions of users" traffic shape.
//!
//! Rank 0 is a server; every other rank is a client firing *bursts* of
//! requests with deterministic-RNG arrivals (exponential think times,
//! heavy-tailed burst sizes), then waiting for the replies. The server
//! drains requests with a **wildcard receive**, so the delivery order is
//! a race decided by the network — exactly the nondeterminism causal
//! message logging exists to capture. Compared to the NAS skeletons
//! (static partners, deterministic schedules) this regime stresses the
//! determinant path: every served request is a genuinely nondeterministic
//! event the protocols must log, piggyback or ack before the reply's
//! causal effects escape.
//!
//! The RNG draws are keyed by `(seed, rank, round)`, never by elapsed
//! state, so an incarnation restarted from a round checkpoint regenerates
//! byte-identical traffic — the piecewise-determinism contract replay
//! needs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vlog_sim::SimDuration;
use vlog_vmpi::{app, Payload, RecvSelector};

use crate::workload::{ckpt_payload, mix_seed, restored_u64, Workload, WorkloadProgram};

const TAG_REQ: u32 = 70;
const TAG_REP: u32 = 71;

/// One bursty service configuration.
#[derive(Debug, Clone)]
pub struct BurstyConfig {
    /// Total ranks: rank 0 serves, ranks `1..np` are clients.
    pub np: usize,
    /// Bursts each client fires.
    pub rounds: u64,
    /// Mean requests per burst (tail is exponential, capped at 16x).
    pub mean_burst: f64,
    /// Mean think time between a client's bursts.
    pub mean_think: SimDuration,
    /// Request payload bytes.
    pub req_bytes: u64,
    /// Reply payload bytes.
    pub reply_bytes: u64,
    /// Service cost per request, flops.
    pub flops_per_req: f64,
    /// Server checkpoints every this many served requests; clients at
    /// every round boundary.
    pub ckpt_every: u64,
    /// Per-rank checkpoint state bytes.
    pub state_bytes: u64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Offer checkpoints (required to survive fault injection).
    pub checkpoints: bool,
}

impl BurstyConfig {
    pub fn new(np: usize, rounds: u64, seed: u64) -> Self {
        assert!(np >= 2, "bursty service needs a server and >=1 client");
        assert!(rounds >= 1, "bursty service needs >=1 round");
        BurstyConfig {
            np,
            rounds,
            mean_burst: 4.0,
            mean_think: SimDuration::from_micros(300),
            req_bytes: 256,
            reply_bytes: 1024,
            flops_per_req: 2.0e5,
            ckpt_every: 16,
            state_bytes: 2 << 20,
            seed,
            checkpoints: true,
        }
    }

    /// Burst size and think time of client `rank`'s round `round` —
    /// a pure function of the seed, so replay regenerates it exactly.
    fn draw(&self, rank: usize, round: u64) -> (u64, SimDuration) {
        let mut rng = SmallRng::seed_from_u64(mix_seed(self.seed, rank as u64, round));
        let u: f64 = rng.random();
        // Exponential tail over a minimum of one request, capped so one
        // outlier round cannot dominate a whole run.
        let cap = (self.mean_burst * 16.0).max(1.0);
        let burst = (1.0 + (-(1.0 - u).ln()) * self.mean_burst).min(cap) as u64;
        let v: f64 = rng.random();
        let think = self.mean_think.mul_f64(-(1.0 - v).ln());
        (burst.max(1), think)
    }

    /// Total requests the whole run serves (the server derives its
    /// termination condition from the same pure arrival process).
    pub fn total_requests(&self) -> u64 {
        (1..self.np)
            .flat_map(|c| (0..self.rounds).map(move |r| self.draw(c, r).0))
            .sum()
    }
}

impl Workload for BurstyConfig {
    fn family(&self) -> &'static str {
        "bursty"
    }

    fn label(&self) -> String {
        format!("{}c.x{}", self.np - 1, self.rounds)
    }

    fn np(&self) -> usize {
        self.np
    }

    fn valid_np(&self, np: usize) -> bool {
        np >= 2
    }

    fn state_bytes(&self) -> u64 {
        self.state_bytes
    }

    fn total_flops(&self) -> f64 {
        self.total_requests() as f64 * self.flops_per_req
    }

    fn program(&self) -> WorkloadProgram {
        let cfg = self.clone();
        let total = cfg.total_requests();
        let spec = app(move |mpi| {
            let cfg = cfg.clone();
            async move {
                let me = mpi.rank();
                if me == 0 {
                    // Server: drain `total` requests in whatever order
                    // the network delivers them; reply to the source.
                    let mut served = restored_u64(&mpi);
                    while served < total {
                        if cfg.checkpoints && served % cfg.ckpt_every == 0 {
                            mpi.checkpoint_point(ckpt_payload(cfg.state_bytes, served))
                                .await;
                        }
                        let req = mpi
                            .recv(RecvSelector {
                                src: None,
                                tag: Some(TAG_REQ),
                            })
                            .await;
                        mpi.compute(cfg.flops_per_req).await;
                        mpi.send(req.src, TAG_REP, Payload::synthetic(cfg.reply_bytes))
                            .await;
                        served += 1;
                    }
                } else {
                    // Client: think, fire a burst, collect the replies.
                    let start = restored_u64(&mpi);
                    for round in start..cfg.rounds {
                        if cfg.checkpoints {
                            mpi.checkpoint_point(ckpt_payload(cfg.state_bytes, round))
                                .await;
                        }
                        let (burst, think) = cfg.draw(me, round);
                        mpi.elapse(think).await;
                        for _ in 0..burst {
                            mpi.send(0, TAG_REQ, Payload::synthetic(cfg.req_bytes))
                                .await;
                        }
                        for _ in 0..burst {
                            mpi.recv_from(0, TAG_REP).await;
                        }
                    }
                }
            }
        });
        let (clients, total_f) = (self.np as u64 - 1, total as f64);
        let rounds = self.rounds;
        WorkloadProgram::with_probe(
            spec,
            Box::new(move |_| {
                vec![
                    ("requests", total_f),
                    ("mean_burst", total_f / (clients * rounds).max(1) as f64),
                ]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_nonuniform() {
        let cfg = BurstyConfig::new(4, 8, 42);
        let again = BurstyConfig::new(4, 8, 42);
        assert_eq!(cfg.total_requests(), again.total_requests());
        // Distinct (rank, round) pairs draw distinct bursts somewhere.
        let a: Vec<u64> = (0..8).map(|r| cfg.draw(1, r).0).collect();
        let b: Vec<u64> = (0..8).map(|r| cfg.draw(2, r).0).collect();
        assert_ne!(a, b, "clients must not fire identical burst trains");
        // Every burst fires at least one request.
        assert!(a.iter().chain(&b).all(|&n| n >= 1));
        // A different seed reshapes the traffic.
        assert_ne!(
            BurstyConfig::new(4, 8, 7).total_requests(),
            cfg.total_requests()
        );
    }

    #[test]
    #[should_panic(expected = "needs a server")]
    fn single_rank_service_is_rejected() {
        let _ = BurstyConfig::new(1, 4, 1);
    }
}
