//! Bursty request/reply service — the "millions of users" traffic shape.
//!
//! Ranks `0..servers` are servers; every other rank is a client firing
//! *bursts* of requests with deterministic-RNG arrivals (exponential
//! think times, heavy-tailed burst sizes), then waiting for the replies.
//! Each server drains its requests with a **wildcard receive**, so the
//! delivery order is a race decided by the network — exactly the
//! nondeterminism causal message logging exists to capture. Compared to
//! the NAS skeletons (static partners, deterministic schedules) this
//! regime stresses the determinant path: every served request is a
//! genuinely nondeterministic event the protocols must log, piggyback or
//! ack before the reply's causal effects escape.
//!
//! The default configuration runs one server (the paper-scale shape);
//! [`BurstyConfig::with_servers`] shards the service across `k` server
//! ranks with every client *hashed* to one server — a pure function of
//! `(seed, client rank)`, so the assignment survives restarts and scales
//! the regime to larger rank counts without serializing all traffic
//! through one wildcard queue.
//!
//! The RNG draws are keyed by `(seed, rank, round)`, never by elapsed
//! state, so an incarnation restarted from a round checkpoint regenerates
//! byte-identical traffic — the piecewise-determinism contract replay
//! needs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vlog_sim::SimDuration;
use vlog_vmpi::{app, Payload, RecvSelector};

use crate::workload::{ckpt_payload, mix_seed, restored_u64, Workload, WorkloadProgram};

const TAG_REQ: u32 = 70;
const TAG_REP: u32 = 71;

/// Salt separating the client-to-server hash from the arrival draws.
const SERVER_HASH_SALT: u64 = 0x5e4e;

/// Salt separating the *virtual*-client arrival draws (aggregated mode)
/// from the physical schedule and the server hash.
const AGG_SALT: u64 = 0xa99a;

/// One bursty service configuration.
#[derive(Debug, Clone)]
pub struct BurstyConfig {
    /// Total ranks: ranks `0..servers` serve, ranks `servers..np` are
    /// clients.
    pub np: usize,
    /// Number of server ranks (1 = the classic single-server shape).
    pub servers: usize,
    /// Bursts each client fires.
    pub rounds: u64,
    /// Mean requests per burst (tail is exponential, capped at 16x).
    pub mean_burst: f64,
    /// Mean think time between a client's bursts.
    pub mean_think: SimDuration,
    /// Request payload bytes.
    pub req_bytes: u64,
    /// Reply payload bytes.
    pub reply_bytes: u64,
    /// Service cost per request, flops.
    pub flops_per_req: f64,
    /// Server checkpoints every this many served requests; clients at
    /// every round boundary.
    pub ckpt_every: u64,
    /// Per-rank checkpoint state bytes.
    pub state_bytes: u64,
    /// Arrival-process seed.
    pub seed: u64,
    /// Offer checkpoints (required to survive fault injection).
    pub checkpoints: bool,
    /// Virtual clients modeled per physical client rank (aggregated
    /// mode; 1 = classic). See [`BurstyConfig::aggregated`].
    pub clients_per_rank: u64,
}

impl BurstyConfig {
    /// A single-server service on `np` ranks firing `rounds` bursts per
    /// client, with arrival traffic keyed off `seed`.
    pub fn new(np: usize, rounds: u64, seed: u64) -> Self {
        assert!(np >= 2, "bursty service needs a server and >=1 client");
        assert!(rounds >= 1, "bursty service needs >=1 round");
        BurstyConfig {
            np,
            servers: 1,
            rounds,
            mean_burst: 4.0,
            mean_think: SimDuration::from_micros(300),
            req_bytes: 256,
            reply_bytes: 1024,
            flops_per_req: 2.0e5,
            ckpt_every: 16,
            state_bytes: 2 << 20,
            seed,
            checkpoints: true,
            clients_per_rank: 1,
        }
    }

    /// Models `per_rank` virtual clients behind every physical client
    /// rank (a load-balancer front for a huge population). The physical
    /// message schedule — bursts, think times, wire bytes per request —
    /// is *identical* to the classic shape; what changes is that every
    /// request carries a multiplicity aggregating its share of the
    /// virtual arrivals (an 8-byte count inside the unchanged request
    /// payload), and the server's service cost scales with it. The
    /// per-request flops are divided by `per_rank` so total service work
    /// stays comparable across aggregation factors: the regime isolates
    /// what the *piggyback* does as the modeled population grows.
    pub fn aggregated(mut self, per_rank: u64) -> Self {
        assert!(per_rank >= 1, "aggregation factor must be >= 1");
        self.clients_per_rank = per_rank;
        self.flops_per_req /= per_rank as f64;
        self
    }

    /// Clients the configuration models: physical clients times the
    /// aggregation factor.
    pub fn modeled_clients(&self) -> u64 {
        (self.np - self.servers) as u64 * self.clients_per_rank
    }

    /// Shards the service across `servers` server ranks; every client is
    /// hashed to one of them (see [`BurstyConfig::server_of`]).
    pub fn with_servers(mut self, servers: usize) -> Self {
        assert!(servers >= 1, "bursty service needs >=1 server");
        assert!(
            self.np > servers,
            "bursty service with {servers} servers needs at least {} ranks",
            servers + 1
        );
        self.servers = servers;
        self
    }

    /// The client ranks of this configuration (`servers..np`).
    pub fn clients(&self) -> std::ops::Range<usize> {
        self.servers..self.np
    }

    /// The server rank client `rank` sends every request to: a pure
    /// `(seed, rank)` hash, so the assignment is deterministic across
    /// restarts and incarnations but uncorrelated with rank order.
    pub fn server_of(&self, rank: usize) -> usize {
        debug_assert!(self.clients().contains(&rank), "rank {rank} is a server");
        (mix_seed(self.seed, rank as u64, SERVER_HASH_SALT) % self.servers as u64) as usize
    }

    /// Burst size and think time of client `rank`'s round `round` —
    /// a pure function of the seed, so replay regenerates it exactly.
    fn draw(&self, rank: usize, round: u64) -> (u64, SimDuration) {
        let mut rng = SmallRng::seed_from_u64(mix_seed(self.seed, rank as u64, round));
        let u: f64 = rng.random();
        // Exponential tail over a minimum of one request, capped so one
        // outlier round cannot dominate a whole run.
        let cap = (self.mean_burst * 16.0).max(1.0);
        let burst = (1.0 + (-(1.0 - u).ln()) * self.mean_burst).min(cap) as u64;
        let v: f64 = rng.random();
        let think = self.mean_think.mul_f64(-(1.0 - v).ln());
        (burst.max(1), think)
    }

    /// Burst size of virtual client `vclient`'s round — same exponential
    /// shape as the physical draws, salted so the virtual population is
    /// statistically independent of the physical schedule.
    fn virtual_burst(&self, vclient: u64, round: u64) -> u64 {
        let mut rng = SmallRng::seed_from_u64(mix_seed(self.seed ^ AGG_SALT, vclient, round));
        let u: f64 = rng.random();
        let cap = (self.mean_burst * 16.0).max(1.0);
        ((1.0 + (-(1.0 - u).ln()) * self.mean_burst).min(cap) as u64).max(1)
    }

    /// Virtual requests client `rank`'s round aggregates: the sum over
    /// its `clients_per_rank` virtual clients' independent draws.
    fn virtual_round_total(&self, rank: usize, round: u64) -> u64 {
        let base = (rank - self.servers) as u64 * self.clients_per_rank;
        (0..self.clients_per_rank)
            .map(|k| self.virtual_burst(base + k, round))
            .sum()
    }

    /// Multiplicities carried by the `burst` physical requests of client
    /// `rank`'s round: the round's virtual total distributed base +
    /// remainder-first, so the sum is exact. All ones in classic mode.
    fn request_multiplicities(&self, rank: usize, round: u64, burst: u64) -> Vec<u64> {
        if self.clients_per_rank == 1 {
            return vec![1; burst as usize];
        }
        let vtotal = self.virtual_round_total(rank, round);
        let base = vtotal / burst;
        let rem = vtotal % burst;
        (0..burst).map(|i| base + u64::from(i < rem)).collect()
    }

    /// The request payload carrying multiplicity `mult`. Classic mode
    /// stays byte-for-byte the synthetic payload it always was;
    /// aggregated mode embeds the count in the first 8 bytes without
    /// changing the wire length.
    fn request_payload(&self, mult: u64) -> Payload {
        if self.clients_per_rank == 1 {
            return Payload::synthetic(self.req_bytes);
        }
        let mut p = Payload::new(mult.to_le_bytes().to_vec());
        p.pad = self.req_bytes.saturating_sub(8);
        p
    }

    /// Multiplicity a server reads back out of a request payload.
    fn request_mult(payload: &Payload) -> u64 {
        match payload.data.as_ref().get(..8) {
            Some(head) => u64::from_le_bytes(head.try_into().unwrap()),
            None => 1,
        }
    }

    /// Requests the configuration *models*: the virtual total in
    /// aggregated mode, the physical total otherwise.
    pub fn modeled_requests(&self) -> u64 {
        if self.clients_per_rank == 1 {
            return self.total_requests();
        }
        self.clients()
            .flat_map(|c| (0..self.rounds).map(move |r| self.virtual_round_total(c, r)))
            .sum()
    }

    /// Total requests the whole run serves (the servers derive their
    /// termination conditions from the same pure arrival process).
    pub fn total_requests(&self) -> u64 {
        self.clients()
            .flat_map(|c| (0..self.rounds).map(move |r| self.draw(c, r).0))
            .sum()
    }

    /// Requests routed to `server` over the whole run — its termination
    /// condition, derived from the same pure arrival process and hash
    /// every client uses.
    pub fn total_requests_for(&self, server: usize) -> u64 {
        self.clients()
            .filter(|&c| self.server_of(c) == server)
            .flat_map(|c| (0..self.rounds).map(move |r| self.draw(c, r).0))
            .sum()
    }

    /// The busiest server rank (most routed requests; lowest rank wins
    /// ties) — the hub whose failure stresses recovery hardest.
    pub fn busiest_server(&self) -> usize {
        (0..self.servers)
            .max_by_key(|&s| (self.total_requests_for(s), std::cmp::Reverse(s)))
            .unwrap_or(0)
    }
}

impl Workload for BurstyConfig {
    fn family(&self) -> &'static str {
        "bursty"
    }

    fn label(&self) -> String {
        if self.clients_per_rank > 1 {
            // Lead with the modeled population: that is the regime.
            format!(
                "{}c.{}s.x{}.agg{}",
                self.modeled_clients(),
                self.servers,
                self.rounds,
                self.clients_per_rank
            )
        } else if self.servers == 1 {
            format!("{}c.x{}", self.np - self.servers, self.rounds)
        } else {
            format!(
                "{}c.{}s.x{}",
                self.np - self.servers,
                self.servers,
                self.rounds
            )
        }
    }

    fn np(&self) -> usize {
        self.np
    }

    fn valid_np(&self, np: usize) -> bool {
        np > self.servers
    }

    fn state_bytes(&self) -> u64 {
        self.state_bytes
    }

    fn total_flops(&self) -> f64 {
        self.modeled_requests() as f64 * self.flops_per_req
    }

    fn hub_rank(&self) -> usize {
        self.busiest_server()
    }

    fn program(&self) -> WorkloadProgram {
        let cfg = self.clone();
        let spec = app(move |mpi| {
            let cfg = cfg.clone();
            async move {
                let me = mpi.rank();
                if me < cfg.servers {
                    // Server: drain this shard's share of the requests in
                    // whatever order the network delivers them; reply to
                    // the source.
                    let total = cfg.total_requests_for(me);
                    let mut served = restored_u64(&mpi);
                    while served < total {
                        if cfg.checkpoints && served % cfg.ckpt_every == 0 {
                            mpi.checkpoint_point(ckpt_payload(cfg.state_bytes, served))
                                .await;
                        }
                        let req = mpi
                            .recv(RecvSelector {
                                src: None,
                                tag: Some(TAG_REQ),
                            })
                            .await;
                        let mult = BurstyConfig::request_mult(&req.payload);
                        mpi.compute(cfg.flops_per_req * mult as f64).await;
                        mpi.send(req.src, TAG_REP, Payload::synthetic(cfg.reply_bytes))
                            .await;
                        served += 1;
                    }
                } else {
                    // Client: think, fire a burst at the hashed server,
                    // collect the replies.
                    let server = cfg.server_of(me);
                    let start = restored_u64(&mpi);
                    for round in start..cfg.rounds {
                        if cfg.checkpoints {
                            mpi.checkpoint_point(ckpt_payload(cfg.state_bytes, round))
                                .await;
                        }
                        let (burst, think) = cfg.draw(me, round);
                        mpi.elapse(think).await;
                        for mult in cfg.request_multiplicities(me, round, burst) {
                            mpi.send(server, TAG_REQ, cfg.request_payload(mult)).await;
                        }
                        for _ in 0..burst {
                            mpi.recv_from(server, TAG_REP).await;
                        }
                    }
                }
            }
        });
        let total_f = self.total_requests() as f64;
        let clients = (self.np - self.servers) as u64;
        let rounds = self.rounds;
        let hot_share = if total_f > 0.0 {
            self.total_requests_for(self.busiest_server()) as f64 / total_f
        } else {
            0.0
        };
        let aggregated =
            (self.clients_per_rank > 1).then(|| (self.modeled_clients(), self.modeled_requests()));
        WorkloadProgram::with_probe(
            spec,
            Box::new(move |_| {
                let mut probes = vec![
                    ("requests", total_f),
                    ("mean_burst", total_f / (clients * rounds).max(1) as f64),
                    ("hot_server_share", hot_share),
                ];
                if let Some((modeled_clients, modeled_requests)) = aggregated {
                    probes.push(("modeled_clients", modeled_clients as f64));
                    probes.push(("modeled_requests", modeled_requests as f64));
                }
                probes
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_nonuniform() {
        let cfg = BurstyConfig::new(4, 8, 42);
        let again = BurstyConfig::new(4, 8, 42);
        assert_eq!(cfg.total_requests(), again.total_requests());
        // Distinct (rank, round) pairs draw distinct bursts somewhere.
        let a: Vec<u64> = (0..8).map(|r| cfg.draw(1, r).0).collect();
        let b: Vec<u64> = (0..8).map(|r| cfg.draw(2, r).0).collect();
        assert_ne!(a, b, "clients must not fire identical burst trains");
        // Every burst fires at least one request.
        assert!(a.iter().chain(&b).all(|&n| n >= 1));
        // A different seed reshapes the traffic.
        assert_ne!(
            BurstyConfig::new(4, 8, 7).total_requests(),
            cfg.total_requests()
        );
    }

    #[test]
    #[should_panic(expected = "needs a server")]
    fn single_rank_service_is_rejected() {
        let _ = BurstyConfig::new(1, 4, 1);
    }

    #[test]
    fn client_to_server_assignment_is_deterministic() {
        let cfg = BurstyConfig::new(16, 4, 11).with_servers(4);
        let again = BurstyConfig::new(16, 4, 11).with_servers(4);
        let map: Vec<usize> = cfg.clients().map(|c| cfg.server_of(c)).collect();
        let map2: Vec<usize> = again.clients().map(|c| again.server_of(c)).collect();
        assert_eq!(map, map2, "assignment must be a pure (seed, rank) hash");
        // Every assignment lands on a real server.
        assert!(map.iter().all(|&s| s < 4));
        // The hash spreads clients over more than one server.
        let used: std::collections::BTreeSet<usize> = map.iter().copied().collect();
        assert!(used.len() > 1, "all clients hashed to one server: {map:?}");
        // A different seed reshuffles at least one client.
        let other = BurstyConfig::new(16, 4, 7).with_servers(4);
        let map3: Vec<usize> = other.clients().map(|c| other.server_of(c)).collect();
        assert_ne!(map, map3, "assignment must depend on the seed");
    }

    #[test]
    fn per_server_totals_partition_the_request_count() {
        let cfg = BurstyConfig::new(12, 6, 11).with_servers(3);
        let per: u64 = (0..3).map(|s| cfg.total_requests_for(s)).sum();
        assert_eq!(per, cfg.total_requests());
        // The busiest server really is the argmax of the partition.
        let hub = cfg.busiest_server();
        assert!(hub < 3);
        assert!((0..3).all(|s| cfg.total_requests_for(s) <= cfg.total_requests_for(hub)));
        assert_eq!(Workload::hub_rank(&cfg), hub);
        // Single-server configurations keep the classic shape: rank 0
        // serves everything.
        let single = BurstyConfig::new(4, 6, 11);
        assert_eq!(single.total_requests_for(0), single.total_requests());
        assert_eq!(Workload::hub_rank(&single), 0);
    }

    #[test]
    fn multi_server_labels_and_geometry() {
        let cfg = BurstyConfig::new(16, 4, 11).with_servers(4);
        assert_eq!(cfg.label(), "12c.4s.x4");
        assert_eq!(BurstyConfig::new(4, 6, 11).label(), "3c.x6");
        assert!(cfg.valid_np(16));
        assert!(!cfg.valid_np(4));
    }

    #[test]
    #[should_panic(expected = "at least 5 ranks")]
    fn too_many_servers_are_rejected() {
        let _ = BurstyConfig::new(4, 4, 1).with_servers(4);
    }

    #[test]
    fn aggregation_keeps_the_physical_schedule_identical() {
        let classic = BurstyConfig::new(24, 3, 11).with_servers(3);
        let agg = BurstyConfig::new(24, 3, 11).with_servers(3).aggregated(480);
        // Same bursts, same think times, same server hash: the wire
        // schedule is untouched by the aggregation factor.
        for rank in classic.clients() {
            assert_eq!(classic.server_of(rank), agg.server_of(rank));
            for round in 0..classic.rounds {
                assert_eq!(classic.draw(rank, round), agg.draw(rank, round));
            }
        }
        assert_eq!(classic.total_requests(), agg.total_requests());
        // Request payloads keep the wire length, and carry the count.
        let p = agg.request_payload(1234);
        assert_eq!(p.len(), agg.req_bytes);
        assert_eq!(BurstyConfig::request_mult(&p), 1234);
        // Classic payloads read back as multiplicity one.
        assert_eq!(BurstyConfig::request_mult(&classic.request_payload(1)), 1);
        assert_eq!(classic.request_payload(1), Payload::synthetic(256));
    }

    #[test]
    fn multiplicities_distribute_the_virtual_total_exactly() {
        let agg = BurstyConfig::new(24, 3, 11).with_servers(3).aggregated(48);
        let mut modeled = 0u64;
        for rank in agg.clients() {
            for round in 0..agg.rounds {
                let (burst, _) = agg.draw(rank, round);
                let mults = agg.request_multiplicities(rank, round, burst);
                assert_eq!(mults.len() as u64, burst);
                // Remainder-first: multiplicities differ by at most one
                // and are non-increasing.
                for w in mults.windows(2) {
                    assert!(w[0] >= w[1] && w[0] - w[1] <= 1);
                }
                modeled += mults.iter().sum::<u64>();
            }
        }
        assert_eq!(modeled, agg.modeled_requests());
        assert_eq!(agg.modeled_clients(), 21 * 48);
        // Every virtual client fires at least once per round.
        assert!(agg.modeled_requests() >= agg.modeled_clients() * agg.rounds);
    }

    #[test]
    fn aggregated_labels_and_flops_scale_with_the_population() {
        let base = BurstyConfig::new(24, 3, 11).with_servers(3);
        let agg = base.clone().aggregated(4800);
        assert_eq!(agg.label(), "100800c.3s.x3.agg4800");
        assert_eq!(base.label(), "21c.3s.x3");
        // Per-request flops shrink with the factor so total service work
        // stays in the same ballpark as the classic shape.
        assert!((agg.flops_per_req - base.flops_per_req / 4800.0).abs() < 1e-9);
        let ratio = agg.total_flops() / base.total_flops();
        assert!(
            (0.5..2.0).contains(&ratio),
            "aggregated work drifted {ratio}x from classic"
        );
    }
}
