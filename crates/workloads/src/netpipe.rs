//! NetPIPE-style ping-pong micro-benchmark (Snell et al., 1996).
//!
//! The paper's Figure 6 uses NetPIPE: a two-rank ping-pong sweeping
//! message sizes, reporting half round-trip latency and throughput. The
//! measurement runs *inside* the program with `Mpi::time()`, exactly like
//! NetPIPE calls `MPI_Wtime`.

use std::sync::{Arc, Mutex};

use vlog_vmpi::{app, AppSpec, Payload, RecvSelector};

const TAG: u32 = 7;

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct NetpipePoint {
    pub bytes: u64,
    /// Half round-trip time, microseconds (NetPIPE's "latency").
    pub latency_us: f64,
    /// Throughput in Mbit/s.
    pub mbps: f64,
}

/// Results shared out of the program.
pub type NetpipeResults = Arc<Mutex<Vec<NetpipePoint>>>;

/// Power-of-two sweep 1 B … `max_bytes`.
pub fn sizes(max_bytes: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = 1u64;
    while s <= max_bytes {
        v.push(s);
        s <<= 1;
    }
    v
}

/// Repetitions per size: enough for a stable mean, scaled down for the
/// multi-megabyte points (NetPIPE adapts the same way).
pub fn reps_for(bytes: u64, scale: f64) -> u32 {
    let base = (2_000_000.0 / (bytes as f64 + 1_000.0)).clamp(3.0, 400.0);
    (base * scale).ceil().max(3.0) as u32
}

/// Builds the two-rank ping-pong program; results land in the returned
/// collector once rank 0 finishes.
pub fn program(max_bytes: u64, rep_scale: f64) -> (AppSpec, NetpipeResults) {
    let results: NetpipeResults = Arc::new(Mutex::new(Vec::new()));
    let out = results.clone();
    let spec = app(move |mpi| {
        let out = out.clone();
        async move {
            assert_eq!(mpi.size(), 2, "NetPIPE is a two-rank benchmark");
            let me = mpi.rank();
            let peer = 1 - me;
            for bytes in sizes(max_bytes) {
                let reps = reps_for(bytes, rep_scale);
                // One warm-up round, unmeasured.
                if me == 0 {
                    mpi.send(peer, TAG, Payload::synthetic(bytes)).await;
                    mpi.recv(RecvSelector::of(peer, TAG)).await;
                } else {
                    mpi.recv(RecvSelector::of(peer, TAG)).await;
                    mpi.send(peer, TAG, Payload::synthetic(bytes)).await;
                }
                let t0 = mpi.time();
                for _ in 0..reps {
                    if me == 0 {
                        mpi.send(peer, TAG, Payload::synthetic(bytes)).await;
                        mpi.recv(RecvSelector::of(peer, TAG)).await;
                    } else {
                        mpi.recv(RecvSelector::of(peer, TAG)).await;
                        mpi.send(peer, TAG, Payload::synthetic(bytes)).await;
                    }
                }
                if me == 0 {
                    let dt = mpi.time().saturating_since(t0);
                    let half_rtt_us = dt.as_micros_f64() / (2.0 * reps as f64);
                    let mbps = (bytes as f64 * 8.0) / half_rtt_us; // b/us == Mbit/s
                    out.lock().unwrap().push(NetpipePoint {
                        bytes,
                        latency_us: half_rtt_us,
                        mbps,
                    });
                }
            }
        }
    });
    (spec, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(sizes(8), vec![1, 2, 4, 8]);
        assert_eq!(sizes(1), vec![1]);
        assert_eq!(sizes(8 << 20).len(), 24);
    }

    #[test]
    fn reps_scale_down_with_size() {
        assert!(reps_for(1, 1.0) > reps_for(1 << 20, 1.0));
        assert!(reps_for(8 << 20, 1.0) >= 3);
        assert!(reps_for(1, 0.01) >= 3);
    }
}
