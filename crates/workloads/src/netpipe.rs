//! NetPIPE-style ping-pong micro-benchmark (Snell et al., 1996).
//!
//! The paper's Figure 6 uses NetPIPE: a two-rank ping-pong sweeping
//! message sizes, reporting half round-trip latency and throughput. The
//! measurement runs *inside* the program with `Mpi::time()`, exactly like
//! NetPIPE calls `MPI_Wtime`.
//!
//! [`NetpipeConfig`] is the [`Workload`] face of the benchmark; the
//! lower-level [`program`] builder remains for harnesses that want the
//! full per-size point sweep (Figure 6 tables and curves) rather than
//! the summary metrics.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use vlog_vmpi::{app, AppSpec, Payload, RecvSelector, RunReport};

use crate::workload::{ckpt_payload, restored_u64, Workload, WorkloadProgram};

const TAG: u32 = 7;

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct NetpipePoint {
    /// Message size of this sweep step, bytes.
    pub bytes: u64,
    /// Half round-trip time, microseconds (NetPIPE's "latency").
    pub latency_us: f64,
    /// Throughput in Mbit/s.
    pub mbps: f64,
}

/// Handle on the points rank 0 measures, shared out of the program.
///
/// Keyed by message size so a size re-measured during post-fault replay
/// overwrites its pre-crash point instead of duplicating it — the sweep
/// a harness reads is one point per size, in size order, whether or not
/// the run recovered from a crash.
#[derive(Clone, Default)]
pub struct NetpipePoints {
    inner: Arc<Mutex<BTreeMap<u64, NetpipePoint>>>,
}

impl NetpipePoints {
    /// The measured sweep, smallest size first.
    pub fn sorted(&self) -> Vec<NetpipePoint> {
        self.inner.lock().unwrap().values().copied().collect()
    }

    /// Commits a batch of measured points, taking the collector lock
    /// once for the whole batch instead of once per point. Points drain
    /// in measurement order, so a size re-measured after a crash still
    /// overwrites its stale pre-crash entry (last write wins).
    fn insert_batch(&self, points: &mut Vec<NetpipePoint>) {
        if points.is_empty() {
            return;
        }
        let mut map = self.inner.lock().unwrap();
        for p in points.drain(..) {
            map.insert(p.bytes, p);
        }
    }
}

/// Power-of-two sweep 1 B … `max_bytes`. Panics on `max_bytes == 0`:
/// an empty sweep would "complete" without measuring anything, which
/// used to silently produce a run with no points.
pub fn sizes(max_bytes: u64) -> Vec<u64> {
    assert!(
        max_bytes >= 1,
        "NetPIPE sweep needs max_bytes >= 1 (got 0: the sweep would be empty \
         and the run would complete without measuring a single point)"
    );
    let mut v = Vec::new();
    let mut s = 1u64;
    while s <= max_bytes {
        v.push(s);
        s <<= 1;
    }
    v
}

/// Repetitions per size: enough for a stable mean, scaled down for the
/// multi-megabyte points (NetPIPE adapts the same way).
pub fn reps_for(bytes: u64, scale: f64) -> u32 {
    let base = (2_000_000.0 / (bytes as f64 + 1_000.0)).clamp(3.0, 400.0);
    (base * scale).ceil().max(3.0) as u32
}

/// Builds the two-rank ping-pong program; points land in the returned
/// collector as rank 0 finishes each size. Equivalent to
/// [`NetpipeConfig`] without checkpoint offers — the Figure 6 harnesses
/// use this directly to keep the measured path free of checkpoint
/// plumbing.
pub fn program(max_bytes: u64, rep_scale: f64) -> (AppSpec, NetpipePoints) {
    build(max_bytes, rep_scale, None)
}

/// `ckpt_state_bytes`: `Some(per-rank image size)` to offer a checkpoint
/// before each sweep size, `None` for the bare Figure 6 measurement.
fn build(
    max_bytes: u64,
    rep_scale: f64,
    ckpt_state_bytes: Option<u64>,
) -> (AppSpec, NetpipePoints) {
    let results = NetpipePoints::default();
    let out = results.clone();
    let all_sizes = sizes(max_bytes);
    let spec = app(move |mpi| {
        let out = out.clone();
        let all_sizes = all_sizes.clone();
        async move {
            assert_eq!(mpi.size(), 2, "NetPIPE is a two-rank benchmark");
            let me = mpi.rank();
            let peer = 1 - me;
            // Fast-forward past the sizes a pre-crash incarnation
            // already completed.
            let start = restored_u64(&mpi) as usize;
            // Points measured by rank 0 buffer locally and flush into
            // the shared collector in batches (one lock per flush, not
            // one per point). Flushing *before* each checkpoint offer
            // keeps crash replay correct: anything still buffered at a
            // crash belongs to sizes at or past the restored cursor,
            // which the next incarnation re-measures.
            let mut pending: Vec<NetpipePoint> = Vec::new();
            for (idx, &bytes) in all_sizes.iter().enumerate().skip(start) {
                if let Some(state_bytes) = ckpt_state_bytes {
                    out.insert_batch(&mut pending);
                    mpi.checkpoint_point(ckpt_payload(state_bytes, idx as u64))
                        .await;
                }
                let reps = reps_for(bytes, rep_scale);
                // One warm-up round, unmeasured.
                if me == 0 {
                    mpi.send(peer, TAG, Payload::synthetic(bytes)).await;
                    mpi.recv(RecvSelector::of(peer, TAG)).await;
                } else {
                    mpi.recv(RecvSelector::of(peer, TAG)).await;
                    mpi.send(peer, TAG, Payload::synthetic(bytes)).await;
                }
                let t0 = mpi.time();
                for _ in 0..reps {
                    if me == 0 {
                        mpi.send(peer, TAG, Payload::synthetic(bytes)).await;
                        mpi.recv(RecvSelector::of(peer, TAG)).await;
                    } else {
                        mpi.recv(RecvSelector::of(peer, TAG)).await;
                        mpi.send(peer, TAG, Payload::synthetic(bytes)).await;
                    }
                }
                if me == 0 {
                    let dt = mpi.time().saturating_since(t0);
                    let half_rtt_us = dt.as_micros_f64() / (2.0 * reps as f64);
                    let mbps = (bytes as f64 * 8.0) / half_rtt_us; // b/us == Mbit/s
                    pending.push(NetpipePoint {
                        bytes,
                        latency_us: half_rtt_us,
                        mbps,
                    });
                }
            }
            out.insert_batch(&mut pending);
        }
    });
    (spec, results)
}

/// The NetPIPE sweep as a registered workload.
#[derive(Debug, Clone)]
pub struct NetpipeConfig {
    /// Largest message size of the sweep (sizes ladder up to here).
    pub max_bytes: u64,
    /// Repetition multiplier applied to every sweep size.
    pub rep_scale: f64,
    /// Offer a checkpoint before each size of the sweep (off for the
    /// Figure 6 measurements, on when run under fault injection).
    pub checkpoints: bool,
}

impl NetpipeConfig {
    /// Panics on an empty sweep (`max_bytes == 0`) or a non-positive
    /// repetition scale — both used to yield runs that complete without
    /// measuring anything meaningful.
    pub fn new(max_bytes: u64, rep_scale: f64) -> Self {
        assert!(max_bytes >= 1, "NetPIPE sweep needs max_bytes >= 1");
        assert!(
            rep_scale.is_finite() && rep_scale > 0.0,
            "NetPIPE repetition scale must be a positive finite number, got {rep_scale}"
        );
        NetpipeConfig {
            max_bytes,
            rep_scale,
            checkpoints: false,
        }
    }

    /// Offers a checkpoint before each sweep size (required to
    /// survive fault injection).
    pub fn with_checkpoints(mut self) -> Self {
        self.checkpoints = true;
        self
    }
}

impl Workload for NetpipeConfig {
    fn family(&self) -> &'static str {
        "netpipe"
    }

    fn label(&self) -> String {
        format!("{}B", self.max_bytes)
    }

    fn np(&self) -> usize {
        2
    }

    fn valid_np(&self, np: usize) -> bool {
        np == 2
    }

    /// The process image is dominated by the message buffer.
    fn state_bytes(&self) -> u64 {
        self.max_bytes.max(4096)
    }

    /// NetPIPE measures latency and bandwidth; Mflop/s is undefined.
    fn total_flops(&self) -> f64 {
        0.0
    }

    fn program(&self) -> WorkloadProgram {
        let ckpt = self.checkpoints.then(|| self.state_bytes());
        let (spec, points) = build(self.max_bytes, self.rep_scale, ckpt);
        WorkloadProgram::with_probe(
            spec,
            Box::new(move |_report: &RunReport| {
                let pts = points.sorted();
                let latency_1b = pts.first().map_or(0.0, |p| p.latency_us);
                let peak = pts.iter().map(|p| p.mbps).fold(0.0, f64::max);
                vec![
                    ("latency_1b_us", latency_1b),
                    ("peak_mbps", peak),
                    ("points", pts.len() as f64),
                ]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(sizes(8), vec![1, 2, 4, 8]);
        assert_eq!(sizes(1), vec![1]);
        assert_eq!(sizes(8 << 20).len(), 24);
    }

    #[test]
    #[should_panic(expected = "max_bytes >= 1")]
    fn empty_sweep_is_rejected() {
        let _ = sizes(0);
    }

    #[test]
    #[should_panic(expected = "max_bytes >= 1")]
    fn empty_sweep_config_is_rejected() {
        let _ = NetpipeConfig::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive finite number")]
    fn zero_rep_scale_is_rejected() {
        let _ = NetpipeConfig::new(1024, 0.0);
    }

    #[test]
    fn reps_scale_down_with_size() {
        assert!(reps_for(1, 1.0) > reps_for(1 << 20, 1.0));
        assert!(reps_for(8 << 20, 1.0) >= 3);
        assert!(reps_for(1, 0.01) >= 3);
    }

    #[test]
    fn points_dedupe_by_size() {
        let points = NetpipePoints::default();
        let mut batch = vec![
            NetpipePoint {
                bytes: 64,
                latency_us: 2.0,
                mbps: 1.0,
            },
            NetpipePoint {
                bytes: 64,
                latency_us: 1.0,
                mbps: 1.0,
            },
        ];
        points.insert_batch(&mut batch);
        assert!(batch.is_empty(), "insert_batch drains its buffer");
        let sorted = points.sorted();
        assert_eq!(sorted.len(), 1);
        assert_eq!(sorted[0].latency_us, 1.0); // last write wins

        // Replay across a second batch overwrites too, exactly like the
        // old per-point path did.
        points.insert_batch(&mut vec![NetpipePoint {
            bytes: 64,
            latency_us: 0.5,
            mbps: 2.0,
        }]);
        assert_eq!(points.sorted()[0].latency_us, 0.5);
    }
}
