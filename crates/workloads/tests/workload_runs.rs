//! Integration tests for the non-NAS workload families: each one runs
//! to completion under the framework, exhibits its intended traffic
//! shape, and survives an injected fault under causal logging.

use std::sync::Arc;

use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{ClusterConfig, FaultPlan, VdummySuite};
use vlog_workloads::{
    run_workload, BurstyConfig, FftPipeConfig, HaloConfig, NetpipeConfig, Workload,
};

fn cluster(np: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(np);
    c.event_limit = Some(50_000_000);
    c
}

#[test]
fn every_new_family_completes_under_vdummy() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(BurstyConfig::new(4, 4, 5)),
        Box::new(HaloConfig::new(4, 4, 5)),
        Box::new(FftPipeConfig::new(4, 2, 4)),
        Box::new(NetpipeConfig::new(1 << 10, 0.05)),
    ];
    for w in &workloads {
        let run = run_workload(
            w.as_ref(),
            &cluster(w.np()),
            Arc::new(VdummySuite),
            &FaultPlan::none(),
        );
        assert!(run.report.completed, "{} did not complete", run.label);
        assert!(run.report.stats.messages > 0, "{}", run.label);
        assert_eq!(run.report.stats.messages, run.msg_histogram().count());
    }
}

#[test]
fn bursty_service_serves_every_request() {
    let cfg = BurstyConfig::new(4, 6, 42);
    let run = run_workload(&cfg, &cluster(4), Arc::new(VdummySuite), &FaultPlan::none());
    assert!(run.report.completed);
    let reqs = run
        .extra
        .iter()
        .find(|(k, _)| *k == "requests")
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(reqs, cfg.total_requests() as f64);
    // Request + reply per served request, plus checkpoint/control
    // traffic: message count must be at least 2x the request count.
    assert!(run.report.stats.messages as f64 >= 2.0 * reqs);
    assert!(run.mflops() > 0.0);
}

#[test]
fn halo_traffic_concentrates_on_hubs() {
    let cfg = HaloConfig::new(12, 4, 9);
    let run = run_workload(
        &cfg,
        &cluster(12),
        Arc::new(VdummySuite),
        &FaultPlan::none(),
    );
    assert!(run.report.completed);
    let get = |k: &str| {
        run.extra
            .iter()
            .find(|(n, _)| *n == k)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert!(get("max_degree") > get("min_degree"));
    assert!(get("edges") >= 12.0, "ring backbone alone has np edges");
}

#[test]
fn fft_tiling_multiplies_messages_and_shrinks_them() {
    let run_tiles = |tiles: u32| {
        let cfg = FftPipeConfig::new(4, 2, tiles);
        let run = run_workload(&cfg, &cluster(4), Arc::new(VdummySuite), &FaultPlan::none());
        assert!(run.report.completed, "tiles={tiles}");
        (
            run.report.stats.messages,
            run.report.stats.bytes.payload as f64 / run.report.stats.messages as f64,
        )
    };
    let (mono_msgs, mono_avg) = run_tiles(1);
    let (deep_msgs, deep_avg) = run_tiles(8);
    assert!(
        deep_msgs > mono_msgs,
        "deep tiling must send more messages: {deep_msgs} vs {mono_msgs}"
    );
    assert!(
        deep_avg < mono_avg,
        "deep tiling must shrink the average message: {deep_avg} vs {mono_avg}"
    );
}

#[test]
fn new_families_survive_a_fault_under_causal_logging() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(BurstyConfig::new(4, 6, 5)),
        Box::new(HaloConfig::new(4, 6, 5)),
        Box::new(FftPipeConfig::new(4, 3, 4)),
    ];
    for w in &workloads {
        let mut cfg = cluster(w.np());
        cfg.detect_delay = SimDuration::from_millis(8);
        let suite = Arc::new(
            CausalSuite::new(Technique::Vcausal, true)
                .with_checkpoints(SimDuration::from_millis(5)),
        );
        let run = run_workload(
            w.as_ref(),
            &cfg,
            suite,
            &FaultPlan::kill_at(SimDuration::from_millis(6), 1),
        );
        assert!(run.report.completed, "{} faulted run", run.label);
        let recoveries: usize = run
            .report
            .rank_stats
            .iter()
            .map(|s| s.recovery_total.len())
            .sum();
        assert!(recoveries >= 1, "{} never recovered", run.label);
        assert!(
            run.report.stats.bytes.piggyback > 0,
            "{} moved no piggyback under causal logging",
            run.label
        );
    }
}

#[test]
fn netpipe_workload_reports_sweep_metrics() {
    let cfg = NetpipeConfig::new(1 << 12, 0.05);
    let run = run_workload(&cfg, &cluster(2), Arc::new(VdummySuite), &FaultPlan::none());
    assert!(run.report.completed);
    let get = |k: &str| {
        run.extra
            .iter()
            .find(|(n, _)| *n == k)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert_eq!(get("points"), 13.0); // 1 B .. 4 KiB
    assert!(get("latency_1b_us") > 0.0);
    assert!(get("peak_mbps") > 0.0);
    assert_eq!(run.mflops(), 0.0, "NetPIPE defines no Mflop/s");
}
