//! Integration tests: every NAS skeleton runs to completion under the
//! framework, the benchmark communication characters match the paper's
//! description, and NetPIPE lands near the paper's latency table.

use std::sync::Arc;

use vlog_core::{CausalSuite, Technique};
use vlog_sim::SimDuration;
use vlog_vmpi::{run_vdummy, ClusterConfig, FaultPlan, VdummySuite};
use vlog_workloads::{netpipe, run_workload, Class, NasBench, NasConfig};

fn cluster(np: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(np);
    c.event_limit = Some(50_000_000);
    c
}

#[test]
fn every_benchmark_completes_class_s() {
    for (bench, np) in [
        (NasBench::CG, 4),
        (NasBench::MG, 4),
        (NasBench::FT, 4),
        (NasBench::LU, 4),
        (NasBench::BT, 4),
        (NasBench::SP, 4),
    ] {
        let nas = NasConfig::new(bench, Class::S, np);
        let run = run_workload(
            &nas,
            &cluster(np),
            Arc::new(VdummySuite),
            &FaultPlan::none(),
        );
        assert!(run.report.completed, "{bench:?} class S did not complete");
        assert!(run.mflops() > 0.0);
    }
}

#[test]
fn benchmarks_complete_on_all_paper_rank_counts() {
    for bench in [NasBench::CG, NasBench::LU, NasBench::FT, NasBench::MG] {
        for np in [2usize, 4, 8, 16] {
            let nas = NasConfig::new(bench, Class::S, np);
            let run = run_workload(
                &nas,
                &cluster(np),
                Arc::new(VdummySuite),
                &FaultPlan::none(),
            );
            assert!(run.report.completed, "{bench:?} np={np}");
        }
    }
    for np in [4usize, 9, 16, 25] {
        for bench in [NasBench::BT, NasBench::SP] {
            let nas = NasConfig::new(bench, Class::S, np);
            let run = run_workload(
                &nas,
                &cluster(np),
                Arc::new(VdummySuite),
                &FaultPlan::none(),
            );
            assert!(run.report.completed, "{bench:?} np={np}");
        }
    }
}

#[test]
fn communication_characters_match_the_paper() {
    // Paper §V-A: LU = many (small) messages, FT = all-to-all with the
    // biggest payloads, BT = large point-to-point messages, CG latency
    // driven. Compare per-benchmark message statistics on class A / 16.
    let stats = |bench: NasBench| {
        let nas = NasConfig::new(bench, Class::A, 16).fraction(0.02);
        let run = run_workload(
            &nas,
            &cluster(16),
            Arc::new(VdummySuite),
            &FaultPlan::none(),
        );
        assert!(run.report.completed, "{bench:?}");
        let msgs = run.report.stats.messages as f64;
        let payload = run.report.stats.bytes.payload as f64;
        (msgs, payload / msgs)
    };
    let (lu_msgs, lu_avg) = stats(NasBench::LU);
    let (bt_msgs, bt_avg) = stats(NasBench::BT);
    let (ft_msgs, ft_avg) = stats(NasBench::FT);
    let (cg_msgs, cg_avg) = stats(NasBench::CG);
    assert!(
        lu_msgs > bt_msgs && lu_msgs > ft_msgs && lu_msgs > cg_msgs,
        "LU must send the most messages: lu={lu_msgs} bt={bt_msgs} ft={ft_msgs} cg={cg_msgs}"
    );
    assert!(
        ft_avg > bt_avg && ft_avg > lu_avg && ft_avg > cg_avg,
        "FT must have the largest average message: ft={ft_avg} bt={bt_avg} lu={lu_avg} cg={cg_avg}"
    );
    assert!(bt_avg > lu_avg, "BT messages are large, LU messages tiny");
}

#[test]
fn cg_a_runs_under_causal_protocols() {
    for technique in [Technique::Vcausal, Technique::Manetho, Technique::LogOn] {
        let nas = NasConfig::new(NasBench::CG, Class::A, 4).fraction(0.2);
        let run = run_workload(
            &nas,
            &cluster(4),
            Arc::new(CausalSuite::new(technique, true)),
            &FaultPlan::none(),
        );
        assert!(run.report.completed, "{technique:?}");
        assert!(run.report.stats.bytes.piggyback > 0);
    }
}

#[test]
fn lu_survives_a_fault_under_causal_logging() {
    let nas = NasConfig::new(NasBench::LU, Class::S, 4);
    let mut c = cluster(4);
    c.detect_delay = SimDuration::from_millis(20);
    let suite = Arc::new(
        CausalSuite::new(Technique::Vcausal, true).with_checkpoints(SimDuration::from_millis(50)),
    );
    let run = run_workload(
        &nas,
        &c,
        suite,
        &FaultPlan::kill_at(SimDuration::from_millis(40), 1),
    );
    assert!(run.report.completed, "LU with fault did not finish");
    let recoveries: usize = run
        .report
        .rank_stats
        .iter()
        .map(|s| s.recovery_total.len())
        .sum();
    assert!(recoveries >= 1);
}

#[test]
fn netpipe_latency_matches_paper_table() {
    // Figure 6(a): MPICH-P4 99.56us, Vdummy 134.84us for 1-byte messages.
    let run_lat = |cfg: ClusterConfig| {
        let (prog, results) = netpipe::program(1, 1.0);
        let report = run_vdummy(&cfg, prog);
        assert!(report.completed);
        results.sorted()[0].latency_us
    };
    let vd = run_lat(cluster(2));
    let p4 = run_lat(cluster(2).p4());
    let raw = run_lat(cluster(2).raw());
    assert!(
        (p4 - 99.56).abs() < 12.0,
        "P4 1-byte latency {p4:.2}us vs paper 99.56us"
    );
    assert!(
        (vd - 134.84).abs() < 15.0,
        "Vdummy 1-byte latency {vd:.2}us vs paper 134.84us"
    );
    assert!(raw < p4 && p4 < vd);
}

#[test]
fn netpipe_bandwidth_approaches_line_rate() {
    let (prog, results) = netpipe::program(8 << 20, 0.05);
    let report = run_vdummy(&cluster(2).raw(), prog);
    assert!(report.completed);
    let r = results.sorted();
    let peak = r.iter().map(|p| p.mbps).fold(0.0, f64::max);
    assert!(
        peak > 80.0 && peak < 100.0,
        "raw TCP peak bandwidth {peak:.1} Mbit/s out of the paper's range"
    );
    // Monotone-ish growth: the largest message should be near the peak.
    assert!(r.last().unwrap().mbps > 0.8 * peak);
}
