//! End-to-end tests of the generic framework under the trivial protocol:
//! transport correctness, matching semantics, collectives, timing sanity.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use vlog_vmpi::{app, run_vdummy, ClusterConfig, Payload, RecvSelector, ReduceOp};

/// Shared result collector for programs (single-threaded simulation).
fn collector<T: 'static>() -> (Arc<Mutex<Vec<T>>>, Arc<Mutex<Vec<T>>>) {
    let c = Arc::new(Mutex::new(Vec::new()));
    (c.clone(), c)
}

#[test]
fn two_rank_message_roundtrip() {
    let (sink, out) = collector::<Vec<u8>>();
    let report = run_vdummy(
        &ClusterConfig::new(2),
        app(move |mpi| {
            let sink = sink.clone();
            async move {
                if mpi.rank() == 0 {
                    mpi.send_bytes(1, 7, vec![1, 2, 3]).await;
                    let m = mpi.recv_from(1, 8).await;
                    sink.lock().unwrap().push(m.payload.data.to_vec());
                } else {
                    let m = mpi.recv_from(0, 7).await;
                    let mut v = m.payload.data.to_vec();
                    v.reverse();
                    mpi.send_bytes(0, 8, v).await;
                }
            }
        }),
    );
    assert!(report.completed);
    assert_eq!(&*out.lock().unwrap(), &[vec![3, 2, 1]]);
    // 4 application messages at least crossed the network.
    assert!(report.stats.messages >= 2);
}

#[test]
fn wildcard_receive_matches_any_source() {
    let (sink, out) = collector::<usize>();
    let report = run_vdummy(
        &ClusterConfig::new(4),
        app(move |mpi| {
            let sink = sink.clone();
            async move {
                if mpi.rank() == 0 {
                    for _ in 0..3 {
                        let m = mpi.recv(RecvSelector::any()).await;
                        sink.lock().unwrap().push(m.src);
                    }
                } else {
                    mpi.send_bytes(0, 5, vec![mpi.rank() as u8]).await;
                }
            }
        }),
    );
    assert!(report.completed);
    let mut got = out.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(got, vec![1, 2, 3]);
}

#[test]
fn unexpected_messages_match_later_receives() {
    let (sink, out) = collector::<(usize, u32)>();
    let report = run_vdummy(
        &ClusterConfig::new(2),
        app(move |mpi| {
            let sink = sink.clone();
            async move {
                if mpi.rank() == 0 {
                    // Two sends with different tags, receiver posts the
                    // second tag first.
                    mpi.send_bytes(1, 1, vec![1]).await;
                    mpi.send_bytes(1, 2, vec![2]).await;
                } else {
                    // Let both arrive and sit in the unexpected queue.
                    mpi.elapse(vlog_sim::SimDuration::from_millis(5)).await;
                    let b = mpi.recv_from(0, 2).await;
                    let a = mpi.recv_from(0, 1).await;
                    sink.lock().unwrap().push((b.src, b.tag));
                    sink.lock().unwrap().push((a.src, a.tag));
                }
            }
        }),
    );
    assert!(report.completed);
    assert_eq!(&*out.lock().unwrap(), &[(0, 2), (0, 1)]);
}

#[test]
fn per_channel_fifo_order_is_preserved() {
    let (sink, out) = collector::<u8>();
    let report = run_vdummy(
        &ClusterConfig::new(2),
        app(move |mpi| {
            let sink = sink.clone();
            async move {
                if mpi.rank() == 0 {
                    for i in 0..20u8 {
                        mpi.send_bytes(1, 3, vec![i]).await;
                    }
                } else {
                    for _ in 0..20 {
                        let m = mpi.recv_from(0, 3).await;
                        sink.lock().unwrap().push(m.payload.data[0]);
                    }
                }
            }
        }),
    );
    assert!(report.completed);
    assert_eq!(&*out.lock().unwrap(), &(0..20).collect::<Vec<u8>>());
}

#[test]
fn rendezvous_transfers_large_payloads() {
    // 1 MiB payload exceeds the 128 KiB eager threshold.
    let report = run_vdummy(
        &ClusterConfig::new(2),
        app(move |mpi| async move {
            if mpi.rank() == 0 {
                mpi.send(1, 0, Payload::synthetic(1 << 20)).await;
            } else {
                let m = mpi.recv_from(0, 0).await;
                assert_eq!(m.payload.len(), 1 << 20);
            }
        }),
    );
    assert!(report.completed);
    // 1 MiB at ~93 Mbit/s is ~90 ms of wire time; the run must be in that
    // ballpark (rendezvous adds a round trip).
    let ms = report.makespan.as_millis_f64();
    assert!(ms > 80.0 && ms < 150.0, "unexpected makespan {ms}ms");
}

#[test]
fn barrier_synchronizes_all_ranks() {
    let (sink, out) = collector::<(usize, u64)>();
    let report = run_vdummy(
        &ClusterConfig::new(5),
        app(move |mpi| {
            let sink = sink.clone();
            async move {
                // Rank r waits r ms, then everyone meets at the barrier.
                mpi.elapse(vlog_sim::SimDuration::from_millis(mpi.rank() as u64))
                    .await;
                mpi.barrier().await;
                sink.lock()
                    .unwrap()
                    .push((mpi.rank(), mpi.time().as_nanos()));
            }
        }),
    );
    assert!(report.completed);
    let times: Vec<u64> = out.lock().unwrap().iter().map(|&(_, t)| t).collect();
    let min = *times.iter().min().unwrap();
    let max = *times.iter().max().unwrap();
    // All ranks leave the barrier after the slowest entered (4 ms).
    assert!(min >= 4_000_000, "barrier leaked early: {min}");
    // ... and within a few round trips of each other.
    assert!(max - min < 2_000_000, "barrier skew: {}", max - min);
}

#[test]
fn bcast_from_every_root() {
    for root in 0..4 {
        let (sink, out) = collector::<Vec<u8>>();
        let report = run_vdummy(
            &ClusterConfig::new(4),
            app(move |mpi| {
                let sink = sink.clone();
                async move {
                    let data = if mpi.rank() == root {
                        Some(Bytes::from(vec![9, 9, root as u8]))
                    } else {
                        None
                    };
                    let got = mpi.bcast_bytes(root, data).await;
                    sink.lock().unwrap().push(got.to_vec());
                }
            }),
        );
        assert!(report.completed);
        assert_eq!(out.lock().unwrap().len(), 4);
        for v in out.lock().unwrap().iter() {
            assert_eq!(v, &vec![9, 9, root as u8]);
        }
    }
}

#[test]
fn reduce_and_allreduce_compute_correctly() {
    for n in [1usize, 2, 3, 4, 7, 8] {
        let (sink, out) = collector::<Vec<f64>>();
        let report = run_vdummy(
            &ClusterConfig::new(n),
            app(move |mpi| {
                let sink = sink.clone();
                async move {
                    let r = mpi.rank() as f64;
                    let mine = vec![r, r * 2.0, 1.0];
                    let summed = mpi.allreduce_f64(&mine, ReduceOp::Sum).await;
                    let maxed = mpi.allreduce_f64(&mine, ReduceOp::Max).await;
                    sink.lock().unwrap().push(summed);
                    sink.lock().unwrap().push(maxed);
                }
            }),
        );
        assert!(report.completed, "n={n}");
        let total: f64 = (0..n).map(|r| r as f64).sum();
        let top = (n - 1) as f64;
        for pair in out.lock().unwrap().chunks(2) {
            assert_eq!(pair[0], vec![total, total * 2.0, n as f64], "n={n}");
            assert_eq!(pair[1], vec![top, top * 2.0, 1.0], "n={n}");
        }
    }
}

#[test]
fn alltoall_routes_every_pair() {
    let n = 5;
    let (sink, out) = collector::<(usize, Vec<u8>)>();
    let report = run_vdummy(
        &ClusterConfig::new(n),
        app(move |mpi| {
            let sink = sink.clone();
            async move {
                let me = mpi.rank() as u8;
                let outgoing: Vec<Payload> = (0..mpi.size())
                    .map(|d| Payload::new(vec![me, d as u8]))
                    .collect();
                let incoming = mpi.alltoall(outgoing).await;
                for (src, p) in incoming.iter().enumerate() {
                    sink.lock()
                        .unwrap()
                        .push((mpi.rank(), vec![src as u8, p.data[0], p.data[1]]));
                }
            }
        }),
    );
    assert!(report.completed);
    for (me, v) in out.lock().unwrap().iter() {
        let (src, from, to) = (v[0], v[1], v[2]);
        assert_eq!(src, from, "payload source mismatch");
        assert_eq!(to as usize, *me, "payload destination mismatch");
    }
    assert_eq!(out.lock().unwrap().len(), n * n);
}

#[test]
fn allgather_collects_all_payloads() {
    let n = 6;
    let report = run_vdummy(
        &ClusterConfig::new(n),
        app(move |mpi| async move {
            let mine = Payload::new(vec![mpi.rank() as u8; 3]);
            let all = mpi.allgather(mine).await;
            for (owner, p) in all.iter().enumerate() {
                assert_eq!(p.data.to_vec(), vec![owner as u8; 3]);
            }
        }),
    );
    assert!(report.completed);
}

#[test]
fn gather_to_root() {
    let n = 4;
    let report = run_vdummy(
        &ClusterConfig::new(n),
        app(move |mpi| async move {
            let mine = Payload::new(vec![mpi.rank() as u8]);
            let got = mpi.gather(2, mine).await;
            if mpi.rank() == 2 {
                let got = got.unwrap();
                for (src, p) in got.iter().enumerate() {
                    assert_eq!(p.data.to_vec(), vec![src as u8]);
                }
            } else {
                assert!(got.is_none());
            }
        }),
    );
    assert!(report.completed);
}

#[test]
fn ping_pong_latency_is_in_paper_ballpark() {
    // Vdummy 1-byte half-RTT should land near the paper's 134.84 us.
    let (sink, out) = collector::<f64>();
    let reps = 200u32;
    let report = run_vdummy(
        &ClusterConfig::new(2),
        app(move |mpi| {
            let sink = sink.clone();
            async move {
                if mpi.rank() == 0 {
                    let t0 = mpi.time();
                    for _ in 0..reps {
                        mpi.send(1, 0, Payload::synthetic(1)).await;
                        mpi.recv_from(1, 0).await;
                    }
                    let dt = mpi.time().saturating_since(t0);
                    sink.lock()
                        .unwrap()
                        .push(dt.as_micros_f64() / (2.0 * reps as f64));
                } else {
                    for _ in 0..reps {
                        mpi.recv_from(0, 0).await;
                        mpi.send(0, 0, Payload::synthetic(1)).await;
                    }
                }
            }
        }),
    );
    assert!(report.completed);
    let lat = out.lock().unwrap()[0];
    assert!(
        (100.0..180.0).contains(&lat),
        "Vdummy latency {lat:.2}us out of range"
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        run_vdummy(
            &ClusterConfig::new(3),
            app(move |mpi| async move {
                let mine = vec![mpi.rank() as f64];
                mpi.allreduce_f64(&mine, ReduceOp::Sum).await;
                mpi.barrier().await;
            }),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan.as_nanos(), b.makespan.as_nanos());
    assert_eq!(a.stats.messages, b.stats.messages);
    assert_eq!(a.events, b.events);
}

#[test]
fn p4_profile_runs_and_is_faster_on_latency_than_vdummy() {
    let prog = || {
        app(move |mpi| async move {
            if mpi.rank() == 0 {
                for _ in 0..50 {
                    mpi.send(1, 0, Payload::synthetic(1)).await;
                    mpi.recv_from(1, 0).await;
                }
            } else {
                for _ in 0..50 {
                    mpi.recv_from(0, 0).await;
                    mpi.send(0, 0, Payload::synthetic(1)).await;
                }
            }
        })
    };
    let p4 = run_vdummy(&ClusterConfig::new(2).p4(), prog());
    let vd = run_vdummy(&ClusterConfig::new(2), prog());
    assert!(p4.completed && vd.completed);
    assert!(
        p4.makespan < vd.makespan,
        "P4 ping-pong must beat the daemon stack: {} vs {}",
        p4.makespan,
        vd.makespan
    );
}
